// Package cdsf_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks, plus ablation benches for the design
// choices DESIGN.md calls out (RA heuristic quality, PMF granularity,
// DLS technique cost, availability-model choice, overhead sensitivity).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package cdsf_bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/availability"
	"cdsf/internal/batch"
	"cdsf/internal/cache"
	"cdsf/internal/config"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/server"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

// ---------------------------------------------------------------------
// Paper tables

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.GenerateTableI() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.GenerateTableII() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.GenerateTableIII() == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTableIV runs both Stage-I policies (naive load balancing and
// the exhaustive optimum) on the paper instance.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GenerateTableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableV computes the expected completion times of both
// Table IV allocations.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GenerateTableV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI runs the full scenario-4 evaluation (Stage I +
// Stage-II simulations across all four cases) behind Table VI.
func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.GenerateTableVI(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhi1 isolates the headline Stage-I computation: the joint
// deadline probability of the robust allocation.
func BenchmarkPhi1(b *testing.B) {
	f := experiments.Framework()
	alloc := experiments.PaperRobustAllocation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi, err := robustness.StageIProbability(f.Sys, f.Batch, alloc, f.Deadline)
		if err != nil {
			b.Fatal(err)
		}
		if phi < 0.7 || phi > 0.8 {
			b.Fatalf("phi1 = %v", phi)
		}
	}
}

// ---------------------------------------------------------------------
// Paper figures (scenarios 1-4)

func benchFigure(b *testing.B, n int) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GenerateFigure(n, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3) }
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6) }

// ---------------------------------------------------------------------
// Ablation: Stage-I heuristics on the paper instance

func BenchmarkRAHeuristic(b *testing.B) {
	f := experiments.Framework()
	prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}
	for _, name := range ra.Names() {
		h, ok := ra.Get(name)
		if !ok {
			b.Fatalf("heuristic %q missing", name)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.Allocate(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: DLS techniques in the Stage-II simulator (paper app 3,
// case 1 availability)

func BenchmarkDLSTechnique(b *testing.B) {
	avail := pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	for _, tech := range dls.All() {
		b.Run(tech.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := sim.RunContext(context.Background(), sim.Config{
					SerialIters:      216,
					ParallelIters:    4104,
					Workers:          8,
					IterTime:         stats.NewNormal(1.852, 0.3*1.852),
					Avail:            availability.Markov{PMF: avail, Interval: 812.5, Persistence: 0.5},
					Technique:        tech,
					WeightsFromAvail: true,
					BestMaster:       true,
					Overhead:         1,
					Seed:             uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: PMF pulse-count (bin width) sensitivity of phi1

func BenchmarkPMFGranularity(b *testing.B) {
	for _, pulses := range []int{10, 50, 250, 1000} {
		b.Run(fmt.Sprintf("pulses-%d", pulses), func(b *testing.B) {
			batch := experiments.PaperBatch(pulses)
			sys := experiments.ReferenceSystem()
			alloc := experiments.PaperRobustAllocation()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := robustness.StageIProbability(sys, batch, alloc, experiments.Deadline); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: PMF algebra primitives

func BenchmarkPMFOps(b *testing.B) {
	d := stats.NewNormal(1000, 100)
	p := pmf.Discretize(d, 250)
	avail := pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	b.Run("Div", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pmf.Div(p, avail)
		}
	})
	b.Run("Add", func(b *testing.B) {
		q := pmf.Discretize(d, 50)
		for i := 0; i < b.N; i++ {
			_ = pmf.Add(q, avail)
		}
	})
	b.Run("Max", func(b *testing.B) {
		q := pmf.Discretize(d, 50)
		for i := 0; i < b.N; i++ {
			_ = pmf.Max(q, q)
		}
	})
	b.Run("PrLE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = p.PrLE(1000)
		}
	})
	b.Run("Compact", func(b *testing.B) {
		big := pmf.Discretize(d, 2000)
		for i := 0; i < b.N; i++ {
			_ = big.Compact(100)
		}
	})
	b.Run("Discretize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pmf.Discretize(d, 250)
		}
	})
}

// ---------------------------------------------------------------------
// Ablation: availability-model choice in the Stage-II simulator

func BenchmarkAvailabilityModel(b *testing.B) {
	avail := pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	af, _ := dls.Get("AF")
	models := []availability.Model{
		availability.Static{PMF: avail},
		availability.Redraw{PMF: avail, Interval: 812.5},
		availability.Markov{PMF: avail, Interval: 812.5, Persistence: 0.5},
	}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := sim.RunContext(context.Background(), sim.Config{
					ParallelIters: 4096,
					Workers:       8,
					IterTime:      stats.NewNormal(1, 0.3),
					Avail:         m,
					Technique:     af,
					Overhead:      1,
					Seed:          uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: scheduling-overhead sensitivity (FAC vs SS)

func BenchmarkOverheadSensitivity(b *testing.B) {
	for _, name := range []string{"SS", "FAC", "AF"} {
		tech, _ := dls.Get(name)
		for _, h := range []float64{0, 1, 10} {
			b.Run(fmt.Sprintf("%s/h=%g", name, h), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := sim.RunContext(context.Background(), sim.Config{
						ParallelIters: 2048,
						Workers:       8,
						IterTime:      stats.NewNormal(1, 0.3),
						Avail:         availability.Static{PMF: pmf.Point(1)},
						Technique:     tech,
						Overhead:      h,
						Seed:          uint64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Future-work: the probabilistic scale study (one size, reduced
// instances, to keep the benchmark affordable)

func BenchmarkScaleStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultScaleConfig(uint64(i))
		cfg.Instances = 3
		cfg.Sizes = [][3]int{{6, 8, 16}}
		cfg.Reps = 6
		if _, err := experiments.RunScaleStudyContext(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: sensitivity studies (reduced repetitions)

func BenchmarkSensitivityStudies(b *testing.B) {
	b.Run("overhead", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.GenerateOverheadSensitivity(uint64(i), 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("correlation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.GenerateCorrelationStudy(uint64(i), 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("granularity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.GenerateGranularitySensitivity(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Ablation: exhaustive enumeration growth (the scalability wall the
// paper's future work targets)

func BenchmarkExhaustiveEnumeration(b *testing.B) {
	for _, apps := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("apps-%d", apps), func(b *testing.B) {
			f := experiments.Framework()
			prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch[:apps], Deadline: f.Deadline}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (ra.Exhaustive{}).Allocate(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// CPU scaling: the parallel Stage-I engine at 1, 2, and NumCPU workers.
// Results are bit-identical across worker counts (the engine's hard
// guarantee), so these isolate pure wall-clock scaling.

// benchWorkerCounts returns the worker counts the scaling benches sweep.
func benchWorkerCounts() []int {
	ws := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		ws = append(ws, n)
	}
	return ws
}

// BenchmarkEvalTableBuild measures the cold concurrent build of the
// (app x type x log2 count) evaluation table on the paper instance.
func BenchmarkEvalTableBuild(b *testing.B) {
	f := experiments.Framework()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}
				if err := prob.Precompute(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExhaustiveParallel measures the partitioned exhaustive search
// over a warm table, isolating the enumeration fan-out.
func BenchmarkExhaustiveParallel(b *testing.B) {
	f := experiments.Framework()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}
			if err := prob.Precompute(w); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (&ra.Exhaustive{Workers: w}).Allocate(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleStudyWorkers measures the scale study's per-cell
// fan-out (same reduced configuration as BenchmarkScaleStudy).
func BenchmarkScaleStudyWorkers(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultScaleConfig(uint64(i))
				cfg.Instances = 3
				cfg.Sizes = [][3]int{{6, 8, 16}}
				cfg.Reps = 6
				cfg.Workers = w
				if _, err := experiments.RunScaleStudyContext(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// New-module benchmarks: analytic STATIC runtime model, order
// statistics, simulator-vs-model validation, and the batch substrate.

func BenchmarkStaticRuntimeModel(b *testing.B) {
	f := experiments.Framework()
	app := &f.Batch[2]
	avail := f.Sys.Types[1].Avail
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = robustness.StaticRuntimePMF(app, 1, 8, avail, 300)
	}
}

func BenchmarkMaxN(b *testing.B) {
	p := pmf.Discretize(stats.NewNormal(1000, 100), 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pmf.MaxN(p, 8)
	}
}

func BenchmarkValidateStageI(b *testing.B) {
	f := experiments.Framework()
	alloc := experiments.PaperRobustAllocation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ValidateStageI(alloc, 0, 50, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSubstrate(b *testing.B) {
	cfg := batch.Config{
		Sys: experiments.ReferenceSystem(),
		Arrivals: batch.ArrivalProcess{
			Interarrival: stats.NewExponential(1.0 / 800),
			Templates:    experiments.PaperBatch(100),
		},
		Heuristic: ra.Greedy{},
		Deadline:  experiments.Deadline,
		MaxBatch:  3,
		Jobs:      40,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := batch.RunContext(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: sparse vs grid PMF backend on Stage-I-shaped workloads

// BenchmarkPMFBackends compares the two distribution backends on the
// shapes Stage I actually produces: completion-time divisions are
// ~750-pulse PMFs, and the makespan/objective path combines them with
// Add and Max. The grid rows include releasing the pooled output, so
// they measure the steady-state cost a table build pays per cell.
func BenchmarkPMFBackends(b *testing.B) {
	avail := pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	exec := pmf.Discretize(stats.NewNormal(1000, 100), 250)
	comp := pmf.Div(exec, avail)
	comp2 := pmf.Div(pmf.Discretize(stats.NewNormal(1400, 150), 250), avail)
	step := float64(experiments.Deadline) / 1024
	g1 := comp.ToGrid(step)
	g2 := comp2.ToGrid(step)
	defer g1.Release()
	defer g2.Release()

	b.Run("Add/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pmf.Add(comp, comp2)
		}
	})
	b.Run("Add/grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g1.Add(g2).Release()
		}
	})
	b.Run("Max/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pmf.Max(comp, comp2)
		}
	})
	b.Run("Max/grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g1.MaxWith(g2).Release()
		}
	})
	b.Run("Div/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pmf.Div(exec, avail)
		}
	})
	b.Run("Div/grid", func(b *testing.B) {
		ge := exec.ToGrid(step)
		defer ge.Release()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ge.DivPMF(avail).Release()
		}
	})
	b.Run("PrLE/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = comp.PrLE(experiments.Deadline)
		}
	})
	b.Run("PrLE/grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g1.PrLE(experiments.Deadline)
		}
	})
	// ToGrid is the grid backend's analogue of Compact: the one-time
	// quantization a PMF pays to enter the dense representation.
	b.Run("ToGrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp.ToGrid(step).Release()
		}
	})
}

// ---------------------------------------------------------------------
// Content-addressed solve cache: result-tier replay at the service
// layer, warm-table reuse, and delta-solve (see DESIGN.md section 10,
// make bench-cache, BENCH_CACHE.json).

// benchCacheInstance builds a synthetic instance whose exhaustive
// Stage-I solve takes long enough to dominate an HTTP round trip by
// orders of magnitude. The paper instance solves in under a
// millisecond, which would measure the cache against transport noise
// rather than against the work it elides; seven applications over
// three processor types put the cold solve near a second.
func benchCacheInstance(apps, pulses int) *config.Instance {
	inst := &config.Instance{
		Name:     "bench-cache",
		Deadline: 9000,
		Pulses:   pulses,
		Types: []config.ProcTypeSpec{
			{Name: "T1", Count: 4, Availability: []config.PulseSpec{
				{Value: 75, Probability: 50}, {Value: 100, Probability: 50}}},
			{Name: "T2", Count: 8, Availability: []config.PulseSpec{
				{Value: 25, Probability: 25}, {Value: 50, Probability: 25}, {Value: 100, Probability: 50}}},
			{Name: "T3", Count: 16, Availability: []config.PulseSpec{
				{Value: 50, Probability: 50}, {Value: 100, Probability: 50}}},
		},
	}
	for i := 0; i < apps; i++ {
		inst.Applications = append(inst.Applications, config.ApplicationSpec{
			Name:          fmt.Sprintf("App %d", i+1),
			SerialIters:   200 + 50*i,
			ParallelIters: 1024 + 512*i,
			ExecTimes: []config.ExecTimeSpec{
				{Mean: 1500 + 300*float64(i)},
				{Mean: 3000 + 500*float64(i)},
				{Mean: 2000 + 400*float64(i)},
			},
		})
	}
	return inst
}

// benchSolveJob submits one solve request and drives it to a terminal
// state, returning the final envelope. Result-tier hits come back
// already done on the POST; cold jobs are polled.
func benchSolveJob(b *testing.B, base string, body []byte) api.Job {
	b.Helper()
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: status %d", resp.StatusCode)
	}
	for !job.State.Terminal() {
		time.Sleep(200 * time.Microsecond)
		r, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
	}
	if job.State != api.JobDone {
		b.Fatalf("job ended %s: %s", job.State, job.Error)
	}
	return job
}

// BenchmarkCacheServer measures submit-to-done wall time at the
// service layer: "cold" solves a fresh key every iteration (the seed
// is part of the content address), "repeat" resubmits one byte-
// identical request and is answered from the result tier at admission
// time. The repeat/cold ratio is the headline latency collapse
// BENCH_CACHE.json records.
func BenchmarkCacheServer(b *testing.B) {
	inst := benchCacheInstance(7, 250)
	b.Run("cold", func(b *testing.B) {
		s := server.New(server.Options{Cache: cache.New(cache.Options{})})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(api.SolveRequest{Instance: inst, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			job := benchSolveJob(b, ts.URL, body)
			if job.Cache == nil || job.Cache.ResultHit {
				b.Fatal("cold request served from cache")
			}
		}
	})
	b.Run("repeat", func(b *testing.B) {
		s := server.New(server.Options{Cache: cache.New(cache.Options{})})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := json.Marshal(api.SolveRequest{Instance: inst, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchSolveJob(b, ts.URL, body) // populate the result tier
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := benchSolveJob(b, ts.URL, body)
			if job.Cache == nil || !job.Cache.ResultHit {
				b.Fatal("repeat missed the result tier")
			}
		}
	})
}

// BenchmarkCacheWarmTable isolates tier (b): the Stage-I evaluation
// table built from scratch versus re-derived from warm cached
// completion distributions (PrLE reads over cached CDFs instead of
// PMF algebra).
func BenchmarkCacheWarmTable(b *testing.B) {
	sys, bat, deadline, err := config.Build(benchCacheInstance(6, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prob := &ra.Problem{Sys: sys, Batch: bat, Deadline: deadline,
				Cache: cache.New(cache.Options{})}
			if err := prob.Precompute(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := cache.New(cache.Options{})
		seed := &ra.Problem{Sys: sys, Batch: bat, Deadline: deadline, Cache: c}
		if err := seed.Precompute(0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prob := &ra.Problem{Sys: sys, Batch: bat, Deadline: deadline, Cache: c}
			if err := prob.Precompute(0); err != nil {
				b.Fatal(err)
			}
			if h, m := prob.CacheCounts(); h == 0 || m != 0 {
				b.Fatalf("warm build counts = (%d, %d)", h, m)
			}
		}
	})
}

// BenchmarkCacheDeltaSolve measures the delta-solve path: the same
// instance re-solved under a sweep of deadlines. Sparse completion
// distributions are deadline-invariant, so every deadline re-derives
// its table cells from the one warm entry instead of rebuilding.
func BenchmarkCacheDeltaSolve(b *testing.B) {
	sys, bat, deadline, err := config.Build(benchCacheInstance(6, 1000))
	if err != nil {
		b.Fatal(err)
	}
	factors := []float64{0.8, 0.9, 1.1, 1.25, 1.5}
	b.Run("cacheless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prob := &ra.Problem{Sys: sys, Batch: bat,
				Deadline: deadline * factors[i%len(factors)]}
			if err := prob.Precompute(0); err != nil {
				b.Fatal(err)
			}
			if _, err := (ra.Greedy{}).Allocate(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := cache.New(cache.Options{})
		seed := &ra.Problem{Sys: sys, Batch: bat, Deadline: deadline, Cache: c}
		if err := seed.Precompute(0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prob := &ra.Problem{Sys: sys, Batch: bat,
				Deadline: deadline * factors[i%len(factors)], Cache: c}
			if err := prob.Precompute(0); err != nil {
				b.Fatal(err)
			}
			if h, m := prob.CacheCounts(); h == 0 || m != 0 {
				b.Fatalf("delta build counts = (%d, %d)", h, m)
			}
			if _, err := (ra.Greedy{}).Allocate(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolveBackends measures the end-to-end Stage-I solve (table
// build + exhaustive search) on the paper instance under each backend.
func BenchmarkSolveBackends(b *testing.B) {
	f := experiments.Framework()
	for _, backend := range []pmf.Backend{pmf.BackendSparse, pmf.BackendGrid} {
		b.Run(string(backend), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline, Backend: backend}
				if err := prob.Precompute(0); err != nil {
					b.Fatal(err)
				}
				if _, err := (&ra.Exhaustive{}).Allocate(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

module cdsf

go 1.22

// Largescale runs the paper's future-work experiment: a larger
// heterogeneous system (three processor types, 56 processors) and a
// bigger batch (8 applications), where exhaustive Stage-I search is
// infeasible and the scalable heuristics must carry the load. It
// compares the heuristics' robustness (phi1) and runtime, then feeds the
// best allocation through the Stage-II simulator under increasing
// availability perturbation to locate the system's tolerance.
//
// Run with:
//
//	go run ./examples/largescale
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/rng"
	"cdsf/internal/robustness"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

const deadline = 5000

func buildSystem() *sysmodel.System {
	return &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: 8, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "Type 2", Count: 16, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})},
		{Name: "Type 3", Count: 32, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.4, Prob: 0.3}, {Value: 0.7, Prob: 0.4}, {Value: 0.9, Prob: 0.3}})},
	}}
}

func buildBatch(seed uint64) sysmodel.Batch {
	r := rng.New(seed)
	b := make(sysmodel.Batch, 8)
	for i := range b {
		total := 1024 + r.Intn(6144)
		sf := 0.02 + 0.25*r.Float64()
		serial := int(sf * float64(total))
		exec := make([]pmf.PMF, 3)
		// Each type has a different speed personality per application.
		base := 1000 * (1 + 6*r.Float64())
		for j := range exec {
			mu := base * (0.6 + 1.2*r.Float64())
			exec[j] = pmf.Discretize(stats.NewNormal(mu, mu/10), 80)
		}
		b[i] = sysmodel.Application{
			Name:          fmt.Sprintf("App %d", i+1),
			SerialIters:   serial,
			ParallelIters: total - serial,
			ExecTime:      exec,
		}
	}
	return b
}

func main() {
	sys := buildSystem()
	batch := buildBatch(7)
	prob := &ra.Problem{Sys: sys, Batch: batch, Deadline: deadline}

	fmt.Printf("Large-scale instance: %d applications on %d processors of %d types, deadline %d\n",
		len(batch), sys.TotalProcessors(), len(sys.Types), deadline)
	fmt.Printf("(feasible allocations: too many to enumerate — %d+ options per application)\n\n",
		len(sys.Types)*5)

	// Stage I: heuristic shoot-out.
	t := report.NewTable("Stage-I heuristics on the large instance",
		"Heuristic", "phi1 (%)", "max E[T]", "Time")
	type outcome struct {
		name  string
		alloc sysmodel.Allocation
		phi   float64
	}
	var best *outcome
	for _, name := range []string{"naive", "greedy", "maxmin", "twophase", "random", "anneal", "tabu", "genetic"} {
		h, err := ra.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		al, err := h.Allocate(prob)
		dt := time.Since(t0)
		if err != nil {
			t.AddRow(name, "error: "+err.Error(), "", "")
			continue
		}
		res, err := robustness.EvaluateStageI(sys, batch, al, deadline)
		if err != nil {
			log.Fatal(err)
		}
		maxE := 0.0
		for _, e := range res.ExpectedTimes {
			if e > maxE {
				maxE = e
			}
		}
		t.AddRow(name, fmt.Sprintf("%.2f", res.Phi1*100),
			fmt.Sprintf("%.0f", maxE), dt.Round(time.Millisecond).String())
		if best == nil || res.Phi1 > best.phi {
			best = &outcome{name: name, alloc: al, phi: res.Phi1}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBest stage-I policy: %s (phi1 = %.2f%%)\n\n", best.name, best.phi*100)

	// Stage II: degrade availability uniformly and find the tolerance.
	fmt.Println("Stage II: uniform availability degradation sweep (AF, best allocation)")
	t2 := report.NewTable("", "Degradation (%)", "Weighted avail (%)", "Mean makespan", "Meets deadline")
	cfg := core.DefaultStageII(deadline, 42)
	cfg.Reps = 20
	for _, deg := range []float64{0, 0.10, 0.20, 0.30, 0.40} {
		scaled := make([]pmf.PMF, len(sys.Types))
		for j, pt := range sys.Types {
			scaled[j] = pt.Avail.Scale(1 - deg)
		}
		pert := sys.WithAvailability(scaled)

		// Simulate every application with AF on the best allocation.
		worst := 0.0
		for i := range batch {
			s, err := simOne(batch[i], best.alloc[i], scaled[best.alloc[i].Type], cfg)
			if err != nil {
				log.Fatal(err)
			}
			if s > worst {
				worst = s
			}
		}
		t2.AddRow(fmt.Sprintf("%.0f", deg*100),
			fmt.Sprintf("%.1f", pert.WeightedAvailability()*100),
			fmt.Sprintf("%.0f", worst),
			fmt.Sprintf("%v", worst <= deadline))
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// simOne runs the Stage-II simulator for one application under AF and
// returns the mean makespan.
func simOne(app sysmodel.Application, as sysmodel.Assignment, avail pmf.PMF, cfg core.StageIIConfig) (float64, error) {
	af, ok := dls.Get("AF")
	if !ok {
		return 0, fmt.Errorf("AF technique missing")
	}
	iterMean := app.ExecTime[as.Type].Mean() / float64(app.TotalIters())
	s, err := sim.RunManyContext(context.Background(), sim.Config{
		SerialIters:      app.SerialIters,
		ParallelIters:    app.ParallelIters,
		Workers:          as.Procs,
		IterTime:         stats.NewNormal(iterMean, cfg.IterCV*iterMean),
		Avail:            availability.Markov{PMF: avail, Interval: deadline / 4, Persistence: 0.5},
		Technique:        af,
		WeightsFromAvail: true,
		BestMaster:       true,
		Overhead:         cfg.Overhead,
		Seed:             cfg.Seed,
	}, cfg.Reps)
	if err != nil {
		return 0, err
	}
	return s.Mean(), nil
}

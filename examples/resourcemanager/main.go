// Resourcemanager studies the Stage-I operational question the paper's
// framework sits inside: applications arrive continuously at a resource
// manager and are scheduled batch after batch. It compares how the
// choice of Stage-I heuristic changes queueing delay and deadline
// satisfaction as the arrival rate grows — naive load balancing wastes
// capacity on equal shares, the robust heuristics keep the batch
// makespans (and hence the queues) short.
//
// Run with:
//
//	go run ./examples/resourcemanager
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cdsf/internal/batch"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/stats"
)

func main() {
	rates := []float64{1.0 / 4000, 1.0 / 2000, 1.0 / 1000, 1.0 / 500}
	heuristics := []string{"naive", "greedy", "twophase", "genetic"}

	t := report.NewTable(
		"Resource-manager study: 120 arrivals on the paper system, per-batch deadline 3250",
		"Arrival rate", "Heuristic", "Batches", "Mean batch", "Mean wait", "Deadline rate (%)")
	for _, rate := range rates {
		for _, name := range heuristics {
			h, err := ra.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := batch.RunContext(context.Background(), batch.Config{
				Sys: experiments.ReferenceSystem(),
				Arrivals: batch.ArrivalProcess{
					Interarrival: stats.NewExponential(rate),
					Templates:    experiments.PaperBatch(100),
				},
				Heuristic: h,
				Deadline:  experiments.Deadline,
				MaxBatch:  3,
				Jobs:      120,
				Seed:      9,
			})
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(
				fmt.Sprintf("1/%.0f", 1/rate),
				name,
				fmt.Sprintf("%d", len(res.Batches)),
				fmt.Sprintf("%.2f", res.MeanBatchSize),
				fmt.Sprintf("%.0f", res.MeanWait),
				fmt.Sprintf("%.0f", res.DeadlineRate*100))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHigher arrival rates grow batches and queueing delay; robust")
	fmt.Println("heuristics hold the per-batch deadline rate where naive load")
	fmt.Println("balancing degrades.")
}

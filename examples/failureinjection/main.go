// Failureinjection stresses the Stage-II techniques with random full
// processor outages (availability collapsing to ~0 for whole epochs) —
// the harshest perturbation a non-dedicated system can inflict short of
// losing the processor permanently. The study sweeps the outage
// probability and reports each technique's mean makespan and the
// probability of meeting a deadline budgeted at 2x the no-failure ideal.
//
// Run with:
//
//	go run ./examples/failureinjection
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/report"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

func main() {
	const (
		iters    = 8192
		workers  = 16
		iterMean = 1.0
		reps     = 30
	)
	ideal := float64(iters) * iterMean / workers
	deadline := 2 * ideal
	probs := []float64{0, 0.05, 0.1, 0.2, 0.3}

	headers := []string{"Technique"}
	for _, p := range probs {
		headers = append(headers, fmt.Sprintf("p=%.2f", p))
	}
	t := report.NewTable(fmt.Sprintf(
		"Failure injection: mean makespan (Pr meet %.0f) under per-epoch outage probability",
		deadline), headers...)

	for _, name := range []string{"STATIC", "GSS", "FAC", "WF", "AWF-B", "AF"} {
		tech, ok := dls.Get(name)
		if !ok {
			log.Fatalf("technique %q missing", name)
		}
		row := []string{name}
		for _, p := range probs {
			var model availability.Model = availability.Static{PMF: pmf.Point(1)}
			if p > 0 {
				model = availability.Blackout{
					Base:     model,
					Prob:     p,
					Interval: ideal / 4,
				}
			}
			s, err := sim.RunManyContext(context.Background(), sim.Config{
				ParallelIters: iters,
				Workers:       workers,
				IterTime:      stats.NewNormal(iterMean, 0.2*iterMean),
				Avail:         model,
				Technique:     tech,
				Overhead:      0.5,
				Seed:          23,
			}, reps)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.0f (%.0f%%)", s.Mean(), s.PrLE(deadline)*100))
		}
		t.AddRow(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSTATIC pays the full outage duration whenever a blacked-out worker")
	fmt.Println("holds its fixed share; the chunked techniques re-route around outages")
	fmt.Println("and the adaptive ones shrink the blacked-out workers' chunks first.")
}

// Quickstart: allocate a small batch of stochastic applications onto a
// heterogeneous two-type system with a robust Stage-I heuristic, then
// execute one application with a robust DLS technique in the Stage-II
// simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func main() {
	// 1. Describe the heterogeneous system: two processor types with
	//    uncertain availability expressed as PMFs (fractions).
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "fast", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1.0, Prob: 0.5},
		})},
		{Name: "slow", Count: 8, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1.0, Prob: 0.5},
		})},
	}}

	// 2. Describe the applications. Execution times on one dedicated
	//    processor of each type are random variables; here we discretize
	//    Normal(mu, mu/10) into 100-pulse PMFs.
	mk := func(name string, serial, parallel int, muFast, muSlow float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          name,
			SerialIters:   serial,
			ParallelIters: parallel,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(muFast, muFast/10), 100),
				pmf.Discretize(stats.NewNormal(muSlow, muSlow/10), 100),
			},
		}
	}
	batch := sysmodel.Batch{
		mk("alpha", 400, 1600, 1800, 4000),
		mk("beta", 500, 2000, 2800, 6000),
		mk("gamma", 200, 4000, 12000, 8000),
	}

	// 3. Stage I: find the allocation maximizing the probability that
	//    every application finishes before the common deadline.
	const deadline = 3250
	prob := &ra.Problem{Sys: sys, Batch: batch, Deadline: deadline}
	alloc, err := (ra.Exhaustive{}).Allocate(prob)
	if err != nil {
		log.Fatal(err)
	}
	stage1, err := robustness.EvaluateStageI(sys, batch, alloc, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stage I allocation: %v\n", alloc)
	for i, a := range batch {
		fmt.Printf("  %-6s -> %d procs of %s  Pr(T<=%d)=%.1f%%  E[T]=%.0f\n",
			a.Name, alloc[i].Procs, sys.Types[alloc[i].Type].Name,
			deadline, stage1.PerApp[i]*100, stage1.ExpectedTimes[i])
	}
	fmt.Printf("phi1 = Pr(all meet deadline) = %.1f%%\n\n", stage1.Phi1*100)

	// 4. Stage II: execute "gamma" on its allocated group with adaptive
	//    factoring under bursty runtime availability.
	af, _ := dls.Get("AF")
	app := batch[2]
	as := alloc[2]
	iterMean := app.ExecTime[as.Type].Mean() / float64(app.TotalIters())
	sample, err := sim.RunManyContext(context.Background(), sim.Config{
		SerialIters:   app.SerialIters,
		ParallelIters: app.ParallelIters,
		Workers:       as.Procs,
		IterTime:      stats.NewNormal(iterMean, 0.3*iterMean),
		Avail: availability.Markov{
			PMF:         sys.Types[as.Type].Avail,
			Interval:    deadline / 4,
			Persistence: 0.5,
		},
		Technique:        af,
		WeightsFromAvail: true,
		BestMaster:       true,
		Overhead:         1,
		Seed:             1,
	}, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stage II (%s with AF on %d procs): mean makespan %.0f, Pr(T<=%d)=%.0f%%\n",
		app.Name, as.Procs, sample.Mean(), deadline, sample.PrLE(deadline)*100)
}

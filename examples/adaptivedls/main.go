// Adaptivedls compares the dynamic loop scheduling techniques on a
// single computationally intensive parallel loop (the workload class
// the paper's introduction motivates: data-parallel scientific
// applications with large loops) as the runtime availability
// perturbation grows, illustrating the Stage-II robustness story:
// non-adaptive techniques degrade quickly while the adaptive ones hold
// the makespan near the ideal bound.
//
// Run with:
//
//	go run ./examples/adaptivedls
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/report"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

func main() {
	const (
		iters    = 8192
		workers  = 16
		iterMean = 1.0
		reps     = 40
	)
	techniques := []string{"STATIC", "SS", "GSS", "TSS", "FAC", "WF", "AWF-B", "AWF-C", "AF"}

	// Perturbation levels: the fraction of processors whose availability
	// PMF is severely degraded (the rest stay fully available).
	levels := []struct {
		name string
		pmf  pmf.PMF
	}{
		{"none (dedicated)", pmf.Point(1)},
		{"mild (E=0.85)", pmf.MustNew([]pmf.Pulse{{Value: 0.7, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{"moderate (E=0.64)", pmf.MustNew([]pmf.Pulse{{Value: 0.4, Prob: 0.4}, {Value: 0.8, Prob: 0.6}})},
		{"severe (E=0.45)", pmf.MustNew([]pmf.Pulse{{Value: 0.15, Prob: 0.4}, {Value: 0.65, Prob: 0.6}})},
	}

	headers := append([]string{"Technique"}, func() []string {
		names := make([]string, len(levels))
		for i, l := range levels {
			names[i] = l.name
		}
		return names
	}()...)
	t := report.NewTable(fmt.Sprintf(
		"Mean loop makespan: %d iterations on %d workers (ideal at full availability: %.0f)",
		iters, workers, float64(iters)*iterMean/workers), headers...)

	ideal := make([]float64, len(levels))
	for li, l := range levels {
		ideal[li] = float64(iters) * iterMean / (float64(workers) * l.pmf.Mean())
	}

	for _, name := range techniques {
		tech, ok := dls.Get(name)
		if !ok {
			log.Fatalf("technique %q missing", name)
		}
		row := []string{name}
		for _, l := range levels {
			s, err := sim.RunManyContext(context.Background(), sim.Config{
				ParallelIters:    iters,
				Workers:          workers,
				IterTime:         stats.NewNormal(iterMean, 0.3*iterMean),
				Avail:            availability.Markov{PMF: l.pmf, Interval: 150, Persistence: 0.6},
				Technique:        tech,
				WeightsFromAvail: true,
				Overhead:         0.5,
				Seed:             11,
			}, reps)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	idealRow := []string{"(ideal bound)"}
	for _, v := range ideal {
		idealRow = append(idealRow, fmt.Sprintf("%.0f", v))
	}
	t.AddRow(idealRow...)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe adaptive techniques (AWF-B, AWF-C, AF) track the ideal bound as")
	fmt.Println("perturbation grows; STATIC and GSS degrade the fastest — the paper's")
	fmt.Println("motivation for robust DLS in Stage II.")
}

// Timestepping demonstrates the original AWF technique on its intended
// workload class: time-stepping scientific applications that sweep the
// same loop repeatedly (e.g. iterative solvers). AWF schedules the first
// sweep with a-priori weights, measures, and re-weights at every step
// boundary — so its per-sweep cost drops after step one, while WF
// (frozen weights) and FAC (no weights) stay flat.
//
// Run with:
//
//	go run ./examples/timestepping
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/report"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

func main() {
	const (
		iters   = 4096
		workers = 8
		steps   = 6
		reps    = 25
	)
	// Persistently heterogeneous group: half the processors carry heavy
	// external load for the whole run.
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.25, Prob: 0.5}, {Value: 1, Prob: 0.5}})

	t := report.NewTable(
		fmt.Sprintf("Time-stepping study: %d sweeps of %d iterations on %d workers",
			steps, iters, workers),
		"Technique", "Total makespan", "Mean per sweep", "Chunks")
	type row struct {
		name string
		mk   float64
	}
	var rows []row
	for _, name := range []string{"STATIC", "FAC", "WF", "AWF", "AWF-B", "AF"} {
		tech, ok := dls.Get(name)
		if !ok {
			log.Fatalf("technique %q missing", name)
		}
		s, err := sim.RunManyContext(context.Background(), sim.Config{
			ParallelIters: iters,
			Workers:       workers,
			IterTime:      stats.NewNormal(1, 0.2),
			Avail:         availability.Static{PMF: avail},
			Technique:     tech,
			Overhead:      1,
			TimeSteps:     steps,
			Seed:          17,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f", s.Mean()),
			fmt.Sprintf("%.0f", s.Mean()/steps),
			fmt.Sprintf("%.0f", s.MeanChunks))
		rows = append(rows, row{name, s.Mean()})
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("AWF starts each run blind (equal weights) but learns at the first")
	fmt.Println("step boundary; over", steps, "sweeps it closes most of the gap to the")
	fmt.Println("fully adaptive techniques without their per-chunk bookkeeping.")
}

// Paperstudy reproduces the paper's full small-scale example: all four
// IM x RAS scenarios across the four runtime availability cases, ending
// with the system robustness tuple of the combined dual-stage
// framework.
//
// Run with:
//
//	go run ./examples/paperstudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cdsf/internal/core"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/report"
)

func main() {
	f := experiments.Framework()
	cfg := core.DefaultStageII(experiments.Deadline, 42)
	cases := experiments.Cases()

	fmt.Println("Reproduction of Ciorba et al., 'A Combined Dual-stage Framework for")
	fmt.Println("Robust Scheduling of Scientific Applications in Heterogeneous")
	fmt.Println("Environments with Uncertain Availability' (IPDPS-W 2012), Section IV.")
	fmt.Println()

	for _, sc := range core.PaperScenarios(ra.NaiveLoadBalance{}, ra.Exhaustive{}) {
		res, err := f.RunScenarioContext(context.Background(), sc, cases, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== Scenario %s\n", res.Scenario)
		fmt.Printf("    allocation: %v   phi1 = %.1f%%\n", res.StageI.Alloc, res.StageI.Phi1*100)

		t := report.NewTable("", "Case", "Decrease (%)", "App 1", "App 2", "App 3", "All meet?")
		for _, c := range res.Cases {
			row := []string{c.Case.Name, fmt.Sprintf("%.2f", c.Decrease*100)}
			for i := range c.PerApp {
				best := c.Best[i]
				cell := "-"
				if best != "" {
					for _, o := range c.PerApp[i] {
						if o.Technique == best {
							cell = fmt.Sprintf("%s %.0f", best, o.MeanTime)
						}
					}
				}
				row = append(row, cell)
			}
			row = append(row, fmt.Sprintf("%v", c.AllMeet))
			t.AddRow(row...)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		tuple := core.SystemRobustness(res)
		fmt.Printf("    robustness (rho1, rho2) = %s\n\n", tuple)
	}

	fmt.Println("Paper reference: scenario 4 is robust for cases 1-3, not case 4;")
	fmt.Println("(rho1, rho2) = (74.5%, 30.77%); best technique for App 3 in case 4: AF.")
}

# Standard development targets for the CDSF reproduction.
#
#   make check   default: build + vet + test + race in one gate
#   make build   compile every package and command
#   make vet     run go vet across the module
#   make test    run the full test suite
#   make race    run the concurrency-sensitive packages under the race
#                detector (the parallel Stage-I engine's gate)
#   make bench   run the benchmark suite with allocation stats
#   make fuzz    run each pmf fuzz target briefly

GO ?= go

.PHONY: check build vet test race bench fuzz

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ra ./internal/pmf ./internal/experiments ./internal/sim ./internal/metrics ./internal/availability

bench:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test -run=xxx -fuzz=FuzzNew -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzCombineMerge -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzRebin -fuzztime=10s ./internal/pmf

# Standard development targets for the CDSF reproduction.
#
#   make check   default: build + vet + test + race + cover in one gate
#   make build   compile every package and command
#   make vet     run go vet across the module
#   make test    run the full test suite
#   make race    run the full test suite under the race detector
#   make cover   enforce the coverage floor on the observability and
#                service packages (internal/tracing, internal/trace,
#                internal/api, internal/server, internal/log,
#                internal/events, internal/store), the PMF kernels
#                (internal/pmf), the solve cache (internal/cache), and
#                the DAG code paths (internal/sysmodel, internal/ra,
#                internal/robustness)
#   make bench   run the benchmark suite with allocation stats
#   make bench-pmf  refresh the PMF backend comparison behind
#                BENCH_PMF2.json (sparse vs grid kernels, solve)
#   make bench-cache  refresh the solve-cache comparison behind
#                BENCH_CACHE.json (result-tier replay, warm tables,
#                delta-solve)
#   make fuzz    run each pmf fuzz target briefly
#   make serve   build and run the cdsfd scheduling service locally
#   make smoke-sse  end-to-end smoke: a real cdsfd subprocess streams a
#                seeded solve job's full event journal over SSE
#   make smoke-cluster  end-to-end smoke: a coordinator and two worker
#                subprocesses solve a seeded batch byte-identically to
#                a single process and survive a worker kill -9
#   make smoke-dag  end-to-end smoke: a real cdsfd subprocess solves a
#                seeded fork-join DAG with heft and the result matches
#                the direct library computation bit for bit

GO ?= go

# Minimum statement coverage (percent) for the floored packages.
COVER_FLOOR ?= 85

# Packages held to the coverage floor.
COVER_PKGS ?= ./internal/tracing ./internal/trace ./internal/api ./internal/server ./internal/pmf ./internal/cache ./internal/log ./internal/events ./internal/store ./internal/sysmodel ./internal/ra ./internal/robustness

# Listen address for `make serve`.
SERVE_ADDR ?= 127.0.0.1:8080

.PHONY: check build vet test race cover bench bench-pmf bench-cache fuzz serve smoke-sse smoke-cluster smoke-dag

check: build vet test race cover smoke-cluster smoke-dag

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	@for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(echo "$$pct $(COVER_FLOOR)" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg at $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
	done

bench:
	$(GO) test -bench=. -benchmem .

# The raw numbers feeding BENCH_PMF2.json: the sparse reference kernels
# (PMFOps), the sparse-vs-grid backend comparison on Stage-I-shaped
# workloads (PMFBackends), and the end-to-end solve under each backend.
bench-pmf:
	$(GO) test -run=xxx -bench 'BenchmarkPMFOps|BenchmarkPMFBackends|BenchmarkSolveBackends|BenchmarkEvalTableBuild' -benchmem .

# The raw numbers feeding BENCH_CACHE.json: result-tier replay at the
# service layer (cold solve vs byte-identical repeat), warm evaluation
# tables, and the delta-solve deadline sweep.
bench-cache:
	$(GO) test -run=xxx -bench 'BenchmarkCacheServer|BenchmarkCacheWarmTable|BenchmarkCacheDeltaSolve' -benchmem .

fuzz:
	$(GO) test -run=xxx -fuzz=FuzzNew -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzCombineMerge -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzRebin -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzGridSparse -fuzztime=10s ./internal/pmf
	$(GO) test -run=xxx -fuzz=FuzzDAGValidate -fuzztime=10s ./internal/sysmodel

serve:
	$(GO) run ./cmd/cdsfd -addr $(SERVE_ADDR)

smoke-sse:
	$(GO) test -run TestSmokeSSE -count=1 -v ./cmd/cdsfd

smoke-cluster:
	$(GO) test -run TestSmokeCluster -count=1 -v ./cmd/cdsfd

smoke-dag:
	$(GO) test -run TestSmokeDAG -count=1 -v ./cmd/cdsfd

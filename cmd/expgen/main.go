// Command expgen regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	expgen                 # everything
//	expgen -table 4        # a single table (1-6)
//	expgen -figure 5       # a single figure (3-6)
//	expgen -seed 7 -csv    # change the Stage-II seed; CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cdsf/internal/experiments"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/report"
	"cdsf/internal/tracing"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-6)")
	figure := flag.Int("figure", 0, "regenerate only this figure (3-6)")
	seed := flag.Uint64("seed", 42, "seed for the Stage-II simulations")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	sensitivity := flag.Bool("sensitivity", false, "emit the sensitivity/ablation studies instead of the paper tables")
	scale := flag.Bool("scale", false, "run the future-work probabilistic scale study instead of the paper tables")
	reps := flag.Int("reps", 20, "stage-II repetitions for the sensitivity studies")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size for the scale study (results are identical for any value)")
	metricsDest := flag.String("metrics", "", `collect runtime metrics and write them to this destination: "-" or "json" for JSON on stdout, "csv" for CSV on stdout, or a file path (.csv for CSV, JSON otherwise)`)
	traceDest := flag.String("trace", "", `record span timelines and write Chrome Trace Event JSON (chrome://tracing, Perfetto) to this destination: "-" for stdout or a file path`)
	debugAddr := flag.String("debug-addr", "", `serve live debug endpoints (/debug/pprof/*, /metrics, /progress, /trace) on this address, e.g. ":6060"`)
	flag.Parse()

	// expgen drives everything through internal/experiments, which
	// builds its own configs; the process-wide default registry (and
	// likewise the default tracer and progress board) routes their
	// instrumentation here without threading a parameter through every
	// generator.
	var reg *metrics.Registry
	if *metricsDest != "" || *debugAddr != "" {
		reg = metrics.NewRegistry()
		metrics.SetDefault(reg)
		pmf.SetMetrics(reg)
		defer func() {
			pmf.SetMetrics(nil)
			metrics.SetDefault(nil)
		}()
	}
	var tr *tracing.Tracer
	if *traceDest != "" || *debugAddr != "" {
		tr = tracing.NewSized(0, reg)
		tracing.SetDefault(tr)
		defer tracing.SetDefault(nil)
	}
	if *debugAddr != "" {
		prog := tracing.NewProgress()
		tracing.SetProgress(prog)
		defer tracing.SetProgress(nil)
		srv, err := tracing.StartDebug(*debugAddr, reg, prog, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "expgen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "expgen: debug endpoints on http://%s/\n", srv.Addr())
	}

	var err error
	switch {
	case *sensitivity:
		err = runSensitivity(*seed, *reps, *csv)
	case *scale:
		err = runScale(*seed, *workers, *csv)
	default:
		err = run(*table, *figure, *seed, *csv)
	}
	if err == nil {
		err = metrics.WriteTo(reg, *metricsDest)
	}
	if err == nil {
		err = tracing.WriteTo(tr, *traceDest)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "expgen:", err)
		os.Exit(1)
	}
}

func runScale(seed uint64, workers int, csv bool) error {
	cfg := experiments.DefaultScaleConfig(seed)
	cfg.Workers = workers
	t, err := experiments.RunScaleStudy(cfg)
	if err != nil {
		return err
	}
	if csv {
		return t.CSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

func runSensitivity(seed uint64, reps int, csv bool) error {
	emit := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		defer fmt.Println()
		if csv {
			return t.CSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	}
	if err := emit(experiments.GenerateGranularitySensitivity()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateDeadlineCurve()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateToleranceCurve()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateOverheadSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateCVSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateModelSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateCorrelationStudy(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateDistributionSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateProfileSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateBatchPolicyStudy(seed, 60)); err != nil {
		return err
	}
	return emit(experiments.RunExtendedTechniqueStudy(seed, reps))
}

func run(table, figure int, seed uint64, csv bool) error {
	emit := func(t *report.Table) error {
		defer fmt.Println()
		if csv {
			return t.CSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	}

	wantTable := func(n int) bool { return (table == 0 && figure == 0) || table == n }
	wantFigure := func(n int) bool { return (table == 0 && figure == 0) || figure == n }

	if wantTable(1) {
		if err := emit(experiments.GenerateTableI()); err != nil {
			return err
		}
	}
	if wantTable(2) {
		if err := emit(experiments.GenerateTableII()); err != nil {
			return err
		}
	}
	if wantTable(3) {
		if err := emit(experiments.GenerateTableIII()); err != nil {
			return err
		}
	}
	if wantTable(4) {
		t, err := experiments.GenerateTableIV()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if wantTable(5) {
		t, err := experiments.GenerateTableV()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	for n := 3; n <= 6; n++ {
		if !wantFigure(n) {
			continue
		}
		c, err := experiments.GenerateFigure(n, seed)
		if err != nil {
			return err
		}
		if err := c.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if wantTable(6) {
		t, tuple, err := experiments.GenerateTableVI(seed)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
		fmt.Printf("System robustness (rho1, rho2) = %s  [paper: (74.5%%, 30.77%%)]\n", tuple)
	}
	return nil
}

// Command expgen regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	expgen                 # everything
//	expgen -table 4        # a single table (1-6)
//	expgen -figure 5       # a single figure (3-6)
//	expgen -seed 7 -csv    # change the Stage-II seed; CSV output
//	expgen -dag            # precedence-constrained topology study
//	expgen -timeout 2m     # bound the whole generation run
//
// SIGINT/SIGTERM (and -timeout) cancel the generation; the partial run
// still flushes -metrics and -trace before exiting nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"cdsf/internal/experiments"
	"cdsf/internal/report"
	"cdsf/internal/runner"
)

func main() { runner.Main("expgen", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("expgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "regenerate only this table (1-6)")
	figure := fs.Int("figure", 0, "regenerate only this figure (3-6)")
	seed := fs.Uint64("seed", 42, "seed for the Stage-II simulations")
	csv := fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	sensitivity := fs.Bool("sensitivity", false, "emit the sensitivity/ablation studies instead of the paper tables")
	scale := fs.Bool("scale", false, "run the future-work probabilistic scale study instead of the paper tables")
	dag := fs.Bool("dag", false, "run the precedence-constrained (DAG) topology study instead of the paper tables")
	reps := fs.Int("reps", 20, "stage-II repetitions for the sensitivity studies")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// expgen drives everything through internal/experiments, which
	// builds its own configs; the process-wide default registry (and
	// likewise the default tracer and progress board) routes their
	// instrumentation here without threading a parameter through every
	// generator — rf.Run installs those defaults.
	return rf.Run(ctx, "expgen", stderr, func(ctx context.Context, s *runner.Session) error {
		switch {
		case *sensitivity:
			return runSensitivity(ctx, stdout, *seed, *reps, *csv)
		case *scale:
			return runScale(ctx, stdout, *seed, rf, s, *csv)
		case *dag:
			return runDAG(ctx, stdout, *seed, *reps, rf, *csv)
		default:
			return runTables(ctx, stdout, *table, *figure, *seed, *csv)
		}
	})
}

func runScale(ctx context.Context, stdout io.Writer, seed uint64, rf *runner.Flags, s *runner.Session, csv bool) error {
	cfg := experiments.DefaultScaleConfig(seed)
	cfg.Workers = rf.Workers
	cfg.Backend = rf.PMF
	cfg.Cache = s.Cache
	t, err := experiments.RunScaleStudyContext(ctx, cfg)
	if err != nil {
		return err
	}
	if csv {
		return t.CSV(stdout)
	}
	return t.Render(stdout)
}

func runDAG(ctx context.Context, stdout io.Writer, seed uint64, reps int, rf *runner.Flags, csv bool) error {
	cfg := experiments.DefaultDAGStudyConfig(seed)
	cfg.Reps = reps
	cfg.Workers = rf.Workers
	cfg.Backend = rf.PMF
	t, err := experiments.RunDAGStudyContext(ctx, cfg)
	if err != nil {
		return err
	}
	if csv {
		return t.CSV(stdout)
	}
	return t.Render(stdout)
}

func runSensitivity(ctx context.Context, stdout io.Writer, seed uint64, reps int, csv bool) error {
	// The individual studies predate the context plumbing; cancellation
	// is honored at study boundaries.
	emit := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		defer fmt.Fprintln(stdout)
		if csv {
			return t.CSV(stdout)
		}
		return t.Render(stdout)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := emit(experiments.GenerateGranularitySensitivity()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateDeadlineCurve()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateToleranceCurve()); err != nil {
		return err
	}
	if err := emit(experiments.GenerateOverheadSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateCVSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateModelSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateCorrelationStudy(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateDistributionSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateProfileSensitivity(seed, reps)); err != nil {
		return err
	}
	if err := emit(experiments.GenerateBatchPolicyStudy(seed, 60)); err != nil {
		return err
	}
	return emit(experiments.RunExtendedTechniqueStudy(seed, reps))
}

func runTables(ctx context.Context, stdout io.Writer, table, figure int, seed uint64, csv bool) error {
	emit := func(t *report.Table) error {
		defer fmt.Fprintln(stdout)
		if csv {
			return t.CSV(stdout)
		}
		return t.Render(stdout)
	}

	wantTable := func(n int) bool { return (table == 0 && figure == 0) || table == n }
	wantFigure := func(n int) bool { return (table == 0 && figure == 0) || figure == n }

	if wantTable(1) {
		if err := emit(experiments.GenerateTableI()); err != nil {
			return err
		}
	}
	if wantTable(2) {
		if err := emit(experiments.GenerateTableII()); err != nil {
			return err
		}
	}
	if wantTable(3) {
		if err := emit(experiments.GenerateTableIII()); err != nil {
			return err
		}
	}
	if wantTable(4) {
		t, err := experiments.GenerateTableIVContext(ctx)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if wantTable(5) {
		t, err := experiments.GenerateTableVContext(ctx)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	for n := 3; n <= 6; n++ {
		if !wantFigure(n) {
			continue
		}
		c, err := experiments.GenerateFigureContext(ctx, n, seed)
		if err != nil {
			return err
		}
		if err := c.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if wantTable(6) {
		t, tuple, err := experiments.GenerateTableVIContext(ctx, seed)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "System robustness (rho1, rho2) = %s  [paper: (74.5%%, 30.77%%)]\n", tuple)
	}
	return nil
}

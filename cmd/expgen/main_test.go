package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func runArgs(ctx context.Context, args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	err := run(ctx, args, &stdout, &stderr)
	return stdout.String(), err
}

func TestRunCheapTables(t *testing.T) {
	for _, table := range []string{"1", "2", "3"} {
		out, err := runArgs(context.Background(), "-table", table)
		if err != nil {
			t.Fatalf("-table %s: %v", table, err)
		}
		if !strings.Contains(out, "Table") {
			t.Errorf("-table %s output lacks a table:\n%s", table, out)
		}
	}
	// CSV mode changes only the rendering.
	out, err := runArgs(context.Background(), "-table", "2", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ",") {
		t.Errorf("-csv output has no commas:\n%s", out)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if _, err := runArgs(context.Background(), "-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

// A cancelled context stops the expensive generators before they emit.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, args := range [][]string{
		{"-table", "4"},
		{"-table", "6"},
		{"-figure", "3"},
		{"-scale"},
		{"-sensitivity"},
	} {
		out, err := runArgs(ctx, args...)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", args, err)
		}
		if strings.Contains(out, "Table IV") || strings.Contains(out, "Figure") {
			t.Errorf("%v: cancelled run still emitted output:\n%s", args, out)
		}
	}
}

// -timeout reaches the Stage-II fan-out through the runner.
func TestRunTimeoutCancelsGeneration(t *testing.T) {
	_, err := runArgs(context.Background(), "-table", "6", "-timeout", "1ms")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

package main

import (
	"testing"
)

func TestBuildScenarioPaper(t *testing.T) {
	for n := 1; n <= 4; n++ {
		sc, err := buildScenario(n, "", "")
		if err != nil {
			t.Fatalf("scenario %d: %v", n, err)
		}
		if sc.IM == nil || len(sc.RAS) == 0 {
			t.Errorf("scenario %d incomplete", n)
		}
	}
	if _, err := buildScenario(0, "", ""); err == nil {
		t.Error("scenario 0 accepted")
	}
	if _, err := buildScenario(5, "", ""); err == nil {
		t.Error("scenario 5 accepted")
	}
}

func TestBuildScenarioCustom(t *testing.T) {
	sc, err := buildScenario(0, "genetic", "FAC,AF")
	if err != nil {
		t.Fatal(err)
	}
	if sc.IM.Name() != "genetic" {
		t.Errorf("IM = %s", sc.IM.Name())
	}
	if len(sc.RAS) != 2 || sc.RAS[0].Name != "FAC" || sc.RAS[1].Name != "AF" {
		t.Errorf("RAS = %v", sc.RAS)
	}
	// Custom RAS with default IM.
	sc2, err := buildScenario(0, "", "STATIC")
	if err != nil {
		t.Fatal(err)
	}
	if sc2.IM.Name() != "exhaustive" {
		t.Errorf("default IM = %s", sc2.IM.Name())
	}
	if _, err := buildScenario(0, "bogus", ""); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := buildScenario(0, "greedy", "NOPE"); err == nil {
		t.Error("unknown technique accepted")
	}
}

package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func runArgs(ctx context.Context, args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	err := run(ctx, args, &stdout, &stderr)
	return stdout.String(), err
}

// A full scenario run is seconds of Stage-II simulation, so the
// end-to-end smoke uses a reduced repetition count.
func TestRunSmoke(t *testing.T) {
	out, err := runArgs(context.Background(), "-scenario", "1", "-reps", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Stage I", "Stage II", "System robustness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if _, err := runArgs(context.Background(), "-scenario", "9"); err == nil {
		t.Error("scenario 9 accepted")
	}
	if _, err := runArgs(context.Background(), "-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

// Cancellation aborts the framework run and suppresses the report.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := runArgs(ctx, "-scenario", "1", "-reps", "2")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(out, "System robustness") {
		t.Errorf("cancelled run still printed the report:\n%s", out)
	}
}

func TestRunTimeout(t *testing.T) {
	_, err := runArgs(context.Background(), "-scenario", "4", "-timeout", "1ms")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBuildScenarioPaper(t *testing.T) {
	for n := 1; n <= 4; n++ {
		sc, err := buildScenario(n, "", "")
		if err != nil {
			t.Fatalf("scenario %d: %v", n, err)
		}
		if sc.IM == nil || len(sc.RAS) == 0 {
			t.Errorf("scenario %d incomplete", n)
		}
	}
	if _, err := buildScenario(0, "", ""); err == nil {
		t.Error("scenario 0 accepted")
	}
	if _, err := buildScenario(5, "", ""); err == nil {
		t.Error("scenario 5 accepted")
	}
}

func TestBuildScenarioCustom(t *testing.T) {
	sc, err := buildScenario(0, "genetic", "FAC,AF")
	if err != nil {
		t.Fatal(err)
	}
	if sc.IM.Name() != "genetic" {
		t.Errorf("IM = %s", sc.IM.Name())
	}
	if len(sc.RAS) != 2 || sc.RAS[0].Name != "FAC" || sc.RAS[1].Name != "AF" {
		t.Errorf("RAS = %v", sc.RAS)
	}
	// Custom RAS with default IM.
	sc2, err := buildScenario(0, "", "STATIC")
	if err != nil {
		t.Fatal(err)
	}
	if sc2.IM.Name() != "exhaustive" {
		t.Errorf("default IM = %s", sc2.IM.Name())
	}
	if _, err := buildScenario(0, "bogus", ""); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := buildScenario(0, "greedy", "NOPE"); err == nil {
		t.Error("unknown technique accepted")
	}
}

// Command cdsf runs the combined dual-stage framework end to end: a
// Stage-I heuristic maps the paper's application batch onto the
// heterogeneous system, and Stage-II simulations evaluate the chosen
// DLS technique set across the runtime availability cases, reporting
// per-case execution times, the best technique per application, and the
// system robustness tuple (rho1, rho2).
//
// Usage:
//
//	cdsf                            # paper scenario 4 (robust-robust)
//	cdsf -scenario 1                # any of the paper's 4 scenarios
//	cdsf -im genetic -ras FAC,AF    # custom stage policies
//	cdsf -reps 100 -seed 7          # tighter stage-II estimates
//	cdsf -timeout 1m                # bound the whole run
//
// SIGINT/SIGTERM (and -timeout) cancel both stages; the partial run
// still flushes -metrics and -trace before exiting nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"cdsf/internal/config"
	"cdsf/internal/core"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/runner"
)

func main() { runner.Main("cdsf", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cdsf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.Int("scenario", 4, "paper scenario 1-4 (ignored when -im or -ras given)")
	im := fs.String("im", "", "stage-I heuristic (overrides -scenario)")
	ras := fs.String("ras", "", "comma-separated stage-II techniques (overrides -scenario)")
	reps := fs.Int("reps", 0, "stage-II repetitions (0: default)")
	seed := fs.Uint64("seed", 42, "stage-II seed")
	instance := fs.String("instance", "", "JSON instance file (default: the embedded paper example)")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return rf.Run(ctx, "cdsf", stderr, func(ctx context.Context, s *runner.Session) error {
		var f *core.Framework
		var cases []core.Case
		if *instance == "" {
			f = experiments.Framework()
			cases = experiments.Cases()
		} else {
			inst, err := config.LoadInstance(*instance)
			if err != nil {
				return err
			}
			sys, batch, deadline, err := config.Build(inst)
			if err != nil {
				return err
			}
			edges, err := config.BuildEdges(inst)
			if err != nil {
				return err
			}
			declared, err := config.BuildCases(inst)
			if err != nil {
				return err
			}
			f = &core.Framework{Sys: sys, Batch: batch, Deadline: deadline, Edges: edges}
			if len(declared) > 0 {
				for _, c := range declared {
					cases = append(cases, core.Case{Name: c.Name, Avail: c.Avail})
				}
			} else {
				cases = core.FallbackCases(sys)
			}
		}
		cfg := core.DefaultStageII(f.Deadline, *seed)
		cfg.PMFBackend = rf.PMF
		cfg.Metrics = s.Metrics
		cfg.Tracer = s.Tracer
		cfg.Cache = s.Cache
		if *reps > 0 {
			cfg.Reps = *reps
		}
		sc, err := buildScenario(*scenario, *im, *ras)
		if err != nil {
			return err
		}
		ra.SetWorkers(sc.IM, rf.Workers)
		res, err := f.RunScenarioContext(ctx, sc, cases, cfg)
		if err != nil {
			return err
		}

		fmt.Fprintf(stdout, "Scenario: %s\n\n", res.Scenario)
		s1 := report.NewTable("Stage I (initial mapping)",
			"App", "Proc type", "# Procs", "Pr(T<=deadline) (%)", "E[T]")
		for i, as := range res.StageI.Alloc {
			s1.AddRow(f.Batch[i].Name,
				fmt.Sprintf("%d", as.Type+1),
				fmt.Sprintf("%d", as.Procs),
				fmt.Sprintf("%.2f", res.StageI.PerApp[i]*100),
				fmt.Sprintf("%.2f", res.StageI.ExpectedTimes[i]))
		}
		if err := s1.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "phi1 = %.2f%%\n\n", res.StageI.Phi1*100)

		for _, c := range res.Cases {
			headers := []string{"App"}
			for _, o := range c.PerApp[0] {
				headers = append(headers, o.Technique)
			}
			headers = append(headers, "Best")
			t := report.NewTable(fmt.Sprintf("Stage II — %s (availability decrease %.2f%%)",
				c.Case.Name, c.Decrease*100), headers...)
			for i, outs := range c.PerApp {
				row := []string{f.Batch[i].Name}
				for _, o := range outs {
					cell := fmt.Sprintf("%.0f", o.MeanTime)
					if !o.Meets {
						cell += " (!)"
					}
					row = append(row, cell)
				}
				best := c.Best[i]
				if best == "" {
					best = "-"
				}
				row = append(row, best)
				t.AddRow(row...)
			}
			if err := t.Render(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}

		tuple := core.SystemRobustness(res)
		fmt.Fprintf(stdout, "System robustness (rho1, rho2) = %s\n", tuple)
		return nil
	})
}

// buildScenario adapts the CLI's comma-separated -ras flag to
// core.BuildScenario, the scenario resolver shared with the cdsfd
// scheduling service, so flag names and wire names cannot drift.
func buildScenario(scenario int, im, ras string) (core.Scenario, error) {
	var techs []string
	if ras != "" {
		techs = strings.Split(ras, ",")
	}
	return core.BuildScenario(scenario, im, techs)
}

// Command ratool explores Stage-I resource allocations on the paper's
// instance (or a scaled synthetic one): it runs one or all registered
// heuristics and reports the allocation, phi_1, and expected completion
// times, optionally comparing against the exhaustive optimum.
//
// Usage:
//
//	ratool                       # all heuristics on the paper instance
//	ratool -heuristic genetic    # one heuristic
//	ratool -apps 6 -type1 8 -type2 16 -deadline 3000 -seed 3
//	ratool -timeout 30s          # bound the whole run
//
// With -apps > 0 a synthetic instance is generated: applications get
// random mean execution times per type and random serial fractions.
// SIGINT/SIGTERM (and -timeout) cancel the search; the partial run
// still flushes -metrics and -trace before exiting nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"cdsf/internal/config"
	"cdsf/internal/experiments"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/rng"
	"cdsf/internal/robustness"
	"cdsf/internal/runner"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func main() { runner.Main("ratool", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ratool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	heuristic := fs.String("heuristic", "", "run only this heuristic (default: all)")
	apps := fs.Int("apps", 0, "generate a synthetic instance with this many applications (0: paper instance)")
	type1 := fs.Int("type1", 4, "processors of type 1 (synthetic instance)")
	type2 := fs.Int("type2", 8, "processors of type 2 (synthetic instance)")
	deadline := fs.Float64("deadline", experiments.Deadline, "common deadline")
	seed := fs.Uint64("seed", 1, "synthetic instance seed")
	exhaustiveRef := fs.Bool("optimum", true, "also compute the exhaustive optimum for reference")
	instance := fs.String("instance", "", "JSON instance file (overrides -apps and the paper instance)")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return rf.Run(ctx, "ratool", stderr, func(ctx context.Context, s *runner.Session) error {
		var prob *ra.Problem
		switch {
		case *instance != "":
			inst, err := config.LoadInstance(*instance)
			if err != nil {
				return err
			}
			sys, batch, d, err := config.Build(inst)
			if err != nil {
				return err
			}
			edges, err := config.BuildEdges(inst)
			if err != nil {
				return err
			}
			prob = &ra.Problem{Sys: sys, Batch: batch, Deadline: d, Edges: edges}
		case *apps > 0:
			prob = syntheticProblem(*apps, *type1, *type2, *deadline, *seed)
		default:
			f := experiments.Framework()
			prob = &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: *deadline}
		}

		prob.Backend = rf.PMF
		prob.Metrics = s.Metrics
		prob.Tracer = s.Tracer
		prob.Cache = s.Cache

		names := ra.Names()
		if *heuristic != "" {
			names = []string{*heuristic}
		} else if len(prob.Edges) > 0 {
			// Every DAG objective evaluation composes completion PMFs
			// along the edges, so the evaluation-hungry searchers
			// (exhaustive, anneal, genetic, tabu, and the portfolio
			// wrapping them) take minutes on precedence-constrained
			// instances. The default table sticks to the constructive
			// and list schedulers; any searcher still runs when named
			// explicitly via -heuristic.
			expensive := map[string]bool{
				"exhaustive": true, "anneal": true, "genetic": true,
				"tabu": true, "portfolio": true, "minimal": true,
			}
			kept := names[:0]
			for _, n := range names {
				if !expensive[n] {
					kept = append(kept, n)
				}
			}
			names = kept
			fmt.Fprintln(stderr, "ratool: DAG instance — skipping the search heuristics by default (name one with -heuristic to run it)")
		}

		// Build the evaluation table once up front; every heuristic below
		// shares it.
		if err := prob.PrecomputeContext(ctx, rf.Workers); err != nil {
			return err
		}

		var optPhi float64
		haveOpt := false
		if *exhaustiveRef {
			// A DAG objective composes completion PMFs per evaluation
			// instead of reading the table product, so the exhaustive
			// reference is only affordable on much smaller spaces.
			limit := 2_000_000
			if len(prob.Edges) > 0 {
				limit = 1_000
			}
			if n := sysmodel.CountAllocations(prob.Sys, prob.Batch); n <= limit {
				al, err := (&ra.Exhaustive{Workers: rf.Workers}).AllocateContext(ctx, prob)
				if err != nil {
					if ctxErr := ctx.Err(); ctxErr != nil {
						return err
					}
				} else {
					optPhi, _ = prob.Objective(al)
					haveOpt = true
				}
			} else {
				fmt.Fprintf(stderr, "ratool: skipping exhaustive reference (%d allocations)\n", n)
			}
		}

		headers := []string{"Heuristic", "phi1 (%)", "E[makespan]", "Allocation", "Time"}
		if haveOpt {
			headers = append(headers, "Gap to optimum (pp)")
		}
		tbl := report.NewTable(fmt.Sprintf("Stage-I heuristics (deadline %.0f, %d apps, %d procs)",
			prob.Deadline, len(prob.Batch), prob.Sys.TotalProcessors()), headers...)

		for _, name := range names {
			h, err := ra.ByName(name)
			if err != nil {
				return err
			}
			ra.SetWorkers(h, rf.Workers)
			t0 := time.Now()
			al, err := ra.SolveContext(ctx, h, prob)
			dt := time.Since(t0)
			if err != nil {
				// A cancelled search aborts the whole table; a heuristic
				// that merely failed on this instance gets an error row.
				if ctxErr := ctx.Err(); ctxErr != nil {
					return err
				}
				tbl.AddRow(name, "error: "+err.Error())
				continue
			}
			res, err := robustness.EvaluateStageIDAG(prob.Sys, prob.Batch, prob.Edges, al, prob.Deadline)
			if err != nil {
				return err
			}
			maxExp := 0.0
			for _, e := range res.ExpectedTimes {
				if e > maxExp {
					maxExp = e
				}
			}
			row := []string{
				name,
				fmt.Sprintf("%.2f", res.Phi1*100),
				fmt.Sprintf("%.0f", maxExp),
				al.String(),
				dt.Round(time.Millisecond).String(),
			}
			if haveOpt {
				row = append(row, fmt.Sprintf("%.2f", (optPhi-res.Phi1)*100))
			}
			tbl.AddRow(row...)
		}
		return tbl.Render(stdout)
	})
}

// syntheticProblem builds a random instance: mean execution times per
// type drawn log-uniformly, serial fractions in [2%, 30%].
func syntheticProblem(apps, type1, type2 int, deadline float64, seed uint64) *ra.Problem {
	r := rng.New(seed)
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: type1, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "Type 2", Count: type2, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})},
	}}
	b := make(sysmodel.Batch, apps)
	for i := range b {
		total := 512 + r.Intn(4096)
		sf := 0.02 + 0.28*r.Float64()
		serial := int(sf * float64(total))
		if serial < 1 {
			serial = 1
		}
		exec := make([]pmf.PMF, 2)
		for j := range exec {
			mu := 600 * (1 + 7*r.Float64())
			exec[j] = pmf.Discretize(stats.NewNormal(mu, mu/10), 100)
		}
		b[i] = sysmodel.Application{
			Name:          fmt.Sprintf("App %d", i+1),
			SerialIters:   serial,
			ParallelIters: total - serial,
			ExecTime:      exec,
		}
	}
	return &ra.Problem{Sys: sys, Batch: b, Deadline: deadline}
}

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"cdsf/internal/runner"
)

// helperEnv re-executes this test binary as the real ratool CLI, so the
// signal tests exercise the full runner.Exec path in a child process.
const helperEnv = "RATOOL_TEST_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		os.Exit(runner.Exec("ratool", os.Args[1:], os.Stdout, os.Stderr, run))
	}
	os.Exit(m.Run())
}

func runArgs(args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), args, &stdout, &stderr)
	return stdout.String(), err
}

func TestRunSmoke(t *testing.T) {
	out, err := runArgs("-heuristic", "greedy", "-optimum=false")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "greedy") {
		t.Errorf("output lacks heuristic row:\n%s", out)
	}
	// Synthetic instance path.
	if _, err := runArgs("-apps", "3", "-type1", "3", "-type2", "4",
		"-heuristic", "greedy", "-optimum=false", "-seed", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := runArgs("-heuristic", "nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := runArgs("-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

// A failure after the observability session is up must still write the
// -metrics and -trace outputs before the nonzero exit.
func TestRunErrorStillFlushesObservability(t *testing.T) {
	dir := t.TempDir()
	mpath, tpath := dir+"/m.json", dir+"/t.json"
	_, err := runArgs("-heuristic", "nope", "-metrics", mpath, "-trace", tpath)
	if err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	for _, path := range []string{mpath, tpath} {
		data, readErr := os.ReadFile(path)
		if readErr != nil {
			t.Fatalf("%s not written on failure: %v", path, readErr)
		}
		if !json.Valid(data) {
			t.Errorf("%s is not valid JSON: %s", path, data)
		}
	}
}

// -timeout cancels a long search with a deadline error and no table.
func TestRunTimeoutCancelsSearch(t *testing.T) {
	out, err := runArgs("-apps", "7", "-type1", "24", "-type2", "32",
		"-heuristic", "exhaustive", "-optimum=false", "-timeout", "1ms")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if strings.Contains(out, "exhaustive") {
		t.Errorf("cancelled run still printed a result table:\n%s", out)
	}
}

// Acceptance: SIGINT mid-search exits nonzero within a bounded drain
// and still flushes the -metrics output.
func TestSigintCancelsAndFlushesMetrics(t *testing.T) {
	dir := t.TempDir()
	mpath := dir + "/metrics.json"
	// A search space of ~96^9 allocations: effectively unbounded without
	// the signal. -debug-addr readiness on stderr marks "body started".
	cmd := exec.Command(os.Args[0],
		"-apps", "9", "-type1", "32", "-type2", "64",
		"-heuristic", "exhaustive", "-optimum=false",
		"-metrics", mpath, "-debug-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		var all strings.Builder
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line + "\n")
			if strings.Contains(line, "debug endpoints on") {
				select {
				case ready <- line:
				default:
				}
			}
		}
		select {
		case ready <- "EOF: " + all.String():
		default:
		}
	}()
	select {
	case line := <-ready:
		if strings.HasPrefix(line, "EOF:") {
			t.Fatalf("child exited before readiness: %s", line)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child never announced readiness")
	}

	// Let the exhaustive scan get going, then interrupt it.
	time.Sleep(200 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("wait: %v, want nonzero exit", err)
		}
		if code := exitErr.ExitCode(); code != 1 {
			t.Errorf("exit code %d, want 1", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child did not drain within 30s of SIGINT")
	}

	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("metrics not flushed after SIGINT: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flushed metrics invalid: %v\n%s", err, data)
	}
}

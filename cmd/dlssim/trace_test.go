package main

import (
	"encoding/json"
	"math"
	"os"
	"regexp"
	"testing"

	"cdsf/internal/trace"
)

// Acceptance: a seeded dlssim run with -trace writes valid Chrome Trace
// Event JSON whose per-worker simulated-time lanes account for exactly
// the busy/overhead/idle time trace.Analyze reports for the same run,
// and the run's stdout is bit-identical with tracing off or on.
func TestRunTraceAcceptance(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/out.json"
	chunksPrefix := dir + "/chunks"
	const (
		workers  = 3
		overhead = 0.5
	)
	doRun := func(traceDest string) (string, error) {
		args := []string{"-iters", "256", "-serial", "8", "-workers", "3",
			"-avail", "0.5:0.5,1:0.5", "-model", "markov", "-interval", "50",
			"-tech", "FAC", "-overhead", "0.5", "-reps", "3", "-seed", "9",
			"-chunks", chunksPrefix}
		if traceDest != "" {
			args = append(args, "-trace", traceDest)
		}
		return runArgs(args...)
	}
	plain, err := doRun("")
	if err != nil {
		t.Fatal(err)
	}
	traced, err := doRun(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("stdout differs with -trace on:\n--- off ---\n%s--- on ---\n%s", plain, traced)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("-trace output is not valid Chrome trace JSON: %v", err)
	}

	// Resolve simulated-time (pid 2) thread ids to lane names, then sum
	// the duration events per worker lane and category.
	lanes := map[int]string{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" && e.PID == 2 {
			if name, ok := e.Args["name"].(string); ok {
				lanes[e.TID] = name
			}
		}
	}
	workerLane := regexp.MustCompile(`^fac/w(\d\d)$`)
	type sums struct{ busy, overhead, idle float64 }
	perWorker := map[int]*sums{}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" || e.PID != 2 {
			continue
		}
		m := workerLane.FindStringSubmatch(lanes[e.TID])
		if m == nil {
			continue
		}
		w := int(m[1][0]-'0')*10 + int(m[1][1]-'0')
		if perWorker[w] == nil {
			perWorker[w] = &sums{}
		}
		switch e.Cat {
		case "busy":
			perWorker[w].busy += e.Dur
		case "overhead":
			perWorker[w].overhead += e.Dur
		case "idle":
			perWorker[w].idle += e.Dur
		default:
			t.Errorf("unexpected category %q on %s", e.Cat, lanes[e.TID])
		}
	}
	if len(perWorker) != workers {
		t.Fatalf("trace has %d worker lanes, want %d", len(perWorker), workers)
	}

	// The run's chunk log (written by -chunks in the same pass the trace
	// lanes come from) is the reference accounting.
	f, err := os.Open(chunksPrefix + "-fac.csv")
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(chunks, workers, overhead)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range a.Workers {
		got := perWorker[ws.Worker]
		if got == nil {
			t.Fatalf("worker %d missing from trace", ws.Worker)
		}
		if math.Abs(got.busy-ws.Busy) > 1e-9 ||
			math.Abs(got.overhead-ws.Overhead) > 1e-9 ||
			math.Abs(got.idle-ws.Idle) > 1e-9 {
			t.Errorf("worker %d lanes sum to busy %v overhead %v idle %v, Analyze says %v %v %v",
				ws.Worker, got.busy, got.overhead, got.idle, ws.Busy, ws.Overhead, ws.Idle)
		}
	}
}

// A -debug-addr run must keep stdout identical too, and its endpoints
// must be live while the process is up (exercised in internal/tracing;
// here we only check the flag path end to end).
func TestRunDebugAddrStdoutIdentical(t *testing.T) {
	doRun := func(debugAddr string) (string, error) {
		args := []string{"-iters", "64", "-serial", "4", "-workers", "2",
			"-model", "static", "-tech", "SS", "-overhead", "0.5",
			"-reps", "2", "-seed", "3"}
		if debugAddr != "" {
			args = append(args, "-debug-addr", debugAddr)
		}
		return runArgs(args...)
	}
	plain, err := doRun("")
	if err != nil {
		t.Fatal(err)
	}
	withDebug, err := doRun("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if plain != withDebug {
		t.Errorf("stdout differs with -debug-addr on:\n--- off ---\n%s--- on ---\n%s", plain, withDebug)
	}
}

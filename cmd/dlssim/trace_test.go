package main

import (
	"encoding/json"
	"math"
	"os"
	"regexp"
	"testing"

	"cdsf/internal/trace"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	collected := make(chan []byte)
	go func() {
		var out []byte
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			out = append(out, tmp[:n]...)
			if err != nil {
				collected <- out
				return
			}
		}
	}()
	runErr := fn()
	w.Close()
	out := <-collected
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(out)
}

// Acceptance: a seeded dlssim run with -trace writes valid Chrome Trace
// Event JSON whose per-worker simulated-time lanes account for exactly
// the busy/overhead/idle time trace.Analyze reports for the same run,
// and the run's stdout is bit-identical with tracing off or on.
func TestRunTraceAcceptance(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/out.json"
	chunksPrefix := dir + "/chunks"
	const (
		workers  = 3
		overhead = 0.5
	)
	doRun := func(traceDest string) error {
		return run(256, 8, workers, 1, 0.3, "normal", "flat", "0.5:0.5,1:0.5", "markov",
			50, 0.5, "FAC", overhead, 3, 9, 0, false, chunksPrefix, false, false, "", traceDest, "")
	}
	plain := captureStdout(t, func() error { return doRun("") })
	traced := captureStdout(t, func() error { return doRun(tracePath) })
	if plain != traced {
		t.Errorf("stdout differs with -trace on:\n--- off ---\n%s--- on ---\n%s", plain, traced)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("-trace output is not valid Chrome trace JSON: %v", err)
	}

	// Resolve simulated-time (pid 2) thread ids to lane names, then sum
	// the duration events per worker lane and category.
	lanes := map[int]string{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" && e.PID == 2 {
			if name, ok := e.Args["name"].(string); ok {
				lanes[e.TID] = name
			}
		}
	}
	workerLane := regexp.MustCompile(`^fac/w(\d\d)$`)
	type sums struct{ busy, overhead, idle float64 }
	perWorker := map[int]*sums{}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" || e.PID != 2 {
			continue
		}
		m := workerLane.FindStringSubmatch(lanes[e.TID])
		if m == nil {
			continue
		}
		w := int(m[1][0]-'0')*10 + int(m[1][1]-'0')
		if perWorker[w] == nil {
			perWorker[w] = &sums{}
		}
		switch e.Cat {
		case "busy":
			perWorker[w].busy += e.Dur
		case "overhead":
			perWorker[w].overhead += e.Dur
		case "idle":
			perWorker[w].idle += e.Dur
		default:
			t.Errorf("unexpected category %q on %s", e.Cat, lanes[e.TID])
		}
	}
	if len(perWorker) != workers {
		t.Fatalf("trace has %d worker lanes, want %d", len(perWorker), workers)
	}

	// The run's chunk log (written by -chunks in the same pass the trace
	// lanes come from) is the reference accounting.
	f, err := os.Open(chunksPrefix + "-fac.csv")
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(chunks, workers, overhead)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range a.Workers {
		got := perWorker[ws.Worker]
		if got == nil {
			t.Fatalf("worker %d missing from trace", ws.Worker)
		}
		if math.Abs(got.busy-ws.Busy) > 1e-9 ||
			math.Abs(got.overhead-ws.Overhead) > 1e-9 ||
			math.Abs(got.idle-ws.Idle) > 1e-9 {
			t.Errorf("worker %d lanes sum to busy %v overhead %v idle %v, Analyze says %v %v %v",
				ws.Worker, got.busy, got.overhead, got.idle, ws.Busy, ws.Overhead, ws.Idle)
		}
	}
}

// A -debug-addr run must keep stdout identical too, and its endpoints
// must be live while the process is up (exercised in internal/tracing;
// here we only check the flag path end to end).
func TestRunDebugAddrStdoutIdentical(t *testing.T) {
	doRun := func(debugAddr string) error {
		return run(64, 4, 2, 1, 0.3, "normal", "flat", "1:1", "static",
			0, 0, "SS", 0.5, 2, 3, 0, false, "", false, false, "", "", debugAddr)
	}
	plain := captureStdout(t, func() error { return doRun("") })
	withDebug := captureStdout(t, func() error { return doRun("127.0.0.1:0") })
	if plain != withDebug {
		t.Errorf("stdout differs with -debug-addr on:\n--- off ---\n%s--- on ---\n%s", plain, withDebug)
	}
}

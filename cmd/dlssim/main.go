// Command dlssim runs the Stage-II loop-scheduling simulator for one
// workload and prints per-technique makespans, chunk counts, and load
// imbalance.
//
// Usage:
//
//	dlssim -iters 4096 -serial 200 -workers 8 -mean 2.0 -cv 0.3 \
//	       -avail 0.25:0.25,0.5:0.25,1:0.5 -model markov -interval 800 \
//	       -tech FAC,WF,AWF-B,AF -reps 50 -deadline 3250
//
// The -avail flag takes a comma-separated availability PMF of
// value:probability pulses (fractions). Note -workers is the simulated
// group size, not a host worker-pool bound. The shared -cache flag is
// accepted but has no effect here: dlssim drives the chunk-level
// simulator directly and never builds the Stage-I evaluation tables or
// result documents the solve cache stores. SIGINT/SIGTERM (and
// -timeout) cancel the simulations; the partial run still flushes
// -metrics and -trace before exiting nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/report"
	"cdsf/internal/runner"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/trace"
)

func main() { runner.Main("dlssim", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dlssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	iters := fs.Int("iters", 4096, "parallel loop iterations")
	serial := fs.Int("serial", 0, "serial iterations executed on the master first")
	workers := fs.Int("workers", 8, "number of processors in the group")
	mean := fs.Float64("mean", 1.0, "mean per-iteration execution time (dedicated)")
	cv := fs.Float64("cv", 0.3, "coefficient of variation of iteration times")
	dist := fs.String("dist", "normal", "iteration-time distribution: normal, lognormal, gamma, exponential")
	profile := fs.String("profile", "flat", "iteration-cost profile: flat, increasing, decreasing, peaked, alternating")
	availSpec := fs.String("avail", "1:1", "availability PMF as value:prob,value:prob,...")
	model := fs.String("model", "markov", "availability model: static, redraw, markov")
	interval := fs.Float64("interval", 800, "availability model interval (redraw, markov)")
	persistence := fs.Float64("persistence", 0.5, "markov persistence in [0,1)")
	techs := fs.String("tech", "", "comma-separated techniques (default: all registered)")
	overhead := fs.Float64("overhead", 1, "per-chunk scheduling overhead")
	reps := fs.Int("reps", 30, "simulation repetitions per technique")
	seed := fs.Uint64("seed", 1, "base seed")
	deadline := fs.Float64("deadline", 0, "optional deadline for Pr(T<=deadline) reporting")
	gantt := fs.Bool("gantt", false, "render an ASCII Gantt chart of one run per technique")
	chunksOut := fs.String("chunks", "", "write one run's chunk log per technique to this CSV file prefix")
	hist := fs.Bool("hist", false, "render an ASCII histogram of each technique's makespan sample")
	schedule := fs.Bool("schedule", false, "print each technique's idealized dispatch schedule statistics")
	rf := runner.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return rf.Run(ctx, "dlssim", stderr, func(ctx context.Context, s *runner.Session) error {
		return simulate(ctx, s, stdout,
			*iters, *serial, *workers, *mean, *cv, *dist, *profile, *availSpec, *model,
			*interval, *persistence, *techs, *overhead, *reps, *seed, *deadline,
			*gantt, *chunksOut, *hist, *schedule, rf.PMF)
	})
}

func parseAvail(spec string) (pmf.PMF, error) {
	var pulses []pmf.Pulse
	for _, part := range strings.Split(spec, ",") {
		vp := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(vp) != 2 {
			return pmf.PMF{}, fmt.Errorf("bad pulse %q (want value:prob)", part)
		}
		v, err := strconv.ParseFloat(vp[0], 64)
		if err != nil {
			return pmf.PMF{}, fmt.Errorf("bad pulse value %q: %v", vp[0], err)
		}
		p, err := strconv.ParseFloat(vp[1], 64)
		if err != nil {
			return pmf.PMF{}, fmt.Errorf("bad pulse probability %q: %v", vp[1], err)
		}
		pulses = append(pulses, pmf.Pulse{Value: v, Prob: p})
	}
	return pmf.New(pulses)
}

func simulate(ctx context.Context, s *runner.Session, stdout io.Writer,
	iters, serial, workers int, mean, cv float64, distName, profileName, availSpec, model string,
	interval, persistence float64, techs string, overhead float64, reps int,
	seed uint64, deadline float64, gantt bool, chunksOut string, hist, schedule bool,
	backend pmf.Backend) error {

	reg, tr := s.Metrics, s.Tracer

	iterDist, err := buildDist(distName, mean, cv)
	if err != nil {
		return err
	}
	prof, err := sim.ProfileByName(profileName)
	if err != nil {
		return err
	}

	availPMF, err := parseAvail(availSpec)
	if err != nil {
		return err
	}
	var availModel availability.Model
	switch model {
	case "static":
		availModel = availability.Static{PMF: availPMF}
	case "redraw":
		availModel = availability.Redraw{PMF: availPMF, Interval: interval}
	case "markov":
		availModel = availability.Markov{PMF: availPMF, Interval: interval, Persistence: persistence}
	default:
		return fmt.Errorf("unknown availability model %q", model)
	}

	var techniques []dls.Technique
	if techs == "" {
		techniques = dls.All()
	} else {
		for _, name := range strings.Split(techs, ",") {
			t, ok := dls.Get(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown technique %q (have %s)", name, strings.Join(dls.Names(), ", "))
			}
			techniques = append(techniques, t)
		}
	}

	if schedule {
		analyses, err := dls.CompareSchedules(techniques, iters, workers, overhead, mean)
		if err != nil {
			return err
		}
		st := report.NewTable(fmt.Sprintf("Idealized dispatch schedules: %d iters, %d workers, h=%.2g",
			iters, workers, overhead),
			"Technique", "Chunks", "First", "Last", "Mean chunk", "Overhead ratio")
		for _, a := range analyses {
			st.AddRow(a.Technique,
				fmt.Sprintf("%d", a.Chunks),
				fmt.Sprintf("%d", a.FirstChunk),
				fmt.Sprintf("%d", a.LastChunk),
				fmt.Sprintf("%.1f", a.MeanChunk),
				fmt.Sprintf("%.4f", a.OverheadRatio))
		}
		if err := st.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}

	var histCharts []*report.HistogramChart
	headers := []string{"Technique", "Mean", "StdDev", "P90", "Chunks", "Imbalance"}
	if deadline > 0 {
		headers = append(headers, fmt.Sprintf("Pr(T<=%.0f)", deadline))
	}
	tbl := report.NewTable(fmt.Sprintf("dlssim: %d+%d iters, %d workers, avail %s (%s), overhead %.2g",
		serial, iters, workers, availSpec, availModel.Name(), overhead), headers...)

	for _, tech := range techniques {
		cfg := sim.Config{
			SerialIters:      serial,
			ParallelIters:    iters,
			Workers:          workers,
			IterTime:         iterDist,
			IterProfile:      prof,
			Avail:            availModel,
			Technique:        tech,
			WeightsFromAvail: true,
			BestMaster:       true,
			Overhead:         overhead,
			Seed:             seed,
			Metrics:          reg,
			Tracer:           tr,
			TraceScope:       strings.ToLower(tech.Name) + "/mc",
		}
		mcRegion := tr.Begin("dlssim", tech.Name+" x "+fmt.Sprint(reps), "montecarlo")
		sample, err := sim.RunManyContext(ctx, cfg, reps)
		mcRegion.End()
		if err != nil {
			return err
		}
		row := []string{
			tech.Name,
			fmt.Sprintf("%.1f", sample.Mean()),
			fmt.Sprintf("%.1f", sample.StdDev()),
			fmt.Sprintf("%.1f", sample.Quantile(0.9)),
			fmt.Sprintf("%.1f", sample.MeanChunks),
			fmt.Sprintf("%.3f", sample.MeanImbalance),
		}
		if deadline > 0 {
			prle := sample.PrLE(deadline)
			if backend.IsGrid() {
				// The grid backend answers the deadline probability off a
				// quantized completion distribution instead of the exact
				// order statistic, matching Stage I's -pmf=grid estimates.
				d, err := sample.Distribution(backend, 64)
				if err != nil {
					return err
				}
				prle = d.PrLE(deadline)
				if g, ok := d.(*pmf.Grid); ok {
					g.Release()
				}
			}
			row = append(row, fmt.Sprintf("%.2f", prle))
		}
		tbl.AddRow(row...)
		if hist {
			h := report.NewHistogramChart(fmt.Sprintf("\n%s makespan distribution (%d runs)", tech.Name, reps), sample.Makespans)
			h.MarkLabel = "deadline"
			h.MarkValue = deadline
			histCharts = append(histCharts, h)
		}
	}
	if err := tbl.Render(stdout); err != nil {
		return err
	}
	for _, h := range histCharts {
		if err := h.Render(stdout); err != nil {
			return err
		}
	}
	// The chunk-level pass also runs when metrics or a trace are
	// requested, so the per-worker summaries land in the -metrics
	// output and the per-worker simulated-time lanes in the -trace
	// output.
	if !gantt && chunksOut == "" && reg == nil && tr == nil {
		return nil
	}
	for _, tech := range techniques {
		cfg := sim.Config{
			SerialIters:      serial,
			ParallelIters:    iters,
			Workers:          workers,
			IterTime:         iterDist,
			IterProfile:      prof,
			Avail:            availModel,
			Technique:        tech,
			WeightsFromAvail: true,
			BestMaster:       true,
			Overhead:         overhead,
			Seed:             seed,
			CollectChunks:    true,
			Metrics:          reg,
			Tracer:           tr,
			TraceScope:       strings.ToLower(tech.Name),
		}
		r, err := sim.RunContext(ctx, cfg)
		if err != nil {
			return err
		}
		if chunksOut != "" {
			path := fmt.Sprintf("%s-%s.csv", chunksOut, strings.ToLower(tech.Name))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := trace.WriteCSV(f, r.Chunks); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
		if !gantt && reg == nil {
			continue
		}
		a, err := trace.Analyze(r.Chunks, workers, overhead)
		if err != nil {
			return err
		}
		a.Record(reg, "trace."+strings.ToLower(tech.Name))
		if !gantt {
			continue
		}
		g := trace.BuildGantt(fmt.Sprintf("\n%s: one run, makespan %.1f, %d chunks, mean chunk %.1f, busy efficiency %.0f%%",
			tech.Name, r.Makespan, r.NumChunks, a.MeanChunkSize, a.BusyEfficiency*100), r.Chunks, workers, overhead)
		if err := g.Render(stdout); err != nil {
			return err
		}
	}
	return nil
}

// buildDist constructs the iteration-time distribution from its family
// name, mean, and coefficient of variation.
func buildDist(name string, mean, cv float64) (stats.Dist, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("non-positive mean %v", mean)
	}
	switch name {
	case "normal":
		if cv <= 0 {
			return nil, fmt.Errorf("normal distribution needs cv > 0, got %v", cv)
		}
		return stats.NewNormal(mean, cv*mean), nil
	case "lognormal":
		if cv <= 0 {
			return nil, fmt.Errorf("lognormal distribution needs cv > 0, got %v", cv)
		}
		return stats.LogNormalFromMoments(mean, cv*mean), nil
	case "gamma":
		if cv <= 0 {
			return nil, fmt.Errorf("gamma distribution needs cv > 0, got %v", cv)
		}
		return stats.GammaFromMoments(mean, cv*mean), nil
	case "exponential":
		return stats.NewExponential(1 / mean), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q (want normal, lognormal, gamma, exponential)", name)
	}
}

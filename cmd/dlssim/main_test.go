package main

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

func TestParseAvail(t *testing.T) {
	p, err := parseAvail("0.25:0.25,0.5:0.25,1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if math.Abs(p.Mean()-0.6875) > 1e-12 {
		t.Errorf("mean = %v", p.Mean())
	}
	for _, bad := range []string{
		"", "1", "x:1", "1:y", "1:0,2:0", "0.5:0.5,:0.5",
	} {
		if _, err := parseAvail(bad); err == nil {
			t.Errorf("parseAvail(%q) accepted", bad)
		}
	}
}

func TestBuildDist(t *testing.T) {
	for _, name := range []string{"normal", "lognormal", "gamma"} {
		d, err := buildDist(name, 10, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(d.Mean()-10) > 1e-9 {
			t.Errorf("%s mean = %v", name, d.Mean())
		}
		if math.Abs(math.Sqrt(d.Var())-3) > 1e-9 {
			t.Errorf("%s stddev = %v", name, math.Sqrt(d.Var()))
		}
	}
	e, err := buildDist("exponential", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-10) > 1e-9 {
		t.Errorf("exponential mean = %v", e.Mean())
	}
	if _, err := buildDist("weibull", 10, 0.3); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := buildDist("normal", -1, 0.3); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := buildDist("normal", 10, 0); err == nil {
		t.Error("zero cv accepted for normal")
	}
}

func TestRunSmoke(t *testing.T) {
	// End-to-end through the CLI logic with tiny parameters.
	err := run(64, 8, 2, 1, 0.3, "normal", "flat", "0.5:0.5,1:0.5", "markov",
		50, 0.5, "FAC,AF", 0.5, 3, 1, 100, false, "", true, true, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(64, 0, 2, 1, 0.3, "gamma", "peaked", "1:1", "static",
		0, 0, "SS", 0, 2, 1, 0, true, "", false, false, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(64, 0, 2, 1, 0.3, "normal", "flat", "1:1", "bogus",
		0, 0, "", 0, 2, 1, 0, false, "", false, false, "", "", ""); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(64, 0, 2, 1, 0.3, "normal", "flat", "1:1", "static",
		0, 0, "NOPE", 0, 2, 1, 0, false, "", false, false, "", "", ""); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestRunMetricsOutput(t *testing.T) {
	// A -metrics run writes a JSON metrics file with populated sim and
	// trace sections.
	path := t.TempDir() + "/metrics.json"
	if err := run(64, 4, 2, 1, 0.3, "normal", "flat", "0.5:0.5,1:0.5", "markov",
		50, 0.5, "FAC", 0.5, 3, 1, 0, false, "", false, false, path, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file not valid JSON: %v\n%s", err, data)
	}
	if snap.Counters["sim.runs"] == 0 {
		t.Errorf("sim.runs missing from metrics: %v", snap.Counters)
	}
	if snap.Counters["trace.fac.chunks"] == 0 {
		t.Errorf("trace summary missing from metrics: %v", snap.Counters)
	}
}

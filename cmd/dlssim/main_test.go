package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
)

// runArgs invokes the CLI entry point with the given argument list and
// returns its stdout.
func runArgs(args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), args, &stdout, &stderr)
	return stdout.String(), err
}

func TestParseAvail(t *testing.T) {
	p, err := parseAvail("0.25:0.25,0.5:0.25,1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if math.Abs(p.Mean()-0.6875) > 1e-12 {
		t.Errorf("mean = %v", p.Mean())
	}
	for _, bad := range []string{
		"", "1", "x:1", "1:y", "1:0,2:0", "0.5:0.5,:0.5",
	} {
		if _, err := parseAvail(bad); err == nil {
			t.Errorf("parseAvail(%q) accepted", bad)
		}
	}
}

func TestBuildDist(t *testing.T) {
	for _, name := range []string{"normal", "lognormal", "gamma"} {
		d, err := buildDist(name, 10, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(d.Mean()-10) > 1e-9 {
			t.Errorf("%s mean = %v", name, d.Mean())
		}
		if math.Abs(math.Sqrt(d.Var())-3) > 1e-9 {
			t.Errorf("%s stddev = %v", name, math.Sqrt(d.Var()))
		}
	}
	e, err := buildDist("exponential", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-10) > 1e-9 {
		t.Errorf("exponential mean = %v", e.Mean())
	}
	if _, err := buildDist("weibull", 10, 0.3); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := buildDist("normal", -1, 0.3); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := buildDist("normal", 10, 0); err == nil {
		t.Error("zero cv accepted for normal")
	}
}

func TestRunSmoke(t *testing.T) {
	// End-to-end through the CLI logic with tiny parameters.
	_, err := runArgs("-iters", "64", "-serial", "8", "-workers", "2",
		"-avail", "0.5:0.5,1:0.5", "-model", "markov", "-interval", "50",
		"-tech", "FAC,AF", "-overhead", "0.5", "-reps", "3",
		"-deadline", "100", "-hist", "-schedule")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runArgs("-iters", "64", "-workers", "2", "-dist", "gamma",
		"-profile", "peaked", "-model", "static", "-tech", "SS",
		"-overhead", "0", "-reps", "2", "-gantt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runArgs("-iters", "64", "-workers", "2", "-model", "bogus",
		"-reps", "2"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := runArgs("-iters", "64", "-workers", "2", "-model", "static",
		"-tech", "NOPE", "-reps", "2"); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, err := runArgs("-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMetricsOutput(t *testing.T) {
	// A -metrics run writes a JSON metrics file with populated sim and
	// trace sections.
	path := t.TempDir() + "/metrics.json"
	if _, err := runArgs("-iters", "64", "-serial", "4", "-workers", "2",
		"-avail", "0.5:0.5,1:0.5", "-model", "markov", "-interval", "50",
		"-tech", "FAC", "-overhead", "0.5", "-reps", "3",
		"-metrics", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file not valid JSON: %v\n%s", err, data)
	}
	if snap.Counters["sim.runs"] == 0 {
		t.Errorf("sim.runs missing from metrics: %v", snap.Counters)
	}
	if snap.Counters["trace.fac.chunks"] == 0 {
		t.Errorf("trace summary missing from metrics: %v", snap.Counters)
	}
}

// Command batchsim simulates the Stage-I operational substrate: a
// stream of application instances arriving at a resource manager that
// groups them into batches, allocates each batch with a Stage-I
// heuristic, and executes batch after batch — either with the analytic
// Stage-I estimate or the full Stage-II simulator.
//
// Usage:
//
//	batchsim -jobs 100 -rate 0.003 -heuristic greedy -deadline 3250
//	batchsim -executor sim -tech AF -reps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cdsf/internal/batch"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/stats"
	"cdsf/internal/tracing"
)

func main() {
	jobs := flag.Int("jobs", 60, "number of application arrivals to simulate")
	rate := flag.Float64("rate", 1.0/1000, "arrival rate (jobs per time unit; Poisson)")
	heuristic := flag.String("heuristic", "greedy", "stage-I heuristic for each batch")
	deadline := flag.Float64("deadline", experiments.Deadline, "per-batch deadline")
	maxBatch := flag.Int("maxbatch", 3, "maximum applications per batch (0: unbounded)")
	executor := flag.String("executor", "expected", "batch executor: expected | sim")
	tech := flag.String("tech", "AF", "DLS technique for the sim executor")
	reps := flag.Int("reps", 10, "sim-executor repetitions per application")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size for the Stage-I heuristic (results are identical for any value)")
	metricsDest := flag.String("metrics", "", `collect runtime metrics and write them to this destination: "-" or "json" for JSON on stdout, "csv" for CSV on stdout, or a file path (.csv for CSV, JSON otherwise)`)
	traceDest := flag.String("trace", "", `record span timelines and write Chrome Trace Event JSON (chrome://tracing, Perfetto) to this destination: "-" for stdout or a file path`)
	debugAddr := flag.String("debug-addr", "", `serve live debug endpoints (/debug/pprof/*, /metrics, /progress, /trace) on this address, e.g. ":6060"`)
	flag.Parse()

	if err := run(*jobs, *rate, *heuristic, *deadline, *maxBatch, *executor, *tech, *reps, *seed, *workers, *metricsDest, *traceDest, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "batchsim:", err)
		os.Exit(1)
	}
}

func run(jobs int, rate float64, heuristic string, deadline float64, maxBatch int,
	executor, tech string, reps int, seed uint64, workers int, metricsDest, traceDest, debugAddr string) error {

	var reg *metrics.Registry
	if metricsDest != "" || debugAddr != "" {
		reg = metrics.NewRegistry()
		metrics.SetDefault(reg)
		pmf.SetMetrics(reg)
		defer func() {
			pmf.SetMetrics(nil)
			metrics.SetDefault(nil)
		}()
	}
	var tr *tracing.Tracer
	if traceDest != "" || debugAddr != "" {
		tr = tracing.NewSized(0, reg)
		tracing.SetDefault(tr)
		defer tracing.SetDefault(nil)
	}
	if debugAddr != "" {
		prog := tracing.NewProgress()
		tracing.SetProgress(prog)
		defer tracing.SetProgress(nil)
		srv, err := tracing.StartDebug(debugAddr, reg, prog, tr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "batchsim: debug endpoints on http://%s/\n", srv.Addr())
	}

	h, ok := ra.Get(heuristic)
	if !ok {
		return fmt.Errorf("unknown heuristic %q (have %s)", heuristic, strings.Join(ra.Names(), ", "))
	}
	ra.SetWorkers(h, workers)
	if rate <= 0 {
		return fmt.Errorf("non-positive arrival rate %v", rate)
	}

	cfg := batch.Config{
		Sys: experiments.ReferenceSystem(),
		Arrivals: batch.ArrivalProcess{
			Interarrival: stats.NewExponential(rate),
			Templates:    experiments.PaperBatch(experiments.DefaultPulses),
		},
		Heuristic: h,
		Deadline:  deadline,
		MaxBatch:  maxBatch,
		Jobs:      jobs,
		Seed:      seed,
	}
	switch executor {
	case "expected":
		// Default analytic executor.
	case "sim":
		dt, ok := dls.Get(tech)
		if !ok {
			return fmt.Errorf("unknown technique %q (have %s)", tech, strings.Join(dls.Names(), ", "))
		}
		simCfg := core.DefaultStageII(deadline, seed)
		simCfg.Reps = reps
		simCfg.Metrics = reg
		simCfg.Tracer = tr
		cfg.Executor = core.SimExecutor{Technique: dt, Config: simCfg}
	default:
		return fmt.Errorf("unknown executor %q (want expected or sim)", executor)
	}

	res, err := batch.Run(cfg)
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("batchsim: %d jobs, rate %g, heuristic %s, executor %s", jobs, rate, heuristic, executor),
		"Batch", "Jobs", "Start", "Makespan", "phi1 (%)", "Met deadline")
	for _, b := range res.Batches {
		t.AddRow(
			fmt.Sprintf("%d", b.Index),
			fmt.Sprintf("%d", b.Jobs),
			fmt.Sprintf("%.0f", b.Start),
			fmt.Sprintf("%.0f", b.Makespan),
			fmt.Sprintf("%.1f", b.Phi1*100),
			fmt.Sprintf("%v", b.MetDeadline))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\njobs %d  batches %d  mean batch size %.2f  mean wait %.0f  deadline rate %.0f%%  total %.0f\n",
		len(res.Jobs), len(res.Batches), res.MeanBatchSize, res.MeanWait,
		res.DeadlineRate*100, res.MakespanTotal)
	if err := metrics.WriteTo(reg, metricsDest); err != nil {
		return err
	}
	return tracing.WriteTo(tr, traceDest)
}

// Command batchsim simulates the Stage-I operational substrate: a
// stream of application instances arriving at a resource manager that
// groups them into batches, allocates each batch with a Stage-I
// heuristic, and executes batch after batch — either with the analytic
// Stage-I estimate or the full Stage-II simulator.
//
// Usage:
//
//	batchsim -jobs 100 -rate 0.003 -heuristic greedy -deadline 3250
//	batchsim -executor sim -tech AF -reps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cdsf/internal/batch"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/stats"
)

func main() {
	jobs := flag.Int("jobs", 60, "number of application arrivals to simulate")
	rate := flag.Float64("rate", 1.0/1000, "arrival rate (jobs per time unit; Poisson)")
	heuristic := flag.String("heuristic", "greedy", "stage-I heuristic for each batch")
	deadline := flag.Float64("deadline", experiments.Deadline, "per-batch deadline")
	maxBatch := flag.Int("maxbatch", 3, "maximum applications per batch (0: unbounded)")
	executor := flag.String("executor", "expected", "batch executor: expected | sim")
	tech := flag.String("tech", "AF", "DLS technique for the sim executor")
	reps := flag.Int("reps", 10, "sim-executor repetitions per application")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size for the Stage-I heuristic (results are identical for any value)")
	metricsDest := flag.String("metrics", "", `collect runtime metrics and write them to this destination: "-" or "json" for JSON on stdout, "csv" for CSV on stdout, or a file path (.csv for CSV, JSON otherwise)`)
	flag.Parse()

	if err := run(*jobs, *rate, *heuristic, *deadline, *maxBatch, *executor, *tech, *reps, *seed, *workers, *metricsDest); err != nil {
		fmt.Fprintln(os.Stderr, "batchsim:", err)
		os.Exit(1)
	}
}

func run(jobs int, rate float64, heuristic string, deadline float64, maxBatch int,
	executor, tech string, reps int, seed uint64, workers int, metricsDest string) error {

	var reg *metrics.Registry
	if metricsDest != "" {
		reg = metrics.NewRegistry()
		metrics.SetDefault(reg)
		pmf.SetMetrics(reg)
		defer func() {
			pmf.SetMetrics(nil)
			metrics.SetDefault(nil)
		}()
	}

	h, ok := ra.Get(heuristic)
	if !ok {
		return fmt.Errorf("unknown heuristic %q (have %s)", heuristic, strings.Join(ra.Names(), ", "))
	}
	ra.SetWorkers(h, workers)
	if rate <= 0 {
		return fmt.Errorf("non-positive arrival rate %v", rate)
	}

	cfg := batch.Config{
		Sys: experiments.ReferenceSystem(),
		Arrivals: batch.ArrivalProcess{
			Interarrival: stats.NewExponential(rate),
			Templates:    experiments.PaperBatch(experiments.DefaultPulses),
		},
		Heuristic: h,
		Deadline:  deadline,
		MaxBatch:  maxBatch,
		Jobs:      jobs,
		Seed:      seed,
	}
	switch executor {
	case "expected":
		// Default analytic executor.
	case "sim":
		dt, ok := dls.Get(tech)
		if !ok {
			return fmt.Errorf("unknown technique %q (have %s)", tech, strings.Join(dls.Names(), ", "))
		}
		simCfg := core.DefaultStageII(deadline, seed)
		simCfg.Reps = reps
		simCfg.Metrics = reg
		cfg.Executor = core.SimExecutor{Technique: dt, Config: simCfg}
	default:
		return fmt.Errorf("unknown executor %q (want expected or sim)", executor)
	}

	res, err := batch.Run(cfg)
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("batchsim: %d jobs, rate %g, heuristic %s, executor %s", jobs, rate, heuristic, executor),
		"Batch", "Jobs", "Start", "Makespan", "phi1 (%)", "Met deadline")
	for _, b := range res.Batches {
		t.AddRow(
			fmt.Sprintf("%d", b.Index),
			fmt.Sprintf("%d", b.Jobs),
			fmt.Sprintf("%.0f", b.Start),
			fmt.Sprintf("%.0f", b.Makespan),
			fmt.Sprintf("%.1f", b.Phi1*100),
			fmt.Sprintf("%v", b.MetDeadline))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\njobs %d  batches %d  mean batch size %.2f  mean wait %.0f  deadline rate %.0f%%  total %.0f\n",
		len(res.Jobs), len(res.Batches), res.MeanBatchSize, res.MeanWait,
		res.DeadlineRate*100, res.MakespanTotal)
	return metrics.WriteTo(reg, metricsDest)
}

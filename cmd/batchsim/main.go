// Command batchsim simulates the Stage-I operational substrate: a
// stream of application instances arriving at a resource manager that
// groups them into batches, allocates each batch with a Stage-I
// heuristic, and executes batch after batch — either with the analytic
// Stage-I estimate or the full Stage-II simulator.
//
// Usage:
//
//	batchsim -jobs 100 -rate 0.003 -heuristic greedy -deadline 3250
//	batchsim -executor sim -tech AF -reps 10
//	batchsim -timeout 1m
//
// SIGINT/SIGTERM (and -timeout) cancel the batch stream between jobs;
// the partial run still flushes -metrics and -trace before exiting
// nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"cdsf/internal/batch"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/runner"
	"cdsf/internal/stats"
)

func main() { runner.Main("batchsim", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 60, "number of application arrivals to simulate")
	rate := fs.Float64("rate", 1.0/1000, "arrival rate (jobs per time unit; Poisson)")
	heuristic := fs.String("heuristic", "greedy", "stage-I heuristic for each batch")
	deadline := fs.Float64("deadline", experiments.Deadline, "per-batch deadline")
	maxBatch := fs.Int("maxbatch", 3, "maximum applications per batch (0: unbounded)")
	executor := fs.String("executor", "expected", "batch executor: expected | sim")
	tech := fs.String("tech", "AF", "DLS technique for the sim executor")
	reps := fs.Int("reps", 10, "sim-executor repetitions per application")
	seed := fs.Uint64("seed", 1, "simulation seed")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return rf.Run(ctx, "batchsim", stderr, func(ctx context.Context, s *runner.Session) error {
		h, err := ra.ByName(*heuristic)
		if err != nil {
			return err
		}
		ra.SetWorkers(h, rf.Workers)
		if *rate <= 0 {
			return fmt.Errorf("non-positive arrival rate %v", *rate)
		}

		cfg := batch.Config{
			Sys: experiments.ReferenceSystem(),
			Arrivals: batch.ArrivalProcess{
				Interarrival: stats.NewExponential(*rate),
				Templates:    experiments.PaperBatch(experiments.DefaultPulses),
			},
			Heuristic: h,
			Deadline:  *deadline,
			MaxBatch:  *maxBatch,
			Jobs:      *jobs,
			Seed:      *seed,
			Backend:   rf.PMF,
			Cache:     s.Cache,
		}
		switch *executor {
		case "expected":
			// Default analytic executor.
		case "sim":
			dt, ok := dls.Get(*tech)
			if !ok {
				return fmt.Errorf("unknown technique %q (have %s)", *tech, strings.Join(dls.Names(), ", "))
			}
			simCfg := core.DefaultStageII(*deadline, *seed)
			simCfg.PMFBackend = rf.PMF
			simCfg.Reps = *reps
			simCfg.Metrics = s.Metrics
			simCfg.Tracer = s.Tracer
			simCfg.Cache = s.Cache
			cfg.Executor = core.SimExecutor{Technique: dt, Config: simCfg}
		default:
			return fmt.Errorf("unknown executor %q (want expected or sim)", *executor)
		}

		res, err := batch.RunContext(ctx, cfg)
		if err != nil {
			return err
		}

		t := report.NewTable(
			fmt.Sprintf("batchsim: %d jobs, rate %g, heuristic %s, executor %s", *jobs, *rate, *heuristic, *executor),
			"Batch", "Jobs", "Start", "Makespan", "phi1 (%)", "Met deadline")
		for _, b := range res.Batches {
			t.AddRow(
				fmt.Sprintf("%d", b.Index),
				fmt.Sprintf("%d", b.Jobs),
				fmt.Sprintf("%.0f", b.Start),
				fmt.Sprintf("%.0f", b.Makespan),
				fmt.Sprintf("%.1f", b.Phi1*100),
				fmt.Sprintf("%v", b.MetDeadline))
		}
		if err := t.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\njobs %d  batches %d  mean batch size %.2f  mean wait %.0f  deadline rate %.0f%%  total %.0f\n",
			len(res.Jobs), len(res.Batches), res.MeanBatchSize, res.MeanWait,
			res.DeadlineRate*100, res.MakespanTotal)
		return nil
	})
}

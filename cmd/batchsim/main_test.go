package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func runArgs(ctx context.Context, args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	err := run(ctx, args, &stdout, &stderr)
	return stdout.String(), err
}

func TestRunSmoke(t *testing.T) {
	out, err := runArgs(context.Background(), "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "batchsim: 8 jobs") || !strings.Contains(out, "deadline rate") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if _, err := runArgs(context.Background(), "-heuristic", "nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := runArgs(context.Background(), "-executor", "nope"); err == nil {
		t.Error("unknown executor accepted")
	}
	if _, err := runArgs(context.Background(), "-executor", "sim", "-tech", "NOPE"); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, err := runArgs(context.Background(), "-rate", "0"); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := runArgs(context.Background(), "-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

// Cancellation stops the batch stream with a partial-progress error and
// no report.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := runArgs(ctx, "-jobs", "8")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(out, "deadline rate") {
		t.Errorf("cancelled run still printed the report:\n%s", out)
	}
}

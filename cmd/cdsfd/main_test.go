package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/runner"
)

// helperEnv re-executes this test binary as the real cdsfd daemon, so
// the signal tests exercise the full runner.Exec path in a child
// process. startDaemon/submitJob below are shared with the crash-
// recovery and cluster tests in cluster_test.go, which kill -9 these
// child daemons.
const helperEnv = "CDSFD_TEST_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		os.Exit(runner.Exec("cdsfd", os.Args[1:], os.Stdout, os.Stderr, run))
	}
	os.Exit(m.Run())
}

func TestRunFlagAndListenErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:0"}, &stdout, &stderr); err == nil {
		t.Error("unlistenable address accepted")
	}
}

func TestRunTimeoutStopsServing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-timeout", "50ms"}, &stdout, &stderr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// startDaemon launches the daemon subprocess and waits for its
// readiness line, returning the base URL and the stderr collector.
func startDaemon(t *testing.T, extraArgs ...string) (*exec.Cmd, string, *strings.Builder) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	ready := make(chan string, 1)
	all := &strings.Builder{}
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line + "\n")
			if strings.Contains(line, "job API on http://") {
				select {
				case ready <- line:
				default:
				}
			}
		}
		select {
		case ready <- "EOF":
		default:
		}
	}()
	select {
	case line := <-ready:
		if line == "EOF" {
			t.Fatalf("daemon exited before readiness:\n%s", all.String())
		}
		base := "http://" + strings.TrimSuffix(line[strings.Index(line, "http://")+len("http://"):], "/")
		return cmd, base, all
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never announced readiness")
		return nil, "", nil
	}
}

// submitJob posts a request and returns the accepted job id.
func submitJob(t *testing.T, base, path string, req any) string {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	var j api.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j.ID
}

// pollState fetches one job's state over HTTP.
func pollState(t *testing.T, base, id string) api.JobState {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j api.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j.State
}

// TestEndToEndOverHTTP drives a real daemon subprocess through a full
// job lifecycle and a clean SIGTERM shutdown with nothing running.
func TestEndToEndOverHTTP(t *testing.T) {
	cmd, base, _ := startDaemon(t)

	id := submitJob(t, base, "/v1/solve", api.SolveRequest{Heuristic: "greedy"})
	deadline := time.Now().Add(30 * time.Second)
	for pollState(t, base, id) != api.JobDone {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("wait: %v, want exit code 1", err)
	}
}

// Acceptance: SIGTERM with a job running drains within -drain-timeout —
// the running job's context is cancelled, the process exits nonzero,
// and the -metrics output is still flushed with the job counters.
func TestSigtermDrainsAndFlushesMetrics(t *testing.T) {
	dir := t.TempDir()
	mpath := dir + "/metrics.json"
	cmd, base, stderrLog := startDaemon(t,
		"-metrics", mpath, "-drain-timeout", "2s", "-executors", "1", "-queue", "4")

	// An effectively unbounded job: millions of repetitions.
	id := submitJob(t, base, "/v1/simulate", api.SimulateRequest{
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Reps:       2_000_000,
	})
	deadline := time.Now().Add(30 * time.Second)
	for pollState(t, base, id) != api.JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("wait: %v, want nonzero exit", err)
		}
		if code := exitErr.ExitCode(); code != 1 {
			t.Errorf("exit code %d, want 1\nstderr:\n%s", code, stderrLog.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
	// -drain-timeout was 2s; the exit must come shortly after (engine
	// teardown and the flush add a little, bounded well under the 30s
	// hard limit above).
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("drain took %v with a 2s -drain-timeout", elapsed)
	}

	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("metrics not flushed after SIGTERM: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flushed metrics invalid: %v\n%s", err, data)
	}
	if snap.Counters["server.jobs_submitted"] < 1 {
		t.Errorf("flushed metrics lack job counters: %+v", snap.Counters)
	}
	if snap.Counters["server.jobs_cancelled"] < 1 {
		t.Errorf("running job not recorded as cancelled: %+v", snap.Counters)
	}
}

// TestSmokeSSE is the end-to-end smoke for the event journal: a real
// daemon subprocess (with -log) serves a seeded solve job's complete
// lifecycle as an SSE stream, with ascending sequence ids ending at
// the terminal event. Run on its own with `make smoke-sse`.
func TestSmokeSSE(t *testing.T) {
	dir := t.TempDir()
	lpath := dir + "/cdsfd.log"
	cmd, base, _ := startDaemon(t, "-log", lpath, "-log-level", "debug")

	id := submitJob(t, base, "/v1/solve", api.SolveRequest{Heuristic: "greedy"})

	// Follow from the start: replay whatever already happened, then
	// stream live until the journal closes at the terminal event.
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("follow content type %q", ct)
	}
	var ids []int64
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			ids = append(ids, n)
		case strings.HasPrefix(line, "event: "):
			types = append(types, strings.TrimPrefix(line, "event: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	if len(ids) == 0 || len(ids) != len(types) {
		t.Fatalf("stream had %d ids and %d event types", len(ids), len(types))
	}
	for i, n := range ids {
		if n != int64(i)+1 {
			t.Fatalf("SSE ids %v, want 1..%d ascending", ids, len(ids))
		}
	}
	for i, want := range []string{"accepted", "queued", "started"} {
		if types[i] != want {
			t.Fatalf("stream opens %v, want accepted/queued/started", types[:3])
		}
	}
	if last := types[len(types)-1]; last != "done" {
		t.Fatalf("stream ended on %q, want done (all types: %v)", last, types)
	}
	if pollState(t, base, id) != api.JobDone {
		t.Error("job not done after its SSE stream finished")
	}

	// Clean shutdown, then the -log file must exist with JSON lines
	// covering the job lifecycle.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	data, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatalf("-log file not written: %v", err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("log line is not valid JSON: %q", line)
		}
	}
	for _, want := range []string{"job accepted", "job started", "job done"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("log missing %q:\n%s", want, data)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"syscall"
	"testing"
	"time"

	"cdsf/internal/api"
)

// This file holds the multi-process acceptance tests for the WAL store
// and worker mode: kill -9 crash recovery with bit-identical replayed
// results, and a coordinator + 2 workers cluster that solves a seeded
// batch byte-identically to a single process and absorbs a killed
// worker's leased jobs. TestSmokeCluster doubles as the
// `make smoke-cluster` target.

// getJSON fetches a URL and decodes the body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// pollJob fetches one job's full envelope.
func pollJob(t *testing.T, base, id string) api.Job {
	t.Helper()
	var j api.Job
	getJSON(t, base+"/v1/jobs/"+id, &j)
	return j
}

// waitJob polls until the job reaches want, failing fast on any other
// terminal state.
func waitJob(t *testing.T, base, id string, want api.JobState, timeout time.Duration) api.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j := pollJob(t, base, id)
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s within %s", id, want, timeout)
	return api.Job{}
}

// seededSimulate is a deterministic Stage-II job slow enough (~seconds)
// to be caught mid-run by a kill.
func seededSimulate(reps int) api.SimulateRequest {
	return api.SimulateRequest{
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Reps:       reps,
		Seed:       42,
	}
}

func TestWorkerFlagRequiresCoordinator(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-worker", "w1"}, &stdout, &stderr); err == nil {
		t.Error("-worker without -coordinator accepted")
	}
}

// TestCrashRecoveryBitIdentical is the kill -9 acceptance test: a
// SIGKILL mid-job loses no accepted work, and the restarted daemon
// replays the journal and re-runs the seeded job to exactly the bytes
// an uninterrupted run produces.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	storeDir := t.TempDir()
	req := seededSimulate(30_000)

	// First life: accept the job, catch it mid-run, kill -9.
	cmdA, baseA, _ := startDaemon(t, "-store", storeDir, "-executors", "1")
	id := submitJob(t, baseA, "/v1/simulate", req)
	waitJob(t, baseA, id, api.JobRunning, 30*time.Second)
	if err := cmdA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmdA.Wait()

	// Second life: the journal replays, the interrupted job re-enqueues
	// under its own id and runs to completion.
	_, baseB, _ := startDaemon(t, "-store", storeDir)
	recovered := waitJob(t, baseB, id, api.JobDone, 120*time.Second)

	var h api.Health
	getJSON(t, baseB+"/v1/healthz", &h)
	if h.Store == nil || h.Store.Backend != "wal" || h.Store.RecoveredJobs != 1 {
		t.Errorf("restarted healthz store block: %+v", h.Store)
	}
	var l api.JobList
	getJSON(t, baseB+"/v1/jobs", &l)
	if l.Total != 1 {
		t.Errorf("restarted daemon lists %d jobs, want the 1 accepted before the kill", l.Total)
	}

	// Uninterrupted baseline on a fresh storeless daemon: the replayed
	// result must match byte for byte.
	_, baseC, _ := startDaemon(t)
	refID := submitJob(t, baseC, "/v1/simulate", req)
	ref := waitJob(t, baseC, refID, api.JobDone, 120*time.Second)
	if string(recovered.Result) != string(ref.Result) {
		t.Errorf("recovered result differs from uninterrupted run (%d vs %d bytes)",
			len(recovered.Result), len(ref.Result))
	}
}

// TestSmokeCluster is the end-to-end worker-mode smoke (run on its own
// with `make smoke-cluster`): a coordinator and two worker daemons
// solve a seeded batch byte-identically to a single process, and the
// surviving worker absorbs a job leased to a worker that is SIGKILLed
// mid-run.
func TestSmokeCluster(t *testing.T) {
	_, coordBase, _ := startDaemon(t)
	w1Cmd, _, _ := startDaemon(t, "-worker", "w1", "-coordinator", coordBase, "-heartbeat", "300ms")
	w2Cmd, _, _ := startDaemon(t, "-worker", "w2", "-coordinator", coordBase, "-heartbeat", "300ms")
	workers := map[string]interface{ Kill() error }{
		"w1": w1Cmd.Process, "w2": w2Cmd.Process,
	}

	// Wait for both workers to register.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var wl api.WorkerList
		getJSON(t, coordBase+"/v1/workers", &wl)
		alive := 0
		for _, w := range wl.Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never formed: %+v", wl)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A seeded batch through the cluster: every job runs on a worker.
	batch := []api.SolveRequest{
		{Heuristic: "greedy", Seed: 1},
		{Heuristic: "genetic", Seed: 7},
		{Heuristic: "greedy", Seed: 5},
	}
	results := make([]api.Job, len(batch))
	for i, req := range batch {
		id := submitJob(t, coordBase, "/v1/solve", req)
		results[i] = waitJob(t, coordBase, id, api.JobDone, 60*time.Second)
		if results[i].Node != "w1" && results[i].Node != "w2" {
			t.Errorf("batch job %d ran on %q, want a worker", i, results[i].Node)
		}
	}

	// Byte-identity against single-process mode.
	_, soloBase, _ := startDaemon(t)
	for i, req := range batch {
		id := submitJob(t, soloBase, "/v1/solve", req)
		solo := waitJob(t, soloBase, id, api.JobDone, 60*time.Second)
		if string(results[i].Result) != string(solo.Result) {
			t.Errorf("batch job %d: cluster result differs from single-process run", i)
		}
	}

	// Kill the worker holding a long job's lease: the survivor absorbs
	// it and still produces the single-process bytes.
	req := seededSimulate(30_000)
	id := submitJob(t, coordBase, "/v1/simulate", req)
	var victim string
	deadline = time.Now().Add(30 * time.Second)
	for victim == "" {
		if j := pollJob(t, coordBase, id); j.Node != "" {
			victim = j.Node
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never dispatched to a worker")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := workers[victim].Kill(); err != nil {
		t.Fatal(err)
	}
	survivor := "w1"
	if victim == "w1" {
		survivor = "w2"
	}
	absorbed := waitJob(t, coordBase, id, api.JobDone, 120*time.Second)
	if absorbed.Node != survivor {
		t.Errorf("job finished on %q after killing %q, want survivor %q", absorbed.Node, victim, survivor)
	}

	soloID := submitJob(t, soloBase, "/v1/simulate", req)
	solo := waitJob(t, soloBase, soloID, api.JobDone, 120*time.Second)
	if string(absorbed.Result) != string(solo.Result) {
		t.Error("absorbed job's result differs from single-process run")
	}

	var h api.Health
	getJSON(t, coordBase+"/v1/healthz", &h)
	if len(h.Workers) != 2 {
		t.Errorf("coordinator healthz lists %d workers, want 2", len(h.Workers))
	}
	fmt.Println("smoke-cluster: batch of", len(batch), "solves + 1 reassigned simulate, all byte-identical")
}

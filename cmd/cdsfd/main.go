// Command cdsfd serves the CDSF framework as a long-running scheduling
// service: a versioned HTTP/JSON job API (internal/api, v1) over a
// bounded job queue and executor pool (internal/server).
//
// Usage:
//
//	cdsfd                          # serve on :8080, jobs in memory
//	cdsfd -addr 127.0.0.1:9090 -queue 32 -executors 4
//	cdsfd -store /var/lib/cdsfd    # WAL-backed: jobs survive kill -9
//	cdsfd -metrics m.json -trace t.json -drain-timeout 1m
//
//	# a coordinator and two workers (any -store/-cache combination):
//	cdsfd -addr :8080 -store /var/lib/cdsfd
//	cdsfd -addr :8081 -worker w1 -coordinator http://127.0.0.1:8080
//	cdsfd -addr :8082 -worker w2 -coordinator http://127.0.0.1:8080
//
// Submit work with POST /v1/solve, /v1/simulate, or /v1/scenario (202
// plus a job envelope; 429 with Retry-After when the queue is full),
// poll GET /v1/jobs/{id}, cancel with DELETE /v1/jobs/{id}, and list
// with GET /v1/jobs?state=queued,running (&limit=N&after=ID paginates).
// Every job keeps an append-only event journal: GET
// /v1/jobs/{id}/events returns it as JSON, ?follow=1 streams it live
// as Server-Sent Events (reconnect with Last-Event-ID to resume), and
// GET /debug/events is the cross-job flight recorder. GET /v1/healthz
// reports queue depth, inflight jobs, drain state, cache counters, the
// job store's backend and replay stats, and per-worker liveness. With
// -log, the service also writes structured JSON-lines logs. The debug
// endpoints every CLI exposes behind -debug-addr (/metrics, /progress,
// /trace, /debug/pprof/*) are mounted on the same address.
//
// With -store DIR the job lifecycle is journaled to an append-only WAL
// under DIR: a 202 means the job is fsynced, and a restart replays the
// journal, re-serves every finished result bit-identically, and
// re-enqueues the jobs a crash interrupted (seeded jobs re-run to the
// same bytes — DESIGN.md §12). Without -store, jobs live in process
// memory exactly as before.
//
// With -coordinator URL the process additionally registers itself as a
// worker peer with that coordinator (re-registering every -heartbeat
// as its liveness signal) and deregisters on shutdown. The coordinator
// — any cdsfd with registered workers — places jobs on live workers by
// consistent hashing and reassigns leases from dead ones; workers are
// ordinary cdsfd servers and need no special flags beyond where to
// register.
//
// SIGINT/SIGTERM (and -timeout) drain the service: admission stops
// (503), queued jobs are cancelled, running jobs get -drain-timeout to
// finish before their contexts are cancelled, and the -metrics and
// -trace outputs are flushed before the nonzero exit — the same
// cancellation contract as every other CLI in cmd/.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
	"cdsf/internal/log"
	"cdsf/internal/runner"
	"cdsf/internal/server"
	"cdsf/internal/store"
)

func main() { runner.Main("cdsfd", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cdsfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "HTTP listen address for the v1 job API (e.g. 127.0.0.1:0 for a free port)")
	queue := fs.Int("queue", 16, "bound on jobs waiting for an executor; submissions beyond it answer 429")
	executors := fs.Int("executors", 2, "number of jobs executed concurrently")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after a shutdown signal before their contexts are cancelled")
	storeDir := fs.String("store", "", "journal the job lifecycle to an append-only WAL under this directory and recover interrupted jobs on restart (empty: jobs live in process memory)")
	workerName := fs.String("worker", "", "worker name to register with -coordinator under (default worker-<port>); requires -coordinator")
	coordinator := fs.String("coordinator", "", "coordinator base URL to register with as a worker peer (e.g. http://127.0.0.1:8080)")
	advertise := fs.String("advertise", "", "base URL the coordinator should use to reach this worker (default http://127.0.0.1:<resolved port>)")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "worker re-registration (heartbeat) interval")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", 10*time.Second, "how long a registered worker may stay silent before this coordinator skips it and reassigns its jobs")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerName != "" && *coordinator == "" {
		return fmt.Errorf("-worker %q requires -coordinator", *workerName)
	}
	return rf.Run(ctx, "cdsfd", stderr, func(ctx context.Context, s *runner.Session) error {
		var js store.JobStore
		if *storeDir != "" {
			w, err := store.OpenWAL(*storeDir, store.WALOptions{Metrics: s.Metrics})
			if err != nil {
				return err
			}
			if st := w.Stats(); st.ReplayedRecords > 0 {
				fmt.Fprintf(stderr, "cdsfd: replayed %d journal records (%d jobs, %d interrupted)\n",
					st.ReplayedRecords, st.ReplayedJobs, st.RecoveredJobs)
			}
			js = w
		}
		srv := server.New(server.Options{
			Queue:            *queue,
			Executors:        *executors,
			Workers:          rf.Workers,
			PMFBackend:       rf.PMF,
			Metrics:          s.Metrics,
			Tracer:           s.Tracer,
			Cache:            s.Cache,
			Events:           events.NewLog(events.Options{Metrics: s.Metrics}),
			Logger:           s.Log,
			Store:            js,
			HeartbeatTimeout: *heartbeatTimeout,
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			srv.Close()
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		// The readiness line carries the resolved port (for -addr ...:0)
		// and marks the point from which requests are accepted.
		fmt.Fprintf(stderr, "cdsfd: serving the %s job API on http://%s/\n", api.Version, ln.Addr())

		if *coordinator != "" {
			coord := strings.TrimRight(*coordinator, "/")
			host, port, err := net.SplitHostPort(ln.Addr().String())
			if err != nil {
				srv.Close()
				return fmt.Errorf("resolving worker address: %w", err)
			}
			if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
				host = "127.0.0.1"
			}
			name := *workerName
			if name == "" {
				name = "worker-" + port
			}
			adv := *advertise
			if adv == "" {
				adv = "http://" + net.JoinHostPort(host, port)
			}
			fmt.Fprintf(stderr, "cdsfd: worker %s registering with %s (advertising %s)\n", name, coord, adv)
			go registerLoop(ctx, coord, name, adv, *heartbeat, s.Log)
		}

		serveErr := make(chan error, 1)
		go func() { serveErr <- httpSrv.Serve(ln) }()

		select {
		case err := <-serveErr:
			// The listener died on its own; nothing is serving anymore,
			// so cancel whatever was running and report the cause.
			srv.Drain(0)
			return err
		case <-ctx.Done():
		}

		// Drain sequence: jobs first (admission already answers 503, and
		// polling keeps working so clients see their jobs reach terminal
		// states), then the HTTP server itself.
		fmt.Fprintf(stderr, "cdsfd: draining jobs (timeout %s)\n", *drainTimeout)
		srv.Drain(*drainTimeout)
		downCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(downCtx); err != nil {
			_ = httpSrv.Close()
		}
		// Propagate the cancellation cause so the process exits nonzero,
		// after runner.Run flushes -metrics and -trace.
		return fmt.Errorf("serving interrupted: %w", context.Cause(ctx))
	})
}

// registerLoop keeps this process registered as a worker peer: one
// immediate registration, then one per heartbeat interval (the
// coordinator's liveness signal), until ctx is cancelled — at which
// point it deregisters so the coordinator reroutes new jobs right away
// instead of waiting out the heartbeat timeout. Failures are logged
// and retried on the next beat: a worker may legitimately start before
// its coordinator.
func registerLoop(ctx context.Context, coord, name, adv string, interval time.Duration, logger *log.Logger) {
	client := &http.Client{Timeout: 5 * time.Second}
	body, err := json.Marshal(api.WorkerRegistration{Name: name, Addr: adv})
	if err != nil {
		return
	}
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			logger.Warn("worker heartbeat failed", log.F("coordinator", coord), log.F("error", err.Error()))
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logger.Warn("worker heartbeat rejected", log.F("coordinator", coord), log.F("status", resp.StatusCode))
		}
	}
	beat()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			req, err := http.NewRequest(http.MethodDelete, coord+"/v1/workers/"+url.PathEscape(name), nil)
			if err == nil {
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			return
		case <-tick.C:
			beat()
		}
	}
}

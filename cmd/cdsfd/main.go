// Command cdsfd serves the CDSF framework as a long-running scheduling
// service: a versioned HTTP/JSON job API (internal/api, v1) over a
// bounded job queue and executor pool (internal/server).
//
// Usage:
//
//	cdsfd                          # serve on :8080
//	cdsfd -addr 127.0.0.1:9090 -queue 32 -executors 4
//	cdsfd -metrics m.json -trace t.json -drain-timeout 1m
//
// Submit work with POST /v1/solve, /v1/simulate, or /v1/scenario (202
// plus a job envelope; 429 with Retry-After when the queue is full),
// poll GET /v1/jobs/{id}, cancel with DELETE /v1/jobs/{id}, and list
// with GET /v1/jobs?state=queued,running. Every job keeps an
// append-only event journal: GET /v1/jobs/{id}/events returns it as
// JSON, ?follow=1 streams it live as Server-Sent Events (reconnect
// with Last-Event-ID to resume), and GET /debug/events is the
// cross-job flight recorder. GET /v1/healthz reports queue depth,
// inflight jobs, drain state, and cache counters. With -log, the
// service also writes structured JSON-lines logs. The debug endpoints
// every CLI exposes behind -debug-addr (/metrics, /progress, /trace,
// /debug/pprof/*) are mounted on the same address.
//
// SIGINT/SIGTERM (and -timeout) drain the service: admission stops
// (503), queued jobs are cancelled, running jobs get -drain-timeout to
// finish before their contexts are cancelled, and the -metrics and
// -trace outputs are flushed before the nonzero exit — the same
// cancellation contract as every other CLI in cmd/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
	"cdsf/internal/runner"
	"cdsf/internal/server"
)

func main() { runner.Main("cdsfd", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cdsfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "HTTP listen address for the v1 job API (e.g. 127.0.0.1:0 for a free port)")
	queue := fs.Int("queue", 16, "bound on jobs waiting for an executor; submissions beyond it answer 429")
	executors := fs.Int("executors", 2, "number of jobs executed concurrently")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after a shutdown signal before their contexts are cancelled")
	rf := runner.RegisterWorkerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return rf.Run(ctx, "cdsfd", stderr, func(ctx context.Context, s *runner.Session) error {
		srv := server.New(server.Options{
			Queue:      *queue,
			Executors:  *executors,
			Workers:    rf.Workers,
			PMFBackend: rf.PMF,
			Metrics:    s.Metrics,
			Tracer:     s.Tracer,
			Cache:      s.Cache,
			Events:     events.NewLog(events.Options{Metrics: s.Metrics}),
			Logger:     s.Log,
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			srv.Close()
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		// The readiness line carries the resolved port (for -addr ...:0)
		// and marks the point from which requests are accepted.
		fmt.Fprintf(stderr, "cdsfd: serving the %s job API on http://%s/\n", api.Version, ln.Addr())

		serveErr := make(chan error, 1)
		go func() { serveErr <- httpSrv.Serve(ln) }()

		select {
		case err := <-serveErr:
			// The listener died on its own; nothing is serving anymore,
			// so cancel whatever was running and report the cause.
			srv.Drain(0)
			return err
		case <-ctx.Done():
		}

		// Drain sequence: jobs first (admission already answers 503, and
		// polling keeps working so clients see their jobs reach terminal
		// states), then the HTTP server itself.
		fmt.Fprintf(stderr, "cdsfd: draining jobs (timeout %s)\n", *drainTimeout)
		srv.Drain(*drainTimeout)
		downCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(downCtx); err != nil {
			_ = httpSrv.Close()
		}
		// Propagate the cancellation cause so the process exits nonzero,
		// after runner.Run flushes -metrics and -trace.
		return fmt.Errorf("serving interrupted: %w", context.Cause(ctx))
	})
}

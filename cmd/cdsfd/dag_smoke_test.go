package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/config"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

// TestSmokeDAG is the end-to-end smoke for precedence-constrained
// batches: a real cdsfd subprocess solves a seeded fork-join DAG over
// the embedded paper example with the heft list scheduler, and the
// returned result document must match the direct library computation
// bit for bit — allocation, composed phi_1, and the per-application
// quantities. Run on its own with `make smoke-dag`.
func TestSmokeDAG(t *testing.T) {
	cmd, base, _ := startDaemon(t)
	defer func() { _ = cmd.Process.Kill() }()

	edges := []config.EdgeSpec{{From: 0, To: 2}, {From: 1, To: 2}}
	id := submitJob(t, base, "/v1/solve", api.SolveRequest{Heuristic: "heft", Edges: edges})
	deadline := time.Now().Add(30 * time.Second)
	for pollState(t, base, id) != api.JobDone {
		if time.Now().After(deadline) {
			t.Fatal("DAG solve never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	var res api.SolveResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatalf("result document: %v", err)
	}

	// The golden reference: the same solve through the library.
	f := experiments.Framework()
	h, err := ra.ByName("heft")
	if err != nil {
		t.Fatal(err)
	}
	sedges := []sysmodel.Edge{{From: 0, To: 2}, {From: 1, To: 2}}
	al, err := ra.SolveContext(context.Background(), h, &ra.Problem{
		Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline, Edges: sedges,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := robustness.EvaluateStageIDAG(f.Sys, f.Batch, sedges, al, f.Deadline)
	if err != nil {
		t.Fatal(err)
	}

	if res.Heuristic != "heft" {
		t.Errorf("result heuristic %q, want heft", res.Heuristic)
	}
	if !api.ToAllocation(res.Allocation).Equal(want.Alloc) {
		t.Errorf("daemon allocation %v != library %v", res.Allocation, want.Alloc)
	}
	if res.Phi1 != want.Phi1 {
		t.Errorf("daemon phi1 %v != library %v", res.Phi1, want.Phi1)
	}
	if len(res.PerApp) != len(want.PerApp) {
		t.Fatalf("result has %d applications, want %d", len(res.PerApp), len(want.PerApp))
	}
	for i := range want.PerApp {
		if res.PerApp[i] != want.PerApp[i] {
			t.Errorf("app %d: daemon PerApp %v != library %v", i, res.PerApp[i], want.PerApp[i])
		}
		if res.ExpectedTimes[i] != want.ExpectedTimes[i] {
			t.Errorf("app %d: daemon E[C] %v != library %v", i, res.ExpectedTimes[i], want.ExpectedTimes[i])
		}
	}
	// Sanity on the composition itself: the sink's expectation must
	// exceed both sources' (it waits for the slower one, then runs).
	if res.ExpectedTimes[2] <= res.ExpectedTimes[0] || res.ExpectedTimes[2] <= res.ExpectedTimes[1] {
		t.Errorf("sink E[C] %v not after sources %v, %v",
			res.ExpectedTimes[2], res.ExpectedTimes[0], res.ExpectedTimes[1])
	}
}

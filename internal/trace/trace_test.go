package trace

import (
	"context"
	"math"
	"strings"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

func runWithChunks(t *testing.T, overhead float64) *sim.Result {
	t.Helper()
	fac, ok := dls.Get("FAC")
	if !ok {
		t.Fatal("FAC missing")
	}
	r, err := sim.RunContext(context.Background(), sim.Config{
		ParallelIters: 500,
		Workers:       4,
		IterTime:      stats.NewNormal(1, 0.2),
		Avail:         availability.Static{PMF: pmf.Point(1)},
		Technique:     fac,
		Overhead:      overhead,
		Seed:          6,
		CollectChunks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeConservation(t *testing.T) {
	const h = 0.5
	r := runWithChunks(t, h)
	a, err := Analyze(r.Chunks, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalIterations != 500 {
		t.Errorf("iterations = %d", a.TotalIterations)
	}
	if a.TotalChunks != r.NumChunks {
		t.Errorf("chunks = %d vs result %d", a.TotalChunks, r.NumChunks)
	}
	if math.Abs(a.MeanChunkSize-500/float64(r.NumChunks)) > 1e-9 {
		t.Errorf("mean chunk size = %v", a.MeanChunkSize)
	}
	sumIters, sumBusy := 0, 0.0
	for _, w := range a.Workers {
		sumIters += w.Iterations
		sumBusy += w.Busy
		if w.Busy < 0 || w.Idle < 0 || w.Overhead < 0 {
			t.Errorf("worker %d has negative accounting: %+v", w.Worker, w)
		}
		if math.Abs(w.Overhead-float64(w.Chunks)*h) > 1e-9 {
			t.Errorf("worker %d overhead = %v for %d chunks", w.Worker, w.Overhead, w.Chunks)
		}
		if w.LastEnd > r.Makespan+1e-9 {
			t.Errorf("worker %d ends after the makespan", w.Worker)
		}
	}
	if sumIters != 500 {
		t.Errorf("per-worker iterations sum to %d", sumIters)
	}
	if math.Abs(sumBusy-sumWorkerBusy(r)) > 1e-9 {
		t.Errorf("busy sum %v != result %v", sumBusy, sumWorkerBusy(r))
	}
	if a.BusyEfficiency <= 0 || a.BusyEfficiency > 1+1e-9 {
		t.Errorf("efficiency = %v", a.BusyEfficiency)
	}
}

func sumWorkerBusy(r *sim.Result) float64 {
	s := 0.0
	for _, b := range r.WorkerBusy {
		s += b
	}
	return s
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 4, 0); err == nil {
		t.Error("empty log accepted")
	}
	bad := []sim.ChunkRecord{{Worker: 7, Start: 0, Size: 1, Elapsed: 1}}
	if _, err := Analyze(bad, 4, 0); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if _, err := Analyze(bad, 0, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	chunks := []sim.ChunkRecord{
		{Worker: 1, Start: 5, Size: 10, Elapsed: 2.5},
		{Worker: 0, Start: 0, Size: 20, Elapsed: 4},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, chunks); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "worker,start,size,elapsed" {
		t.Errorf("header = %q", lines[0])
	}
	// Sorted by start time.
	if !strings.HasPrefix(lines[1], "0,0,20,") || !strings.HasPrefix(lines[2], "1,5,10,") {
		t.Errorf("rows not sorted: %v", lines[1:])
	}
}

func TestRecord(t *testing.T) {
	chunks := []sim.ChunkRecord{
		{Worker: 0, Start: 0, Size: 20, Elapsed: 4},
		{Worker: 1, Start: 5, Size: 10, Elapsed: 2.5},
		{Worker: 0, Start: 6, Size: 5, Elapsed: 1},
	}
	a, err := Analyze(chunks, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Nil registry must be a no-op, not a panic.
	a.Record(nil, "trace")

	reg := metrics.NewRegistry()
	a.Record(reg, "trace")
	if got := reg.Counter("trace.chunks").Value(); got != 3 {
		t.Errorf("trace.chunks = %d", got)
	}
	if got := reg.Counter("trace.iterations").Value(); got != 35 {
		t.Errorf("trace.iterations = %d", got)
	}
	if got := reg.Counter("trace.worker00.chunks").Value(); got != 2 {
		t.Errorf("worker00.chunks = %d", got)
	}
	if got := reg.Gauge("trace.worker00.busy").Value(); got != 5 {
		t.Errorf("worker00.busy = %v", got)
	}
	if got := reg.Gauge("trace.worker01.overhead").Value(); got != 0.5 {
		t.Errorf("worker01.overhead = %v", got)
	}
	if reg.Gauge("trace.busy_efficiency").Value() <= 0 {
		t.Error("busy_efficiency not recorded")
	}
}

package trace

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cdsf/internal/sim"
	"cdsf/internal/tracing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// Satellite: WriteCSV's float formatting must preserve every bit of
// Start and Elapsed — %.6g used to truncate, so a re-imported log
// disagreed with the original. A real chunk log (irrational-looking
// simulated times) plus adversarial values must round-trip exactly.
func TestCSVRoundTripBitExact(t *testing.T) {
	r := runWithChunks(t, 0.5)
	chunks := append([]sim.ChunkRecord(nil), r.Chunks...)
	chunks = append(chunks,
		sim.ChunkRecord{Worker: 0, Start: 1.0 / 3.0, Size: 1, Elapsed: math.Pi},
		sim.ChunkRecord{Worker: 1, Start: 123456.789012345, Size: 2, Elapsed: 1e-17},
		sim.ChunkRecord{Worker: 2, Start: math.Nextafter(2, 3), Size: 3, Elapsed: 0.1},
	)
	var sb strings.Builder
	if err := WriteCSV(&sb, chunks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chunks) {
		t.Fatalf("round-trip length %d != %d", len(got), len(chunks))
	}
	// WriteCSV sorts by (start, worker); apply the same order to the
	// input before comparing bit-for-bit.
	want := append([]sim.ChunkRecord(nil), chunks...)
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && (want[j].Start < want[j-1].Start ||
			(want[j].Start == want[j-1].Start && want[j].Worker < want[j-1].Worker)); j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("row %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "",
		"bad header":  "w,s,sz,e\n",
		"bad fields":  "worker,start,size,elapsed\n1,2,3\n",
		"bad worker":  "worker,start,size,elapsed\nx,0,1,1\n",
		"bad start":   "worker,start,size,elapsed\n0,x,1,1\n",
		"bad size":    "worker,start,size,elapsed\n0,0,x,1\n",
		"bad elapsed": "worker,start,size,elapsed\n0,0,1,x\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadCSV(strings.NewReader("worker,start,size,elapsed\n\n0,1,2,3\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (sim.ChunkRecord{Worker: 0, Start: 1, Size: 2, Elapsed: 3}) {
		t.Errorf("got %+v", got)
	}
}

func TestExportSpansMatchesAnalyze(t *testing.T) {
	const h = 0.5
	r := runWithChunks(t, h)
	a, err := Analyze(r.Chunks, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.New()
	ExportSpans(tr, "fac", r.Chunks, h)
	ExportSpans(nil, "fac", r.Chunks, h) // nil tracer: no-op, no panic

	sums := map[string]map[string]float64{}
	for _, s := range tr.Spans() {
		if sums[s.Lane] == nil {
			sums[s.Lane] = map[string]float64{}
		}
		sums[s.Lane][s.Cat] += s.Dur
	}
	for _, w := range a.Workers {
		lane := tracingLane("fac", w.Worker)
		got := sums[lane]
		if math.Abs(got["busy"]-w.Busy) > 1e-9 ||
			math.Abs(got["overhead"]-w.Overhead) > 1e-9 ||
			math.Abs(got["idle"]-w.Idle) > 1e-9 {
			t.Errorf("%s = %v, want busy %v overhead %v idle %v",
				lane, got, w.Busy, w.Overhead, w.Idle)
		}
	}
}

// tracingLane mirrors the lane naming convention of
// tracing.AddWorkerLanes for assertions.
func tracingLane(scope string, worker int) string {
	return scope + "/w" + string(rune('0'+worker/10)) + string(rune('0'+worker%10))
}

// Satellite: the ASCII Gantt built from a real seeded sim.Run chunk log
// is pinned against a golden file, so rendering changes surface in
// review instead of silently shifting the CLI output.
func TestBuildGanttGolden(t *testing.T) {
	const h = 0.5
	r := runWithChunks(t, h) // fixed seed 6 inside the helper
	g := BuildGantt("FAC: one run (seed 6)", r.Chunks, 4, h)
	out := g.String()

	golden := filepath.Join("testdata", "gantt.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("Gantt differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}
}

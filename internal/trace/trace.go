// Package trace analyzes and exports chunk-level execution logs from
// the Stage-II simulator: per-worker busy/idle accounting, overhead
// breakdowns, and CSV export for external plotting. It is the
// post-mortem side of the runtime substrate — the numbers behind the
// Gantt pictures.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cdsf/internal/metrics"
	"cdsf/internal/report"
	"cdsf/internal/sim"
	"cdsf/internal/tracing"
)

// WorkerSummary aggregates one worker's activity in a run.
type WorkerSummary struct {
	Worker int
	// Chunks is the number of chunks the worker executed.
	Chunks int
	// Iterations is the number of iterations executed.
	Iterations int
	// Busy is the total execution time (excluding dispatch overhead).
	Busy float64
	// Overhead is the total dispatch overhead charged (chunks * h).
	Overhead float64
	// Idle is span - busy - overhead, where span runs from the worker's
	// first dispatch to its last completion.
	Idle float64
	// FirstStart and LastEnd delimit the worker's activity.
	FirstStart, LastEnd float64
}

// Analysis summarizes a whole run's chunk log.
type Analysis struct {
	Workers []WorkerSummary
	// TotalChunks and TotalIterations aggregate the log.
	TotalChunks, TotalIterations int
	// MeanChunkSize is TotalIterations / TotalChunks.
	MeanChunkSize float64
	// BusyEfficiency is total busy time over total worker-span time —
	// 1 means no worker ever waited.
	BusyEfficiency float64
}

// Analyze builds per-worker summaries from a chunk log (as produced by
// sim.Run with CollectChunks) and the per-chunk overhead h used in the
// run. It returns an error on an empty log.
func Analyze(chunks []sim.ChunkRecord, workers int, overhead float64) (*Analysis, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("trace: empty chunk log")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("trace: %d workers", workers)
	}
	ws := make([]WorkerSummary, workers)
	for i := range ws {
		ws[i].Worker = i
		ws[i].FirstStart = -1
	}
	a := &Analysis{}
	for _, c := range chunks {
		if c.Worker < 0 || c.Worker >= workers {
			return nil, fmt.Errorf("trace: chunk names worker %d of %d", c.Worker, workers)
		}
		w := &ws[c.Worker]
		w.Chunks++
		w.Iterations += c.Size
		w.Busy += c.Elapsed
		w.Overhead += overhead
		if w.FirstStart < 0 || c.Start < w.FirstStart {
			w.FirstStart = c.Start
		}
		if end := c.Start + overhead + c.Elapsed; end > w.LastEnd {
			w.LastEnd = end
		}
		a.TotalChunks++
		a.TotalIterations += c.Size
	}
	span, busy := 0.0, 0.0
	for i := range ws {
		w := &ws[i]
		if w.Chunks == 0 {
			w.FirstStart = 0
			continue
		}
		w.Idle = (w.LastEnd - w.FirstStart) - w.Busy - w.Overhead
		if w.Idle < 0 {
			w.Idle = 0
		}
		span += w.LastEnd - w.FirstStart
		busy += w.Busy
	}
	a.Workers = ws
	a.MeanChunkSize = float64(a.TotalIterations) / float64(a.TotalChunks)
	if span > 0 {
		a.BusyEfficiency = busy / span
	}
	return a, nil
}

// Record publishes the analysis to a metrics registry under the given
// name prefix (e.g. "trace"): per-worker busy/idle/overhead gauges
// plus aggregate chunk and iteration counters, so the chunk-log
// summary lands in the same -metrics output as the runtime counters.
// A nil registry is a no-op.
func (a *Analysis) Record(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".chunks").Add(int64(a.TotalChunks))
	reg.Counter(prefix + ".iterations").Add(int64(a.TotalIterations))
	reg.Gauge(prefix + ".mean_chunk_size").Set(a.MeanChunkSize)
	reg.Gauge(prefix + ".busy_efficiency").Set(a.BusyEfficiency)
	for _, w := range a.Workers {
		p := fmt.Sprintf("%s.worker%02d", prefix, w.Worker)
		reg.Gauge(p + ".busy").Set(w.Busy)
		reg.Gauge(p + ".idle").Set(w.Idle)
		reg.Gauge(p + ".overhead").Set(w.Overhead)
		reg.Counter(p + ".chunks").Add(int64(w.Chunks))
	}
}

// WriteCSV emits the raw chunk log as CSV (worker, start, size,
// elapsed), sorted by start time, for external tooling. Start and
// Elapsed use the shortest decimal representation that parses back to
// the same float64, so a log written here and re-imported with ReadCSV
// round-trips bit-exactly.
func WriteCSV(w io.Writer, chunks []sim.ChunkRecord) error {
	sorted := append([]sim.ChunkRecord(nil), chunks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Worker < sorted[j].Worker
	})
	if _, err := io.WriteString(w, "worker,start,size,elapsed\n"); err != nil {
		return err
	}
	for _, c := range sorted {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%s\n", c.Worker,
			strconv.FormatFloat(c.Start, 'g', -1, 64), c.Size,
			strconv.FormatFloat(c.Elapsed, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a chunk log written by WriteCSV (a header line
// followed by worker,start,size,elapsed rows).
func ReadCSV(r io.Reader) ([]sim.ChunkRecord, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty chunk CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != "worker,start,size,elapsed" {
		return nil, fmt.Errorf("trace: unexpected chunk CSV header %q", got)
	}
	var chunks []sim.ChunkRecord
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: line %d: %d fields (want 4)", line, len(parts))
		}
		worker, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: worker: %v", line, err)
		}
		start, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: start: %v", line, err)
		}
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: size: %v", line, err)
		}
		elapsed, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: elapsed: %v", line, err)
		}
		chunks = append(chunks, sim.ChunkRecord{Worker: worker, Start: start, Size: size, Elapsed: elapsed})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return chunks, nil
}

// ExportSpans emits a chunk log's simulated-time worker lanes
// (busy/overhead/idle spans under scope, as tracing.AddWorkerLanes
// builds them) to a tracer — the post-hoc path for logs loaded with
// ReadCSV; live runs emit the same lanes directly via
// sim.Config.Tracer. A nil tracer is a no-op.
func ExportSpans(tr *tracing.Tracer, scope string, chunks []sim.ChunkRecord, overhead float64) {
	if tr == nil {
		return
	}
	cs := make([]tracing.Chunk, len(chunks))
	for i, c := range chunks {
		cs[i] = tracing.Chunk{Worker: c.Worker, Start: c.Start, Size: c.Size, Elapsed: c.Elapsed}
	}
	tr.AddWorkerLanes(scope, cs, overhead)
}

// BuildGantt renders a chunk log as an ASCII Gantt chart: one lane per
// worker, '#' for execution and 'o' for the dispatch overhead ahead of
// each chunk — the terminal twin of the Chrome-trace worker lanes.
func BuildGantt(title string, chunks []sim.ChunkRecord, workers int, overhead float64) *report.Gantt {
	g := report.NewGantt(title, workers)
	for _, c := range chunks {
		if overhead > 0 {
			g.Add(c.Worker, c.Start, c.Start+overhead, 'o')
		}
		g.Add(c.Worker, c.Start+overhead, c.Start+overhead+c.Elapsed, '#')
	}
	return g
}

// Package trace analyzes and exports chunk-level execution logs from
// the Stage-II simulator: per-worker busy/idle accounting, overhead
// breakdowns, and CSV export for external plotting. It is the
// post-mortem side of the runtime substrate — the numbers behind the
// Gantt pictures.
package trace

import (
	"fmt"
	"io"
	"sort"

	"cdsf/internal/metrics"
	"cdsf/internal/sim"
)

// WorkerSummary aggregates one worker's activity in a run.
type WorkerSummary struct {
	Worker int
	// Chunks is the number of chunks the worker executed.
	Chunks int
	// Iterations is the number of iterations executed.
	Iterations int
	// Busy is the total execution time (excluding dispatch overhead).
	Busy float64
	// Overhead is the total dispatch overhead charged (chunks * h).
	Overhead float64
	// Idle is span - busy - overhead, where span runs from the worker's
	// first dispatch to its last completion.
	Idle float64
	// FirstStart and LastEnd delimit the worker's activity.
	FirstStart, LastEnd float64
}

// Analysis summarizes a whole run's chunk log.
type Analysis struct {
	Workers []WorkerSummary
	// TotalChunks and TotalIterations aggregate the log.
	TotalChunks, TotalIterations int
	// MeanChunkSize is TotalIterations / TotalChunks.
	MeanChunkSize float64
	// BusyEfficiency is total busy time over total worker-span time —
	// 1 means no worker ever waited.
	BusyEfficiency float64
}

// Analyze builds per-worker summaries from a chunk log (as produced by
// sim.Run with CollectChunks) and the per-chunk overhead h used in the
// run. It returns an error on an empty log.
func Analyze(chunks []sim.ChunkRecord, workers int, overhead float64) (*Analysis, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("trace: empty chunk log")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("trace: %d workers", workers)
	}
	ws := make([]WorkerSummary, workers)
	for i := range ws {
		ws[i].Worker = i
		ws[i].FirstStart = -1
	}
	a := &Analysis{}
	for _, c := range chunks {
		if c.Worker < 0 || c.Worker >= workers {
			return nil, fmt.Errorf("trace: chunk names worker %d of %d", c.Worker, workers)
		}
		w := &ws[c.Worker]
		w.Chunks++
		w.Iterations += c.Size
		w.Busy += c.Elapsed
		w.Overhead += overhead
		if w.FirstStart < 0 || c.Start < w.FirstStart {
			w.FirstStart = c.Start
		}
		if end := c.Start + overhead + c.Elapsed; end > w.LastEnd {
			w.LastEnd = end
		}
		a.TotalChunks++
		a.TotalIterations += c.Size
	}
	span, busy := 0.0, 0.0
	for i := range ws {
		w := &ws[i]
		if w.Chunks == 0 {
			w.FirstStart = 0
			continue
		}
		w.Idle = (w.LastEnd - w.FirstStart) - w.Busy - w.Overhead
		if w.Idle < 0 {
			w.Idle = 0
		}
		span += w.LastEnd - w.FirstStart
		busy += w.Busy
	}
	a.Workers = ws
	a.MeanChunkSize = float64(a.TotalIterations) / float64(a.TotalChunks)
	if span > 0 {
		a.BusyEfficiency = busy / span
	}
	return a, nil
}

// Record publishes the analysis to a metrics registry under the given
// name prefix (e.g. "trace"): per-worker busy/idle/overhead gauges
// plus aggregate chunk and iteration counters, so the chunk-log
// summary lands in the same -metrics output as the runtime counters.
// A nil registry is a no-op.
func (a *Analysis) Record(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".chunks").Add(int64(a.TotalChunks))
	reg.Counter(prefix + ".iterations").Add(int64(a.TotalIterations))
	reg.Gauge(prefix + ".mean_chunk_size").Set(a.MeanChunkSize)
	reg.Gauge(prefix + ".busy_efficiency").Set(a.BusyEfficiency)
	for _, w := range a.Workers {
		p := fmt.Sprintf("%s.worker%02d", prefix, w.Worker)
		reg.Gauge(p + ".busy").Set(w.Busy)
		reg.Gauge(p + ".idle").Set(w.Idle)
		reg.Gauge(p + ".overhead").Set(w.Overhead)
		reg.Counter(p + ".chunks").Add(int64(w.Chunks))
	}
}

// WriteCSV emits the raw chunk log as CSV (worker, start, size,
// elapsed), sorted by start time, for external tooling.
func WriteCSV(w io.Writer, chunks []sim.ChunkRecord) error {
	sorted := append([]sim.ChunkRecord(nil), chunks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Worker < sorted[j].Worker
	})
	if _, err := io.WriteString(w, "worker,start,size,elapsed\n"); err != nil {
		return err
	}
	for _, c := range sorted {
		if _, err := fmt.Fprintf(w, "%d,%.6g,%d,%.6g\n", c.Worker, c.Start, c.Size, c.Elapsed); err != nil {
			return err
		}
	}
	return nil
}

package pmf

import (
	"math"
	"testing"
)

// FuzzNew exercises PMF construction with arbitrary pulse pairs; the
// invariant is that New either rejects the input or returns a PMF
// satisfying Validate with the mean inside the support.
func FuzzNew(f *testing.F) {
	f.Add(1.0, 0.5, 2.0, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 1.0, 5.0, 3.0)
	f.Add(1e300, 0.1, -1e300, 0.9)
	f.Fuzz(func(t *testing.T, v1, p1, v2, p2 float64) {
		pmf, err := New([]Pulse{{Value: v1, Prob: p1}, {Value: v2, Prob: p2}})
		if err != nil {
			return
		}
		if err := pmf.Validate(); err != nil {
			t.Fatalf("accepted PMF fails validation: %v", err)
		}
		m := pmf.Mean()
		if math.IsNaN(m) {
			t.Fatal("mean is NaN")
		}
		if m < pmf.Min()-1e-6*math.Abs(pmf.Min())-1e-9 ||
			m > pmf.Max()+1e-6*math.Abs(pmf.Max())+1e-9 {
			t.Fatalf("mean %v outside support [%v, %v]", m, pmf.Min(), pmf.Max())
		}
		if pr := pmf.PrLE(pmf.Max()); math.Abs(pr-1) > 1e-9 {
			t.Fatalf("PrLE(max) = %v", pr)
		}
	})
}

// FuzzCombineMerge checks that the merge-based Combine fast path is
// pulse-for-pulse identical to the naive cross-product reference for
// the monotone operators the scheduler uses, over arbitrary pulse
// placements (including duplicate and near-equal values, which exercise
// the constructor's merging).
func FuzzCombineMerge(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, uint8(0))
	f.Add(1.0, 1.0, 1.0, 2.0, 2.0, uint8(3))
	f.Add(0.5, 100.0, 0.25, 7.0, 7.0000001, uint8(5))
	f.Fuzz(func(t *testing.T, v1, v2, v3, w1, w2 float64, op uint8) {
		for _, v := range []float64{v1, v2, v3, w1, w2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 || math.Abs(v) < 1e-100 {
				return
			}
		}
		ops := []func(x, y float64) float64{
			func(x, y float64) float64 { return x + y },
			func(x, y float64) float64 { return x - y },
			math.Max,
			math.Min,
		}
		fn := ops[int(op)%len(ops)]
		p := MustNew([]Pulse{{Value: v1, Prob: 0.2}, {Value: v2, Prob: 0.3}, {Value: v3, Prob: 0.5}})
		q := MustNew([]Pulse{{Value: w1, Prob: 0.6}, {Value: w2, Prob: 0.4}})
		fast, ok := combineMerge(p, q, fn)
		naive := naiveCombine(p, q, fn)
		if !ok {
			// Fast path declined (e.g. overflow to Inf); Combine must
			// still agree with the reference via the fallback.
			fast = Combine(p, q, fn)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("combined PMF invalid: %v", err)
		}
		if fast.Len() != naive.Len() {
			t.Fatalf("pulse count %d, want %d\nfast  %v\nnaive %v", fast.Len(), naive.Len(), fast, naive)
		}
		for i := 0; i < fast.Len(); i++ {
			g, w := fast.At(i), naive.At(i)
			if math.Abs(g.Value-w.Value) > 1e-9*math.Max(1, math.Abs(w.Value)) {
				t.Fatalf("pulse %d value %v, want %v", i, g.Value, w.Value)
			}
			if math.Abs(g.Prob-w.Prob) > 1e-9 {
				t.Fatalf("pulse %d prob %v, want %v", i, g.Prob, w.Prob)
			}
		}
	})
}

// FuzzRebin checks mass and mean preservation for arbitrary bin widths.
func FuzzRebin(f *testing.F) {
	f.Add(1.0)
	f.Add(0.001)
	f.Add(1000.0)
	f.Fuzz(func(t *testing.T, width float64) {
		if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) || width > 1e12 {
			return
		}
		p := MustNew([]Pulse{
			{Value: 10, Prob: 0.25}, {Value: 20, Prob: 0.25},
			{Value: 100, Prob: 0.25}, {Value: 1000, Prob: 0.25}})
		r := p.Rebin(width)
		if err := r.Validate(); err != nil {
			t.Fatalf("rebinned PMF invalid: %v", err)
		}
		if math.Abs(r.Mean()-p.Mean()) > 1e-6*p.Mean() {
			t.Fatalf("rebin moved mean: %v -> %v (width %v)", p.Mean(), r.Mean(), width)
		}
	})
}

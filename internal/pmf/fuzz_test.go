package pmf

import (
	"math"
	"testing"
)

// FuzzNew exercises PMF construction with arbitrary pulse pairs; the
// invariant is that New either rejects the input or returns a PMF
// satisfying Validate with the mean inside the support.
func FuzzNew(f *testing.F) {
	f.Add(1.0, 0.5, 2.0, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 1.0, 5.0, 3.0)
	f.Add(1e300, 0.1, -1e300, 0.9)
	f.Fuzz(func(t *testing.T, v1, p1, v2, p2 float64) {
		pmf, err := New([]Pulse{{Value: v1, Prob: p1}, {Value: v2, Prob: p2}})
		if err != nil {
			return
		}
		if err := pmf.Validate(); err != nil {
			t.Fatalf("accepted PMF fails validation: %v", err)
		}
		m := pmf.Mean()
		if math.IsNaN(m) {
			t.Fatal("mean is NaN")
		}
		if m < pmf.Min()-1e-6*math.Abs(pmf.Min())-1e-9 ||
			m > pmf.Max()+1e-6*math.Abs(pmf.Max())+1e-9 {
			t.Fatalf("mean %v outside support [%v, %v]", m, pmf.Min(), pmf.Max())
		}
		if pr := pmf.PrLE(pmf.Max()); math.Abs(pr-1) > 1e-9 {
			t.Fatalf("PrLE(max) = %v", pr)
		}
	})
}

// FuzzCombineMerge checks that the merge-based Combine fast path is
// pulse-for-pulse identical to the naive cross-product reference for
// the monotone operators the scheduler uses, over arbitrary pulse
// placements (including duplicate and near-equal values, which exercise
// the constructor's merging).
func FuzzCombineMerge(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, uint8(0))
	f.Add(1.0, 1.0, 1.0, 2.0, 2.0, uint8(3))
	f.Add(0.5, 100.0, 0.25, 7.0, 7.0000001, uint8(5))
	f.Fuzz(func(t *testing.T, v1, v2, v3, w1, w2 float64, op uint8) {
		for _, v := range []float64{v1, v2, v3, w1, w2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 || math.Abs(v) < 1e-100 {
				return
			}
		}
		ops := []func(x, y float64) float64{
			func(x, y float64) float64 { return x + y },
			func(x, y float64) float64 { return x - y },
			math.Max,
			math.Min,
		}
		fn := ops[int(op)%len(ops)]
		p := MustNew([]Pulse{{Value: v1, Prob: 0.2}, {Value: v2, Prob: 0.3}, {Value: v3, Prob: 0.5}})
		q := MustNew([]Pulse{{Value: w1, Prob: 0.6}, {Value: w2, Prob: 0.4}})
		fast, ok := combineMerge(p, q, fn)
		naive := naiveCombine(p, q, fn)
		if !ok {
			// Fast path declined (e.g. overflow to Inf); Combine must
			// still agree with the reference via the fallback.
			fast = Combine(p, q, fn)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("combined PMF invalid: %v", err)
		}
		if fast.Len() != naive.Len() {
			t.Fatalf("pulse count %d, want %d\nfast  %v\nnaive %v", fast.Len(), naive.Len(), fast, naive)
		}
		for i := 0; i < fast.Len(); i++ {
			g, w := fast.At(i), naive.At(i)
			if math.Abs(g.Value-w.Value) > 1e-9*math.Max(1, math.Abs(w.Value)) {
				t.Fatalf("pulse %d value %v, want %v", i, g.Value, w.Value)
			}
			if math.Abs(g.Prob-w.Prob) > 1e-9 {
				t.Fatalf("pulse %d prob %v, want %v", i, g.Prob, w.Prob)
			}
		}
	})
}

// FuzzGridSparse checks the grid backend against the sparse reference
// over arbitrary pulse placements: Add, Max, and Mul results must
// agree with the exact sparse computation within the documented
// quantization bounds (each ToGrid moves a support point by at most
// step/2 and the general combine re-quantizes once more, so means
// agree within the accumulated shift and PrLE within the sparse
// bracket at +-shift).
func FuzzGridSparse(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, 0.5)
	f.Add(10.0, 10.5, 11.0, 0.25, 90.0, 0.25)
	f.Add(-3.0, 0.0, 3.0, -1.0, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, v1, v2, v3, w1, w2, step float64) {
		if step <= 1e-6 || step > 1e6 || math.IsNaN(step) || math.IsInf(step, 0) {
			return
		}
		for _, v := range []float64{v1, v2, v3, w1, w2} {
			// Keep bins per grid bounded and products finite.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e3*step {
				return
			}
		}
		p := MustNew([]Pulse{{Value: v1, Prob: 0.2}, {Value: v2, Prob: 0.3}, {Value: v3, Prob: 0.5}})
		q := MustNew([]Pulse{{Value: w1, Prob: 0.6}, {Value: w2, Prob: 0.4}})
		gp, gq := p.ToGrid(step), q.ToGrid(step)
		defer gp.Release()
		defer gq.Release()

		// Quantization alone: means within step/2, PrLE within the
		// sparse bracket at +-(step/2 + eps).
		shift := step/2 + 1e-9*math.Max(1, math.Abs(p.Max()))
		if d := math.Abs(gp.Mean() - p.Mean()); d > shift {
			t.Fatalf("ToGrid moved mean by %v > %v", d, shift)
		}
		for _, x := range []float64{v1, v2, v3, (v1 + v2) / 2} {
			lo, hi := p.PrLE(x-shift)-1e-9, p.PrLE(x+shift)+1e-9
			if got := gp.PrLE(x); got < lo || got > hi {
				t.Fatalf("ToGrid PrLE(%v) = %v outside [%v,%v]", x, got, lo, hi)
			}
		}

		check := func(name string, g *Grid, want PMF, shift float64) {
			t.Helper()
			defer g.Release()
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: invalid grid: %v", name, err)
			}
			tol := shift + 1e-6*math.Max(1, math.Abs(want.Mean()))
			if d := math.Abs(g.Mean() - want.Mean()); d > tol {
				t.Fatalf("%s: mean off by %v > %v (grid %v, sparse %v)", name, d, tol, g.Mean(), want.Mean())
			}
			for _, x := range []float64{want.Min(), want.Max(), (want.Min() + want.Max()) / 2} {
				lo := want.PrLE(x-shift) - 1e-6
				hi := want.PrLE(x+shift) + 1e-6
				if got := g.PrLE(x); got < lo || got > hi {
					t.Fatalf("%s: PrLE(%v) = %v outside [%v,%v]", name, x, got, lo, hi)
				}
			}
		}
		// Add: each operand quantized by <= step/2; the convolution
		// itself is exact on the lattice.
		check("Add", gp.Add(gq), Add(p, q), step+1e-9)
		// Max: quantization only; the CDF product is exact.
		check("Max", gp.MaxWith(gq), Max(p, q), step/2+1e-9)
		// Mul: input shifts scale by the other operand's magnitude and
		// the output re-quantizes by another step/2. Skip when the
		// product's span would need more bins than the grid cap allows.
		mx := math.Max(math.Abs(p.Min()), math.Abs(p.Max()))
		my := math.Max(math.Abs(q.Min()), math.Abs(q.Max()))
		if mx*my/step <= 1e5 {
			mulShift := step/2*(mx+my+1) + step/2 + 1e-9
			check("Mul", gp.Mul(gq), Mul(p, q), mulShift)
		}
	})
}

// FuzzRebin checks mass and mean preservation for arbitrary bin widths.
func FuzzRebin(f *testing.F) {
	f.Add(1.0)
	f.Add(0.001)
	f.Add(1000.0)
	f.Fuzz(func(t *testing.T, width float64) {
		if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) || width > 1e12 {
			return
		}
		p := MustNew([]Pulse{
			{Value: 10, Prob: 0.25}, {Value: 20, Prob: 0.25},
			{Value: 100, Prob: 0.25}, {Value: 1000, Prob: 0.25}})
		r := p.Rebin(width)
		if err := r.Validate(); err != nil {
			t.Fatalf("rebinned PMF invalid: %v", err)
		}
		if math.Abs(r.Mean()-p.Mean()) > 1e-6*p.Mean() {
			t.Fatalf("rebin moved mean: %v -> %v (width %v)", p.Mean(), r.Mean(), width)
		}
	})
}

package pmf

import (
	"math"
	"testing"
)

// FuzzNew exercises PMF construction with arbitrary pulse pairs; the
// invariant is that New either rejects the input or returns a PMF
// satisfying Validate with the mean inside the support.
func FuzzNew(f *testing.F) {
	f.Add(1.0, 0.5, 2.0, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 1.0, 5.0, 3.0)
	f.Add(1e300, 0.1, -1e300, 0.9)
	f.Fuzz(func(t *testing.T, v1, p1, v2, p2 float64) {
		pmf, err := New([]Pulse{{Value: v1, Prob: p1}, {Value: v2, Prob: p2}})
		if err != nil {
			return
		}
		if err := pmf.Validate(); err != nil {
			t.Fatalf("accepted PMF fails validation: %v", err)
		}
		m := pmf.Mean()
		if math.IsNaN(m) {
			t.Fatal("mean is NaN")
		}
		if m < pmf.Min()-1e-6*math.Abs(pmf.Min())-1e-9 ||
			m > pmf.Max()+1e-6*math.Abs(pmf.Max())+1e-9 {
			t.Fatalf("mean %v outside support [%v, %v]", m, pmf.Min(), pmf.Max())
		}
		if pr := pmf.PrLE(pmf.Max()); math.Abs(pr-1) > 1e-9 {
			t.Fatalf("PrLE(max) = %v", pr)
		}
	})
}

// FuzzRebin checks mass and mean preservation for arbitrary bin widths.
func FuzzRebin(f *testing.F) {
	f.Add(1.0)
	f.Add(0.001)
	f.Add(1000.0)
	f.Fuzz(func(t *testing.T, width float64) {
		if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) || width > 1e12 {
			return
		}
		p := MustNew([]Pulse{
			{Value: 10, Prob: 0.25}, {Value: 20, Prob: 0.25},
			{Value: 100, Prob: 0.25}, {Value: 1000, Prob: 0.25}})
		r := p.Rebin(width)
		if err := r.Validate(); err != nil {
			t.Fatalf("rebinned PMF invalid: %v", err)
		}
		if math.Abs(r.Mean()-p.Mean()) > 1e-6*p.Mean() {
			t.Fatalf("rebin moved mean: %v -> %v (width %v)", p.Mean(), r.Mean(), width)
		}
	})
}

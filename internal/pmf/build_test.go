package pmf

import (
	"math"
	"testing"

	"cdsf/internal/rng"
	"cdsf/internal/stats"
)

func TestFromSamples(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2, 3}
	p := FromSamples(xs, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-stats.Mean(xs)) > 0.5 {
		t.Errorf("binned mean = %v, sample mean = %v", p.Mean(), stats.Mean(xs))
	}
}

func TestSampledApproximatesDistribution(t *testing.T) {
	d := stats.NewNormal(100, 10)
	p := Sampled(d, 50000, 60, rng.New(5))
	if math.Abs(p.Mean()-100) > 0.5 {
		t.Errorf("sampled mean = %v", p.Mean())
	}
	if math.Abs(p.StdDev()-10) > 0.5 {
		t.Errorf("sampled stddev = %v", p.StdDev())
	}
}

func TestDiscretizeMatchesMoments(t *testing.T) {
	d := stats.NewNormal(100, 10)
	p := Discretize(d, 500)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 500 {
		t.Fatalf("len = %d", p.Len())
	}
	if math.Abs(p.Mean()-100) > 0.05 {
		t.Errorf("discretized mean = %v", p.Mean())
	}
	// Equiprobable discretization slightly under-represents the tails,
	// so allow a small downward bias on the spread.
	if math.Abs(p.StdDev()-10) > 0.3 {
		t.Errorf("discretized stddev = %v", p.StdDev())
	}
	// The discretized CDF should track the continuous CDF.
	for _, x := range []float64{80, 90, 100, 110, 120} {
		if got, want := p.PrLE(x), d.CDF(x); math.Abs(got-want) > 0.01 {
			t.Errorf("PrLE(%v) = %v, CDF = %v", x, got, want)
		}
	}
}

func TestDiscretizeRange(t *testing.T) {
	d := stats.NewNormal(0, 1)
	p := DiscretizeRange(d, -4, 4, 80)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()) > 0.01 {
		t.Errorf("mean = %v", p.Mean())
	}
	if got := p.PrLE(0.05); math.Abs(got-d.CDF(0.05)) > 0.03 {
		t.Errorf("PrLE(0.05) = %v, want ~%v", got, d.CDF(0.05))
	}
	// Tail mass must be folded in, not lost.
	total := 0.0
	for _, pl := range p.Pulses() {
		total += pl.Prob
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("total mass = %v", total)
	}
}

func TestDiscretizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Discretize with 0 pulses did not panic")
		}
	}()
	Discretize(stats.NewNormal(0, 1), 0)
}

func TestPaperPhi1FromSampledAndDiscretized(t *testing.T) {
	// The robust-IM application-3 probability (paper: 74.5% overall,
	// with apps 1-2 at ~1.0) must agree between the sampling
	// construction the paper describes and the deterministic
	// discretization this repository defaults to.
	avail := MustNew([]Pulse{{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	parallel := func(T float64) float64 { return 0.05*T + 0.95*T/8 }

	disc := Discretize(stats.NewNormal(8000, 800), 250).Map(parallel)
	probDisc := Div(disc, avail).PrLE(3250)

	samp := Sampled(stats.NewNormal(8000, 800), 200000, 200, rng.New(3)).Map(parallel)
	probSamp := Div(samp, avail).PrLE(3250)

	if math.Abs(probDisc-0.745) > 0.005 {
		t.Errorf("discretized Pr = %v, want ~0.745", probDisc)
	}
	if math.Abs(probSamp-0.745) > 0.01 {
		t.Errorf("sampled Pr = %v, want ~0.745", probSamp)
	}
}

package pmf

import (
	"fmt"
	"math"

	"cdsf/internal/rng"
	"cdsf/internal/stats"
)

// FromSamples builds a PMF by binning a sample into the given number of
// equal-width bins (empty bins are dropped). This mirrors the paper's
// construction of execution-time PMFs from sampled normal distributions.
// It panics if xs is empty or bins < 1.
func FromSamples(xs []float64, bins int) PMF {
	h := stats.NewHistogram(xs, bins)
	var ps []Pulse
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		ps = append(ps, Pulse{Value: h.BinCenter(i), Prob: float64(c) / float64(h.Total)})
	}
	return MustNew(ps)
}

// Sampled draws n variates from d using r and bins them into a PMF with
// the given number of bins. It panics if n < 1 or bins < 1.
func Sampled(d stats.Dist, n, bins int, r *rng.Source) PMF {
	if n < 1 {
		panic(fmt.Sprintf("pmf: Sampled with n=%d", n))
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return FromSamples(xs, bins)
}

// Discretize converts a continuous distribution into a PMF with the
// given number of equiprobable pulses: pulse i sits at the conditional
// mean-approximating midpoint quantile of its probability slice. This is
// the deterministic counterpart of Sampled and makes the paper's
// headline probabilities reproducible bit-for-bit. It panics if
// pulses < 1.
func Discretize(d stats.Dist, pulses int) PMF {
	if pulses < 1 {
		panic(fmt.Sprintf("pmf: Discretize with %d pulses", pulses))
	}
	ps := make([]Pulse, pulses)
	w := 1.0 / float64(pulses)
	for i := range ps {
		q := (float64(i) + 0.5) * w
		ps[i] = Pulse{Value: d.Quantile(q), Prob: w}
	}
	return MustNew(ps)
}

// DiscretizeRange converts a continuous distribution into a PMF on an
// equal-width value grid spanning [lo, hi]; pulse i carries the
// probability mass of its cell. Mass outside [lo, hi] is folded into the
// edge pulses. It panics if bins < 1 or hi <= lo.
func DiscretizeRange(d stats.Dist, lo, hi float64, bins int) PMF {
	if bins < 1 {
		panic(fmt.Sprintf("pmf: DiscretizeRange with %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("pmf: DiscretizeRange with empty range [%v,%v]", lo, hi))
	}
	w := (hi - lo) / float64(bins)
	ps := make([]Pulse, 0, bins)
	prev := 0.0 // CDF at the left edge of the current cell, clipped below lo
	for i := 0; i < bins; i++ {
		right := lo + float64(i+1)*w
		var c float64
		if i == bins-1 {
			c = 1 // fold the upper tail into the last cell
		} else {
			c = d.CDF(right)
		}
		mass := c - prev
		prev = c
		if mass <= 0 {
			continue
		}
		ps = append(ps, Pulse{Value: lo + (float64(i)+0.5)*w, Prob: mass})
	}
	return MustNew(ps)
}

// Rebin merges pulses into cells of the given width, concentrating each
// cell's mass at its probability-weighted mean value. It reduces pulse
// count after cross-combinations, which otherwise grow multiplicatively.
// It panics if width is not positive.
//
// The pulses are already sorted, so the cell keys floor(v/width) are
// non-decreasing and the cells accumulate in one sequential pass into
// the pooled scratch buffer shared with Combine — no map, no per-cell
// boxing, and (unlike the historical map-based version, which summed
// the normalizer in random iteration order) a bit-deterministic
// result.
func (p PMF) Rebin(width float64) PMF {
	if width <= 0 || math.IsNaN(width) {
		panic(fmt.Sprintf("pmf: Rebin with width %v", width))
	}
	sp := getScratch(len(p.pulses))
	defer pulseScratch.Put(sp)
	cells := (*sp)[:0]
	key := int64(math.Floor(p.pulses[0].Value / width))
	mass, sum := 0.0, 0.0
	for _, pl := range p.pulses {
		k := int64(math.Floor(pl.Value / width))
		if k != key {
			cells = append(cells, Pulse{Value: sum / mass, Prob: mass})
			key, mass, sum = k, 0, 0
		}
		mass += pl.Prob
		sum += pl.Prob * pl.Value
	}
	cells = append(cells, Pulse{Value: sum / mass, Prob: mass})

	// Cell means of increasing disjoint cells are strictly increasing,
	// so the scratch is already sorted; copy it out of the pool (the
	// constructor takes ownership of its argument) and finish.
	ps := make([]Pulse, len(cells))
	copy(ps, cells)
	total := 0.0
	for _, c := range ps {
		total += c.Prob
	}
	out, err := finishSorted(ps, total)
	if err != nil {
		panic(fmt.Sprintf("pmf: Rebin: %v", err))
	}
	return out
}

// Prune drops pulses with probability below eps (renormalizing), keeping
// at least the single most probable pulse. It panics if eps is negative
// or >= 1.
func (p PMF) Prune(eps float64) PMF {
	if eps < 0 || eps >= 1 {
		panic(fmt.Sprintf("pmf: Prune with eps %v", eps))
	}
	kept := make([]Pulse, 0, len(p.pulses))
	best := p.pulses[0]
	for _, pl := range p.pulses {
		if pl.Prob > best.Prob {
			best = pl
		}
		if pl.Prob >= eps {
			kept = append(kept, pl)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, best)
	}
	return MustNew(kept)
}

// Compact rebins p to at most maxPulses pulses (no-op when already
// small enough). The bin width is chosen from the support span. It
// panics if maxPulses < 1.
func (p PMF) Compact(maxPulses int) PMF {
	if maxPulses < 1 {
		panic(fmt.Sprintf("pmf: Compact to %d pulses", maxPulses))
	}
	if len(p.pulses) <= maxPulses {
		return p
	}
	if in := instrPtr.Load(); in != nil {
		in.truncated.Inc()
	}
	span := p.Max() - p.Min()
	if span == 0 {
		return p
	}
	q := p.Rebin(span / float64(maxPulses))
	// Guard against boundary effects leaving one extra cell.
	for q.Len() > maxPulses {
		span *= 1.1
		q = p.Rebin(span / float64(maxPulses))
	}
	return q
}

// Sample draws one variate from the PMF using r.
func (p PMF) Sample(r *rng.Source) float64 {
	u := r.Float64()
	s := 0.0
	for _, pl := range p.pulses {
		s += pl.Prob
		if u < s {
			return pl.Value
		}
	}
	return p.Max()
}

// Sampler returns an alias-method sampler for repeated draws; it is
// O(1) per draw versus O(n) for PMF.Sample.
func (p PMF) Sampler() *Sampler { return NewSampler(p) }

// Sampler draws from a fixed PMF in O(1) per draw using Vose's alias
// method.
type Sampler struct {
	values []float64
	prob   []float64
	alias  []int
}

// NewSampler builds the alias tables for p.
func NewSampler(p PMF) *Sampler {
	n := p.Len()
	s := &Sampler{
		values: make([]float64, n),
		prob:   make([]float64, n),
		alias:  make([]int, n),
	}
	scaled := make([]float64, n)
	var small, large []int
	for i, pl := range p.pulses {
		s.values[i] = pl.Value
		scaled[i] = pl.Prob * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
	}
	for _, i := range small {
		s.prob[i] = 1
	}
	return s
}

// Sample draws one variate.
func (s *Sampler) Sample(r *rng.Source) float64 {
	i := r.Intn(len(s.values))
	if r.Float64() < s.prob[i] {
		return s.values[i]
	}
	return s.values[s.alias[i]]
}

package pmf

import (
	"fmt"
	"math"
)

// This file provides order statistics of i.i.d. draws — the analytic
// machinery behind the runtime behaviour of STATIC scheduling. When a
// loop is split into one fixed chunk per processor and each processor
// independently draws its availability, the application finishes at the
// *maximum* of n completion times, not at the completion time of one
// typical processor. E[max] can exceed E[T] substantially (the paper's
// scenario 2: a 74.5%-robust allocation still misses the deadline at
// runtime under STATIC), and these functions quantify that gap exactly.

// MaxN returns the PMF of the maximum of n independent draws from p.
// Its CDF is F(x)^n, computed exactly on p's support. It panics if
// n < 1.
func MaxN(p PMF, n int) PMF {
	if n < 1 {
		panic(fmt.Sprintf("pmf: MaxN with n=%d", n))
	}
	if n == 1 {
		return p
	}
	ps := make([]Pulse, 0, p.Len())
	prev := 0.0
	cdf := 0.0
	for _, pl := range p.pulses {
		cdf += pl.Prob
		fn := math.Pow(cdf, float64(n))
		ps = append(ps, Pulse{Value: pl.Value, Prob: fn - prev})
		prev = fn
	}
	return MustNew(ps)
}

// MinN returns the PMF of the minimum of n independent draws from p:
// its survival function is (1-F(x))^n. It panics if n < 1.
func MinN(p PMF, n int) PMF {
	if n < 1 {
		panic(fmt.Sprintf("pmf: MinN with n=%d", n))
	}
	if n == 1 {
		return p
	}
	ps := make([]Pulse, 0, p.Len())
	// P(min = x_k) = S(x_{k-1})^n - S(x_k)^n with S the survival
	// function just after each support point.
	surv := 1.0
	prev := 1.0
	for _, pl := range p.pulses {
		surv -= pl.Prob
		sn := math.Pow(clampNonNeg(surv), float64(n))
		ps = append(ps, Pulse{Value: pl.Value, Prob: prev - sn})
		prev = sn
	}
	return MustNew(ps)
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// OrderStatistic returns the PMF of the k-th smallest of n independent
// draws from p (k in [1, n]): its CDF is the binomial tail
// sum_{j=k}^{n} C(n,j) F^j (1-F)^{n-j}. It panics on invalid k or n.
func OrderStatistic(p PMF, k, n int) PMF {
	if n < 1 || k < 1 || k > n {
		panic(fmt.Sprintf("pmf: OrderStatistic(k=%d, n=%d)", k, n))
	}
	ps := make([]Pulse, 0, p.Len())
	cdf := 0.0
	prev := 0.0
	for _, pl := range p.pulses {
		cdf += pl.Prob
		fk := binomialTail(cdf, k, n)
		ps = append(ps, Pulse{Value: pl.Value, Prob: fk - prev})
		prev = fk
	}
	return MustNew(ps)
}

// binomialTail returns P(Bin(n, f) >= k).
func binomialTail(f float64, k, n int) float64 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	// Sum C(n,j) f^j (1-f)^(n-j) for j = k..n via stable log terms.
	total := 0.0
	for j := k; j <= n; j++ {
		total += math.Exp(logChoose(n, j) + float64(j)*math.Log(f) + float64(n-j)*math.Log(1-f))
	}
	if total > 1 {
		total = 1
	}
	return total
}

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

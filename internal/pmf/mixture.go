package pmf

import (
	"fmt"
	"math"
)

// Mixture returns the mixture distribution sum_i w_i * P_i for
// non-negative weights (normalized internally). It models regime-mixed
// quantities such as availability aggregated over day/night load
// profiles. It returns an error when inputs are inconsistent or all
// weights are zero.
func Mixture(weights []float64, dists []PMF) (PMF, error) {
	if len(weights) != len(dists) {
		return PMF{}, fmt.Errorf("pmf: %d weights for %d distributions", len(weights), len(dists))
	}
	if len(dists) == 0 {
		return PMF{}, fmt.Errorf("pmf: empty mixture")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return PMF{}, fmt.Errorf("pmf: invalid mixture weight %v", w)
		}
		if dists[i].IsZero() {
			return PMF{}, fmt.Errorf("pmf: mixture component %d is empty", i)
		}
		total += w
	}
	if total == 0 {
		return PMF{}, fmt.Errorf("pmf: all mixture weights are zero")
	}
	var pulses []Pulse
	for i, d := range dists {
		w := weights[i] / total
		if w == 0 {
			continue
		}
		for _, pl := range d.pulses {
			pulses = append(pulses, Pulse{Value: pl.Value, Prob: w * pl.Prob})
		}
	}
	return New(pulses)
}

// Between returns P(a < X <= b).
func (p PMF) Between(a, b float64) float64 {
	if b < a {
		return 0
	}
	return p.PrLE(b) - p.PrLE(a)
}

// Conditional returns the distribution of X given a < X <= b, i.e. the
// PMF restricted to that interval and renormalized. It returns an error
// when the interval carries no mass.
func (p PMF) Conditional(a, b float64) (PMF, error) {
	var kept []Pulse
	for _, pl := range p.pulses {
		if pl.Value > a && pl.Value <= b {
			kept = append(kept, pl)
		}
	}
	if len(kept) == 0 {
		return PMF{}, fmt.Errorf("pmf: no mass in (%v, %v]", a, b)
	}
	return New(kept)
}

// StochasticallyDominates reports whether X (first-order) stochastically
// dominates Y: P(X <= t) <= P(Y <= t) for every t, with strict
// inequality somewhere — X is "statistically at least as large" as Y.
// For completion times one usually wants the reverse direction; see
// DominatedBy.
func StochasticallyDominates(x, y PMF) bool {
	strict := false
	// Check at every support point of either distribution.
	for _, pl := range x.pulses {
		fx, fy := x.PrLE(pl.Value), y.PrLE(pl.Value)
		if fx > fy+probTol {
			return false
		}
		if fx < fy-probTol {
			strict = true
		}
	}
	for _, pl := range y.pulses {
		fx, fy := x.PrLE(pl.Value), y.PrLE(pl.Value)
		if fx > fy+probTol {
			return false
		}
		if fx < fy-probTol {
			strict = true
		}
	}
	return strict
}

// DominatedBy reports whether X is stochastically dominated by Y —
// i.e. X is "statistically at least as small". An allocation whose
// makespan PMF is DominatedBy another's is preferable at every deadline
// simultaneously, a stronger statement than comparing phi_1 at one
// deadline.
func (p PMF) DominatedBy(y PMF) bool { return StochasticallyDominates(y, p) }

// Package pmf implements the discrete probability-mass-function algebra
// that underpins the paper's stochastic Stage-I model.
//
// The paper represents the execution time of every (application,
// processor-type) pair and the availability of every processor type as a
// PMF — a finite set of (value, probability) pulses. Stage I then needs a
// handful of algebraic operations on these PMFs:
//
//   - pulse-wise transformation (paper Eq. 2 rescales each execution-time
//     pulse to its parallel value on n processors),
//   - cross-combination of two independent PMFs under an arbitrary binary
//     operator (completion time = execution time / availability),
//   - P(X <= delta) for the deadline probability, and products of such
//     probabilities across independent applications,
//   - expectation and spread for the Table V estimates.
//
// A PMF is immutable after construction; every operation returns a new
// PMF. Pulses are kept sorted by value with strictly positive
// probabilities summing to 1 (within a small tolerance that Validate
// enforces).
package pmf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Pulse is a single atom of probability mass at Value.
type Pulse struct {
	Value float64
	Prob  float64
}

// PMF is a finite discrete probability distribution. The zero value is
// an empty, invalid PMF; construct with New, FromPairs, or a sampler.
type PMF struct {
	pulses []Pulse
	// cdf caches the running sum of pulse probabilities (cdf[i] =
	// P(X <= pulses[i].Value)) so PrLE and Quantile are binary searches
	// instead of linear scans. Built once at construction; immutable.
	cdf []float64
}

// probTol is the tolerance within which pulse probabilities must sum to 1.
const probTol = 1e-9

// mergeTol is the relative tolerance under which two pulse values are
// considered equal and their masses merged.
const mergeTol = 1e-12

// New builds a PMF from pulses. Pulses with equal values (within a tiny
// relative tolerance) are merged, zero-probability pulses are dropped,
// and the result is normalized to total mass 1. It returns an error if
// pulses is empty, a probability is negative, a value is not finite, or
// the total mass is zero.
func New(pulses []Pulse) (PMF, error) {
	if len(pulses) == 0 {
		return PMF{}, fmt.Errorf("pmf: no pulses")
	}
	ps := append([]Pulse(nil), pulses...)
	total := 0.0
	for _, p := range ps {
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			return PMF{}, fmt.Errorf("pmf: non-finite pulse value %v", p.Value)
		}
		if p.Prob < 0 || math.IsNaN(p.Prob) {
			return PMF{}, fmt.Errorf("pmf: invalid pulse probability %v", p.Prob)
		}
		total += p.Prob
	}
	if total <= 0 {
		return PMF{}, fmt.Errorf("pmf: total probability mass is zero")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Value < ps[j].Value })
	return finishSorted(ps, total)
}

// finishSorted completes construction from pulses already in ascending
// value order: it merges close values, drops zero-probability pulses,
// normalizes by total, and caches the running CDF. It takes ownership of
// ps. This is the internal constructor shared by New and the merge-based
// Combine fast path, which emits pulses in sorted order and therefore
// skips the sort entirely.
func finishSorted(ps []Pulse, total float64) (PMF, error) {
	out := ps[:0]
	for _, p := range ps {
		if p.Prob == 0 {
			continue
		}
		if n := len(out); n > 0 && closeValues(out[n-1].Value, p.Value) {
			out[n-1].Prob += p.Prob
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return PMF{}, fmt.Errorf("pmf: all pulses have zero probability")
	}
	cdf := make([]float64, len(out))
	s := 0.0
	for i := range out {
		out[i].Prob /= total
		s += out[i].Prob
		cdf[i] = s
	}
	return PMF{pulses: out, cdf: cdf}, nil
}

// MustNew is New but panics on error; intended for literals in tests,
// examples, and the embedded paper data, where the input is known valid.
func MustNew(pulses []Pulse) PMF {
	p, err := New(pulses)
	if err != nil {
		panic(err)
	}
	return p
}

// FromPairs builds a PMF from parallel slices of values and
// probabilities. It returns an error if the slices differ in length, or
// under the same conditions as New.
func FromPairs(values, probs []float64) (PMF, error) {
	if len(values) != len(probs) {
		return PMF{}, fmt.Errorf("pmf: %d values but %d probabilities", len(values), len(probs))
	}
	ps := make([]Pulse, len(values))
	for i := range values {
		ps[i] = Pulse{Value: values[i], Prob: probs[i]}
	}
	return New(ps)
}

// Point returns the degenerate PMF with all mass at v.
func Point(v float64) PMF {
	return MustNew([]Pulse{{Value: v, Prob: 1}})
}

func closeValues(a, b float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= mergeTol*scale
}

// Len returns the number of pulses.
func (p PMF) Len() int { return len(p.pulses) }

// IsZero reports whether p is the invalid zero PMF.
func (p PMF) IsZero() bool { return len(p.pulses) == 0 }

// Pulses returns a copy of the pulses in ascending value order.
func (p PMF) Pulses() []Pulse {
	return append([]Pulse(nil), p.pulses...)
}

// At returns pulse i (in ascending value order).
func (p PMF) At(i int) Pulse { return p.pulses[i] }

// Validate checks the internal invariants: at least one pulse, sorted
// strictly increasing values, strictly positive probabilities, total mass
// within probTol of 1. All constructors establish these; Validate exists
// for tests and for data deserialized from outside.
func (p PMF) Validate() error {
	if len(p.pulses) == 0 {
		return fmt.Errorf("pmf: empty")
	}
	total := 0.0
	for i, pl := range p.pulses {
		if pl.Prob <= 0 {
			return fmt.Errorf("pmf: pulse %d has non-positive probability %v", i, pl.Prob)
		}
		if i > 0 && p.pulses[i-1].Value >= pl.Value {
			return fmt.Errorf("pmf: pulses not strictly increasing at %d", i)
		}
		total += pl.Prob
	}
	if math.Abs(total-1) > probTol {
		return fmt.Errorf("pmf: total mass %v != 1", total)
	}
	return nil
}

// Mean returns the expectation E[X].
func (p PMF) Mean() float64 {
	s := 0.0
	for _, pl := range p.pulses {
		s += pl.Value * pl.Prob
	}
	return s
}

// Variance returns Var[X].
func (p PMF) Variance() float64 {
	m := p.Mean()
	s := 0.0
	for _, pl := range p.pulses {
		d := pl.Value - m
		s += d * d * pl.Prob
	}
	return s
}

// StdDev returns the standard deviation of X.
func (p PMF) StdDev() float64 { return math.Sqrt(p.Variance()) }

// Min returns the smallest support value.
func (p PMF) Min() float64 { return p.pulses[0].Value }

// Max returns the largest support value.
func (p PMF) Max() float64 { return p.pulses[len(p.pulses)-1].Value }

// PrLE returns P(X <= x) — the paper's per-application deadline
// probability when x is the system deadline. It is a binary search over
// the cached running CDF, O(log n).
func (p PMF) PrLE(x float64) float64 {
	i := sort.Search(len(p.pulses), func(i int) bool { return p.pulses[i].Value > x })
	if i == 0 {
		return 0
	}
	s := p.cdf[i-1]
	if s > 1 {
		s = 1
	}
	return s
}

// PrGT returns P(X > x).
func (p PMF) PrGT(x float64) float64 { return 1 - p.PrLE(x) }

// Quantile returns the smallest support value v with P(X <= v) >= q.
// It panics unless 0 < q <= 1. It is a binary search over the cached
// running CDF, O(log n).
func (p PMF) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("pmf: quantile probability %v out of (0,1]", q))
	}
	i := sort.Search(len(p.cdf), func(i int) bool { return p.cdf[i] >= q-probTol })
	if i < len(p.pulses) {
		return p.pulses[i].Value
	}
	return p.Max()
}

// Map returns the PMF of f(X). Colliding mapped values are merged. f must
// produce finite values.
func (p PMF) Map(f func(float64) float64) PMF {
	ps := make([]Pulse, len(p.pulses))
	for i, pl := range p.pulses {
		ps[i] = Pulse{Value: f(pl.Value), Prob: pl.Prob}
	}
	return MustNew(ps)
}

// Scale returns the PMF of c*X. It panics if c is zero or not finite.
func (p PMF) Scale(c float64) PMF {
	if c == 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("pmf: invalid scale factor %v", c))
	}
	return p.Map(func(v float64) float64 { return c * v })
}

// Shift returns the PMF of X + c.
func (p PMF) Shift(c float64) PMF {
	return p.Map(func(v float64) float64 { return v + c })
}

// Combine returns the PMF of f(X, Y) for independent X ~ p and Y ~ q,
// formed by the cross product of pulses. This is the general operation
// behind Add, Max, and Div.
//
// When f is monotone in y over q's support for every fixed pulse of p
// (true for all the named operators on their valid inputs), the cross
// product is generated as a k-way merge of pre-sorted rows, so the
// result is built in sorted order and the O(nm log nm) sort inside New
// is skipped. Operators that are not row-monotone fall back to the
// naive cross product transparently; both paths produce the same PMF.
//
// Below smallCombinePulses output pulses the merge bookkeeping (row
// orientation, monotonicity checks, cursor scans) costs more than just
// sorting, so tiny combines use a direct product loop instead.
func Combine(p, q PMF, f func(x, y float64) float64) PMF {
	in := instrPtr.Load()
	if n := len(p.pulses) * len(q.pulses); n > 0 && n <= smallCombinePulses {
		if out, ok := combineSmall(p, q, f); ok {
			if in != nil {
				in.small.Inc()
			}
			return out
		}
	} else if out, ok := combineMerge(p, q, f); ok {
		if in != nil {
			in.fast.Inc()
		}
		return out
	}
	if in != nil {
		in.fallback.Inc()
	}
	ps := make([]Pulse, 0, len(p.pulses)*len(q.pulses))
	for _, a := range p.pulses {
		for _, b := range q.pulses {
			ps = append(ps, Pulse{Value: f(a.Value, b.Value), Prob: a.Prob * b.Prob})
		}
	}
	return MustNew(ps)
}

// Add returns the PMF of X + Y (convolution) for independent X, Y.
func Add(p, q PMF) PMF {
	return Combine(p, q, func(x, y float64) float64 { return x + y })
}

// Sub returns the PMF of X - Y for independent X, Y.
func Sub(p, q PMF) PMF {
	return Combine(p, q, func(x, y float64) float64 { return x - y })
}

// Mul returns the PMF of X * Y for independent X, Y.
func Mul(p, q PMF) PMF {
	return Combine(p, q, func(x, y float64) float64 { return x * y })
}

// Div returns the PMF of X / Y for independent X, Y. It panics if q has
// support at zero. This is the completion-time operation: execution time
// divided by fractional availability.
func Div(p, q PMF) PMF {
	for _, b := range q.pulses {
		if b.Value == 0 {
			panic("pmf: division by PMF with support at zero")
		}
	}
	return Combine(p, q, func(x, y float64) float64 { return x / y })
}

// Max returns the PMF of max(X, Y) for independent X, Y — the completion
// time of two independent parallel activities, used to form the system
// makespan PMF. Unlike the generic Combine, the maximum never leaves
// the union of the two supports, so it is computed as an O(n+m) merge
// with the CDF product P(max <= x) = F_X(x) F_Y(x) rather than an
// O(n*m) cross product — the difference between milliseconds and tens
// of seconds when composing DAG completion chains at DAGMaxPulses.
func Max(p, q PMF) PMF {
	if p.IsZero() || q.IsZero() {
		return Combine(p, q, math.Max)
	}
	ps := make([]Pulse, 0, len(p.pulses)+len(q.pulses))
	var fp, fq, prev float64
	i, j := 0, 0
	for i < len(p.pulses) || j < len(q.pulses) {
		var v float64
		if j >= len(q.pulses) || (i < len(p.pulses) && p.pulses[i].Value < q.pulses[j].Value) {
			v = p.pulses[i].Value
		} else {
			v = q.pulses[j].Value
		}
		for i < len(p.pulses) && p.pulses[i].Value <= v {
			fp += p.pulses[i].Prob
			i++
		}
		for j < len(q.pulses) && q.pulses[j].Value <= v {
			fq += q.pulses[j].Prob
			j++
		}
		cdf := fp * fq
		if d := cdf - prev; d > 0 {
			ps = append(ps, Pulse{Value: v, Prob: d})
		}
		prev = cdf
	}
	return MustNew(ps)
}

// Min returns the PMF of min(X, Y) for independent X, Y, via the
// survival product P(min > x) = S_X(x) S_Y(x) on the support union
// (the same O(n+m) merge as Max).
func Min(p, q PMF) PMF {
	if p.IsZero() || q.IsZero() {
		return Combine(p, q, math.Min)
	}
	ps := make([]Pulse, 0, len(p.pulses)+len(q.pulses))
	sp, sq, prev := 1.0, 1.0, 1.0
	i, j := 0, 0
	for i < len(p.pulses) || j < len(q.pulses) {
		var v float64
		if j >= len(q.pulses) || (i < len(p.pulses) && p.pulses[i].Value < q.pulses[j].Value) {
			v = p.pulses[i].Value
		} else {
			v = q.pulses[j].Value
		}
		for i < len(p.pulses) && p.pulses[i].Value <= v {
			sp -= p.pulses[i].Prob
			i++
		}
		for j < len(q.pulses) && q.pulses[j].Value <= v {
			sq -= q.pulses[j].Prob
			j++
		}
		surv := clampNonNeg(sp) * clampNonNeg(sq)
		if d := prev - surv; d > 0 {
			ps = append(ps, Pulse{Value: v, Prob: d})
		}
		prev = surv
	}
	return MustNew(ps)
}

// MaxAll folds Max over one or more PMFs. It panics with no arguments.
func MaxAll(ps ...PMF) PMF {
	if len(ps) == 0 {
		panic("pmf: MaxAll of nothing")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Max(out, p)
	}
	return out
}

// AddAll folds Add over one or more PMFs.
func AddAll(ps ...PMF) PMF {
	if len(ps) == 0 {
		panic("pmf: AddAll of nothing")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Add(out, p)
	}
	return out
}

// String renders the PMF compactly, e.g. "{100:0.25 200:0.75}".
func (p PMF) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, pl := range p.pulses {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.6g:%.6g", pl.Value, pl.Prob)
	}
	b.WriteByte('}')
	return b.String()
}

package pmf

import (
	"sync/atomic"

	"cdsf/internal/metrics"
)

// Combine and Compact are free functions with no receiver or config
// struct to hang a registry on, so the package holds one process-wide
// instrumentation set, installed atomically by the CLIs next to
// metrics.SetDefault. The counters record how often the merge fast
// path of Combine applies versus the naive cross-product fallback, and
// how often Compact actually truncates a PMF to the pulse cap — the
// two knobs that dominate Stage-I PMF cost and accuracy.

type pmfInstr struct {
	fast      *metrics.Counter // pmf.combine_fast: merge-path Combines
	small     *metrics.Counter // pmf.combine_small: direct-product small Combines
	fallback  *metrics.Counter // pmf.combine_fallback: naive cross products
	truncated *metrics.Counter // pmf.compact_truncations: lossy Compacts
}

var instrPtr atomic.Pointer[pmfInstr]

// SetMetrics installs reg as the destination of the package's
// operation counters; nil disables them (the default). Safe to call
// concurrently with PMF operations, though CLIs install it once at
// startup. Counting never changes any computed PMF.
func SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		instrPtr.Store(nil)
		return
	}
	instrPtr.Store(&pmfInstr{
		fast:      reg.Counter("pmf.combine_fast"),
		small:     reg.Counter("pmf.combine_small"),
		fallback:  reg.Counter("pmf.combine_fallback"),
		truncated: reg.Counter("pmf.compact_truncations"),
	})
}

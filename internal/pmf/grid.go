package pmf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// This file implements the dense fixed-grid PMF backend. A Grid
// quantizes a distribution once onto a uniform lattice of step s: bin
// k carries the mass of all values rounding to k*s. Because every
// origin is an integer multiple of the step, two grids with the same
// step are always aligned, and the operator kernels reduce to flat
// loops over dense float64 slices:
//
//   - Add is an exact integer-shifted convolution (no merge, no sort),
//   - Max/Min are O(n) products of running CDFs / survival functions,
//   - PrLE is an O(1) indexed read off the cached dense CDF and
//     Quantile an O(log n) binary search,
//   - the general Combine and the Grid x sparse-PMF combine (used for
//     the completion-time division by availability) are two-pass
//     quantize-and-accumulate scans with no intermediate pulse lists.
//
// Quantization moves each support point by at most step/2, and that is
// the only error the backend introduces: every kernel afterwards is
// exact on the lattice (see DESIGN.md, "Two PMF backends", for the
// per-operator bounds). The sparse PMF type remains the exact
// reference backend.
//
// Mass and CDF buffers come from a sync.Pool arena; Release returns a
// Grid's buffers to the pool once the caller has extracted what it
// needs. Releasing is optional — an unreleased Grid is ordinary
// garbage — but the hot paths (ra's evaluation-table build) release
// every temporary, making steady-state grid operations allocation-free.

// maxGridBins bounds the number of bins a single Grid may span
// (16 MiB of mass + 16 MiB of CDF at the cap). Exceeding it means the
// step is far too small for the value range; the constructors panic
// with the offending span rather than silently thrashing memory.
const maxGridBins = 1 << 21

// floatScratch recycles mass and CDF buffers across grid operations.
var floatScratch = sync.Pool{
	New: func() any { b := make([]float64, 0, 4096); return &b },
}

// getFloats returns a pooled zeroed slice of length n (kernels
// accumulate with +=, so zeroing is part of the contract).
func getFloats(n int) *[]float64 {
	bp := floatScratch.Get().(*[]float64)
	b := *bp
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
		clear(b)
	}
	*bp = b
	return bp
}

// Grid is a distribution on the uniform lattice {(first+i)*step}: bin
// i holds P(X = (first+i)*step). Construct one with PMF.ToGrid or as
// the result of a grid operation; the zero value is invalid. Unlike
// PMF, a Grid is not normalized on construction — its total mass is
// whatever the source had (1 within tolerance) — and it is immutable
// through its methods but owns pooled buffers, so do not use a Grid
// after calling Release.
type Grid struct {
	step  float64
	first int64 // bin i's value is (first+i)*step
	mass  []float64
	cdf   []float64 // cdf[i] = sum of mass[0..i]

	// massBuf/cdfBuf are the pooled backing buffers (mass/cdf may be
	// sub-slices after tail trimming); nil after Release.
	massBuf, cdfBuf *[]float64

	// released marks a poisoned grid: its buffers are back in the pool
	// and may already belong to another grid, so every further use —
	// including a second Release — panics instead of silently reading
	// or double-freeing aliased memory.
	released bool
}

// binOf returns the lattice bin of value v under step.
func binOf(v, step float64) int64 {
	return int64(math.Round(v / step))
}

// checkStep panics unless step is a usable grid step.
func checkStep(step float64) {
	if step <= 0 || math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("pmf: invalid grid step %v", step))
	}
}

// checkBins panics when a prospective grid would exceed the bin cap.
func checkBins(n int64, step float64) {
	if n > maxGridBins {
		panic(fmt.Sprintf("pmf: grid of %d bins at step %v exceeds the %d-bin cap", n, step, maxGridBins))
	}
}

// newGrid allocates a pooled grid of n zeroed bins starting at first.
func newGrid(step float64, first int64, n int) *Grid {
	checkBins(int64(n), step)
	mb := getFloats(n)
	return &Grid{step: step, first: first, mass: *mb, massBuf: mb}
}

// finish trims zero-mass tails and caches the running CDF. It panics
// if the grid carries no mass (operations on valid inputs cannot
// produce that).
func (g *Grid) finish() *Grid {
	lo, hi := 0, len(g.mass)-1
	for lo <= hi && g.mass[lo] == 0 {
		lo++
	}
	for hi >= lo && g.mass[hi] == 0 {
		hi--
	}
	if lo > hi {
		panic("pmf: grid with zero total mass")
	}
	g.mass = g.mass[lo : hi+1]
	g.first += int64(lo)
	cb := getFloats(len(g.mass))
	cdf := *cb
	s := 0.0
	for i, m := range g.mass {
		s += m
		cdf[i] = s
	}
	g.cdf = cdf
	g.cdfBuf = cb
	return g
}

// Release returns the grid's buffers to the pool and poisons the grid:
// any later use, including a second Release, panics. (Before the
// poisoning, both misuses silently aliased pooled buffers — a
// double-Release handed the same buffer to two future grids, and a
// use-after-release read whatever grid owned the buffer next.)
// Releasing is optional; an unreleased grid is ordinary garbage.
func (g *Grid) Release() {
	if g.released {
		panic("pmf: Grid.Release called twice (buffers already returned to the pool)")
	}
	g.released = true
	if g.massBuf != nil {
		floatScratch.Put(g.massBuf)
		g.massBuf = nil
	}
	if g.cdfBuf != nil {
		floatScratch.Put(g.cdfBuf)
		g.cdfBuf = nil
	}
	g.mass, g.cdf = nil, nil
}

// check panics when the grid has been Released; it guards every read
// path so use-after-release fails loudly instead of observing pooled
// buffers that may now belong to a different grid.
func (g *Grid) check() {
	if g.released {
		panic("pmf: use of a released Grid (its buffers were returned to the pool)")
	}
}

// Clone returns a deep copy detached from the buffer pool: the copy
// owns plain heap slices, so it remains valid after the receiver is
// Released and may be retained indefinitely (the solve cache's warm
// tier stores clones). Releasing a clone only poisons it; nothing goes
// back to the pool.
func (g *Grid) Clone() *Grid {
	g.check()
	return &Grid{
		step:  g.step,
		first: g.first,
		mass:  append([]float64(nil), g.mass...),
		cdf:   append([]float64(nil), g.cdf...),
	}
}

// ToGrid quantizes the PMF onto the lattice of the given step: each
// pulse's mass lands in the bin its value rounds to. This is the one
// lossy conversion of the backend — every support point moves by at
// most step/2 — and the natural analogue of Compact (a 2000-pulse PMF
// becomes at most span/step bins in one O(n) pass). It panics if step
// is not positive and finite or the span exceeds the bin cap.
func (p PMF) ToGrid(step float64) *Grid {
	checkStep(step)
	if p.IsZero() {
		panic("pmf: ToGrid of zero PMF")
	}
	first := binOf(p.pulses[0].Value, step)
	last := binOf(p.pulses[len(p.pulses)-1].Value, step)
	g := newGrid(step, first, int(last-first+1))
	for _, pl := range p.pulses {
		g.mass[binOf(pl.Value, step)-first] += pl.Prob
	}
	return g.finish()
}

// ToPMF converts the grid back to the sparse representation: one pulse
// per occupied bin, renormalized to total mass 1 like every PMF
// constructor.
func (g *Grid) ToPMF() PMF {
	g.check()
	ps := make([]Pulse, 0, len(g.mass))
	total := 0.0
	for i, m := range g.mass {
		if m == 0 {
			continue
		}
		ps = append(ps, Pulse{Value: g.value(i), Prob: m})
		total += m
	}
	out, err := finishSorted(ps, total)
	if err != nil {
		panic(fmt.Sprintf("pmf: grid to PMF: %v", err))
	}
	return out
}

// value returns the lattice value of bin i.
func (g *Grid) value(i int) float64 { return float64(g.first+int64(i)) * g.step }

// last returns the bin index of the final bin.
func (g *Grid) last() int64 { return g.first + int64(len(g.mass)) - 1 }

// Step returns the lattice step.
func (g *Grid) Step() float64 { return g.step }

// Len returns the number of bins spanned (including interior
// zero-mass bins; tails are always trimmed).
func (g *Grid) Len() int { g.check(); return len(g.mass) }

// Min returns the smallest support value.
func (g *Grid) Min() float64 { g.check(); return g.value(0) }

// Max returns the largest support value.
func (g *Grid) Max() float64 { g.check(); return g.value(len(g.mass) - 1) }

// total returns the grid's total mass (1 within tolerance for grids
// built from valid PMFs).
func (g *Grid) total() float64 { return g.cdf[len(g.cdf)-1] }

// cdfAt returns the CDF at bin k, extended by 0 below the support and
// the total mass above it.
func (g *Grid) cdfAt(k int64) float64 {
	i := k - g.first
	switch {
	case i < 0:
		return 0
	case i >= int64(len(g.cdf)):
		return g.total()
	}
	return g.cdf[i]
}

// Validate checks the internal invariants: a positive finite step,
// non-negative finite masses summing to 1 within probTol, occupied
// first and last bins, and a consistent cached CDF.
func (g *Grid) Validate() error {
	if g == nil || len(g.mass) == 0 {
		return fmt.Errorf("pmf: empty grid")
	}
	if g.step <= 0 || math.IsNaN(g.step) || math.IsInf(g.step, 0) {
		return fmt.Errorf("pmf: grid step %v", g.step)
	}
	total := 0.0
	for i, m := range g.mass {
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("pmf: grid bin %d has mass %v", i, m)
		}
		total += m
	}
	if g.mass[0] == 0 || g.mass[len(g.mass)-1] == 0 {
		return fmt.Errorf("pmf: grid has an untrimmed zero-mass tail")
	}
	if math.Abs(total-1) > probTol {
		return fmt.Errorf("pmf: grid total mass %v != 1", total)
	}
	if len(g.cdf) != len(g.mass) {
		return fmt.Errorf("pmf: grid cdf has %d entries for %d bins", len(g.cdf), len(g.mass))
	}
	return nil
}

// Mean returns E[X].
func (g *Grid) Mean() float64 {
	g.check()
	sw, si := 0.0, 0.0
	for i, m := range g.mass {
		sw += m
		si += float64(i) * m
	}
	return g.step * (float64(g.first)*sw + si)
}

// Variance returns Var[X].
func (g *Grid) Variance() float64 {
	mu := g.Mean()
	s := 0.0
	for i, m := range g.mass {
		d := g.value(i) - mu
		s += d * d * m
	}
	return s
}

// StdDev returns the standard deviation of X.
func (g *Grid) StdDev() float64 { return math.Sqrt(g.Variance()) }

// PrLE returns P(X <= x): an O(1) indexed read off the dense CDF. The
// support values are exact lattice points, so x is compared against
// them with a tiny tolerance absorbing the division rounding.
func (g *Grid) PrLE(x float64) float64 {
	g.check()
	k := int64(math.Floor(x/g.step + 1e-9))
	s := g.cdfAt(k)
	if s > 1 {
		s = 1
	}
	return s
}

// PrGT returns P(X > x).
func (g *Grid) PrGT(x float64) float64 { return 1 - g.PrLE(x) }

// Quantile returns the smallest support value v with P(X <= v) >= q,
// mirroring PMF.Quantile. It panics unless 0 < q <= 1.
func (g *Grid) Quantile(q float64) float64 {
	g.check()
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("pmf: quantile probability %v out of (0,1]", q))
	}
	i := sort.SearchFloat64s(g.cdf, q-probTol)
	if i >= len(g.mass) {
		return g.Max()
	}
	return g.value(i)
}

// sameStep panics unless g and h share a lattice step; cross-step
// operations would need a resampling policy the caller should choose
// explicitly (convert through ToPMF/ToGrid).
func (g *Grid) sameStep(h *Grid) {
	g.check()
	h.check()
	if g.step != h.step {
		panic(fmt.Sprintf("pmf: grid step mismatch %v vs %v", g.step, h.step))
	}
}

// Add returns the grid of X + Y for independent X, Y: an exact dense
// convolution — the output lattice origin is the sum of the input
// origins and every product mass lands on an exact lattice point, so
// no re-quantization happens.
func (g *Grid) Add(h *Grid) *Grid {
	g.sameStep(h)
	n := len(g.mass) + len(h.mass) - 1
	out := newGrid(g.step, g.first+h.first, n)
	for i, gm := range g.mass {
		if gm == 0 {
			continue
		}
		row := out.mass[i : i+len(h.mass)]
		for j, hm := range h.mass {
			row[j] += gm * hm
		}
	}
	return out.finish()
}

// MaxWith returns the grid of max(X, Y) for independent X, Y (named
// so the support accessor can keep PMF's Max spelling). On a shared
// lattice it is exact: P(max <= k) = F_X(k) * F_Y(k), so the mass at
// bin k is the first difference of the CDF product — one O(n) pass,
// no cross product.
func (g *Grid) MaxWith(h *Grid) *Grid {
	g.sameStep(h)
	first := g.first
	if h.first > first {
		first = h.first
	}
	last := g.last()
	if h.last() > last {
		last = h.last()
	}
	out := newGrid(g.step, first, int(last-first+1))
	prev := g.cdfAt(first-1) * h.cdfAt(first-1)
	for k := first; k <= last; k++ {
		cur := g.cdfAt(k) * h.cdfAt(k)
		m := cur - prev
		if m < 0 { // float rounding on the difference of near-equal products
			m = 0
		}
		out.mass[k-first] = m
		prev = cur
	}
	return out.finish()
}

// MinWith returns the grid of min(X, Y) for independent X, Y, via the
// survival-function product: P(min = k) = S_X(k-1)S_Y(k-1) - S_X(k)S_Y(k).
func (g *Grid) MinWith(h *Grid) *Grid {
	g.sameStep(h)
	first := g.first
	if h.first < first {
		first = h.first
	}
	last := g.last()
	if h.last() < last {
		last = h.last()
	}
	out := newGrid(g.step, first, int(last-first+1))
	gt, ht := g.total(), h.total()
	prev := (gt - g.cdfAt(first-1)) * (ht - h.cdfAt(first-1))
	for k := first; k <= last; k++ {
		cur := (gt - g.cdfAt(k)) * (ht - h.cdfAt(k))
		m := prev - cur
		if m < 0 {
			m = 0
		}
		out.mass[k-first] = m
		prev = cur
	}
	return out.finish()
}

// Combine returns the grid of f(X, Y) for independent X, Y on the same
// lattice: a two-pass quantize-and-accumulate over the occupied bin
// pairs (the first pass sizes the output, the second scatters mass),
// with no intermediate pulse list to sort or merge. f must produce
// finite values. Prefer Add/Max/Min, which exploit structure this
// general kernel cannot.
func (g *Grid) Combine(h *Grid, f func(x, y float64) float64) *Grid {
	g.sameStep(h)
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for i, gm := range g.mass {
		if gm == 0 {
			continue
		}
		x := g.value(i)
		for j, hm := range h.mass {
			if hm == 0 {
				continue
			}
			v := f(x, h.value(j))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				panic(fmt.Sprintf("pmf: grid combine produced %v", v))
			}
			k := binOf(v, g.step)
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
	}
	if lo > hi {
		panic("pmf: grid combine of zero-mass grids")
	}
	out := newGrid(g.step, lo, int(hi-lo+1))
	for i, gm := range g.mass {
		if gm == 0 {
			continue
		}
		x := g.value(i)
		for j, hm := range h.mass {
			if hm == 0 {
				continue
			}
			out.mass[binOf(f(x, h.value(j)), g.step)-lo] += gm * hm
		}
	}
	return out.finish()
}

// Mul returns the grid of X * Y on the shared lattice (general
// kernel; the product of two lattice points is generally not a lattice
// point, so it re-quantizes).
func (g *Grid) Mul(h *Grid) *Grid {
	return g.Combine(h, func(x, y float64) float64 { return x * y })
}

// CombinePMF returns the grid of f(X, Y) where X is the grid and Y the
// sparse PMF q. This is how availability enters the grid backend:
// availability PMFs live on (0, 1], far below any completion-time
// step, so they stay sparse and each pulse scatters a scaled copy of
// the grid. f must produce finite values.
func (g *Grid) CombinePMF(q PMF, f func(x, y float64) float64) *Grid {
	g.check()
	if q.IsZero() {
		panic("pmf: grid combine with zero PMF")
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for i, gm := range g.mass {
		if gm == 0 {
			continue
		}
		x := g.value(i)
		for _, pl := range q.pulses {
			v := f(x, pl.Value)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				panic(fmt.Sprintf("pmf: grid combine produced %v", v))
			}
			k := binOf(v, g.step)
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
	}
	if lo > hi {
		panic("pmf: grid combine of a zero-mass grid")
	}
	out := newGrid(g.step, lo, int(hi-lo+1))
	for _, pl := range q.pulses {
		y, py := pl.Value, pl.Prob
		for i, gm := range g.mass {
			if gm == 0 {
				continue
			}
			out.mass[binOf(f(g.value(i), y), g.step)-lo] += gm * py
		}
	}
	return out.finish()
}

// DivPMF returns the grid of X / Y for the grid X and sparse Y — the
// completion-time operation (execution time over fractional
// availability). It panics if q has support at zero.
func (g *Grid) DivPMF(q PMF) *Grid {
	for _, pl := range q.pulses {
		if pl.Value == 0 {
			panic("pmf: division by PMF with support at zero")
		}
	}
	return g.CombinePMF(q, func(x, y float64) float64 { return x / y })
}

// String renders the grid compactly, e.g. "grid{step=5 [100,200] bins=21}".
func (g *Grid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid{step=%.6g [%.6g,%.6g] bins=%d}", g.step, g.Min(), g.Max(), len(g.mass))
	return b.String()
}

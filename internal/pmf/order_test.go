package pmf

import (
	"math"
	"testing"
	"testing/quick"
)

func coin() PMF {
	return MustNew([]Pulse{{Value: 0, Prob: 0.5}, {Value: 1, Prob: 0.5}})
}

func TestMaxNCoin(t *testing.T) {
	// Max of 2 fair 0/1 draws: P(0) = 1/4, P(1) = 3/4.
	m := MaxN(coin(), 2)
	if math.Abs(m.PrLE(0)-0.25) > 1e-12 {
		t.Errorf("P(max<=0) = %v", m.PrLE(0))
	}
	if math.Abs(m.Mean()-0.75) > 1e-12 {
		t.Errorf("E[max] = %v", m.Mean())
	}
	// Max of n: P(0) = 2^-n.
	m10 := MaxN(coin(), 10)
	if math.Abs(m10.PrLE(0)-math.Pow(0.5, 10)) > 1e-12 {
		t.Errorf("P(max10<=0) = %v", m10.PrLE(0))
	}
	// n = 1 is the identity.
	if !equalPMF(MaxN(coin(), 1), coin()) {
		t.Error("MaxN(1) != identity")
	}
}

func TestMinNCoin(t *testing.T) {
	// Min of 2 fair 0/1 draws: P(1) = 1/4.
	m := MinN(coin(), 2)
	if math.Abs(m.Mean()-0.25) > 1e-12 {
		t.Errorf("E[min] = %v", m.Mean())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderStatisticMedian(t *testing.T) {
	// 3 draws from uniform {1,2,3}: the 2nd order statistic (median).
	u := MustNew([]Pulse{{Value: 1, Prob: 1.0 / 3}, {Value: 2, Prob: 1.0 / 3}, {Value: 3, Prob: 1.0 / 3}})
	med := OrderStatistic(u, 2, 3)
	if err := med.Validate(); err != nil {
		t.Fatal(err)
	}
	// P(median <= 1) = P(at least 2 of 3 draws = 1) = C(3,2)(1/3)^2(2/3) + (1/3)^3 = 7/27.
	if got, want := med.PrLE(1), 7.0/27; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(median<=1) = %v, want %v", got, want)
	}
	// Extremes match MaxN / MinN.
	if !equalPMF(OrderStatistic(u, 3, 3), MaxN(u, 3)) {
		t.Error("k=n order statistic != MaxN")
	}
	if !equalPMF(OrderStatistic(u, 1, 3), MinN(u, 3)) {
		t.Error("k=1 order statistic != MinN")
	}
}

func TestOrderMeansMonotone(t *testing.T) {
	u := MustNew([]Pulse{
		{Value: 1, Prob: 0.25}, {Value: 2, Prob: 0.25},
		{Value: 5, Prob: 0.25}, {Value: 9, Prob: 0.25}})
	prev := math.Inf(-1)
	for k := 1; k <= 5; k++ {
		m := OrderStatistic(u, k, 5).Mean()
		if m < prev-1e-12 {
			t.Fatalf("order-statistic means not monotone at k=%d", k)
		}
		prev = m
	}
	// E[max of n] grows with n.
	if MaxN(u, 4).Mean() <= MaxN(u, 2).Mean() {
		t.Error("E[max] not growing with n")
	}
}

func TestOrderPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MaxN(coin(), 0) },
		func() { MinN(coin(), 0) },
		func() { OrderStatistic(coin(), 0, 3) },
		func() { OrderStatistic(coin(), 4, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid order-statistic call did not panic")
				}
			}()
			f()
		}()
	}
}

func equalPMF(a, b PMF) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		pa, pb := a.At(i), b.At(i)
		if math.Abs(pa.Value-pb.Value) > 1e-12 || math.Abs(pa.Prob-pb.Prob) > 1e-12 {
			return false
		}
	}
	return true
}

// TestQuickOrderStatisticsLaws property-checks, for random PMFs:
// total mass 1 after every order operation, E[min] <= E[X] <= E[max],
// and MaxN's CDF dominance (P(max<=t) <= P(X<=t)).
func TestQuickOrderStatisticsLaws(t *testing.T) {
	f := func(raw []float64, nRaw uint8) bool {
		ps := quickPulses(raw)
		if len(ps) == 0 {
			return true
		}
		p, err := New(ps)
		if err != nil {
			return true
		}
		n := int(nRaw%6) + 1
		mx := MaxN(p, n)
		mn := MinN(p, n)
		if mx.Validate() != nil || mn.Validate() != nil {
			return false
		}
		tol := 1e-9 * (1 + math.Abs(p.Mean()))
		if mn.Mean() > p.Mean()+tol || p.Mean() > mx.Mean()+tol {
			return false
		}
		// CDF dominance at every support point.
		for _, pl := range p.Pulses() {
			if mx.PrLE(pl.Value) > p.PrLE(pl.Value)+1e-9 {
				return false
			}
			if mn.PrLE(pl.Value) < p.PrLE(pl.Value)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

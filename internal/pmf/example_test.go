package pmf_test

import (
	"fmt"

	"cdsf/internal/pmf"
	"cdsf/internal/stats"
)

// ExampleDiv models the paper's Stage-I completion time: a parallel
// execution time divided by an uncertain fractional availability.
func ExampleDiv() {
	execTime := pmf.Point(1000)
	avail := pmf.MustNew([]pmf.Pulse{
		{Value: 0.5, Prob: 0.25},
		{Value: 1.0, Prob: 0.75},
	})
	completion := pmf.Div(execTime, avail)
	fmt.Printf("E[T] = %.0f\n", completion.Mean())
	fmt.Printf("Pr(T <= 1500) = %.2f\n", completion.PrLE(1500))
	// Output:
	// E[T] = 1250
	// Pr(T <= 1500) = 0.75
}

// ExampleDiscretize converts the paper's Normal(mu, mu/10) execution
// times into the discrete PMFs Stage I operates on.
func ExampleDiscretize() {
	p := pmf.Discretize(stats.NewNormal(8000, 800), 250)
	fmt.Printf("mean ~ %.0f, stddev ~ %.0f\n", p.Mean(), p.StdDev())
	fmt.Printf("Pr(T <= 9000) = %.2f\n", p.PrLE(9000))
	// Output:
	// mean ~ 8000, stddev ~ 798
	// Pr(T <= 9000) = 0.90
}

// ExamplePMF_Map applies the paper's Eq. 2 pulse by pulse: the time on
// n processors is s*T + p*T/n.
func ExamplePMF_Map() {
	single := pmf.MustNew([]pmf.Pulse{
		{Value: 900, Prob: 0.5},
		{Value: 1100, Prob: 0.5},
	})
	const s, par, n = 0.3, 0.7, 4.0
	parallel := single.Map(func(t float64) float64 { return s*t + par*t/n })
	fmt.Printf("E[T_par] = %.1f\n", parallel.Mean())
	// Output:
	// E[T_par] = 475.0
}

// ExampleMax composes a batch makespan from independent application
// completion times.
func ExampleMax() {
	a := pmf.MustNew([]pmf.Pulse{{Value: 10, Prob: 0.5}, {Value: 20, Prob: 0.5}})
	b := pmf.MustNew([]pmf.Pulse{{Value: 15, Prob: 1}})
	makespan := pmf.Max(a, b)
	fmt.Printf("E[max] = %.1f\n", makespan.Mean())
	// Output:
	// E[max] = 17.5
}

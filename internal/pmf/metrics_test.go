package pmf

import (
	"testing"

	"cdsf/internal/metrics"
)

// wideUniform builds an n-pulse uniform PMF on {lo, lo+1, ...} for
// driving Combine past the small-combine threshold.
func wideUniform(lo float64, n int) PMF {
	ps := make([]Pulse, n)
	for i := range ps {
		ps[i] = Pulse{Value: lo + float64(i), Prob: 1 / float64(n)}
	}
	return MustNew(ps)
}

// TestSetMetricsCountsPaths verifies the package counters distinguish
// the three Combine paths (merge fast path, direct small-combine, and
// the naive fallback), record Compact truncations, and that counting
// leaves results untouched.
func TestSetMetricsCountsPaths(t *testing.T) {
	a := MustNew([]Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	b := MustNew([]Pulse{{Value: 3, Prob: 0.25}, {Value: 4, Prob: 0.5}, {Value: 5, Prob: 0.25}})
	wa := wideUniform(0, 20)
	wb := wideUniform(100, 20)

	plain := Add(a, b)

	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	// A 2x3 combine is far below smallCombinePulses: direct product.
	counted := Add(a, b)
	if got := reg.Counter("pmf.combine_small").Value(); got != 1 {
		t.Errorf("combine_small = %d, want 1 (2x3 Add is a small combine)", got)
	}
	if got := reg.Counter("pmf.combine_fast").Value(); got != 0 {
		t.Errorf("combine_fast = %d, want 0", got)
	}
	if len(plain.Pulses()) != len(counted.Pulses()) {
		t.Fatal("metrics changed the combined PMF")
	}
	for i, pl := range plain.Pulses() {
		if counted.Pulses()[i] != pl {
			t.Fatalf("pulse %d changed: %v vs %v", i, counted.Pulses()[i], pl)
		}
	}

	// A 20x20 combine exceeds the threshold and Add is row-monotone:
	// merge fast path.
	Add(wa, wb)
	if got := reg.Counter("pmf.combine_fast").Value(); got != 1 {
		t.Errorf("combine_fast = %d, want 1 (large Add is row-monotone)", got)
	}

	// An operator that is non-monotone in y over a large row forces
	// the naive cross-product fallback.
	Combine(wa, wb, func(x, y float64) float64 { return x + (y-110)*(y-110) })
	if got := reg.Counter("pmf.combine_fallback").Value(); got != 1 {
		t.Errorf("combine_fallback = %d, want 1", got)
	}
	if got := reg.Counter("pmf.combine_fast").Value(); got != 1 {
		t.Errorf("combine_fast = %d after fallback, want 1", got)
	}

	// Compact below the current pulse count truncates; at or above it
	// does not.
	n := plain.Len()
	if n < 3 {
		t.Fatalf("need a wide PMF, got %d pulses", n)
	}
	plain.Compact(n) // no-op
	if got := reg.Counter("pmf.compact_truncations").Value(); got != 0 {
		t.Errorf("no-op Compact counted: %d", got)
	}
	plain.Compact(2)
	if got := reg.Counter("pmf.compact_truncations").Value(); got != 1 {
		t.Errorf("compact_truncations = %d, want 1", got)
	}

	// After SetMetrics(nil) counting stops.
	SetMetrics(nil)
	Add(a, b)
	if got := reg.Counter("pmf.combine_small").Value(); got != 1 {
		t.Errorf("counter advanced after SetMetrics(nil): %d", got)
	}
}

package pmf

import (
	"testing"

	"cdsf/internal/metrics"
)

// TestSetMetricsCountsPaths verifies the package counters distinguish
// the Combine merge fast path from the naive fallback and record
// Compact truncations, and that counting leaves results untouched.
func TestSetMetricsCountsPaths(t *testing.T) {
	a := MustNew([]Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	b := MustNew([]Pulse{{Value: 3, Prob: 0.25}, {Value: 4, Prob: 0.5}, {Value: 5, Prob: 0.25}})

	plain := Add(a, b)

	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	counted := Add(a, b)
	if got := reg.Counter("pmf.combine_fast").Value(); got != 1 {
		t.Errorf("combine_fast = %d, want 1 (Add is row-monotone)", got)
	}
	if got := reg.Counter("pmf.combine_fallback").Value(); got != 0 {
		t.Errorf("combine_fallback = %d, want 0", got)
	}
	if len(plain.Pulses()) != len(counted.Pulses()) {
		t.Fatal("metrics changed the combined PMF")
	}
	for i, pl := range plain.Pulses() {
		if counted.Pulses()[i] != pl {
			t.Fatalf("pulse %d changed: %v vs %v", i, counted.Pulses()[i], pl)
		}
	}

	// An operator that is non-monotone in y over a 3-pulse row (the
	// row reads 1, 0, 1) forces the naive cross-product fallback.
	Combine(a, b, func(x, y float64) float64 { return x + (y-4)*(y-4) })
	if got := reg.Counter("pmf.combine_fallback").Value(); got != 1 {
		t.Errorf("combine_fallback = %d, want 1", got)
	}
	if got := reg.Counter("pmf.combine_fast").Value(); got != 1 {
		t.Errorf("combine_fast = %d after fallback, want 1", got)
	}

	// Compact below the current pulse count truncates; at or above it
	// does not.
	n := plain.Len()
	if n < 3 {
		t.Fatalf("need a wide PMF, got %d pulses", n)
	}
	plain.Compact(n) // no-op
	if got := reg.Counter("pmf.compact_truncations").Value(); got != 0 {
		t.Errorf("no-op Compact counted: %d", got)
	}
	plain.Compact(2)
	if got := reg.Counter("pmf.compact_truncations").Value(); got != 1 {
		t.Errorf("compact_truncations = %d, want 1", got)
	}

	// After SetMetrics(nil) counting stops.
	SetMetrics(nil)
	Add(a, b)
	if got := reg.Counter("pmf.combine_fast").Value(); got != 1 {
		t.Errorf("counter advanced after SetMetrics(nil): %d", got)
	}
}

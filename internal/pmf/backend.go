package pmf

import "fmt"

// Backend selects the distribution representation used by the engines
// that can run on either: the exact sparse pulse list (PMF) or the
// fixed-step dense grid (Grid). The zero value means sparse, so
// structs gain a Backend field without changing their behaviour.
type Backend string

const (
	// BackendSparse is the exact sorted-pulse representation — the
	// reference backend. Seeded runs under it are bit-identical to the
	// pre-grid revisions of this repository.
	BackendSparse Backend = "sparse"
	// BackendGrid is the fixed-step dense-grid representation: faster
	// kernels at the cost of a bounded quantization error (see
	// DESIGN.md, "Two PMF backends").
	BackendGrid Backend = "grid"
)

// ParseBackend maps a user-supplied string to a Backend. The empty
// string parses as BackendSparse (the default everywhere).
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendSparse:
		return BackendSparse, nil
	case BackendGrid:
		return BackendGrid, nil
	}
	return "", fmt.Errorf("pmf: unknown backend %q (want %q or %q)", s, BackendSparse, BackendGrid)
}

// Validate reports whether b names a known backend ("" counts as
// sparse).
func (b Backend) Validate() error {
	_, err := ParseBackend(string(b))
	return err
}

// IsGrid reports whether b selects the grid backend. It is the single
// branch point the engines test, so "" and "sparse" behave
// identically.
func (b Backend) IsGrid() bool { return b == BackendGrid }

// String implements fmt.Stringer; the zero value prints as "sparse".
func (b Backend) String() string {
	if b == "" {
		return string(BackendSparse)
	}
	return string(b)
}

// MarshalText implements encoding.TextMarshaler so a Backend can be a
// flag.TextVar target and a JSON string field.
func (b Backend) MarshalText() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (b *Backend) UnmarshalText(text []byte) error {
	p, err := ParseBackend(string(text))
	if err != nil {
		return err
	}
	*b = p
	return nil
}

// Dist is the read-only surface shared by the two backends: the
// queries Stage I and the reporting paths need from a completion-time
// distribution, regardless of representation. PMF and *Grid both
// implement it.
type Dist interface {
	// PrLE returns P(X <= x).
	PrLE(x float64) float64
	// Quantile returns the smallest support value v with P(X <= v) >= q.
	Quantile(q float64) float64
	// Mean returns E[X].
	Mean() float64
	// StdDev returns the standard deviation of X.
	StdDev() float64
	// Len returns the number of support atoms (pulses or grid bins).
	Len() int
}

var (
	_ Dist = PMF{}
	_ Dist = (*Grid)(nil)
)

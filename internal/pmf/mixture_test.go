package pmf

import (
	"math"
	"testing"
)

func TestMixtureMeanIsWeightedMean(t *testing.T) {
	a := Point(10)
	b := Point(20)
	m, err := Mixture([]float64{1, 3}, []PMF{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("mixture mean = %v, want 17.5", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixtureErrors(t *testing.T) {
	a := Point(1)
	if _, err := Mixture([]float64{1}, []PMF{a, a}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Mixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := Mixture([]float64{-1}, []PMF{a}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Mixture([]float64{0, 0}, []PMF{a, a}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := Mixture([]float64{1}, []PMF{{}}); err == nil {
		t.Error("empty component accepted")
	}
}

func TestMixtureSkipsZeroWeight(t *testing.T) {
	m, err := Mixture([]float64{1, 0}, []PMF{Point(5), Point(50)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.Mean() != 5 {
		t.Errorf("zero-weight component leaked: %v", m)
	}
}

func TestBetweenAndConditional(t *testing.T) {
	p := MustNew([]Pulse{
		{Value: 1, Prob: 0.25}, {Value: 2, Prob: 0.25},
		{Value: 3, Prob: 0.25}, {Value: 4, Prob: 0.25}})
	if got := p.Between(1, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Between(1,3] = %v, want 0.5", got)
	}
	if got := p.Between(3, 1); got != 0 {
		t.Errorf("inverted Between = %v", got)
	}
	c, err := p.Conditional(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || math.Abs(c.Mean()-2.5) > 1e-12 {
		t.Errorf("conditional = %v", c)
	}
	if _, err := p.Conditional(10, 20); err == nil {
		t.Error("empty conditional accepted")
	}
}

func TestStochasticDominance(t *testing.T) {
	low := MustNew([]Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	high := MustNew([]Pulse{{Value: 2, Prob: 0.5}, {Value: 3, Prob: 0.5}})
	if !StochasticallyDominates(high, low) {
		t.Error("high should dominate low")
	}
	if StochasticallyDominates(low, high) {
		t.Error("low should not dominate high")
	}
	if !low.DominatedBy(high) {
		t.Error("low should be dominated by high")
	}
	// A distribution does not strictly dominate itself.
	if StochasticallyDominates(low, low) {
		t.Error("self-dominance should be false (no strict inequality)")
	}
	// Crossing CDFs: neither dominates.
	a := MustNew([]Pulse{{Value: 0, Prob: 0.5}, {Value: 10, Prob: 0.5}})
	b := Point(5)
	if StochasticallyDominates(a, b) || StochasticallyDominates(b, a) {
		t.Error("crossing CDFs should have no dominance either way")
	}
}

func TestDominanceMeansOrderedMeans(t *testing.T) {
	// Dominance implies ordered expectations (sanity link between the
	// two comparison notions).
	low := MustNew([]Pulse{{Value: 1, Prob: 0.3}, {Value: 5, Prob: 0.7}})
	high := low.Shift(2)
	if !StochasticallyDominates(high, low) {
		t.Fatal("shifted distribution should dominate")
	}
	if high.Mean() <= low.Mean() {
		t.Error("dominating distribution has smaller mean")
	}
}

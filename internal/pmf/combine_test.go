package pmf

import (
	"math"
	"sort"
	"testing"

	"cdsf/internal/rng"
)

// naiveCombine is the straight-line reference implementation of Combine:
// the full cross product handed to the sorting constructor. The merge
// fast path must be indistinguishable from it.
func naiveCombine(p, q PMF, f func(x, y float64) float64) PMF {
	pulses := make([]Pulse, 0, p.Len()*q.Len())
	for _, a := range p.Pulses() {
		for _, b := range q.Pulses() {
			pulses = append(pulses, Pulse{Value: f(a.Value, b.Value), Prob: a.Prob * b.Prob})
		}
	}
	return MustNew(pulses)
}

// randomPMF draws a PMF with n pulses at positive values, the shape the
// scheduler's time and availability distributions take.
func randomPMF(r *rng.Source, n int) PMF {
	ps := make([]Pulse, n)
	for i := range ps {
		ps[i] = Pulse{Value: 0.5 + 100*r.Float64(), Prob: 0.05 + r.Float64()}
	}
	return MustNew(ps)
}

func samePMF(t *testing.T, got, want PMF, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d pulses, want %d\ngot  %v\nwant %v", label, got.Len(), want.Len(), got, want)
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), want.At(i)
		if math.Abs(g.Value-w.Value) > 1e-12*math.Max(1, math.Abs(w.Value)) {
			t.Fatalf("%s: pulse %d value %v, want %v", label, i, g.Value, w.Value)
		}
		if math.Abs(g.Prob-w.Prob) > 1e-12 {
			t.Fatalf("%s: pulse %d prob %v, want %v", label, i, g.Prob, w.Prob)
		}
	}
}

// TestCombineMergeMatchesNaive drives the merge fast path with every
// operator the scheduler uses and checks it is pulse-for-pulse identical
// to the naive cross product.
func TestCombineMergeMatchesNaive(t *testing.T) {
	ops := map[string]func(x, y float64) float64{
		"add": func(x, y float64) float64 { return x + y },
		"sub": func(x, y float64) float64 { return x - y },
		"mul": func(x, y float64) float64 { return x * y },
		"div": func(x, y float64) float64 { return x / y },
		"max": math.Max,
		"min": math.Min,
	}
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		p := randomPMF(r, 1+r.Intn(12))
		q := randomPMF(r, 1+r.Intn(12))
		for name, f := range ops {
			fast, ok := combineMerge(p, q, f)
			if !ok {
				t.Fatalf("trial %d op %s: merge path rejected monotone operator", trial, name)
			}
			samePMF(t, fast, naiveCombine(p, q, f), name)
		}
	}
}

// TestCombineFallbackNonMonotone checks that an operator producing
// non-monotone rows is routed to the naive path and still yields the
// correct distribution.
func TestCombineFallbackNonMonotone(t *testing.T) {
	f := func(x, y float64) float64 { return math.Abs(x - y) } // V-shaped rows
	p := MustNew([]Pulse{{1, 0.5}, {3, 0.5}})
	q := MustNew([]Pulse{{2, 0.25}, {3, 0.25}, {5, 0.5}})
	if _, ok := combineMerge(p, q, f); ok {
		// Non-monotone rows can slip through when a particular draw
		// happens to be monotone; this fixture is chosen so it does not.
		t.Fatal("merge path accepted a non-monotone row")
	}
	samePMF(t, Combine(p, q, f), naiveCombine(p, q, f), "abs-diff")
}

// TestCombineFallbackNonFinite checks that NaN/Inf results reject the
// fast path rather than corrupting the merge.
func TestCombineFallbackNonFinite(t *testing.T) {
	f := func(x, y float64) float64 {
		if x > 2 {
			return math.Inf(1)
		}
		return x + y
	}
	p := MustNew([]Pulse{{1, 0.5}, {4, 0.5}})
	q := MustNew([]Pulse{{2, 1}})
	if _, ok := combineMerge(p, q, f); ok {
		t.Fatal("merge path accepted non-finite values")
	}
}

// TestCombineManyChain checks the fold equals explicit nested Combines
// and that the pulse cap bounds every intermediate.
func TestCombineManyChain(t *testing.T) {
	r := rng.New(7)
	ps := []PMF{randomPMF(r, 6), randomPMF(r, 5), randomPMF(r, 4)}
	add := func(x, y float64) float64 { return x + y }

	want := Combine(Combine(ps[0], ps[1], add), ps[2], add)
	samePMF(t, CombineMany(add, ps), want, "uncapped chain")

	capped := CombineMany(add, ps, WithMaxPulses(10))
	if capped.Len() > 10 {
		t.Fatalf("capped chain has %d pulses", capped.Len())
	}
	if err := capped.Validate(); err != nil {
		t.Fatalf("capped chain invalid: %v", err)
	}
	if math.Abs(capped.Mean()-want.Mean()) > 0.05*want.Mean() {
		t.Fatalf("capped chain mean %v far from %v", capped.Mean(), want.Mean())
	}
}

func TestCombineManyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { CombineMany(math.Max, nil) },
		"cap0":  func() { WithMaxPulses(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPrLEQuantileMatchLinearScan compares the binary-search PrLE and
// Quantile against straight-line linear scans over the pulses.
func TestPrLEQuantileMatchLinearScan(t *testing.T) {
	prLinear := func(p PMF, x float64) float64 {
		s := 0.0
		for _, pl := range p.Pulses() {
			if pl.Value <= x {
				s += pl.Prob
			}
		}
		if s > 1 {
			s = 1
		}
		return s
	}
	qLinear := func(p PMF, q float64) float64 {
		s := 0.0
		for _, pl := range p.Pulses() {
			s += pl.Prob
			if s >= q-probTol {
				return pl.Value
			}
		}
		return p.Max()
	}
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		p := randomPMF(r, 1+r.Intn(20))
		pulses := p.Pulses()
		if !sort.SliceIsSorted(pulses, func(i, j int) bool { return pulses[i].Value < pulses[j].Value }) {
			t.Fatal("pulses not sorted")
		}
		xs := []float64{p.Min() - 1, p.Min(), p.Max(), p.Max() + 1}
		for i := 0; i < 20; i++ {
			xs = append(xs, p.Min()+(p.Max()-p.Min())*r.Float64())
		}
		// Exact pulse values probe the boundary branches of the search.
		for _, pl := range pulses {
			xs = append(xs, pl.Value)
		}
		for _, x := range xs {
			if got, want := p.PrLE(x), prLinear(p, x); got != want {
				t.Fatalf("PrLE(%v) = %v, want %v (pmf %v)", x, got, want, p)
			}
		}
		for _, q := range []float64{1e-9, 0.25, 0.5, 0.9, 1} {
			if got, want := p.Quantile(q), qLinear(p, q); got != want {
				t.Fatalf("Quantile(%v) = %v, want %v (pmf %v)", q, got, want, p)
			}
		}
	}
}

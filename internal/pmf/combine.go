package pmf

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the merge-based cross-combination kernel behind
// Combine and the chained-combination helper CombineMany. The kernel is
// the hot path of Stage I: every evaluation-table cell is a Div of an
// execution-time PMF by an availability PMF, so the search engines call
// it millions of times.

// pulseScratch recycles the flat row buffer used by combineMerge. The
// buffer holds the full n*m cross product while it is being merged and
// is returned to the pool before the call ends, so steady-state
// combinations allocate only the output slice.
var pulseScratch = sync.Pool{
	New: func() any { b := make([]Pulse, 0, 1024); return &b },
}

func getScratch(n int) *[]Pulse {
	bp := pulseScratch.Get().(*[]Pulse)
	if cap(*bp) < n {
		*bp = make([]Pulse, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// smallCombinePulses is the output size below which Combine prefers
// the direct product loop of combineSmall over the k-way merge: for a
// handful of rows of a few dozen pulses, sorting the cross product
// outright is cheaper than the merge's per-output cursor scans. The
// threshold is deliberately below the ~750-pulse completion-time
// divisions of the paper instance, which stay on the merge path (and
// therefore keep their exact historical bit patterns).
const smallCombinePulses = 256

// combineSmall is the naive cross product with the defensive copy of
// New elided: it builds the product directly, sorts it, and finishes
// through the shared constructor. ok is false on non-finite values or
// zero total mass, in which case the caller falls through to the
// error-reporting path.
func combineSmall(p, q PMF, f func(x, y float64) float64) (PMF, bool) {
	ps := make([]Pulse, 0, len(p.pulses)*len(q.pulses))
	total := 0.0
	for _, a := range p.pulses {
		for _, b := range q.pulses {
			v := f(a.Value, b.Value)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return PMF{}, false
			}
			pr := a.Prob * b.Prob
			ps = append(ps, Pulse{Value: v, Prob: pr})
			total += pr
		}
	}
	if total <= 0 {
		return PMF{}, false
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Value < ps[j].Value })
	out, err := finishSorted(ps, total)
	if err != nil {
		return PMF{}, false
	}
	return out, true
}

// rowHeap is a min-heap of row cursors ordered by the current head value
// of each row, with the row index as a deterministic tie-break.
type rowHeap struct {
	flat []Pulse // n rows of m pulses each, each row ascending
	m    int
	rows []int // heap of row indices
	pos  []int // pos[r] = cursor into row r
}

func (h *rowHeap) Len() int { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool {
	ri, rj := h.rows[i], h.rows[j]
	vi := h.flat[ri*h.m+h.pos[ri]].Value
	vj := h.flat[rj*h.m+h.pos[rj]].Value
	if vi != vj {
		return vi < vj
	}
	return ri < rj
}
func (h *rowHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)    { h.rows = append(h.rows, x.(int)) }
func (h *rowHeap) Pop() any {
	old := h.rows
	n := len(old)
	x := old[n-1]
	h.rows = old[:n-1]
	return x
}

// combineMerge is the fast path of Combine: it lays the cross product
// out as k sorted rows (k = the smaller of the two pulse counts, so the
// merge degree is minimal), checks that every row is monotone, orients
// each row ascending, and k-way-merges the rows so pulses are emitted in
// globally sorted order. ok is false when a row is non-monotone or
// contains a non-finite value, in which case the caller must use the
// naive path (whose constructor reports the error).
func combineMerge(p, q PMF, f func(x, y float64) float64) (PMF, bool) {
	outer, inner := p.pulses, q.pulses
	swapped := false
	if len(outer) > len(inner) {
		outer, inner = inner, outer
		swapped = true
	}
	k, m := len(outer), len(inner)
	if k == 0 {
		return PMF{}, false
	}
	flatp := getScratch(k * m)
	defer pulseScratch.Put(flatp)
	flat := *flatp

	total := 0.0
	for i, a := range outer {
		row := flat[i*m : (i+1)*m]
		for j, b := range inner {
			var v float64
			if swapped {
				v = f(b.Value, a.Value)
			} else {
				v = f(a.Value, b.Value)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return PMF{}, false
			}
			row[j] = Pulse{Value: v, Prob: a.Prob * b.Prob}
			total += row[j].Prob
		}
		dir := 0 // -1 descending, +1 ascending
		for j := 1; j < m; j++ {
			switch {
			case row[j].Value > row[j-1].Value:
				if dir < 0 {
					return PMF{}, false
				}
				dir = 1
			case row[j].Value < row[j-1].Value:
				if dir > 0 {
					return PMF{}, false
				}
				dir = -1
			}
		}
		if dir < 0 {
			for l, r := 0, m-1; l < r; l, r = l+1, r-1 {
				row[l], row[r] = row[r], row[l]
			}
		}
	}
	if total <= 0 {
		return PMF{}, false
	}

	out := make([]Pulse, 0, k*m)
	switch {
	case k == 1:
		out = append(out, flat...)
	case k <= 6:
		// Low merge degree (the common case: availability PMFs have a
		// handful of pulses): a straight multi-cursor scan beats the
		// interface-dispatched heap.
		pos := make([]int, k)
		for len(out) < k*m {
			best := -1
			var bestV float64
			for r := 0; r < k; r++ {
				if pos[r] == m {
					continue
				}
				v := flat[r*m+pos[r]].Value
				if best < 0 || v < bestV {
					best, bestV = r, v
				}
			}
			out = append(out, flat[best*m+pos[best]])
			pos[best]++
		}
	default:
		h := &rowHeap{flat: flat, m: m, rows: make([]int, k), pos: make([]int, k)}
		for i := range h.rows {
			h.rows[i] = i
		}
		heap.Init(h)
		for h.Len() > 0 {
			r := h.rows[0]
			out = append(out, flat[r*m+h.pos[r]])
			h.pos[r]++
			if h.pos[r] == m {
				heap.Pop(h)
			} else {
				heap.Fix(h, 0)
			}
		}
	}
	pm, err := finishSorted(out, total)
	if err != nil {
		return PMF{}, false
	}
	return pm, true
}

// CombineOption configures CombineMany.
type CombineOption func(*combineConfig)

type combineConfig struct {
	maxPulses int
}

// WithMaxPulses caps the pulse count of every intermediate (and the
// final) PMF of a chained combination: after each pairwise Combine the
// result is Compacted to at most n pulses. Without a cap, chaining k
// combinations grows the support multiplicatively, which is the
// quadratic blowup that makes long Add/Max chains intractable. It
// panics if n < 1.
func WithMaxPulses(n int) CombineOption {
	if n < 1 {
		panic(fmt.Sprintf("pmf: WithMaxPulses(%d)", n))
	}
	return func(c *combineConfig) { c.maxPulses = n }
}

// CombineMany folds Combine(·, ·, f) left to right over one or more
// PMFs, applying the configured pulse cap between steps. It panics with
// no PMFs.
func CombineMany(f func(x, y float64) float64, ps []PMF, opts ...CombineOption) PMF {
	if len(ps) == 0 {
		panic("pmf: CombineMany of nothing")
	}
	var cfg combineConfig
	for _, o := range opts {
		o(&cfg)
	}
	out := ps[0]
	if cfg.maxPulses > 0 && out.Len() > cfg.maxPulses {
		out = out.Compact(cfg.maxPulses)
	}
	for _, p := range ps[1:] {
		out = Combine(out, p, f)
		if cfg.maxPulses > 0 && out.Len() > cfg.maxPulses {
			out = out.Compact(cfg.maxPulses)
		}
	}
	return out
}

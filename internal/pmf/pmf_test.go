package pmf

import (
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/rng"
)

func mustPMF(t *testing.T, pulses []Pulse) PMF {
	t.Helper()
	p, err := New(pulses)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewNormalizes(t *testing.T) {
	p := mustPMF(t, []Pulse{{Value: 1, Prob: 2}, {Value: 2, Prob: 6}})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.At(0).Prob; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("normalized prob = %v, want 0.25", got)
	}
}

func TestNewMergesEqualValues(t *testing.T) {
	p := mustPMF(t, []Pulse{{Value: 3, Prob: 0.5}, {Value: 3, Prob: 0.25}, {Value: 5, Prob: 0.25}})
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2", p.Len())
	}
	if got := p.At(0).Prob; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("merged prob = %v", got)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := [][]Pulse{
		nil,
		{},
		{{Value: 1, Prob: -0.5}},
		{{Value: math.NaN(), Prob: 1}},
		{{Value: math.Inf(1), Prob: 1}},
		{{Value: 1, Prob: 0}},
		{{Value: 1, Prob: math.NaN()}},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPointAndMoments(t *testing.T) {
	p := Point(7)
	if p.Mean() != 7 || p.Variance() != 0 || p.Min() != 7 || p.Max() != 7 {
		t.Error("point PMF moments wrong")
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	// X in {0, 10} with equal probability: mean 5, var 25.
	p := mustPMF(t, []Pulse{{Value: 0, Prob: 0.5}, {Value: 10, Prob: 0.5}})
	if p.Mean() != 5 {
		t.Errorf("mean = %v", p.Mean())
	}
	if p.Variance() != 25 {
		t.Errorf("variance = %v", p.Variance())
	}
	if p.StdDev() != 5 {
		t.Errorf("stddev = %v", p.StdDev())
	}
}

func TestPrLEAndQuantile(t *testing.T) {
	p := mustPMF(t, []Pulse{
		{Value: 1, Prob: 0.2}, {Value: 2, Prob: 0.3}, {Value: 4, Prob: 0.5}})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.5}, {3.9, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := p.PrLE(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PrLE(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := p.PrGT(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PrGT(2) = %v", got)
	}
	if p.Quantile(0.2) != 1 || p.Quantile(0.5) != 2 || p.Quantile(0.51) != 4 || p.Quantile(1) != 4 {
		t.Error("quantiles wrong")
	}
}

func TestScaleShiftMap(t *testing.T) {
	p := mustPMF(t, []Pulse{{Value: 1, Prob: 0.5}, {Value: 3, Prob: 0.5}})
	s := p.Scale(2)
	if s.Mean() != 4 {
		t.Errorf("scaled mean = %v", s.Mean())
	}
	sh := p.Shift(10)
	if sh.Mean() != 12 {
		t.Errorf("shifted mean = %v", sh.Mean())
	}
	sq := p.Map(func(v float64) float64 { return v * v })
	if sq.Mean() != 5 { // (1+9)/2
		t.Errorf("mapped mean = %v", sq.Mean())
	}
}

func TestScalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	Point(1).Scale(0)
}

func TestAddIsConvolution(t *testing.T) {
	d6 := func() PMF {
		ps := make([]Pulse, 6)
		for i := range ps {
			ps[i] = Pulse{Value: float64(i + 1), Prob: 1.0 / 6}
		}
		return MustNew(ps)
	}
	two := Add(d6(), d6())
	if two.Len() != 11 {
		t.Fatalf("two dice support size = %d", two.Len())
	}
	if got := two.PrLE(2) - two.PrLE(1); math.Abs(got-1.0/36) > 1e-12 {
		t.Errorf("P(sum=2) = %v", got)
	}
	if got := two.Mean(); math.Abs(got-7) > 1e-12 {
		t.Errorf("two dice mean = %v", got)
	}
}

func TestMaxMinKnown(t *testing.T) {
	a := mustPMF(t, []Pulse{{Value: 1, Prob: 0.5}, {Value: 3, Prob: 0.5}})
	b := mustPMF(t, []Pulse{{Value: 2, Prob: 1}})
	mx := Max(a, b)
	// max(X, 2): {2: 0.5, 3: 0.5}
	if mx.Min() != 2 || mx.Max() != 3 || math.Abs(mx.Mean()-2.5) > 1e-12 {
		t.Errorf("max PMF wrong: %v", mx)
	}
	mn := Min(a, b)
	if mn.Min() != 1 || mn.Max() != 2 || math.Abs(mn.Mean()-1.5) > 1e-12 {
		t.Errorf("min PMF wrong: %v", mn)
	}
}

func TestDivByAvailability(t *testing.T) {
	exec := mustPMF(t, []Pulse{{Value: 100, Prob: 1}})
	avail := mustPMF(t, []Pulse{{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	c := Div(exec, avail)
	// 100/0.5 = 200 w.p. 0.5, 100/1 = 100 w.p. 0.5.
	if c.Min() != 100 || c.Max() != 200 || math.Abs(c.Mean()-150) > 1e-12 {
		t.Errorf("div PMF wrong: %v", c)
	}
}

func TestDivPanicsOnZeroSupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by PMF with zero support did not panic")
		}
	}()
	Div(Point(1), mustPMF(t, []Pulse{{Value: 0, Prob: 0.5}, {Value: 1, Prob: 0.5}}))
}

func TestSubMul(t *testing.T) {
	a := mustPMF(t, []Pulse{{Value: 4, Prob: 0.5}, {Value: 6, Prob: 0.5}})
	b := Point(2)
	if got := Sub(a, b).Mean(); got != 3 {
		t.Errorf("sub mean = %v", got)
	}
	if got := Mul(a, b).Mean(); got != 10 {
		t.Errorf("mul mean = %v", got)
	}
}

func TestMaxAllAddAll(t *testing.T) {
	a, b, c := Point(1), Point(5), Point(3)
	if got := MaxAll(a, b, c).Mean(); got != 5 {
		t.Errorf("MaxAll = %v", got)
	}
	if got := AddAll(a, b, c).Mean(); got != 9 {
		t.Errorf("AddAll = %v", got)
	}
}

func TestRebinPreservesMassAndApproxMean(t *testing.T) {
	ps := make([]Pulse, 100)
	for i := range ps {
		ps[i] = Pulse{Value: float64(i), Prob: 0.01}
	}
	p := MustNew(ps)
	r := p.Rebin(10)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10 {
		t.Errorf("rebinned len = %d", r.Len())
	}
	if math.Abs(r.Mean()-p.Mean()) > 1e-9 {
		t.Errorf("rebin changed mean: %v vs %v", r.Mean(), p.Mean())
	}
}

func TestPrune(t *testing.T) {
	p := mustPMF(t, []Pulse{
		{Value: 1, Prob: 0.001}, {Value: 2, Prob: 0.499}, {Value: 3, Prob: 0.5}})
	q := p.Prune(0.01)
	if q.Len() != 2 {
		t.Fatalf("pruned len = %d", q.Len())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pruning everything keeps the most probable pulse.
	r := p.Prune(0.9)
	if r.Len() != 1 || r.At(0).Value != 3 {
		t.Errorf("prune-all kept %v", r)
	}
}

func TestCompact(t *testing.T) {
	ps := make([]Pulse, 1000)
	for i := range ps {
		ps[i] = Pulse{Value: float64(i) / 10, Prob: 0.001}
	}
	p := MustNew(ps)
	c := p.Compact(32)
	if c.Len() > 32 {
		t.Errorf("compacted to %d pulses", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mean()-p.Mean()) > p.Mean()*0.01 {
		t.Errorf("compaction moved mean: %v vs %v", c.Mean(), p.Mean())
	}
	// Already-small PMFs are returned unchanged.
	small := Point(2)
	if got := small.Compact(10); got.Len() != 1 {
		t.Error("compact changed a small PMF")
	}
}

func TestSampleDistribution(t *testing.T) {
	p := mustPMF(t, []Pulse{{Value: 1, Prob: 0.25}, {Value: 2, Prob: 0.75}})
	r := rng.New(42)
	n1 := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if p.Sample(r) == 1 {
			n1++
		}
	}
	if f := float64(n1) / draws; math.Abs(f-0.25) > 0.01 {
		t.Errorf("sample frequency of 1 = %v, want ~0.25", f)
	}
}

func TestAliasSamplerMatchesPMF(t *testing.T) {
	p := mustPMF(t, []Pulse{
		{Value: 1, Prob: 0.1}, {Value: 2, Prob: 0.2},
		{Value: 3, Prob: 0.3}, {Value: 4, Prob: 0.4}})
	s := p.Sampler()
	r := rng.New(17)
	counts := map[float64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(r)]++
	}
	for _, pl := range p.Pulses() {
		f := float64(counts[pl.Value]) / draws
		if math.Abs(f-pl.Prob) > 0.01 {
			t.Errorf("alias freq(%v) = %v, want %v", pl.Value, f, pl.Prob)
		}
	}
}

func TestString(t *testing.T) {
	p := mustPMF(t, []Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	if got := p.String(); got != "{1:0.5 2:0.5}" {
		t.Errorf("String = %q", got)
	}
}

func TestFromPairs(t *testing.T) {
	p, err := FromPairs([]float64{1, 2}, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d", p.Len())
	}
	if _, err := FromPairs([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// quickPulses converts raw quick-generated data into a valid pulse set,
// or nil when impossible.
func quickPulses(raw []float64) []Pulse {
	var ps []Pulse
	for i := 0; i+1 < len(raw); i += 2 {
		v, pr := raw[i], math.Abs(raw[i+1])
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			continue
		}
		if math.IsNaN(pr) || math.IsInf(pr, 0) || pr == 0 || pr > 1e100 {
			continue
		}
		ps = append(ps, Pulse{Value: v, Prob: pr})
	}
	return ps
}

// TestQuickConstructionInvariants property-checks that any valid pulse
// set yields a PMF satisfying Validate.
func TestQuickConstructionInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		ps := quickPulses(raw)
		if len(ps) == 0 {
			return true
		}
		p, err := New(ps)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAddMeanLinearity property-checks E[X+Y] = E[X]+E[Y].
func TestQuickAddMeanLinearity(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		pa, pb := quickPulses(rawA), quickPulses(rawB)
		if len(pa) == 0 || len(pb) == 0 {
			return true
		}
		a, errA := New(pa)
		b, errB := New(pb)
		if errA != nil || errB != nil {
			return true
		}
		got := Add(a, b).Mean()
		want := a.Mean() + b.Mean()
		tol := 1e-9 * math.Max(1, math.Abs(want))
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxDominates property-checks E[max(X,Y)] >= max(E[X], E[Y]).
func TestQuickMaxDominates(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		pa, pb := quickPulses(rawA), quickPulses(rawB)
		if len(pa) == 0 || len(pb) == 0 {
			return true
		}
		a, errA := New(pa)
		b, errB := New(pb)
		if errA != nil || errB != nil {
			return true
		}
		m := Max(a, b).Mean()
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(a.Mean()), math.Abs(b.Mean())))
		return m >= a.Mean()-tol && m >= b.Mean()-tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPrLEMonotone property-checks CDF monotonicity.
func TestQuickPrLEMonotone(t *testing.T) {
	f := func(raw []float64, x, y float64) bool {
		ps := quickPulses(raw)
		if len(ps) == 0 || math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p, err := New(ps)
		if err != nil {
			return true
		}
		lo, hi := math.Min(x, y), math.Max(x, y)
		return p.PrLE(lo) <= p.PrLE(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

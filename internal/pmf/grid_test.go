package pmf

import (
	"math"
	"strings"
	"testing"

	"cdsf/internal/stats"
)

// latticePMF builds a PMF whose values are exact multiples of step so
// quantization is lossless and grid results can be compared against
// the sparse reference directly.
func latticePMF(t *testing.T, step float64, bins []int64, probs []float64) PMF {
	t.Helper()
	ps := make([]Pulse, len(bins))
	for i, b := range bins {
		ps[i] = Pulse{Value: float64(b) * step, Prob: probs[i]}
	}
	return MustNew(ps)
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestToGridRoundTrip(t *testing.T) {
	p := latticePMF(t, 0.5, []int64{2, 5, 9, 20}, []float64{0.1, 0.4, 0.3, 0.2})
	g := p.ToGrid(0.5)
	defer g.Release()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Step() != 0.5 {
		t.Fatalf("Step = %v", g.Step())
	}
	if g.Min() != 1 || g.Max() != 10 {
		t.Fatalf("support [%v,%v], want [1,10]", g.Min(), g.Max())
	}
	q := g.ToPMF()
	if q.Len() != p.Len() {
		t.Fatalf("round trip %d pulses, want %d", q.Len(), p.Len())
	}
	for i := 0; i < p.Len(); i++ {
		if !almostEqual(q.At(i).Value, p.At(i).Value, 1e-12) || !almostEqual(q.At(i).Prob, p.At(i).Prob, 1e-12) {
			t.Fatalf("pulse %d: %v vs %v", i, q.At(i), p.At(i))
		}
	}
}

func TestToGridMergesBins(t *testing.T) {
	// Values 1.01 and 0.99 both round to bin 1 at step 1.
	p := MustNew([]Pulse{{Value: 0.99, Prob: 0.5}, {Value: 1.01, Prob: 0.3}, {Value: 3, Prob: 0.2}})
	g := p.ToGrid(1)
	defer g.Release()
	if g.Len() != 3 { // bins 1, 2 (zero), 3
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if got := g.PrLE(1); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("PrLE(1) = %v, want 0.8", got)
	}
}

func TestGridMomentsAndQuantile(t *testing.T) {
	p := latticePMF(t, 0.25, []int64{4, 8, 16}, []float64{0.25, 0.5, 0.25})
	g := p.ToGrid(0.25)
	defer g.Release()
	if !almostEqual(g.Mean(), p.Mean(), 1e-12) {
		t.Fatalf("Mean %v vs %v", g.Mean(), p.Mean())
	}
	if !almostEqual(g.Variance(), p.Variance(), 1e-12) {
		t.Fatalf("Variance %v vs %v", g.Variance(), p.Variance())
	}
	if !almostEqual(g.StdDev(), p.StdDev(), 1e-12) {
		t.Fatalf("StdDev %v vs %v", g.StdDev(), p.StdDev())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.99, 1} {
		if gq, pq := g.Quantile(q), p.Quantile(q); gq != pq {
			t.Fatalf("Quantile(%v) = %v, want %v", q, gq, pq)
		}
	}
	if got := g.PrGT(2); !almostEqual(got, 1-p.PrLE(2), 1e-12) {
		t.Fatalf("PrGT(2) = %v", got)
	}
}

func TestGridAddExactOnLattice(t *testing.T) {
	a := latticePMF(t, 0.5, []int64{0, 2, 4}, []float64{0.2, 0.5, 0.3})
	b := latticePMF(t, 0.5, []int64{1, 3}, []float64{0.6, 0.4})
	want := Add(a, b)
	ga, gb := a.ToGrid(0.5), b.ToGrid(0.5)
	defer ga.Release()
	defer gb.Release()
	sum := ga.Add(gb)
	defer sum.Release()
	got := sum.ToPMF()
	if got.Len() != want.Len() {
		t.Fatalf("Add lengths %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !almostEqual(got.At(i).Value, want.At(i).Value, 1e-12) || !almostEqual(got.At(i).Prob, want.At(i).Prob, 1e-9) {
			t.Fatalf("Add pulse %d: %v vs %v", i, got.At(i), want.At(i))
		}
	}
}

func TestGridMaxMinExactOnLattice(t *testing.T) {
	a := latticePMF(t, 1, []int64{1, 4, 7}, []float64{0.3, 0.4, 0.3})
	b := latticePMF(t, 1, []int64{2, 5}, []float64{0.5, 0.5})
	ga, gb := a.ToGrid(1), b.ToGrid(1)
	defer ga.Release()
	defer gb.Release()

	gmax := ga.MaxWith(gb)
	defer gmax.Release()
	wantMax := Max(a, b)
	for _, x := range []float64{1, 2, 3, 4, 5, 6, 7} {
		if g, w := gmax.PrLE(x), wantMax.PrLE(x); !almostEqual(g, w, 1e-9) {
			t.Fatalf("Max PrLE(%v) = %v, want %v", x, g, w)
		}
	}
	if !almostEqual(gmax.Mean(), wantMax.Mean(), 1e-9) {
		t.Fatalf("Max mean %v vs %v", gmax.Mean(), wantMax.Mean())
	}

	gmin := ga.MinWith(gb)
	defer gmin.Release()
	wantMin := Min(a, b)
	for _, x := range []float64{1, 2, 3, 4, 5, 6, 7} {
		if g, w := gmin.PrLE(x), wantMin.PrLE(x); !almostEqual(g, w, 1e-9) {
			t.Fatalf("Min PrLE(%v) = %v, want %v", x, g, w)
		}
	}
	if !almostEqual(gmin.Mean(), wantMin.Mean(), 1e-9) {
		t.Fatalf("Min mean %v vs %v", gmin.Mean(), wantMin.Mean())
	}
}

// TestGridMaxDisjointSupports exercises the CDF-product kernel where
// one operand's support lies entirely below the other's.
func TestGridMaxDisjointSupports(t *testing.T) {
	a := latticePMF(t, 1, []int64{1, 2}, []float64{0.5, 0.5})
	b := latticePMF(t, 1, []int64{10, 11}, []float64{0.5, 0.5})
	ga, gb := a.ToGrid(1), b.ToGrid(1)
	defer ga.Release()
	defer gb.Release()
	gmax := ga.MaxWith(gb)
	defer gmax.Release()
	// max(X, Y) = Y exactly.
	if gmax.Min() != 10 || gmax.Max() != 11 {
		t.Fatalf("support [%v,%v], want [10,11]", gmax.Min(), gmax.Max())
	}
	if !almostEqual(gmax.PrLE(10), 0.5, 1e-12) {
		t.Fatalf("PrLE(10) = %v", gmax.PrLE(10))
	}
	gmin := ga.MinWith(gb)
	defer gmin.Release()
	if gmin.Min() != 1 || gmin.Max() != 2 {
		t.Fatalf("min support [%v,%v], want [1,2]", gmin.Min(), gmin.Max())
	}
}

func TestGridMulAgreesWithSparse(t *testing.T) {
	a := latticePMF(t, 0.5, []int64{2, 4}, []float64{0.5, 0.5})
	b := latticePMF(t, 0.5, []int64{2, 6}, []float64{0.75, 0.25})
	ga, gb := a.ToGrid(0.5), b.ToGrid(0.5)
	defer ga.Release()
	defer gb.Release()
	prod := ga.Mul(gb)
	defer prod.Release()
	want := Mul(a, b)
	// Products of lattice points re-quantize: means agree within step/2.
	if !almostEqual(prod.Mean(), want.Mean(), 0.25+1e-9) {
		t.Fatalf("Mul mean %v vs %v", prod.Mean(), want.Mean())
	}
}

func TestGridDivPMFCompletionShape(t *testing.T) {
	// The completion-time operation of Stage I: a discretized normal
	// execution time over a 3-pulse availability, grid vs sparse.
	exec := Discretize(stats.NewNormal(1000, 100), 200)
	avail := MustNew([]Pulse{{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	want := Div(exec, avail)

	step := 2.0
	g := exec.ToGrid(step)
	defer g.Release()
	c := g.DivPMF(avail)
	defer c.Release()

	// Quantizing the numerator moves it by <= step/2, which the division
	// stretches by at most 1/min(avail); re-quantizing the quotient adds
	// another step/2.
	bound := step/2/0.25 + step/2
	if !almostEqual(c.Mean(), want.Mean(), bound) {
		t.Fatalf("DivPMF mean %v vs %v (bound %v)", c.Mean(), want.Mean(), bound)
	}
	for _, x := range []float64{1000, 2000, 3000, 4500} {
		lo := want.PrLE(x-bound) - 1e-9
		hi := want.PrLE(x+bound) + 1e-9
		if got := c.PrLE(x); got < lo || got > hi {
			t.Fatalf("DivPMF PrLE(%v) = %v outside [%v,%v]", x, got, lo, hi)
		}
	}
}

func TestGridCombinePMFGeneral(t *testing.T) {
	a := latticePMF(t, 1, []int64{1, 2, 3}, []float64{0.25, 0.5, 0.25})
	q := MustNew([]Pulse{{Value: 2, Prob: 0.5}, {Value: 3, Prob: 0.5}})
	g := a.ToGrid(1)
	defer g.Release()
	got := g.CombinePMF(q, func(x, y float64) float64 { return x * y })
	defer got.Release()
	want := Mul(a, q)
	if !almostEqual(got.Mean(), want.Mean(), 0.5+1e-9) {
		t.Fatalf("CombinePMF mean %v vs %v", got.Mean(), want.Mean())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("support [%v,%v] vs [%v,%v]", got.Min(), got.Max(), want.Min(), want.Max())
	}
}

func TestGridCombineGridGeneral(t *testing.T) {
	a := latticePMF(t, 1, []int64{1, 3}, []float64{0.5, 0.5})
	b := latticePMF(t, 1, []int64{2, 4}, []float64{0.5, 0.5})
	ga, gb := a.ToGrid(1), b.ToGrid(1)
	defer ga.Release()
	defer gb.Release()
	got := ga.Combine(gb, func(x, y float64) float64 { return x - y })
	defer got.Release()
	want := Sub(a, b)
	for _, x := range []float64{-3, -1, 0, 1} {
		if g, w := got.PrLE(x), want.PrLE(x); !almostEqual(g, w, 1e-9) {
			t.Fatalf("Combine PrLE(%v) = %v, want %v", x, g, w)
		}
	}
}

func TestGridReleaseAndReuse(t *testing.T) {
	p := latticePMF(t, 1, []int64{1, 2, 3}, []float64{0.25, 0.5, 0.25})
	// Repeated build/release cycles must keep producing valid grids
	// (exercises the pooled-buffer zeroing).
	for i := 0; i < 10; i++ {
		g := p.ToGrid(1)
		h := p.ToGrid(1)
		s := g.Add(h)
		if err := s.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !almostEqual(s.Mean(), 2*p.Mean(), 1e-9) {
			t.Fatalf("iteration %d: mean %v", i, s.Mean())
		}
		s.Release()
		h.Release()
		g.Release()
	}
}

// TestGridReleasePoisoning pins the pool-hazard contract: a second
// Release panics instead of silently double-freeing the buffers, and
// any use of a released grid panics instead of reading recycled
// memory.
func TestGridReleasePoisoning(t *testing.T) {
	p := latticePMF(t, 1, []int64{1, 2, 3}, []float64{0.25, 0.5, 0.25})
	mustPanicWith := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, want) {
				t.Fatalf("%s panicked with %v, want message containing %q", name, r, want)
			}
		}()
		f()
	}

	g := p.ToGrid(1)
	g.Release()
	mustPanicWith("double Release", "Release called twice", func() { g.Release() })

	h := p.ToGrid(1)
	h.Release()
	mustPanicWith("Mean after Release", "use of a released Grid", func() { h.Mean() })
	mustPanicWith("PrLE after Release", "use of a released Grid", func() { h.PrLE(2) })
	mustPanicWith("ToPMF after Release", "use of a released Grid", func() { h.ToPMF() })
	live := p.ToGrid(1)
	defer live.Release()
	mustPanicWith("Add with released operand", "use of a released Grid", func() { live.Add(h) })
}

// TestGridCloneSurvivesRelease pins the cache-retention contract:
// Clone detaches from the pool, so releasing the original leaves the
// clone fully usable and releasing the clone returns nothing to the
// pool.
func TestGridCloneSurvivesRelease(t *testing.T) {
	p := latticePMF(t, 1, []int64{1, 2, 3}, []float64{0.25, 0.5, 0.25})
	g := p.ToGrid(1)
	c := g.Clone()
	g.Release()
	if !almostEqual(c.Mean(), p.Mean(), 1e-9) {
		t.Fatalf("clone mean after original released: %v, want %v", c.Mean(), p.Mean())
	}
	for _, x := range []float64{0, 1, 2, 3, 4} {
		if got, want := c.PrLE(x), p.PrLE(x); got != want {
			t.Fatalf("clone PrLE(%v) = %v, want %v", x, got, want)
		}
	}
	// Releasing the clone poisons it but must not feed the pool a
	// buffer the pool never owned.
	c.Release()
	fresh := p.ToGrid(1)
	defer fresh.Release()
	if err := fresh.Validate(); err != nil {
		t.Fatalf("grid built after clone release: %v", err)
	}
}

func TestGridString(t *testing.T) {
	p := latticePMF(t, 1, []int64{1, 3}, []float64{0.5, 0.5})
	g := p.ToGrid(1)
	defer g.Release()
	s := g.String()
	if !strings.Contains(s, "grid{") || !strings.Contains(s, "bins=3") {
		t.Fatalf("String = %q", s)
	}
}

func TestGridPanics(t *testing.T) {
	p := latticePMF(t, 1, []int64{1, 2}, []float64{0.5, 0.5})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ToGrid(0)", func() { p.ToGrid(0) })
	mustPanic("ToGrid(NaN)", func() { p.ToGrid(math.NaN()) })
	mustPanic("ToGrid of zero PMF", func() { PMF{}.ToGrid(1) })
	mustPanic("bin cap", func() {
		wide := MustNew([]Pulse{{Value: 0, Prob: 0.5}, {Value: 1e12, Prob: 0.5}})
		wide.ToGrid(1)
	})
	mustPanic("step mismatch", func() {
		g, h := p.ToGrid(1), p.ToGrid(0.5)
		defer g.Release()
		defer h.Release()
		g.Add(h)
	})
	mustPanic("div by zero support", func() {
		g := p.ToGrid(1)
		defer g.Release()
		g.DivPMF(MustNew([]Pulse{{Value: 0, Prob: 0.5}, {Value: 1, Prob: 0.5}}))
	})
	mustPanic("quantile out of range", func() {
		g := p.ToGrid(1)
		defer g.Release()
		g.Quantile(0)
	})
	mustPanic("non-finite combine", func() {
		g := p.ToGrid(1)
		defer g.Release()
		h := p.ToGrid(1)
		defer h.Release()
		g.Combine(h, func(x, y float64) float64 { return math.Inf(1) })
	})
}

func TestGridValidateErrors(t *testing.T) {
	var nilGrid *Grid
	if err := nilGrid.Validate(); err == nil {
		t.Fatal("nil grid validated")
	}
	if err := (&Grid{}).Validate(); err == nil {
		t.Fatal("empty grid validated")
	}
	bad := &Grid{step: 1, mass: []float64{0.5, 0.5}, cdf: []float64{0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("grid with short cdf validated")
	}
}

func TestBackendParseAndText(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendSparse, true},
		{"sparse", BackendSparse, true},
		{"grid", BackendGrid, true},
		{"dense", "", false},
	} {
		got, err := ParseBackend(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseBackend(%q) err = %v", tc.in, err)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseBackend(%q) = %q", tc.in, got)
		}
	}
	var b Backend
	if err := b.UnmarshalText([]byte("grid")); err != nil || b != BackendGrid {
		t.Fatalf("UnmarshalText: %v %q", nil, b)
	}
	if err := b.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("UnmarshalText accepted junk")
	}
	if txt, err := BackendSparse.MarshalText(); err != nil || string(txt) != "sparse" {
		t.Fatalf("MarshalText: %q %v", txt, err)
	}
	if _, err := Backend("junk").MarshalText(); err == nil {
		t.Fatal("MarshalText accepted junk")
	}
	if Backend("").String() != "sparse" || !BackendGrid.IsGrid() || Backend("").IsGrid() {
		t.Fatal("Backend zero-value semantics broken")
	}
}

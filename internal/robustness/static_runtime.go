package robustness

import (
	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// This file provides the analytic runtime model of STATIC scheduling
// under per-processor availability draws — the mathematics behind the
// paper's scenario 2 ("even a 74.5%-robust allocation misses the
// deadline at runtime under STATIC"). Stage I's model divides an
// application's whole time by ONE availability draw; at runtime each of
// the n processors draws its own availability and STATIC cannot move
// work off the slowest one, so the application completes at the MAX of
// n per-worker times:
//
//	T_static = s*T/a_master + max_{w=1..n} (p*T/n) / a_w.
//
// StaticRuntimePMF computes that distribution exactly from the PMFs;
// comparing it with Application.CompletionPMF quantifies the
// "max-over-draws" penalty that makes STATIC non-robust.

// StaticRuntimePMF returns the analytic distribution of an
// application's STATIC makespan on n processors of type j whose
// availabilities are drawn independently per processor and held for the
// run. The execution time T is drawn once (input-data uncertainty). The
// serial phase runs on one processor (an independent draw). pulse
// growth is bounded by compacting intermediates to maxPulses
// (<= 0 disables compaction).
func StaticRuntimePMF(app *sysmodel.Application, j, n int, avail pmf.PMF, maxPulses int) pmf.PMF {
	exec := app.ExecTime[j]
	s := app.SerialFraction()
	p := app.ParallelFraction()

	// Per-worker parallel time factor: (p*T/n) / a for one worker; the
	// max over n workers has CDF F(x)^n where F is the single-worker
	// CDF. Because T is shared across workers while the a_w are
	// independent, condition on T: for each execution-time pulse, build
	// the max-over-draws PMF of the availability part, then scale.
	inv := avail.Map(func(a float64) float64 { return 1 / a }) // 1/a draws
	maxInv := pmf.MaxN(inv, n)                                 // max of n draws of 1/a
	serialInv := inv                                           // master's own draw

	var out pmf.PMF
	first := true
	for _, tp := range exec.Pulses() {
		// Serial part: s*T * (1/a_master); parallel: p*T/n * max(1/a_w).
		serial := serialInv.Scale(s * tp.Value)
		parallel := maxInv.Scale(p * tp.Value / float64(n))
		total := pmf.Add(serial, parallel)
		if maxPulses > 0 {
			total = total.Compact(maxPulses)
		}
		// Weight by the execution-time pulse probability.
		weighted := total.Pulses()
		for i := range weighted {
			weighted[i].Prob *= tp.Prob
		}
		if first {
			out = pmf.MustNew(weighted)
			first = false
			continue
		}
		merged := append(out.Pulses(), weighted...)
		out = pmf.MustNew(merged)
		if maxPulses > 0 {
			out = out.Compact(maxPulses * 4)
		}
	}
	return out
}

// StaticRuntimePenalty returns the ratio of the expected STATIC runtime
// makespan (per-worker draws) to Stage I's expected completion time
// (one draw for the whole application) — >= 1, growing with n and with
// the spread of the availability PMF.
func StaticRuntimePenalty(app *sysmodel.Application, j, n int, avail pmf.PMF) float64 {
	runtime := StaticRuntimePMF(app, j, n, avail, 200)
	stage1 := app.CompletionPMF(j, n, avail)
	return runtime.Mean() / stage1.Mean()
}

package robustness

import (
	"fmt"

	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// This file provides the robustness *curves* used by the sensitivity
// studies: how phi_1 varies with the deadline, and how the deadline
// probability degrades as availability is scaled down — the continuous
// counterparts of the paper's four discrete availability cases.

// CurvePoint is one (x, value) sample of a robustness curve.
type CurvePoint struct {
	X     float64
	Value float64
}

// DeadlineSweep evaluates phi_1 for an allocation at each deadline in
// deadlines (any order; the output preserves it).
func DeadlineSweep(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, deadlines []float64) ([]CurvePoint, error) {
	if err := alloc.Validate(sys, batch); err != nil {
		return nil, err
	}
	// The per-application completion PMFs do not depend on the deadline;
	// compute them once.
	completions := make([]pmf.PMF, len(batch))
	for i := range batch {
		as := alloc[i]
		completions[i] = batch[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail)
	}
	out := make([]CurvePoint, len(deadlines))
	for k, d := range deadlines {
		phi := 1.0
		for i := range completions {
			phi *= completions[i].PrLE(d)
		}
		out[k] = CurvePoint{X: d, Value: phi}
	}
	return out, nil
}

// MinDeadlineFor returns the smallest deadline achieving at least the
// target phi_1 for an allocation, found by bisection over the support
// of the completion PMFs. It returns an error if the target is
// unreachable (target > 1 or numerically above the probability at the
// maximum completion time).
func MinDeadlineFor(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, target float64) (float64, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("robustness: target probability %v out of (0,1]", target)
	}
	if err := alloc.Validate(sys, batch); err != nil {
		return 0, err
	}
	completions := make([]pmf.PMF, len(batch))
	lo, hi := 0.0, 0.0
	for i := range batch {
		as := alloc[i]
		c := batch[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail)
		completions[i] = c
		if c.Max() > hi {
			hi = c.Max()
		}
	}
	phiAt := func(d float64) float64 {
		phi := 1.0
		for _, c := range completions {
			phi *= c.PrLE(d)
		}
		return phi
	}
	if phiAt(hi) < target {
		return 0, fmt.Errorf("robustness: target %v unreachable (max phi %v)", target, phiAt(hi))
	}
	for hi-lo > 1e-6*hi {
		mid := (lo + hi) / 2
		if phiAt(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// AvailabilityScalingCurve evaluates phi_1 for an allocation while the
// availability PMFs of every processor type are scaled by each factor
// in scales (each in (0, 1]); the x of each point is the corresponding
// weighted-availability decrease. This is the continuous version of the
// paper's case-based Stage-II perturbation.
func AvailabilityScalingCurve(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, deadline float64, scales []float64) ([]CurvePoint, error) {
	if err := alloc.Validate(sys, batch); err != nil {
		return nil, err
	}
	out := make([]CurvePoint, len(scales))
	for k, s := range scales {
		if s <= 0 || s > 1 {
			return nil, fmt.Errorf("robustness: scale %v out of (0,1]", s)
		}
		scaled := make([]pmf.PMF, len(sys.Types))
		for j, t := range sys.Types {
			scaled[j] = t.Avail.Scale(s)
		}
		pert := sys.WithAvailability(scaled)
		phi, err := StageIProbability(pert, batch, alloc, deadline)
		if err != nil {
			return nil, err
		}
		out[k] = CurvePoint{X: AvailabilityDecrease(sys, pert), Value: phi}
	}
	return out, nil
}

// ToleranceFromCurve returns the largest x whose curve value still
// meets the threshold, assuming the curve is (weakly) decreasing in x
// after sorting; ok is false when no point qualifies.
func ToleranceFromCurve(curve []CurvePoint, threshold float64) (float64, bool) {
	best, ok := 0.0, false
	for _, p := range curve {
		if p.Value >= threshold && (!ok || p.X > best) {
			best, ok = p.X, true
		}
	}
	return best, ok
}

package robustness

import (
	"math"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

func testSystem() *sysmodel.System {
	return &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 4, Avail: pmf.Point(1)},
	}}
}

func testBatch() sysmodel.Batch {
	app := func(name string, t1, t2 float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          name,
			SerialIters:   100,
			ParallelIters: 900,
			ExecTime: []pmf.PMF{
				pmf.MustNew([]pmf.Pulse{{Value: t1 * 0.9, Prob: 0.5}, {Value: t1 * 1.1, Prob: 0.5}}),
				pmf.Point(t2),
			},
		}
	}
	return sysmodel.Batch{app("a", 1000, 1500), app("b", 2000, 1200)}
}

func TestEvaluateStageIProductRule(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	res, err := EvaluateStageI(sys, batch, alloc, 1200)
	if err != nil {
		t.Fatal(err)
	}
	want := res.PerApp[0] * res.PerApp[1]
	if math.Abs(res.Phi1-want) > 1e-12 {
		t.Errorf("phi1 = %v, product = %v", res.Phi1, want)
	}
	for i, c := range res.Completion {
		if math.Abs(c.Mean()-res.ExpectedTimes[i]) > 1e-9 {
			t.Errorf("expected time %d mismatch", i)
		}
		if got := c.PrLE(1200); math.Abs(got-res.PerApp[i]) > 1e-12 {
			t.Errorf("per-app probability %d mismatch", i)
		}
	}
}

func TestEvaluateStageIKnownValue(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	// App b on type 2 (deterministic avail 1), 4 procs: time =
	// 0.1*1200 + 0.9*1200/4 = 390 always -> Pr = 1 for deadline 400.
	alloc := sysmodel.Allocation{{Type: 1, Procs: 2}, {Type: 1, Procs: 2}}
	res, err := EvaluateStageI(sys, batch, alloc, 825)
	if err != nil {
		t.Fatal(err)
	}
	// App a on T2 x2: 0.1*1500 + 0.9*1500/2 = 825 -> Pr(<=825) = 1.
	if res.PerApp[0] != 1 {
		t.Errorf("PerApp[0] = %v", res.PerApp[0])
	}
	// App b on T2 x2: 0.1*1200 + 0.9*1200/2 = 660 <= 825 -> 1.
	if res.PerApp[1] != 1 {
		t.Errorf("PerApp[1] = %v", res.PerApp[1])
	}
}

func TestEvaluateStageIRejectsBadAllocation(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	if _, err := EvaluateStageI(sys, batch, sysmodel.Allocation{{Type: 0, Procs: 8}, {Type: 0, Procs: 1}}, 100); err == nil {
		t.Error("oversubscribed allocation accepted")
	}
}

func TestMakespanPMFMatchesPhi1(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}}
	const deadline = 1500
	res, err := EvaluateStageI(sys, batch, alloc, deadline)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := MakespanPMF(sys, batch, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mk.PrLE(deadline); math.Abs(got-res.Phi1) > 1e-9 {
		t.Errorf("makespan PrLE = %v, phi1 = %v", got, res.Phi1)
	}
	// Compaction keeps the probability close (within binning error).
	mkC, err := MakespanPMF(sys, batch, alloc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := mkC.PrLE(deadline); math.Abs(got-res.Phi1) > 0.1 {
		t.Errorf("compacted makespan PrLE = %v far from %v", got, res.Phi1)
	}
}

func TestAvailabilityDecrease(t *testing.T) {
	sys := testSystem()
	pert := sys.WithAvailability([]pmf.PMF{pmf.Point(0.375), pmf.Point(0.5)})
	// Reference weighted = (4*0.75 + 4*1)/8 = 0.875; perturbed =
	// (4*0.375+4*0.5)/8 = 0.4375 -> decrease 0.5.
	if got := AvailabilityDecrease(sys, pert); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("decrease = %v, want 0.5", got)
	}
	if got := AvailabilityDecrease(sys, sys); got != 0 {
		t.Errorf("self decrease = %v", got)
	}
}

func TestStageIIRobustness(t *testing.T) {
	outcomes := []StageIIOutcome{
		{Decrease: 0, AllMeetDeadline: true},
		{Decrease: 0.28, AllMeetDeadline: true},
		{Decrease: 0.31, AllMeetDeadline: true},
		{Decrease: 0.33, AllMeetDeadline: false},
	}
	rho2, ok := StageIIRobustness(outcomes)
	if !ok || math.Abs(rho2-0.31) > 1e-12 {
		t.Errorf("rho2 = %v, %v", rho2, ok)
	}
	_, ok = StageIIRobustness([]StageIIOutcome{{Decrease: 0.1, AllMeetDeadline: false}})
	if ok {
		t.Error("rho2 defined with no qualifying case")
	}
	_, ok = StageIIRobustness(nil)
	if ok {
		t.Error("rho2 defined with no outcomes")
	}
}

func TestTupleString(t *testing.T) {
	tuple := Tuple{Rho1: 0.745, Rho2: 0.3077}
	if got := tuple.String(); got != "(74.5%, 30.77%)" {
		t.Errorf("String = %q", got)
	}
}

func TestRobustnessRadius(t *testing.T) {
	// Completion time grows linearly with perturbation: t(p) = 100 + 200p;
	// bound 150 -> radius 0.25.
	impact := func(p float64) float64 { return 100 + 200*p }
	r := RobustnessRadius(impact, 150, 1, 1e-9)
	if math.Abs(r-0.25) > 1e-6 {
		t.Errorf("radius = %v, want 0.25", r)
	}
	// Bound already violated at zero perturbation.
	if r := RobustnessRadius(impact, 50, 1, 1e-9); r != 0 {
		t.Errorf("violated-bound radius = %v", r)
	}
	// Bound never violated.
	if r := RobustnessRadius(impact, 1000, 1, 1e-9); r != 1 {
		t.Errorf("never-violated radius = %v", r)
	}
}

func TestCollectiveRadius(t *testing.T) {
	impacts := []PerturbationImpact{
		func(p float64) float64 { return 100 + 100*p }, // radius 0.5 at bound 150
		func(p float64) float64 { return 100 + 400*p }, // radius 0.125
	}
	r := CollectiveRadius(impacts, []float64{150, 150}, 1, 1e-9)
	if math.Abs(r-0.125) > 1e-6 {
		t.Errorf("collective radius = %v, want 0.125", r)
	}
}

func TestCollectiveRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no-features CollectiveRadius did not panic")
		}
	}()
	CollectiveRadius(nil, nil, 1, 1e-9)
}

package robustness_test

import (
	"fmt"

	"cdsf/internal/pmf"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

// ExampleEvaluateStageI reproduces the core Stage-I computation on a
// miniature instance: two applications, two processor types, one
// deadline.
func ExampleEvaluateStageI() {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "fast", Count: 2, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "slow", Count: 4, Avail: pmf.Point(1)},
	}}
	app := func(name string, tFast, tSlow float64) sysmodel.Application {
		return sysmodel.Application{
			Name: name, SerialIters: 100, ParallelIters: 900,
			ExecTime: []pmf.PMF{pmf.Point(tFast), pmf.Point(tSlow)},
		}
	}
	batch := sysmodel.Batch{app("a", 1000, 1500), app("b", 800, 1200)}
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}

	res, err := robustness.EvaluateStageI(sys, batch, alloc, 600)
	if err != nil {
		panic(err)
	}
	for i, pr := range res.PerApp {
		fmt.Printf("%s: Pr = %.2f, E[T] = %.0f\n", batch[i].Name, pr, res.ExpectedTimes[i])
	}
	fmt.Printf("phi1 = %.2f\n", res.Phi1)
	// Output:
	// a: Pr = 0.50, E[T] = 825
	// b: Pr = 1.00, E[T] = 390
	// phi1 = 0.50
}

// ExampleRobustnessRadius computes a FePIA-style robustness radius: the
// largest availability drop a 100-unit task tolerates before missing a
// 150-unit bound when its time scales as 100/(1-p).
func ExampleRobustnessRadius() {
	impact := func(p float64) float64 { return 100 / (1 - p) }
	r := robustness.RobustnessRadius(impact, 150, 0.99, 1e-9)
	fmt.Printf("radius = %.3f\n", r)
	// Output:
	// radius = 0.333
}

package robustness

import (
	"math"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

func paperApp3() *sysmodel.Application {
	return &sysmodel.Application{
		Name:          "App 3",
		SerialIters:   216,
		ParallelIters: 4104,
		ExecTime: []pmf.PMF{
			pmf.Point(12000),
			pmf.Point(8000),
		},
	}
}

func paperAvail2() pmf.PMF {
	return pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
}

func TestStaticRuntimePMFDegenerate(t *testing.T) {
	// Deterministic availability: runtime and Stage-I models coincide.
	app := paperApp3()
	avail := pmf.Point(0.5)
	run := StaticRuntimePMF(app, 1, 8, avail, 0)
	stage1 := app.CompletionPMF(1, 8, avail)
	if math.Abs(run.Mean()-stage1.Mean()) > 1e-6*stage1.Mean() {
		t.Errorf("degenerate availability: runtime %v != stage1 %v", run.Mean(), stage1.Mean())
	}
}

func TestStaticRuntimePenaltyGrowsWithWorkers(t *testing.T) {
	app := paperApp3()
	avail := paperAvail2()
	p2 := StaticRuntimePenalty(app, 1, 2, avail)
	p8 := StaticRuntimePenalty(app, 1, 8, avail)
	if p2 < 1 || p8 < 1 {
		t.Fatalf("penalties below 1: %v, %v", p2, p8)
	}
	if p8 <= p2 {
		t.Errorf("penalty did not grow with workers: %v vs %v", p2, p8)
	}
}

// TestStaticRuntimeExplainsScenario2 verifies the analytic model
// reproduces the paper's scenario-2 surprise: the robust allocation's
// Stage-I expectation for application 3 is well under the deadline
// (2700 < 3250) yet the expected STATIC runtime exceeds it.
func TestStaticRuntimeExplainsScenario2(t *testing.T) {
	app := paperApp3()
	avail := paperAvail2()
	stage1 := app.CompletionPMF(1, 8, avail).Mean()
	runtime := StaticRuntimePMF(app, 1, 8, avail, 200).Mean()
	const deadline = 3250
	if stage1 >= deadline {
		t.Fatalf("stage-I expectation %v unexpectedly above the deadline", stage1)
	}
	if runtime <= deadline {
		t.Errorf("analytic STATIC runtime %v does not explain the scenario-2 violation", runtime)
	}
	t.Logf("stage-I E[T] = %.0f, analytic STATIC runtime E[T] = %.0f (penalty %.2fx)",
		stage1, runtime, runtime/stage1)
}

func TestStaticRuntimeProbabilities(t *testing.T) {
	app := paperApp3()
	avail := paperAvail2()
	run := StaticRuntimePMF(app, 1, 8, avail, 300)
	if err := run.Validate(); err != nil {
		t.Fatal(err)
	}
	// The runtime CDF is dominated by the Stage-I CDF (runtime is
	// statistically larger): Pr(runtime <= x) <= Pr(stage1 <= x) at the
	// deadline.
	stage1 := app.CompletionPMF(1, 8, avail)
	if run.PrLE(3250) > stage1.PrLE(3250)+1e-9 {
		t.Errorf("runtime Pr %v exceeds stage-I Pr %v", run.PrLE(3250), stage1.PrLE(3250))
	}
}

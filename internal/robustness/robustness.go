// Package robustness quantifies the robustness of resource allocations
// and runtime schedules, following the paper's Section III.C:
//
//   - Stage I robustness: the joint probability phi_1 = Pr(Psi <= Delta)
//     that every application of the batch completes by the common
//     deadline, computed from the per-application completion-time PMFs
//     (independence lets the per-application probabilities multiply).
//   - Stage II robustness: the largest percentage decrease in weighted
//     system availability, 1 - E[A_i]/E[A_hat], that all applications
//     tolerate without violating the deadline.
//   - The FePIA robustness radius of Ali et al. (paper ref. [3]), the
//     general metric the paper builds on, provided for ablation studies.
package robustness

import (
	"fmt"
	"math"

	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// StageIResult carries the Stage-I evaluation of one allocation.
type StageIResult struct {
	// Alloc is the evaluated allocation.
	Alloc sysmodel.Allocation
	// Completion[i] is the completion-time PMF of application i on its
	// assigned processors under the expected availability.
	Completion []pmf.PMF
	// PerApp[i] is Pr(T_i <= Delta) for application i.
	PerApp []float64
	// Phi1 is the joint probability that all applications meet the
	// deadline (the product of PerApp).
	Phi1 float64
	// ExpectedTimes[i] is E[T_i], the paper's Table V estimate.
	ExpectedTimes []float64
}

// EvaluateStageI computes phi_1 and the supporting per-application
// quantities for an allocation under the system's (expected)
// availability PMFs and the common deadline.
func EvaluateStageI(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, deadline float64) (*StageIResult, error) {
	if err := alloc.Validate(sys, batch); err != nil {
		return nil, err
	}
	res := &StageIResult{
		Alloc:         alloc.Clone(),
		Completion:    make([]pmf.PMF, len(batch)),
		PerApp:        make([]float64, len(batch)),
		ExpectedTimes: make([]float64, len(batch)),
		Phi1:          1,
	}
	for i := range batch {
		as := alloc[i]
		c := batch[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail)
		res.Completion[i] = c
		res.PerApp[i] = c.PrLE(deadline)
		res.ExpectedTimes[i] = c.Mean()
		res.Phi1 *= res.PerApp[i]
	}
	return res, nil
}

// EvaluateStageIDAG is EvaluateStageI for a precedence-constrained
// batch: per-application completion PMFs are composed along the edges
// (C_i = T_i + max over predecessors' C, sysmodel.ComposeDAG), PerApp
// and ExpectedTimes report the composed distributions, and Phi1 is the
// product over the sink applications — the probability that the whole
// DAG finishes by the deadline under the PERT independence
// approximation. With no edges it is exactly EvaluateStageI.
func EvaluateStageIDAG(sys *sysmodel.System, batch sysmodel.Batch, edges []sysmodel.Edge, alloc sysmodel.Allocation, deadline float64) (*StageIResult, error) {
	if len(edges) == 0 {
		return EvaluateStageI(sys, batch, alloc, deadline)
	}
	if err := alloc.Validate(sys, batch); err != nil {
		return nil, err
	}
	if err := sysmodel.ValidateEdges(edges, len(batch)); err != nil {
		return nil, err
	}
	dists := make([]pmf.PMF, len(batch))
	for i := range batch {
		as := alloc[i]
		dists[i] = batch[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail)
	}
	comp, err := sysmodel.ComposeDAG(dists, edges, sysmodel.DAGMaxPulses)
	if err != nil {
		return nil, err
	}
	res := &StageIResult{
		Alloc:         alloc.Clone(),
		Completion:    comp,
		PerApp:        make([]float64, len(batch)),
		ExpectedTimes: make([]float64, len(batch)),
		Phi1:          1,
	}
	for i := range batch {
		res.PerApp[i] = comp[i].PrLE(deadline)
		res.ExpectedTimes[i] = comp[i].Mean()
	}
	for _, s := range sysmodel.Sinks(edges, len(batch)) {
		res.Phi1 *= res.PerApp[s]
	}
	return res, nil
}

// StageIProbability returns just phi_1 for an allocation; it is the
// objective that the Stage-I heuristics maximize.
func StageIProbability(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, deadline float64) (float64, error) {
	r, err := EvaluateStageI(sys, batch, alloc, deadline)
	if err != nil {
		return 0, err
	}
	return r.Phi1, nil
}

// MakespanPMF returns the PMF of the system makespan Psi = max_i T_i for
// the allocation, assuming independent application completion times.
// Pr(Psi <= Delta) of this PMF equals Phi1 of EvaluateStageI. The pulse
// count grows multiplicatively, so each intermediate result is compacted
// to at most maxPulses pulses (<= 0 means no compaction).
func MakespanPMF(sys *sysmodel.System, batch sysmodel.Batch, alloc sysmodel.Allocation, maxPulses int) (pmf.PMF, error) {
	if err := alloc.Validate(sys, batch); err != nil {
		return pmf.PMF{}, err
	}
	var out pmf.PMF
	for i := range batch {
		as := alloc[i]
		c := batch[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail)
		if i == 0 {
			out = c
		} else {
			out = pmf.Max(out, c)
		}
		if maxPulses > 0 {
			out = out.Compact(maxPulses)
		}
	}
	return out, nil
}

// AvailabilityDecrease returns the paper's Stage-II perturbation
// magnitude 1 - E[A_case]/E[A_hat] between a perturbed system and the
// reference system, using weighted system availability (Eq. 1). The
// result is a fraction; Table I brackets report it in percent.
func AvailabilityDecrease(reference, perturbed *sysmodel.System) float64 {
	return 1 - perturbed.WeightedAvailability()/reference.WeightedAvailability()
}

// StageIIOutcome records, for one availability case, whether every
// application met the deadline under its best DLS technique and the
// corresponding availability decrease.
type StageIIOutcome struct {
	// Decrease is 1 - E[A_case]/E[A_hat].
	Decrease float64
	// AllMeetDeadline reports whether some DLS technique satisfied the
	// deadline for every application.
	AllMeetDeadline bool
}

// StageIIRobustness returns rho_2: the largest availability decrease
// among the outcomes whose deadline was met by all applications, or 0
// (and false) if none qualifies. Outcomes are typically one per
// availability case.
func StageIIRobustness(outcomes []StageIIOutcome) (float64, bool) {
	best := math.Inf(-1)
	ok := false
	for _, o := range outcomes {
		if o.AllMeetDeadline && o.Decrease > best {
			best = o.Decrease
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}

// Tuple is the paper's system robustness 2-tuple (rho_1, rho_2):
// the best Stage-I joint deadline probability and the largest tolerable
// Stage-II availability decrease.
type Tuple struct {
	Rho1 float64
	Rho2 float64
}

// String formats the tuple in the paper's percent notation.
func (t Tuple) String() string {
	return fmt.Sprintf("(%.1f%%, %.2f%%)", t.Rho1*100, t.Rho2*100)
}

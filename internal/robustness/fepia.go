package robustness

import (
	"fmt"
	"math"
)

// This file implements the FePIA (Features-Perturbation-Impact-Analysis)
// robustness radius of Ali, Maciejewski, Siegel and Kim, "Measuring the
// robustness of a resource allocation" (paper reference [3]) — the
// general framework the paper instantiates. It is exposed for ablation
// studies that compare the paper's probabilistic phi_1 metric against
// the deterministic robustness radius.

// PerturbationImpact maps a scalar perturbation magnitude (e.g. a
// uniform decrease in system availability) to the value of one
// performance feature (e.g. an application's completion time).
// Implementations must be monotonic in the perturbation for FindRadius
// to be meaningful.
type PerturbationImpact func(perturbation float64) float64

// RobustnessRadius returns the largest perturbation r such that
// impact(r) <= bound, searched on [0, maxPert] by bisection to the given
// tolerance. It returns 0 if even an unperturbed system violates the
// bound, and maxPert if the bound holds everywhere. impact must be
// non-decreasing in the perturbation.
func RobustnessRadius(impact PerturbationImpact, bound, maxPert, tol float64) float64 {
	if tol <= 0 {
		panic(fmt.Sprintf("robustness: non-positive tolerance %v", tol))
	}
	if impact(0) > bound {
		return 0
	}
	if impact(maxPert) <= bound {
		return maxPert
	}
	lo, hi := 0.0, maxPert
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if impact(mid) <= bound {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// CollectiveRadius returns the minimum robustness radius across several
// performance features sharing one perturbation parameter — FePIA's
// system-level robustness: the system is only as robust as its most
// fragile feature. It panics with no impacts.
func CollectiveRadius(impacts []PerturbationImpact, bounds []float64, maxPert, tol float64) float64 {
	if len(impacts) == 0 {
		panic("robustness: CollectiveRadius with no features")
	}
	if len(impacts) != len(bounds) {
		panic(fmt.Sprintf("robustness: %d impacts but %d bounds", len(impacts), len(bounds)))
	}
	r := math.Inf(1)
	for i, im := range impacts {
		if rr := RobustnessRadius(im, bounds[i], maxPert, tol); rr < r {
			r = rr
		}
	}
	return r
}

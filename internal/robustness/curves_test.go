package robustness

import (
	"math"
	"testing"

	"cdsf/internal/sysmodel"
)

func TestDeadlineSweepMonotone(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}}
	deadlines := []float64{200, 500, 1000, 1500, 2000, 3000, 5000}
	curve, err := DeadlineSweep(sys, batch, alloc, deadlines)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range curve {
		if p.Value < prev-1e-12 {
			t.Fatalf("phi1 decreased with a later deadline: %v", curve)
		}
		if p.Value < 0 || p.Value > 1 {
			t.Fatalf("phi1 %v out of [0,1]", p.Value)
		}
		prev = p.Value
	}
	if curve[len(curve)-1].Value != 1 {
		t.Errorf("phi1 at a deadline beyond all support = %v", curve[len(curve)-1].Value)
	}
}

func TestDeadlineSweepMatchesEvaluate(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 2}}
	const d = 1200
	curve, err := DeadlineSweep(sys, batch, alloc, []float64{d})
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateStageI(sys, batch, alloc, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve[0].Value-res.Phi1) > 1e-12 {
		t.Errorf("sweep phi1 %v != EvaluateStageI %v", curve[0].Value, res.Phi1)
	}
}

func TestMinDeadlineFor(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}}
	d, err := MinDeadlineFor(sys, batch, alloc, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// phi1 at d meets the target, and slightly below d it does not.
	at, _ := DeadlineSweep(sys, batch, alloc, []float64{d, d * 0.99})
	if at[0].Value < 0.9 {
		t.Errorf("phi1(%v) = %v < 0.9", d, at[0].Value)
	}
	if at[1].Value >= 0.9 {
		t.Errorf("phi1 just below the minimum deadline still %v", at[1].Value)
	}
	if _, err := MinDeadlineFor(sys, batch, alloc, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
}

func TestAvailabilityScalingCurve(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}}
	scales := []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5}
	curve, err := AvailabilityScalingCurve(sys, batch, alloc, 2200, scales)
	if err != nil {
		t.Fatal(err)
	}
	// Decreases grow with shrinking scale; phi1 weakly decreases.
	for i := 1; i < len(curve); i++ {
		if curve[i].X <= curve[i-1].X {
			t.Errorf("decrease not increasing: %v", curve)
		}
		if curve[i].Value > curve[i-1].Value+1e-12 {
			t.Errorf("phi1 increased while availability shrank: %v", curve)
		}
	}
	if curve[0].X != 0 {
		t.Errorf("scale 1 decrease = %v", curve[0].X)
	}
	if _, err := AvailabilityScalingCurve(sys, batch, alloc, 2200, []float64{0}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestToleranceFromCurve(t *testing.T) {
	curve := []CurvePoint{
		{X: 0, Value: 0.9}, {X: 0.1, Value: 0.8}, {X: 0.2, Value: 0.6}, {X: 0.3, Value: 0.2},
	}
	tol, ok := ToleranceFromCurve(curve, 0.5)
	if !ok || math.Abs(tol-0.2) > 1e-12 {
		t.Errorf("tolerance = %v, %v", tol, ok)
	}
	if _, ok := ToleranceFromCurve(curve, 0.95); ok {
		t.Error("unreachable threshold returned ok")
	}
}

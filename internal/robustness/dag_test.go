package robustness

import (
	"math"
	"testing"

	"cdsf/internal/sysmodel"
)

// TestEvaluateStageIDAGDegenerates pins the v1.1 compatibility
// contract: with no edges the DAG evaluation is exactly EvaluateStageI.
func TestEvaluateStageIDAGDegenerates(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	plain, err := EvaluateStageI(sys, batch, alloc, 1200)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := EvaluateStageIDAG(sys, batch, nil, alloc, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Phi1 != plain.Phi1 {
		t.Errorf("edge-free DAG phi1 %v != %v", dag.Phi1, plain.Phi1)
	}
	for i := range batch {
		if dag.PerApp[i] != plain.PerApp[i] || dag.ExpectedTimes[i] != plain.ExpectedTimes[i] {
			t.Errorf("app %d: edge-free DAG result differs", i)
		}
	}
}

// TestEvaluateStageIDAGChain checks the composed quantities on a
// two-application chain: the successor's completion is the sum of both
// completion PMFs, phi_1 is the sink's probability alone, and the
// expected times are monotone along the edge.
func TestEvaluateStageIDAGChain(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 1, Procs: 2}, {Type: 1, Procs: 2}}
	edges := []sysmodel.Edge{{From: 0, To: 1}}
	res, err := EvaluateStageIDAG(sys, batch, edges, alloc, 1500)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := EvaluateStageI(sys, batch, alloc, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// The source is untouched; the sink's expectation adds the source's
	// (deterministic assignments make the sum exact).
	if res.ExpectedTimes[0] != plain.ExpectedTimes[0] {
		t.Errorf("source E[T] %v != standalone %v", res.ExpectedTimes[0], plain.ExpectedTimes[0])
	}
	wantSink := plain.ExpectedTimes[0] + plain.ExpectedTimes[1]
	if math.Abs(res.ExpectedTimes[1]-wantSink) > 1e-9 {
		t.Errorf("sink E[C] = %v, want %v", res.ExpectedTimes[1], wantSink)
	}
	// Application 1 is the only sink, so phi_1 is its probability.
	if res.Phi1 != res.PerApp[1] {
		t.Errorf("phi1 %v != sink probability %v", res.Phi1, res.PerApp[1])
	}
	if got := res.Completion[1].PrLE(1500); math.Abs(got-res.PerApp[1]) > 1e-12 {
		t.Errorf("PerApp[1] %v != composed Pr %v", res.PerApp[1], got)
	}
}

// TestEvaluateStageIDAGErrors covers the validation paths.
func TestEvaluateStageIDAGErrors(t *testing.T) {
	sys, batch := testSystem(), testBatch()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	if _, err := EvaluateStageIDAG(sys, batch, []sysmodel.Edge{{From: 0, To: 7}}, alloc, 1200); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := EvaluateStageIDAG(sys, batch, []sysmodel.Edge{{From: 0, To: 1}, {From: 1, To: 0}}, alloc, 1200); err == nil {
		t.Error("cyclic edges accepted")
	}
	bad := sysmodel.Allocation{{Type: 0, Procs: 99}, {Type: 1, Procs: 4}}
	if _, err := EvaluateStageIDAG(sys, batch, []sysmodel.Edge{{From: 0, To: 1}}, bad, 1200); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

package availability

import (
	"fmt"
	"math"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

// SharedLoad models correlated availability — the paper's future-work
// question "exploring the possible correlation between the
// availabilities for different processor types". All processes created
// by the same SharedLoad instance observe one common load factor (a
// Markov chain on the shared PMF) multiplied by an independent
// idiosyncratic factor per processor:
//
//	avail_i(t) = clamp(shared(t) * idio_i(t), minAvail, 1)
//
// With Mix = 1 every processor tracks the shared factor exactly
// (perfect correlation); with Mix = 0 the model degenerates to
// independent Markov processes on Idio.
type SharedLoad struct {
	// Shared is the PMF of the system-wide load factor.
	Shared pmf.PMF
	// Idio is the PMF of each processor's own availability.
	Idio pmf.PMF
	// Mix in [0, 1] blends the shared factor in geometrically:
	// avail = shared^Mix * idio.
	Mix float64
	// Interval is the epoch length of both chains; it must be positive.
	Interval float64
	// Persistence in [0, 1) is the per-epoch hold probability of both
	// chains.
	Persistence float64

	// shared is the one chain common to all processes of this model
	// instance; it is created lazily on the first NewProcess call.
	shared *markovProcess
}

// minAvail floors the combined availability so FinishTime stays finite.
const minAvail = 1e-3

// NewProcess returns a process whose availability is the blend of the
// shared chain and a fresh idiosyncratic chain. The first call creates
// the shared chain from r; subsequent calls reuse it, which correlates
// every process of this model value (use one SharedLoad per experiment,
// passed by pointer).
func (m *SharedLoad) NewProcess(r *rng.Source) Process {
	if m.Interval <= 0 {
		panic(fmt.Sprintf("availability: shared-load interval %v not positive", m.Interval))
	}
	if m.Mix < 0 || m.Mix > 1 {
		panic(fmt.Sprintf("availability: shared-load mix %v outside [0,1]", m.Mix))
	}
	if m.Persistence < 0 || m.Persistence >= 1 {
		panic(fmt.Sprintf("availability: shared-load persistence %v outside [0,1)", m.Persistence))
	}
	if m.shared == nil {
		src := r.Split()
		sampler := m.Shared.Sampler()
		m.shared = &markovProcess{
			sampler:     sampler,
			interval:    m.Interval,
			persistence: m.Persistence,
			r:           src,
			cur:         sampler.Sample(src),
		}
	}
	idio := Markov{PMF: m.Idio, Interval: m.Interval, Persistence: m.Persistence}.
		NewProcess(r).(*markovProcess)
	return &sharedProcess{shared: m.shared, idio: idio, mix: m.Mix, interval: m.Interval}
}

// Expected returns E[shared^Mix]*E[idio], exact for independent factors
// up to the clamping (negligible for the PMFs used here).
func (m *SharedLoad) Expected() float64 {
	es := 0.0
	for _, pl := range m.Shared.Pulses() {
		es += math.Pow(pl.Value, m.Mix) * pl.Prob
	}
	return es * m.Idio.Mean()
}

// Name identifies the model in reports.
func (m *SharedLoad) Name() string {
	return fmt.Sprintf("sharedload(mix=%.2f,%g,%.2f)", m.Mix, m.Interval, m.Persistence)
}

// ResetGroup discards the shared chain so the next NewProcess starts a
// fresh one. The simulator calls this at the start of every run, which
// keeps repetitions independent while processes within one run stay
// correlated. SharedLoad is therefore not safe for concurrent runs —
// it implements GroupScoped, and sim.RunMany detects that (through any
// Wrapper chain) and executes its repetitions sequentially.
func (m *SharedLoad) ResetGroup() { m.shared = nil }

var _ GroupScoped = (*SharedLoad)(nil)

type sharedProcess struct {
	shared   *markovProcess
	idio     *markovProcess
	mix      float64
	interval float64
	// lastEpoch guards the shared chain against backwards queries from
	// this process while allowing other processes to have advanced it
	// further (markovProcess.avail only moves forward).
	lastEpoch int64
}

// at returns the blended availability for an epoch. The shared chain is
// advanced monotonically by whichever process queries furthest ahead;
// reads of earlier epochs by other processes would be backwards, so the
// simulator contract (roughly synchronized worker clocks within one
// run) is required. To keep that robust we clamp backwards reads to the
// chain's current value — acceptable because worker clocks within one
// sweep diverge by at most a chunk, far below typical intervals.
func (p *sharedProcess) at(epoch int64) float64 {
	sh := p.sharedAt(epoch)
	id := p.idio.avail(epoch)
	a := math.Pow(sh, p.mix) * id
	if a < minAvail {
		a = minAvail
	}
	if a > 1 {
		a = 1
	}
	return a
}

func (p *sharedProcess) sharedAt(epoch int64) float64 {
	if epoch <= p.shared.epoch {
		return p.shared.cur
	}
	return p.shared.avail(epoch)
}

func (p *sharedProcess) At(t float64) float64 {
	return p.at(int64(math.Floor(t / p.interval)))
}

func (p *sharedProcess) FinishTime(t, work float64) float64 {
	// Explicit epoch tracking; see redrawProcess.FinishTime.
	epoch := int64(math.Floor(t / p.interval))
	for work > 1e-12 {
		a := p.at(epoch)
		end := float64(epoch+1) * p.interval
		capacity := (end - t) * a
		if capacity >= work {
			return t + work/a
		}
		work -= capacity
		t = end
		epoch++
	}
	return t
}

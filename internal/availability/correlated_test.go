package availability

import (
	"math"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

func TestSharedLoadCorrelation(t *testing.T) {
	shared := pmf.MustNew([]pmf.Pulse{{Value: 0.3, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	idio := pmf.MustNew([]pmf.Pulse{{Value: 0.8, Prob: 0.5}, {Value: 1, Prob: 0.5}})

	correlation := func(mix float64) float64 {
		m := &SharedLoad{Shared: shared, Idio: idio, Mix: mix, Interval: 1, Persistence: 0}
		r := rng.New(3)
		p1 := m.NewProcess(r)
		p2 := m.NewProcess(r)
		const n = 4000
		var sum1, sum2, sum11, sum22, sum12 float64
		for e := 0; e < n; e++ {
			a1 := p1.At(float64(e))
			a2 := p2.At(float64(e))
			sum1 += a1
			sum2 += a2
			sum11 += a1 * a1
			sum22 += a2 * a2
			sum12 += a1 * a2
		}
		m1, m2 := sum1/n, sum2/n
		v1 := sum11/n - m1*m1
		v2 := sum22/n - m2*m2
		cov := sum12/n - m1*m2
		if v1 <= 0 || v2 <= 0 {
			return 0
		}
		return cov / math.Sqrt(v1*v2)
	}

	strong := correlation(1)
	weak := correlation(0)
	if strong < 0.5 {
		t.Errorf("mix=1 correlation = %v, want strong positive", strong)
	}
	if math.Abs(weak) > 0.15 {
		t.Errorf("mix=0 correlation = %v, want ~0", weak)
	}
	if strong <= weak {
		t.Errorf("correlation did not increase with mix: %v vs %v", strong, weak)
	}
}

func TestSharedLoadBoundsAndExpected(t *testing.T) {
	shared := pmf.MustNew([]pmf.Pulse{{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	idio := pmf.MustNew([]pmf.Pulse{{Value: 0.6, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	m := &SharedLoad{Shared: shared, Idio: idio, Mix: 1, Interval: 5, Persistence: 0.5}
	r := rng.New(9)
	p := m.NewProcess(r)
	for e := 0; e < 1000; e++ {
		a := p.At(float64(e) * 5)
		if a < minAvail || a > 1 {
			t.Fatalf("availability %v out of bounds", a)
		}
	}
	// Expected = E[shared]*E[idio] at mix 1.
	want := shared.Mean() * idio.Mean()
	if got := m.Expected(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Expected = %v, want %v", got, want)
	}
}

func TestSharedLoadFinishTime(t *testing.T) {
	point := pmf.Point(0.5)
	m := &SharedLoad{Shared: point, Idio: pmf.Point(1), Mix: 1, Interval: 10, Persistence: 0}
	p := m.NewProcess(rng.New(1))
	// Constant availability 0.5: work 7 takes 14.
	if got := p.FinishTime(0, 7); math.Abs(got-14) > 1e-9 {
		t.Errorf("FinishTime = %v, want 14", got)
	}
}

func TestSharedLoadValidation(t *testing.T) {
	good := pmf.Point(1)
	bads := []*SharedLoad{
		{Shared: good, Idio: good, Mix: 1, Interval: 0, Persistence: 0},
		{Shared: good, Idio: good, Mix: -0.1, Interval: 1, Persistence: 0},
		{Shared: good, Idio: good, Mix: 1.1, Interval: 1, Persistence: 0},
		{Shared: good, Idio: good, Mix: 1, Interval: 1, Persistence: 1},
	}
	for i, m := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad shared-load config %d did not panic", i)
				}
			}()
			m.NewProcess(rng.New(1))
		}()
	}
}

package availability_test

import (
	"math"

	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

// ExampleMarkov shows the bursty-load model: availability holds for
// whole epochs and jumps between the PMF's levels with the stationary
// distribution equal to the PMF.
func ExampleMarkov() {
	m := availability.Markov{
		PMF:         pmf.MustNew([]pmf.Pulse{{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}}),
		Interval:    10,
		Persistence: 0.8,
	}
	p := m.NewProcess(rng.New(1))
	// Work 12 at availability >= 0.5 finishes within 24 time units.
	finish := p.FinishTime(0, 12)
	fmt.Printf("finished within bounds: %v\n", finish >= 12 && finish <= 24)
	fmt.Printf("expected availability: %.2f\n", m.Expected())
	// Output:
	// finished within bounds: true
	// expected availability: 0.75
}

// ExampleTrace replays an explicit availability profile — useful for
// injecting adversarial perturbation patterns in tests.
func ExampleTrace() {
	tr, err := availability.NewTrace([]availability.Segment{
		{Until: 10, Avail: 1},
		{Until: 20, Avail: 0.25},
		{Until: inf(), Avail: 1},
	})
	if err != nil {
		panic(err)
	}
	p := tr.NewProcess(nil)
	// 15 units of work starting at 0: 10 at full speed, then the slow
	// decade contributes 2.5, leaving 2.5 after t=20.
	fmt.Printf("finish = %.1f\n", p.FinishTime(0, 15))
	// Output:
	// finish = 22.5
}

func inf() float64 { return math.Inf(1) }

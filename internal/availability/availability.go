// Package availability provides runtime availability models for the
// Stage-II simulator.
//
// Stage I reasons about availability through PMFs; Stage II needs the
// availability of each individual processor as a function of simulated
// time. The paper's testbed drew this from historical usage logs of a
// real non-dedicated system; this package substitutes synthetic models
// driven by the same PMFs (see DESIGN.md, "Substitutions"):
//
//   - Static: one draw per processor, constant for the whole run — the
//     weakest dynamics, matching Stage I's one-shot convolution.
//   - Redraw: the availability of each processor is re-drawn from the
//     PMF every fixed interval, modeling a machine whose external load
//     changes episodically.
//   - Markov: a discrete-time Markov chain over the PMF's support whose
//     stationary distribution equals the PMF, with a persistence
//     parameter controlling how bursty the external load is.
//   - Trace: replay of an explicit piecewise-constant trace, for tests
//     and for injecting adversarial perturbation patterns.
//
// All models implement Model; a Model manufactures one independent
// Process per processor. A Process answers two questions the simulator
// asks: what is the availability now, and how long does it take to
// complete a given amount of work starting now (integrating availability
// over time).
package availability

import (
	"fmt"
	"math"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

// Process is the availability of a single processor over simulated time.
// Implementations are piecewise constant. Queries must use
// non-decreasing start times per Process (the simulator's event order
// guarantees this for the workers it owns).
type Process interface {
	// At returns the fractional availability in (0, 1] at time t.
	At(t float64) float64
	// FinishTime returns the time at which `work` units of dedicated
	// computation complete if started at time t, accounting for the
	// availability profile from t onward: a processor at availability a
	// delivers work at rate a.
	FinishTime(t, work float64) float64
}

// Model manufactures independent availability Processes for processors
// of one type.
type Model interface {
	// NewProcess returns the availability process for one processor,
	// using r for any randomness. Each call must return an independent
	// process.
	NewProcess(r *rng.Source) Process
	// Expected returns the long-run expected availability of a process,
	// used for reporting and for the weighted-availability bookkeeping.
	Expected() float64
	// Name identifies the model in reports.
	Name() string
}

// GroupScoped is implemented by models whose processes share per-run
// state (e.g. SharedLoad's common load chain). The simulator calls
// ResetGroup at the start of every run so repetitions stay independent,
// and it must never run repetitions of a group-scoped model
// concurrently — the shared state would race.
type GroupScoped interface {
	// ResetGroup discards the model's shared per-run state so the next
	// NewProcess starts fresh.
	ResetGroup()
}

// Wrapper is implemented by models that decorate another Model
// (logging, perturbation, metric shims, ...). Unwrap exposes the
// decorated model so properties like GroupScoped survive wrapping —
// a decorator that hides its inner model re-enables the concurrent-run
// data race ResetGroup exists to prevent.
type Wrapper interface {
	// Unwrap returns the decorated model.
	Unwrap() Model
}

// AsGroupScoped reports whether m — or any model it wraps, following
// the Unwrap chain — carries group-scoped per-run state, returning the
// innermost GroupScoped implementation. Callers that fan runs out
// across goroutines must consult this instead of asserting on m
// directly, so wrapped models keep their sequential-execution contract.
func AsGroupScoped(m Model) (GroupScoped, bool) {
	for m != nil {
		if g, ok := m.(GroupScoped); ok {
			return g, true
		}
		w, ok := m.(Wrapper)
		if !ok {
			return nil, false
		}
		m = w.Unwrap()
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Static model

// Static draws one availability per processor from a PMF and keeps it
// constant for the whole run.
type Static struct {
	PMF pmf.PMF
}

// NewProcess draws the constant availability.
func (m Static) NewProcess(r *rng.Source) Process {
	return constProcess(m.PMF.Sample(r))
}

// Expected returns E of the underlying PMF.
func (m Static) Expected() float64 { return m.PMF.Mean() }

// Name returns "static".
func (m Static) Name() string { return "static" }

type constProcess float64

func (c constProcess) At(float64) float64 { return float64(c) }

func (c constProcess) FinishTime(t, work float64) float64 {
	return t + work/float64(c)
}

// Fixed returns a Process pinned at availability a in (0, 1]; useful in
// tests and for modeling fully dedicated processors (a = 1).
func Fixed(a float64) Process {
	if a <= 0 || a > 1 {
		panic(fmt.Sprintf("availability: fixed availability %v outside (0,1]", a))
	}
	return constProcess(a)
}

// ---------------------------------------------------------------------
// Redraw model

// Redraw re-draws the availability from the PMF every Interval time
// units, independently per processor.
type Redraw struct {
	PMF pmf.PMF
	// Interval is the length of each constant-availability epoch; it
	// must be positive.
	Interval float64
}

// NewProcess returns an independent re-drawing process.
func (m Redraw) NewProcess(r *rng.Source) Process {
	if m.Interval <= 0 {
		panic(fmt.Sprintf("availability: redraw interval %v not positive", m.Interval))
	}
	return &redrawProcess{
		sampler:  m.PMF.Sampler(),
		interval: m.Interval,
		r:        r.Split(),
		cur:      -1,
		epoch:    -1,
	}
}

// Expected returns E of the underlying PMF.
func (m Redraw) Expected() float64 { return m.PMF.Mean() }

// Name returns "redraw".
func (m Redraw) Name() string { return fmt.Sprintf("redraw(%g)", m.Interval) }

type redrawProcess struct {
	sampler  *pmf.Sampler
	interval float64
	r        *rng.Source
	epoch    int64 // index of the epoch cur belongs to; -1 before first use
	cur      float64
}

func (p *redrawProcess) avail(epoch int64) float64 {
	if epoch != p.epoch {
		if epoch < p.epoch {
			// Queries must be non-decreasing in time; a stale epoch means
			// the caller broke that contract.
			panic("availability: redraw process queried backwards in time")
		}
		// Skip forward, drawing once per epoch so two processes with the
		// same seed but different query patterns stay identical.
		for p.epoch < epoch {
			p.cur = p.sampler.Sample(p.r)
			p.epoch++
		}
	}
	return p.cur
}

func (p *redrawProcess) At(t float64) float64 {
	return p.avail(int64(math.Floor(t / p.interval)))
}

func (p *redrawProcess) FinishTime(t, work float64) float64 {
	// The epoch index is tracked explicitly rather than recomputed from
	// t: floor(((e+1)*interval)/interval) can round back to e, which
	// would stall the loop at an epoch boundary with zero capacity.
	epoch := int64(math.Floor(t / p.interval))
	for work > 1e-12 {
		a := p.avail(epoch)
		end := float64(epoch+1) * p.interval
		capacity := (end - t) * a
		if capacity >= work {
			return t + work/a
		}
		work -= capacity
		t = end
		epoch++
	}
	return t
}

// ---------------------------------------------------------------------
// Markov model

// Markov is a discrete-time Markov chain over the support of a PMF: at
// every Interval boundary the process keeps its state with probability
// Persistence and otherwise jumps to a state drawn from the PMF. The
// stationary distribution is exactly the PMF, while Persistence controls
// burst length (0 reduces to Redraw).
type Markov struct {
	PMF pmf.PMF
	// Interval is the chain step length; it must be positive.
	Interval float64
	// Persistence in [0, 1) is the probability of keeping the current
	// state at each step.
	Persistence float64
}

// NewProcess returns an independent chain started from the stationary
// distribution.
func (m Markov) NewProcess(r *rng.Source) Process {
	if m.Interval <= 0 {
		panic(fmt.Sprintf("availability: markov interval %v not positive", m.Interval))
	}
	if m.Persistence < 0 || m.Persistence >= 1 {
		panic(fmt.Sprintf("availability: markov persistence %v outside [0,1)", m.Persistence))
	}
	src := r.Split()
	sampler := m.PMF.Sampler()
	return &markovProcess{
		sampler:     sampler,
		interval:    m.Interval,
		persistence: m.Persistence,
		r:           src,
		epoch:       0,
		cur:         sampler.Sample(src),
	}
}

// Expected returns E of the underlying PMF (its stationary mean).
func (m Markov) Expected() float64 { return m.PMF.Mean() }

// Name returns "markov".
func (m Markov) Name() string {
	return fmt.Sprintf("markov(%g,%.2f)", m.Interval, m.Persistence)
}

type markovProcess struct {
	sampler     *pmf.Sampler
	interval    float64
	persistence float64
	r           *rng.Source
	epoch       int64
	cur         float64
}

func (p *markovProcess) avail(epoch int64) float64 {
	if epoch < p.epoch {
		panic("availability: markov process queried backwards in time")
	}
	for p.epoch < epoch {
		if p.r.Float64() >= p.persistence {
			p.cur = p.sampler.Sample(p.r)
		}
		p.epoch++
	}
	return p.cur
}

func (p *markovProcess) At(t float64) float64 {
	return p.avail(int64(math.Floor(t / p.interval)))
}

func (p *markovProcess) FinishTime(t, work float64) float64 {
	// Explicit epoch tracking; see redrawProcess.FinishTime.
	epoch := int64(math.Floor(t / p.interval))
	for work > 1e-12 {
		a := p.avail(epoch)
		end := float64(epoch+1) * p.interval
		capacity := (end - t) * a
		if capacity >= work {
			return t + work/a
		}
		work -= capacity
		t = end
		epoch++
	}
	return t
}

// ---------------------------------------------------------------------
// Trace model

// Segment is one piece of a piecewise-constant availability trace.
type Segment struct {
	// Until is the end time of the segment (exclusive); the last
	// segment's Until may be +Inf.
	Until float64
	// Avail is the fractional availability in (0, 1] during the segment.
	Avail float64
}

// Trace replays an explicit piecewise-constant availability profile.
// Every process of the model follows the same trace (use several Trace
// models for heterogeneous profiles).
type Trace struct {
	Segments []Segment
}

// NewTrace validates and returns a Trace model. Segments must have
// increasing Until times, availabilities in (0, 1], and the final
// segment must extend to +Inf so every query is covered.
func NewTrace(segments []Segment) (Trace, error) {
	if len(segments) == 0 {
		return Trace{}, fmt.Errorf("availability: empty trace")
	}
	prev := math.Inf(-1)
	for i, s := range segments {
		if s.Until <= prev {
			return Trace{}, fmt.Errorf("availability: trace segment %d not increasing", i)
		}
		if s.Avail <= 0 || s.Avail > 1 {
			return Trace{}, fmt.Errorf("availability: trace segment %d availability %v outside (0,1]", i, s.Avail)
		}
		prev = s.Until
	}
	if !math.IsInf(segments[len(segments)-1].Until, 1) {
		return Trace{}, fmt.Errorf("availability: final trace segment must extend to +Inf")
	}
	return Trace{Segments: append([]Segment(nil), segments...)}, nil
}

// NewProcess returns a process replaying the trace (deterministic; r is
// unused).
func (m Trace) NewProcess(*rng.Source) Process { return traceProcess(m.Segments) }

// Expected returns the time-weighted mean availability over the finite
// prefix of the trace (the infinite tail is weighted by its availability
// alone if the whole trace is one segment).
func (m Trace) Expected() float64 {
	segs := m.Segments
	if len(segs) == 1 {
		return segs[0].Avail
	}
	start, total, mass := 0.0, 0.0, 0.0
	for _, s := range segs[:len(segs)-1] {
		d := s.Until - start
		total += d
		mass += d * s.Avail
		start = s.Until
	}
	return mass / total
}

// Name returns "trace".
func (m Trace) Name() string { return "trace" }

type traceProcess []Segment

func (p traceProcess) At(t float64) float64 {
	for _, s := range p {
		if t < s.Until {
			return s.Avail
		}
	}
	return p[len(p)-1].Avail
}

func (p traceProcess) FinishTime(t, work float64) float64 {
	start := t
	for _, s := range p {
		if start >= s.Until {
			continue
		}
		capacity := (s.Until - start) * s.Avail
		if capacity >= work || math.IsInf(s.Until, 1) {
			return start + work/s.Avail
		}
		work -= capacity
		start = s.Until
	}
	last := p[len(p)-1]
	return start + work/last.Avail
}

package availability

import (
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

// wrapModel decorates another Model without re-implementing GroupScoped,
// exposing the inner model only through Unwrap.
type wrapModel struct{ inner Model }

func (w wrapModel) NewProcess(r *rng.Source) Process { return w.inner.NewProcess(r) }
func (w wrapModel) Expected() float64                { return w.inner.Expected() }
func (w wrapModel) Name() string                     { return "wrap(" + w.inner.Name() + ")" }
func (w wrapModel) Unwrap() Model                    { return w.inner }

// opaqueModel decorates another Model but does not implement Wrapper.
type opaqueModel struct{ inner Model }

func (o opaqueModel) NewProcess(r *rng.Source) Process { return o.inner.NewProcess(r) }
func (o opaqueModel) Expected() float64                { return o.inner.Expected() }
func (o opaqueModel) Name() string                     { return "opaque" }

func TestAsGroupScoped(t *testing.T) {
	point := pmf.Point(1)
	shared := &SharedLoad{Shared: point, Idio: point, Mix: 1, Interval: 10, Persistence: 0}

	if g, ok := AsGroupScoped(shared); !ok || g != GroupScoped(shared) {
		t.Error("direct SharedLoad not detected")
	}
	if _, ok := AsGroupScoped(Static{PMF: point}); ok {
		t.Error("Static reported group-scoped")
	}

	// One and two wrapper layers still expose the inner SharedLoad.
	for _, m := range []Model{
		wrapModel{inner: shared},
		wrapModel{inner: wrapModel{inner: shared}},
	} {
		g, ok := AsGroupScoped(m)
		if !ok {
			t.Fatalf("%s: group-scoped model lost behind wrapper", m.Name())
		}
		if g != GroupScoped(shared) {
			t.Errorf("%s: wrong GroupScoped returned", m.Name())
		}
	}

	// A wrapper around a non-group-scoped model stays non-group-scoped.
	if _, ok := AsGroupScoped(wrapModel{inner: Static{PMF: point}}); ok {
		t.Error("wrapped Static reported group-scoped")
	}
	// A decorator without Unwrap cannot be seen through; it must not
	// panic or loop.
	if _, ok := AsGroupScoped(opaqueModel{inner: shared}); ok {
		t.Error("opaque decorator unexpectedly detected (no Unwrap)")
	}
	if _, ok := AsGroupScoped(nil); ok {
		t.Error("nil model reported group-scoped")
	}
}

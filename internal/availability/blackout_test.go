package availability

import (
	"math"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

func TestBlackoutOverlay(t *testing.T) {
	m := Blackout{
		Base:     Static{PMF: pmf.Point(1)},
		Prob:     0.3,
		Interval: 10,
		Floor:    1e-3,
	}
	r := rng.New(4)
	p := m.NewProcess(r)
	outages, n := 0, 5000
	for e := 0; e < n; e++ {
		a := p.At(float64(e) * 10)
		switch a {
		case 1e-3:
			outages++
		case 1.0:
		default:
			t.Fatalf("unexpected availability %v", a)
		}
	}
	rate := float64(outages) / float64(n)
	if math.Abs(rate-0.3) > 0.03 {
		t.Errorf("outage rate = %v, want ~0.3", rate)
	}
}

func TestBlackoutExpected(t *testing.T) {
	m := Blackout{Base: Static{PMF: pmf.Point(0.8)}, Prob: 0.25, Interval: 5, Floor: 0.01}
	want := 0.75*0.8 + 0.25*0.01
	if got := m.Expected(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Expected = %v, want %v", got, want)
	}
}

func TestBlackoutFinishTimeProgresses(t *testing.T) {
	m := Blackout{Base: Static{PMF: pmf.Point(1)}, Prob: 0.5, Interval: 3}
	p := m.NewProcess(rng.New(9))
	tm := 0.0
	for i := 0; i < 100; i++ {
		next := p.FinishTime(tm, 5)
		if next <= tm {
			t.Fatalf("no progress at %v", tm)
		}
		// Work 5 at full speed takes 5; outages only stretch it.
		if next < tm+5-1e-9 {
			t.Fatalf("finished faster than dedicated: %v -> %v", tm, next)
		}
		tm = next
	}
}

func TestBlackoutValidation(t *testing.T) {
	bads := []Blackout{
		{Base: nil, Prob: 0.1, Interval: 1},
		{Base: Static{PMF: pmf.Point(1)}, Prob: 1, Interval: 1},
		{Base: Static{PMF: pmf.Point(1)}, Prob: 0.1, Interval: 0},
	}
	for i, m := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad blackout config %d did not panic", i)
				}
			}()
			m.NewProcess(rng.New(1))
		}()
	}
}

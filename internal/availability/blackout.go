package availability

import (
	"fmt"
	"math"

	"cdsf/internal/rng"
)

// Blackout wraps a base availability model with random full outages:
// with probability Prob, each epoch of a processor is blacked out
// (availability pinned to a floor barely above zero). It is the
// failure-injection stressor for Stage-II techniques — a blacked-out
// worker holding a large chunk is exactly the scenario robust DLS must
// absorb. Outages are per-processor and independent.
type Blackout struct {
	// Base supplies the availability between outages.
	Base Model
	// Prob in [0, 1) is the per-epoch outage probability.
	Prob float64
	// Interval is the outage epoch length; it must be positive.
	Interval float64
	// Floor is the availability during an outage (default 1e-3; zero is
	// not representable because FinishTime must stay finite).
	Floor float64
}

// NewProcess wraps a base process with an outage overlay.
func (m Blackout) NewProcess(r *rng.Source) Process {
	if m.Base == nil {
		panic("availability: blackout with nil base model")
	}
	if m.Prob < 0 || m.Prob >= 1 {
		panic(fmt.Sprintf("availability: blackout probability %v outside [0,1)", m.Prob))
	}
	if m.Interval <= 0 {
		panic(fmt.Sprintf("availability: blackout interval %v not positive", m.Interval))
	}
	floor := m.Floor
	if floor <= 0 {
		floor = 1e-3
	}
	return &blackoutProcess{
		base:     m.Base.NewProcess(r),
		r:        r.Split(),
		prob:     m.Prob,
		interval: m.Interval,
		floor:    floor,
		epoch:    -1,
	}
}

// Expected returns the long-run expectation: base scaled by uptime plus
// the floor during outages.
func (m Blackout) Expected() float64 {
	floor := m.Floor
	if floor <= 0 {
		floor = 1e-3
	}
	return (1-m.Prob)*m.Base.Expected() + m.Prob*floor
}

// Name identifies the model in reports.
func (m Blackout) Name() string {
	return fmt.Sprintf("blackout(%.2f,%g)+%s", m.Prob, m.Interval, m.Base.Name())
}

type blackoutProcess struct {
	base     Process
	r        *rng.Source
	prob     float64
	interval float64
	floor    float64
	epoch    int64
	out      bool
}

// outage reports whether the given epoch is blacked out, drawing each
// epoch's state once in order.
func (p *blackoutProcess) outage(epoch int64) bool {
	if epoch < p.epoch {
		// Backwards queries get the current state (worker clocks within
		// one run diverge by less than an interval in practice).
		return p.out
	}
	for p.epoch < epoch {
		p.out = p.r.Float64() < p.prob
		p.epoch++
	}
	return p.out
}

func (p *blackoutProcess) At(t float64) float64 {
	a := p.base.At(t)
	if p.outage(int64(math.Floor(t / p.interval))) {
		return p.floor
	}
	return a
}

func (p *blackoutProcess) FinishTime(t, work float64) float64 {
	// Walk outage epochs; within each epoch delegate capacity
	// accounting to the base process via its own At/FinishTime on the
	// sub-interval. For simplicity and robustness the base availability
	// is sampled at the epoch start (the base's own epochs are usually
	// no shorter than the outage interval).
	epoch := int64(math.Floor(t / p.interval))
	for work > 1e-12 {
		a := p.base.At(t)
		if p.outage(epoch) {
			a = p.floor
		}
		end := float64(epoch+1) * p.interval
		capacity := (end - t) * a
		if capacity >= work {
			return t + work/a
		}
		work -= capacity
		t = end
		epoch++
	}
	return t
}

package availability

import (
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
)

func halfOrFull() pmf.PMF {
	return pmf.MustNew([]pmf.Pulse{{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})
}

func TestFixed(t *testing.T) {
	p := Fixed(0.5)
	if p.At(0) != 0.5 || p.At(100) != 0.5 {
		t.Error("fixed availability not constant")
	}
	if got := p.FinishTime(10, 5); got != 20 {
		t.Errorf("FinishTime = %v, want 20", got)
	}
}

func TestFixedPanicsOutOfRange(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fixed(%v) did not panic", a)
				}
			}()
			Fixed(a)
		}()
	}
}

func TestStaticDrawsFromPMF(t *testing.T) {
	m := Static{PMF: halfOrFull()}
	r := rng.New(1)
	seen := map[float64]int{}
	for i := 0; i < 2000; i++ {
		p := m.NewProcess(r)
		a := p.At(0)
		if a != p.At(1e9) {
			t.Fatal("static process changed over time")
		}
		seen[a]++
	}
	if seen[0.5] < 800 || seen[1] < 800 {
		t.Errorf("draw frequencies %v far from 50/50", seen)
	}
	if m.Expected() != 0.75 {
		t.Errorf("expected = %v", m.Expected())
	}
}

func TestRedrawEpochsAndFinishTime(t *testing.T) {
	m := Redraw{PMF: halfOrFull(), Interval: 10}
	p := m.NewProcess(rng.New(2))
	// Availability is constant within an epoch.
	a0 := p.At(0)
	if p.At(9.99) != a0 {
		t.Error("availability changed within an epoch")
	}
	// FinishTime integrates availability across epochs: work 20 at
	// availability 0.5 spans 4 epochs of capacity 5 each.
	p2 := Trace{Segments: []Segment{{Until: math.Inf(1), Avail: 0.5}}}.NewProcess(nil)
	if got := p2.FinishTime(0, 20); got != 40 {
		t.Errorf("FinishTime = %v, want 40", got)
	}
}

func TestRedrawFinishTimeConsistentWithAt(t *testing.T) {
	m := Redraw{PMF: halfOrFull(), Interval: 7}
	// Two processes built from identical seeds follow the same epoch
	// draws; use one for FinishTime and its twin for integration, since
	// per-process queries must be non-decreasing in time.
	p := m.NewProcess(rng.New(3))
	twin := m.NewProcess(rng.New(3))
	const work = 30.0
	finish := p.FinishTime(0, work)
	got := 0.0
	step := 0.001
	for x := 0.0; x < finish; x += step {
		got += twin.At(x) * step
	}
	if math.Abs(got-work) > 0.1 {
		t.Errorf("integrated capacity %v != work %v (finish %v)", got, work, finish)
	}
}

func TestRedrawBackwardsPanics(t *testing.T) {
	m := Redraw{PMF: halfOrFull(), Interval: 5}
	p := m.NewProcess(rng.New(4))
	p.At(100)
	defer func() {
		if recover() == nil {
			t.Error("backwards query did not panic")
		}
	}()
	p.At(0)
}

func TestMarkovStationaryMean(t *testing.T) {
	pm := pmf.MustNew([]pmf.Pulse{
		{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})
	m := Markov{PMF: pm, Interval: 1, Persistence: 0.8}
	r := rng.New(5)
	sum, n := 0.0, 0
	for i := 0; i < 50; i++ {
		p := m.NewProcess(r)
		for e := 0; e < 400; e++ {
			sum += p.At(float64(e))
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-pm.Mean()) > 0.02 {
		t.Errorf("markov long-run mean = %v, want %v", mean, pm.Mean())
	}
}

func TestMarkovPersistenceZeroMatchesRedrawStats(t *testing.T) {
	pm := halfOrFull()
	m := Markov{PMF: pm, Interval: 1, Persistence: 0}
	r := rng.New(6)
	p := m.NewProcess(r)
	// With persistence 0 consecutive epochs are independent draws;
	// check the switch rate is ~0.5 (a persistent chain would be lower).
	switches, n := 0, 2000
	prev := p.At(0)
	for e := 1; e < n; e++ {
		cur := p.At(float64(e))
		if cur != prev {
			switches++
		}
		prev = cur
	}
	rate := float64(switches) / float64(n-1)
	if math.Abs(rate-0.5) > 0.05 {
		t.Errorf("switch rate = %v, want ~0.5", rate)
	}
}

func TestMarkovValidation(t *testing.T) {
	for _, bad := range []Markov{
		{PMF: halfOrFull(), Interval: 0, Persistence: 0.5},
		{PMF: halfOrFull(), Interval: 1, Persistence: 1},
		{PMF: halfOrFull(), Interval: 1, Persistence: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid markov %+v did not panic", bad)
				}
			}()
			bad.NewProcess(rng.New(1))
		}()
	}
}

func TestTraceValidationAndReplay(t *testing.T) {
	_, err := NewTrace(nil)
	if err == nil {
		t.Error("empty trace accepted")
	}
	_, err = NewTrace([]Segment{{Until: 10, Avail: 0.5}})
	if err == nil {
		t.Error("finite trace accepted")
	}
	_, err = NewTrace([]Segment{{Until: 10, Avail: 0.5}, {Until: 5, Avail: 1}})
	if err == nil {
		t.Error("non-increasing trace accepted")
	}
	_, err = NewTrace([]Segment{{Until: math.Inf(1), Avail: 1.5}})
	if err == nil {
		t.Error("availability > 1 accepted")
	}

	tr, err := NewTrace([]Segment{
		{Until: 10, Avail: 0.5},
		{Until: 20, Avail: 0.25},
		{Until: math.Inf(1), Avail: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.NewProcess(nil)
	if p.At(5) != 0.5 || p.At(15) != 0.25 || p.At(100) != 1 {
		t.Error("trace replay wrong")
	}
	// Work 10 starting at 0: 5 capacity in [0,10), 2.5 in [10,20),
	// remaining 2.5 at availability 1 -> finish at 22.5.
	if got := p.FinishTime(0, 10); math.Abs(got-22.5) > 1e-9 {
		t.Errorf("FinishTime = %v, want 22.5", got)
	}
	// Starting mid-segment.
	if got := p.FinishTime(18, 1); math.Abs(got-(20+0.5)) > 1e-9 {
		t.Errorf("FinishTime(18, 1) = %v, want 20.5", got)
	}
	// Expected availability is the time-weighted mean over the finite
	// prefix: (10*0.5 + 10*0.25) / 20 = 0.375.
	if got := tr.Expected(); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("Expected = %v", got)
	}
}

// TestFinishTimeEpochBoundaryTermination is a regression test for a
// floating-point stall: with intervals whose multiples are not exactly
// representable, t = (epoch+1)*interval could floor back to the same
// epoch and loop forever with zero capacity. Explicit epoch tracking
// fixes it; this exercises many awkward intervals and start offsets.
func TestFinishTimeEpochBoundaryTermination(t *testing.T) {
	pmfs := halfOrFull()
	for _, interval := range []float64{685.5, 0.1, 1.0 / 3.0, 812.4999999, 2742.0 / 4} {
		for seed := uint64(0); seed < 5; seed++ {
			m := Markov{PMF: pmfs, Interval: interval, Persistence: 0.5}
			p := m.NewProcess(rng.New(seed))
			tm := 0.0
			for i := 0; i < 50; i++ {
				next := p.FinishTime(tm, 10*interval+float64(i))
				if next <= tm {
					t.Fatalf("interval %v seed %d: no progress at %v", interval, seed, tm)
				}
				tm = next
			}
			r := Redraw{Interval: interval, PMF: pmfs}
			pr := r.NewProcess(rng.New(seed))
			if got := pr.FinishTime(interval*7, interval); got <= interval*7 {
				t.Fatalf("redraw stalled at boundary (interval %v)", interval)
			}
		}
	}
}

// TestQuickFinishTimeMonotone property-checks FinishTime monotonicity
// in work for all model families.
func TestQuickFinishTimeMonotone(t *testing.T) {
	f := func(seed uint64, w1, w2 float64) bool {
		a := math.Mod(math.Abs(w1), 100) + 0.01
		b := math.Mod(math.Abs(w2), 100) + 0.01
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, m := range []Model{
			Static{PMF: halfOrFull()},
			Redraw{PMF: halfOrFull(), Interval: 3},
			Markov{PMF: halfOrFull(), Interval: 3, Persistence: 0.5},
		} {
			// Two identical processes (same split seed) keep query order
			// valid while comparing different work amounts.
			p1 := m.NewProcess(rng.New(seed))
			p2 := m.NewProcess(rng.New(seed))
			f1 := p1.FinishTime(0, lo)
			f2 := p2.FinishTime(0, hi)
			if f2 < f1-1e-9 {
				return false
			}
			// Work w at availability <= 1 takes at least w.
			if f2 < hi-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

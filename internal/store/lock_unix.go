//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f. The
// kernel releases it when the descriptor closes — including on
// kill -9 — so crash recovery never meets a stale lock.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

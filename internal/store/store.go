// Package store is the pluggable job store behind the cdsfd
// scheduling service: the durable (or deliberately non-durable) record
// of every job's lifecycle, factored out of internal/server so the
// service can run on either backend without the HTTP layer or the
// executor pool knowing which one it has.
//
// Two implementations ship:
//
//   - Memory: the original in-process job table (map + submission
//     order + id sequence), extracted from internal/server. Zero
//     dependencies, zero durability — jobs die with the process, which
//     is what single-machine reproductions want.
//   - WAL (wal.go): an append-only write-ahead log that journals every
//     lifecycle transition as a CRC-framed record, fsyncs in batches
//     (group commit), and replays the log on open so accepted jobs
//     survive kill -9. Seeded jobs are bit-identical, so a replayed
//     job re-runs to exactly the first run's result bytes.
//
// The record schema is grown out of the internal/events lifecycle
// types: a Record is an events-style transition (accepted, queued,
// started, assigned, progress, done, failed, cancelled, drained) plus
// the payloads the store must retain — the original request document
// (so an interrupted job can be re-dispatched after a crash), the
// result document, and the worker node holding the job's lease.
//
// Both stores materialize records into the same Job state machine
// (apply), so WAL replay and live appends go through one code path.
package store

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
)

// Record is one lifecycle transition, the unit both stores append and
// the WAL frames on disk. Type reuses the internal/events vocabulary;
// the store-relevant payloads ride along and are empty on transitions
// that do not carry them.
type Record struct {
	// Seq is the store-wide append sequence, assigned by the store.
	Seq int64 `json:"seq"`
	// Time is the transition's wall clock (UTC); the store stamps it
	// when the caller leaves it zero.
	Time time.Time `json:"time"`
	// Job is the job id the transition belongs to.
	Job string `json:"job"`
	// Type is the lifecycle transition, from the events vocabulary.
	Type events.Type `json:"type"`
	// Kind is the job's engine entry point; set on accepted.
	Kind api.JobKind `json:"kind,omitempty"`
	// Detail is the human fragment: an error message on failed and
	// cancelled, the recovery note on a replayed re-queue.
	Detail string `json:"detail,omitempty"`
	// Request is the original request document, set on accepted. It is
	// what makes crash recovery and remote dispatch possible: the job
	// can be re-validated and re-run from its own record.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the finished result document, set on done.
	Result json.RawMessage `json:"result,omitempty"`
	// Node is the worker peer holding the job's lease, set on assigned
	// ("" releases the lease back to the local executor pool).
	Node string `json:"node,omitempty"`
	// Cache is the envelope cache block, set on done when the server
	// runs with a solve cache.
	Cache *api.CacheInfo `json:"cache,omitempty"`
	// Progress is a sampled progress snapshot, set on progress.
	Progress *api.Progress `json:"progress,omitempty"`
}

// Job is the materialized state of one job: the wire envelope plus the
// retained request document.
type Job struct {
	Env     api.Job
	Request json.RawMessage
}

// Stats describes a store for /v1/healthz: which backend is running,
// how much it has journaled, and what the last replay recovered.
type Stats struct {
	// Backend is "memory" or "wal".
	Backend string `json:"backend"`
	// Jobs is the number of jobs currently materialized.
	Jobs int `json:"jobs"`
	// Records counts appends over the store's lifetime (excluding
	// replayed records, which are counted separately).
	Records int64 `json:"records"`
	// WALBytes is the journal file size (WAL only).
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// Fsyncs counts physical fsync calls; group commit makes this
	// smaller than the number of durable appends under load (WAL only).
	Fsyncs int64 `json:"fsyncs,omitempty"`
	// ReplayedRecords and ReplayedJobs describe the startup replay:
	// how many frames were read back and how many jobs they
	// materialized (WAL only).
	ReplayedRecords int64 `json:"replayed_records,omitempty"`
	ReplayedJobs    int64 `json:"replayed_jobs,omitempty"`
	// RecoveredJobs is how many replayed jobs were interrupted
	// (non-terminal at crash) and handed back for re-enqueueing.
	RecoveredJobs int64 `json:"recovered_jobs,omitempty"`
	// TruncatedBytes is the size of the torn tail discarded at replay
	// (a partially written frame from the crash).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// JobStore is what internal/server runs on: an append-only transition
// log materialized into per-job state. Implementations serialize
// internally; the server additionally serializes lifecycle decisions
// under its own mutex, exactly as the pre-store code did.
type JobStore interface {
	// Backend names the implementation ("memory", "wal").
	Backend() string
	// NextID allocates the next job id (ids survive restarts: the WAL
	// store continues past the highest replayed id).
	NextID() string
	// Append applies one transition to the materialized state and, for
	// durable backends, journals it. Accepted and terminal transitions
	// do not return until the record is durable (fsynced); queued,
	// started, assigned, and progress records are journaled
	// asynchronously.
	Append(rec Record) error
	// Get returns the materialized job.
	Get(id string) (Job, bool)
	// List returns every materialized job in submission order.
	List() []Job
	// Interrupted returns the jobs that were non-terminal when the
	// store was opened — the crash-recovery work list. Empty for the
	// memory store.
	Interrupted() []Job
	// Stats reports the backend description for /v1/healthz.
	Stats() Stats
	// Close releases the store (flushes and closes the WAL file).
	Close() error
}

// table is the shared materialized state: jobs by id plus submission
// order and the id sequence. Memory embeds it directly; WAL drives it
// from replayed and live records.
type table struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	appended int64
}

func newTable() *table {
	return &table{jobs: map[string]*Job{}}
}

// nextID allocates the next job id in the service's historical format.
func (t *table) nextID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return fmt.Sprintf("job-%06d", t.seq)
}

// bumpSeq advances the id sequence past a replayed job id, so ids
// allocated after a restart never collide with journaled ones.
func (t *table) bumpSeq(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil {
		return
	}
	t.mu.Lock()
	if n > t.seq {
		t.seq = n
	}
	t.mu.Unlock()
}

// apply folds one record into the materialized state — the single
// lifecycle state machine behind live appends and WAL replay.
func (t *table) apply(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[rec.Job]
	if !ok {
		if rec.Type != events.TypeAccepted {
			// A transition for a job the store never accepted (a
			// truncated WAL lost the accepted frame): nothing to apply
			// to, drop it.
			return
		}
		j = &Job{}
		t.jobs[rec.Job] = j
		t.order = append(t.order, rec.Job)
	}
	when := rec.Time
	switch rec.Type {
	case events.TypeAccepted:
		j.Env = api.Job{ID: rec.Job, Kind: rec.Kind, State: api.JobQueued, Created: when}
		j.Request = rec.Request
	case events.TypeQueued:
		// Initial queueing, or a re-queue (crash recovery, lease
		// reassignment): the job becomes runnable again with a clean
		// slate.
		j.Env.State = api.JobQueued
		j.Env.Started = nil
		j.Env.Finished = nil
		j.Env.Result = nil
		j.Env.Error = ""
		j.Env.Node = ""
	case events.TypeStarted:
		j.Env.State = api.JobRunning
		j.Env.Started = &when
	case events.TypeAssigned:
		j.Env.Node = rec.Node
	case events.TypeProgress:
		j.Env.Progress = rec.Progress
	case events.TypeDone:
		j.Env.State = api.JobDone
		if j.Env.Started == nil {
			// A cache-replayed admission collapses the lifecycle into
			// accepted -> done; the envelope still carries timestamps.
			j.Env.Started = &when
		}
		j.Env.Finished = &when
		j.Env.Result = rec.Result
		j.Env.Cache = rec.Cache
	case events.TypeFailed:
		j.Env.State = api.JobFailed
		j.Env.Finished = &when
		j.Env.Error = rec.Detail
	case events.TypeCancelled, events.TypeDrained:
		j.Env.State = api.JobCancelled
		j.Env.Finished = &when
		j.Env.Error = rec.Detail
	}
}

func (t *table) get(id string) (Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

func (t *table) list() []Job {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Job, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, *t.jobs[id])
	}
	return out
}

// nonTerminal returns the jobs whose state is not final, in submission
// order — the replay recovery work list.
func (t *table) nonTerminal() []Job {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Job
	for _, id := range t.order {
		if j := t.jobs[id]; !j.Env.State.Terminal() {
			out = append(out, *j)
		}
	}
	return out
}

func (t *table) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// Memory is the zero-dependency in-process store: the job table the
// server used to own inline, behind the JobStore interface. Nothing
// survives the process.
type Memory struct {
	t *table
}

// NewMemory returns an empty in-memory job store.
func NewMemory() *Memory {
	return &Memory{t: newTable()}
}

// Backend implements JobStore.
func (m *Memory) Backend() string { return "memory" }

// NextID implements JobStore.
func (m *Memory) NextID() string { return m.t.nextID() }

// Append implements JobStore: the record is applied to the in-memory
// state and forgotten.
func (m *Memory) Append(rec Record) error {
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	m.t.mu.Lock()
	m.t.appended++
	rec.Seq = m.t.appended
	m.t.mu.Unlock()
	m.t.apply(rec)
	return nil
}

// Get implements JobStore.
func (m *Memory) Get(id string) (Job, bool) { return m.t.get(id) }

// List implements JobStore.
func (m *Memory) List() []Job { return m.t.list() }

// Interrupted implements JobStore: a fresh memory store never has
// anything to recover.
func (m *Memory) Interrupted() []Job { return nil }

// Stats implements JobStore.
func (m *Memory) Stats() Stats {
	m.t.mu.Lock()
	n := m.t.appended
	m.t.mu.Unlock()
	return Stats{Backend: "memory", Jobs: m.t.len(), Records: n}
}

// Close implements JobStore.
func (m *Memory) Close() error { return nil }

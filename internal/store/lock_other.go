//go:build !unix

package store

import "os"

// lockFile is a no-op where flock is unavailable; single-writer
// discipline is then the operator's responsibility.
func lockFile(f *os.File) error { return nil }

package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cdsf/internal/events"
	"cdsf/internal/metrics"
)

// This file implements the WAL store: an append-only journal of
// lifecycle Records framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// after an 8-byte magic header. The payload is the Record's JSON.
//
// Durability contract: Append does not return for accepted and
// terminal records (done, failed, cancelled, drained) until the frame
// is fsynced — so a 202 response means the job survives kill -9, and
// a done response means its result bytes do. Queued, started,
// assigned, and progress records are written without waiting; losing
// the tail of those to a crash only makes replay re-run slightly more
// work, never lose a job. Fsyncs are group-committed: while one fsync
// is in flight, every appender that arrives queues behind it and is
// released by the next single fsync, so the fsync rate is bounded by
// disk latency, not by the append rate.
//
// Replay: on open the journal is read back frame by frame and applied
// through the same state machine live appends use. A torn tail — a
// partial or CRC-mismatched frame from the crash — ends the replay
// and is truncated away so appends continue from the last good frame.
// Jobs that are non-terminal after replay were interrupted; the
// server re-enqueues them (Interrupted) and, because seeded jobs are
// deterministic, the re-run produces bit-identical result bytes.

// walMagic identifies a journal file and its format version.
const walMagic = "CDSFWAL1"

// maxWalRecord bounds a frame's declared payload length; anything
// larger is treated as corruption (requests are capped at 16 MiB by
// the HTTP layer, results are comparable).
const maxWalRecord = 64 << 20

// castagnoli is the CRC-32C table used for frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Metrics receives the store.* counters (appends, fsyncs,
	// replayed records, recovered jobs); nil disables them.
	Metrics *metrics.Registry
}

// WAL is the durable job store: the in-memory table plus the
// append-only journal that rebuilds it after a crash.
type WAL struct {
	t    *table
	opts WALOptions

	mu   sync.Mutex // guards file writes and size
	f    *os.File
	size int64

	waitMu  sync.Mutex
	waiters []chan error
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}

	fsyncs      int64
	interrupted []Job
	replay      Stats // replay-time numbers, frozen at open
}

// OpenWAL opens (creating if needed) the journal under dir and
// replays it. The returned store's Interrupted lists the jobs that
// were queued or running at the crash, ready to re-enqueue.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, "jobs.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	// Single-writer exclusion: a second process opening the same
	// journal would replay it concurrently and its torn-tail
	// truncation could destroy frames the live writer is appending.
	// The lock dies with the file descriptor, so kill -9 releases it.
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process: %w", path, err)
	}
	w := &WAL{
		t:    newTable(),
		opts: opts,
		f:    f,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := w.replayFile(); err != nil {
		f.Close()
		return nil, err
	}
	go w.syncer()
	return w, nil
}

// replayFile reads the journal back, applies every intact frame, and
// truncates the torn tail (if any) so appends continue cleanly.
func (w *WAL) replayFile() error {
	info, err := w.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		if _, err := w.f.Write([]byte(walMagic)); err != nil {
			return fmt.Errorf("store: writing journal header: %w", err)
		}
		w.size = int64(len(walMagic))
		return nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(w.f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != walMagic {
		return fmt.Errorf("store: %s is not a cdsf job journal", w.f.Name())
	}
	good := int64(len(walMagic))
	var maxSeq int64
	var head [8]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			break // clean EOF or torn frame header
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if length == 0 || length > maxWalRecord {
			break // corrupt length: stop at the last good frame
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		w.t.apply(rec)
		if rec.Type == events.TypeAccepted {
			w.t.bumpSeq(rec.Job)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		good += 8 + int64(length)
		w.replay.ReplayedRecords++
	}
	if good < size {
		w.replay.TruncatedBytes = size - good
		if err := w.f.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	w.size = good
	w.t.mu.Lock()
	w.t.appended = maxSeq
	w.t.mu.Unlock()
	w.interrupted = w.t.nonTerminal()
	w.replay.ReplayedJobs = int64(w.t.len())
	w.replay.RecoveredJobs = int64(len(w.interrupted))
	w.opts.Metrics.Counter("store.replayed_records").Add(w.replay.ReplayedRecords)
	w.opts.Metrics.Counter("store.recovered_jobs").Add(w.replay.RecoveredJobs)
	return nil
}

// durable reports whether a record type must be fsynced before Append
// returns.
func durable(t events.Type) bool {
	switch t {
	case events.TypeAccepted, events.TypeDone, events.TypeFailed,
		events.TypeCancelled, events.TypeDrained:
		return true
	}
	return false
}

// Backend implements JobStore.
func (w *WAL) Backend() string { return "wal" }

// NextID implements JobStore; ids continue past the highest replayed
// one.
func (w *WAL) NextID() string { return w.t.nextID() }

// Append implements JobStore: apply, frame, write, and — for durable
// record types — wait for the group-committed fsync.
func (w *WAL) Append(rec Record) error {
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	w.t.mu.Lock()
	w.t.appended++
	rec.Seq = w.t.appended
	w.t.mu.Unlock()
	w.t.apply(rec)
	w.opts.Metrics.Counter("store.appends").Inc()

	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)

	w.mu.Lock()
	_, werr := w.f.Write(frame)
	if werr == nil {
		w.size += int64(len(frame))
	}
	w.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("store: appending record: %w", werr)
	}
	if !durable(rec.Type) {
		return nil
	}

	ch := make(chan error, 1)
	w.waitMu.Lock()
	w.waiters = append(w.waiters, ch)
	w.waitMu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return <-ch
}

// syncer is the group-commit loop: it fsyncs once per batch of
// waiters, so concurrent durable appends share one disk flush.
func (w *WAL) syncer() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			w.release()
			return
		case <-w.kick:
			w.release()
		}
	}
}

// release fsyncs and wakes everyone who was waiting before the fsync
// started.
func (w *WAL) release() {
	w.waitMu.Lock()
	ws := w.waiters
	w.waiters = nil
	w.waitMu.Unlock()
	if len(ws) == 0 {
		return
	}
	err := w.f.Sync()
	w.mu.Lock()
	w.fsyncs++
	w.mu.Unlock()
	w.opts.Metrics.Counter("store.fsyncs").Inc()
	for _, c := range ws {
		c <- err
	}
}

// Get implements JobStore.
func (w *WAL) Get(id string) (Job, bool) { return w.t.get(id) }

// List implements JobStore.
func (w *WAL) List() []Job { return w.t.list() }

// Interrupted implements JobStore: the jobs that were queued or
// running when the journal was last closed (by crash or otherwise).
func (w *WAL) Interrupted() []Job {
	return append([]Job(nil), w.interrupted...)
}

// Stats implements JobStore.
func (w *WAL) Stats() Stats {
	s := w.replay
	s.Backend = "wal"
	s.Jobs = w.t.len()
	w.t.mu.Lock()
	s.Records = w.t.appended - w.replay.ReplayedRecords
	w.t.mu.Unlock()
	w.mu.Lock()
	s.WALBytes = w.size
	s.Fsyncs = w.fsyncs
	w.mu.Unlock()
	return s
}

// Close implements JobStore: it stops the syncer, flushes, and closes
// the journal file. Idempotent Close is not required by the server
// (it closes once, at drain).
func (w *WAL) Close() error {
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.f.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

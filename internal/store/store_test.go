package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
)

// openAppend opens the journal file directly, for tests that corrupt
// or replace it behind the store's back.
func openAppend(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "jobs.wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// lifecycle appends a full accepted->queued->started->done sequence
// for one job and returns the result bytes it stored.
func lifecycle(t *testing.T, s JobStore, req, res string) (string, []byte) {
	t.Helper()
	id := s.NextID()
	result := []byte(res)
	for _, rec := range []Record{
		{Job: id, Type: events.TypeAccepted, Kind: api.KindSolve, Request: []byte(req)},
		{Job: id, Type: events.TypeQueued},
		{Job: id, Type: events.TypeStarted},
		{Job: id, Type: events.TypeDone, Result: result},
	} {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %s: %v", rec.Type, err)
		}
	}
	return id, result
}

func TestMemoryLifecycle(t *testing.T) {
	m := NewMemory()
	if m.Backend() != "memory" {
		t.Fatalf("backend %q", m.Backend())
	}
	id, result := lifecycle(t, m, `{"heuristic":"greedy"}`, `{"phi1":1}`)
	if id != "job-000001" {
		t.Errorf("first id %q, want job-000001", id)
	}
	j, ok := m.Get(id)
	if !ok || j.Env.State != api.JobDone {
		t.Fatalf("job after lifecycle: ok=%v %+v", ok, j.Env)
	}
	if string(j.Env.Result) != string(result) {
		t.Errorf("result %s", j.Env.Result)
	}
	if string(j.Request) != `{"heuristic":"greedy"}` {
		t.Errorf("request %s", j.Request)
	}
	if j.Env.Started == nil || j.Env.Finished == nil {
		t.Error("missing timestamps")
	}
	if got := m.List(); len(got) != 1 || got[0].Env.ID != id {
		t.Errorf("list %+v", got)
	}
	if got := m.Interrupted(); got != nil {
		t.Errorf("memory store reported interrupted jobs: %+v", got)
	}
	st := m.Stats()
	if st.Backend != "memory" || st.Jobs != 1 || st.Records != 4 {
		t.Errorf("stats %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestApplyTransitions(t *testing.T) {
	m := NewMemory()
	id := m.NextID()
	// Transitions for a job never accepted are dropped, not invented.
	_ = m.Append(Record{Job: "job-999999", Type: events.TypeStarted})
	if _, ok := m.Get("job-999999"); ok {
		t.Error("unaccepted job materialized")
	}
	_ = m.Append(Record{Job: id, Type: events.TypeAccepted, Kind: api.KindSimulate})
	_ = m.Append(Record{Job: id, Type: events.TypeStarted})
	_ = m.Append(Record{Job: id, Type: events.TypeAssigned, Node: "w1"})
	_ = m.Append(Record{Job: id, Type: events.TypeProgress,
		Progress: &api.Progress{Replications: api.Counts{Done: 3, Planned: 9}}})
	j, _ := m.Get(id)
	if j.Env.State != api.JobRunning || j.Env.Node != "w1" {
		t.Fatalf("running job %+v", j.Env)
	}
	if j.Env.Progress == nil || j.Env.Progress.Replications.Done != 3 {
		t.Errorf("progress %+v", j.Env.Progress)
	}
	// A re-queue (recovery, lease reassignment) resets the slate.
	_ = m.Append(Record{Job: id, Type: events.TypeQueued, Detail: "recovered"})
	j, _ = m.Get(id)
	if j.Env.State != api.JobQueued || j.Env.Node != "" || j.Env.Started != nil {
		t.Fatalf("requeued job %+v", j.Env)
	}
	// Failure carries the message.
	_ = m.Append(Record{Job: id, Type: events.TypeFailed, Detail: "boom"})
	j, _ = m.Get(id)
	if j.Env.State != api.JobFailed || j.Env.Error != "boom" {
		t.Fatalf("failed job %+v", j.Env)
	}
}

func TestWALReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Backend() != "wal" {
		t.Fatalf("backend %q", w.Backend())
	}
	doneID, result := lifecycle(t, w, `{"heuristic":"greedy"}`, `{"phi1":0.5}`)

	// A second job is accepted and started but never finishes: the
	// crash victim.
	lostID := w.NextID()
	_ = w.Append(Record{Job: lostID, Type: events.TypeAccepted, Kind: api.KindScenario, Request: []byte(`{"scenario":1}`)})
	_ = w.Append(Record{Job: lostID, Type: events.TypeQueued})
	_ = w.Append(Record{Job: lostID, Type: events.TypeStarted})
	st := w.Stats()
	if st.Records != 7 || st.Fsyncs == 0 || st.WALBytes <= int64(len(walMagic)) {
		t.Errorf("live stats %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the finished job is intact bit-for-bit, the interrupted
	// one is handed back for recovery, and ids continue past both.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	j, ok := w2.Get(doneID)
	if !ok || j.Env.State != api.JobDone || string(j.Env.Result) != string(result) {
		t.Fatalf("replayed done job: ok=%v %+v", ok, j.Env)
	}
	inter := w2.Interrupted()
	if len(inter) != 1 || inter[0].Env.ID != lostID || inter[0].Env.State.Terminal() {
		t.Fatalf("interrupted %+v", inter)
	}
	if string(inter[0].Request) != `{"scenario":1}` {
		t.Errorf("interrupted request %s", inter[0].Request)
	}
	st = w2.Stats()
	if st.ReplayedRecords != 7 || st.ReplayedJobs != 2 || st.RecoveredJobs != 1 {
		t.Errorf("replay stats %+v", st)
	}
	if next := w2.NextID(); next != "job-000003" {
		t.Errorf("id after replay %q, want job-000003", next)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := lifecycle(t, w, `{}`, `{"ok":true}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: garbage where the next frame would start.
	f, err := openAppend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x12, 0x34, 0x56}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if j, ok := w2.Get(id); !ok || j.Env.State != api.JobDone {
		t.Fatalf("good frames lost to the torn tail: %+v", j.Env)
	}
	st := w2.Stats()
	if st.TruncatedBytes != 3 || st.ReplayedRecords != 4 {
		t.Errorf("stats after truncation %+v", st)
	}
	// Appends continue cleanly from the truncated offset.
	id2, _ := lifecycle(t, w2, `{}`, `{"again":1}`)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if j, ok := w3.Get(id2); !ok || j.Env.State != api.JobDone {
		t.Fatalf("post-truncation job lost: %+v", j.Env)
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	f, err := openAppend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not a journal at all")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("foreign file accepted as a journal")
	}
}

func TestWALConcurrentDurableAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	ids := make([]string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		ids[i] = w.NextID()
	}
	for i := 0; i < n; i++ {
		go func(id string) {
			err := w.Append(Record{Job: id, Type: events.TypeAccepted, Kind: api.KindSolve, Request: []byte(`{}`)})
			if err == nil {
				err = w.Append(Record{Job: id, Type: events.TypeDone, Result: []byte(`{"i":1}`)})
			}
			errs <- err
		}(ids[i])
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.ReplayedJobs != n || st.RecoveredJobs != 0 {
		t.Errorf("replay after concurrent appends: %+v", st)
	}
}

func TestRecordJSONOmitsEmptyPayloads(t *testing.T) {
	data, err := json.Marshal(Record{Job: "job-000001", Type: events.TypeQueued, Time: time.Unix(0, 0).UTC()})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"request", "result", "node", "cache", "progress", "kind", "detail"} {
		if contains(data, field) {
			t.Errorf("empty %s serialized: %s", field, data)
		}
	}
}

func contains(data []byte, field string) bool {
	return json.Valid(data) && string(data) != "" && jsonHasKey(data, field)
}

func jsonHasKey(data []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestWALSingleWriter pins the flock exclusion: a second process (or
// a second store in the same process) must not replay — and possibly
// truncate — a journal another writer holds open.
func TestWALSingleWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("second OpenWAL on a held journal succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	w2.Close()
}

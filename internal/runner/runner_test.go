package runner

import (
	"cdsf/internal/log"

	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

func TestExecExitCodes(t *testing.T) {
	ok := func(ctx context.Context, args []string, stdout, stderr io.Writer) error { return nil }
	help := func(ctx context.Context, args []string, stdout, stderr io.Writer) error { return flag.ErrHelp }
	boom := func(ctx context.Context, args []string, stdout, stderr io.Writer) error {
		return errors.New("boom")
	}
	var stderr bytes.Buffer
	if code := Exec("t", nil, io.Discard, &stderr, ok); code != 0 {
		t.Errorf("nil error: exit %d", code)
	}
	if code := Exec("t", nil, io.Discard, &stderr, help); code != 0 {
		t.Errorf("flag.ErrHelp: exit %d", code)
	}
	stderr.Reset()
	if code := Exec("t", nil, io.Discard, &stderr, boom); code != 1 {
		t.Errorf("error: exit %d", code)
	}
	if got := stderr.String(); !strings.Contains(got, "t: boom") {
		t.Errorf("stderr = %q, want name-prefixed error", got)
	}
}

func TestExecPassesArgsAndStreams(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Exec("t", []string{"a", "b"}, &stdout, &stderr,
		func(ctx context.Context, args []string, out, errw io.Writer) error {
			if len(args) != 2 || args[0] != "a" || args[1] != "b" {
				t.Errorf("args = %v", args)
			}
			if ctx == nil || ctx.Err() != nil {
				t.Errorf("ctx = %v, err %v", ctx, ctx.Err())
			}
			io.WriteString(out, "on stdout")
			io.WriteString(errw, "on stderr")
			return nil
		})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if stdout.String() != "on stdout" || stderr.String() != "on stderr" {
		t.Errorf("stdout %q stderr %q", stdout.String(), stderr.String())
	}
}

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterWorkerFlags(fs)
	err := fs.Parse([]string{"-metrics", "m.json", "-trace", "t.json",
		"-debug-addr", "127.0.0.1:0", "-timeout", "90s", "-workers", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if f.MetricsDest != "m.json" || f.TraceDest != "t.json" ||
		f.DebugAddr != "127.0.0.1:0" || f.Timeout != 90*time.Second || f.Workers != 3 {
		t.Errorf("parsed flags = %+v", f)
	}

	// Plain RegisterFlags must not define -workers (dlssim owns its own).
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	RegisterFlags(fs2)
	if err := fs2.Parse([]string{"-workers", "3"}); err == nil {
		t.Error("RegisterFlags accepted -workers")
	}
}

// The observability outputs must be written even when the body fails:
// a failed run's partial metrics and trace are the postmortem record.
func TestRunFlushesObservabilityOnBodyError(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{MetricsDest: dir + "/m.json", TraceDest: dir + "/t.json"}
	bodyErr := errors.New("body failed")
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		if s.Metrics == nil || s.Tracer == nil {
			t.Error("session collectors missing despite -metrics/-trace")
		}
		s.Metrics.Counter("test.before.failure").Add(7)
		return bodyErr
	})
	if !errors.Is(err, bodyErr) {
		t.Fatalf("err = %v, want wrapped body error", err)
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	data, readErr := os.ReadFile(f.MetricsDest)
	if readErr != nil {
		t.Fatalf("metrics not written on failure: %v", readErr)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file invalid: %v", err)
	}
	if snap.Counters["test.before.failure"] != 7 {
		t.Errorf("counters = %v, want the pre-failure increment", snap.Counters)
	}
	traceData, readErr := os.ReadFile(f.TraceDest)
	if readErr != nil {
		t.Fatalf("trace not written on failure: %v", readErr)
	}
	if !json.Valid(traceData) {
		t.Errorf("trace file is not valid JSON: %s", traceData)
	}
}

// -timeout bounds the body's context with a real deadline.
func TestRunAppliesTimeout(t *testing.T) {
	f := &Flags{Timeout: time.Millisecond}
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("timeout never fired")
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// Without observability flags the session is empty and Run is a thin
// pass-through.
func TestRunBareSession(t *testing.T) {
	f := &Flags{}
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		if s.Metrics != nil || s.Tracer != nil {
			t.Errorf("unexpected collectors: %+v", s)
		}
		if s.Cache != nil {
			t.Error("cache present without -cache")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// -cache builds a session cache from the size spec and rejects garbage
// before the body runs.
func TestRunCacheFlag(t *testing.T) {
	for _, spec := range []string{"on", "default", "64MiB", "1g"} {
		f := &Flags{CacheSpec: spec}
		ran := false
		err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
			ran = true
			if s.Cache == nil {
				t.Errorf("-cache %s: session cache missing", spec)
			}
			return nil
		})
		if err != nil || !ran {
			t.Fatalf("-cache %s: err %v, ran %v", spec, err, ran)
		}
	}
	f := &Flags{CacheSpec: "not-a-size"}
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		t.Error("body ran despite a bad -cache spec")
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "-cache") {
		t.Fatalf("bad spec error = %v", err)
	}
}

// -debug-addr starts the live endpoints, announces readiness on stderr,
// and shuts the server down after the body returns.
func TestRunDebugServerLifecycle(t *testing.T) {
	var stderr bytes.Buffer
	f := &Flags{DebugAddr: "127.0.0.1:0"}
	err := f.Run(context.Background(), "t", &stderr, func(ctx context.Context, s *Session) error {
		if s.Metrics == nil || s.Tracer == nil {
			t.Error("debug-addr run should install metrics and tracer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stderr.String(); !strings.Contains(got, "debug endpoints on http://127.0.0.1:") {
		t.Errorf("no readiness line on stderr: %q", got)
	}
}

// A busy debug address surfaces the listen error and skips the body.
func TestRunDebugServerStartFailure(t *testing.T) {
	f := &Flags{DebugAddr: "256.256.256.256:0"}
	ran := false
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		ran = true
		return nil
	})
	if err == nil {
		t.Fatal("bad debug address accepted")
	}
	if ran {
		t.Error("body ran despite debug-server start failure")
	}
}

// -log writes JSON-lines records to the named file, flushed even when
// the body fails, with the logger installed as the process default.
func TestRunLogToFile(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{LogDest: dir + "/run.log", LogLevel: "debug"}
	bodyErr := errors.New("body failed")
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		if s.Log == nil {
			t.Fatal("session logger missing despite -log")
		}
		if log.Default() != s.Log {
			t.Error("session logger not installed as process default")
		}
		s.Log.Debug("inside body", log.F("k", 1))
		return bodyErr
	})
	if !errors.Is(err, bodyErr) {
		t.Fatalf("err = %v, want wrapped body error", err)
	}
	if log.Default() != nil {
		t.Error("process default logger not cleared after Run")
	}

	data, readErr := os.ReadFile(f.LogDest)
	if readErr != nil {
		t.Fatalf("log not written on failure: %v", readErr)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("log has %d lines, want run starting / inside body / run failed:\n%s", len(lines), data)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("log line is not valid JSON: %q", line)
		}
	}
	for _, want := range []string{"run starting", "inside body", "run failed", "body failed"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("log missing %q:\n%s", want, data)
		}
	}
}

// -log - sends records to stderr: stdout stays reserved for result
// documents, so seeded output is byte-identical with logging on.
func TestRunLogDashGoesToStderr(t *testing.T) {
	var stderr bytes.Buffer
	f := &Flags{LogDest: "-", LogLevel: "info"}
	err := f.Run(context.Background(), "t", &stderr, func(ctx context.Context, s *Session) error {
		s.Log.Info("hello")
		s.Log.Debug("filtered out")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, "run finished") {
		t.Errorf("stderr missing log records:\n%s", out)
	}
	if strings.Contains(out, "filtered out") {
		t.Errorf("debug record emitted at info level:\n%s", out)
	}
}

// A bad -log-level fails before the body runs.
func TestRunLogBadLevel(t *testing.T) {
	f := &Flags{LogDest: "-", LogLevel: "loud"}
	ran := false
	err := f.Run(context.Background(), "t", io.Discard, func(ctx context.Context, s *Session) error {
		ran = true
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("err = %v, want a -log-level error", err)
	}
	if ran {
		t.Error("body ran despite an invalid -log-level")
	}
}

// Package runner is the shared execution harness behind every CLI in
// cmd/: it owns the observability flags (-metrics, -trace,
// -debug-addr) and the runtime-control flags (-timeout) that used to
// be wired by hand in each main, installs POSIX signal handling
// (SIGINT/SIGTERM cancel the run's context; a second signal
// force-kills), and guarantees the observability outputs are flushed
// even when the run fails or is cancelled.
//
// A CLI built on the runner has the shape
//
//	func main() { runner.Main("mytool", run) }
//
//	func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
//		fs := flag.NewFlagSet("mytool", flag.ContinueOnError)
//		fs.SetOutput(stderr)
//		rf := runner.RegisterFlags(fs)
//		// ... tool-specific flags ...
//		if err := fs.Parse(args); err != nil {
//			return err
//		}
//		return rf.Run(ctx, "mytool", stderr, func(ctx context.Context, s *runner.Session) error {
//			// the actual work, honoring ctx
//		})
//	}
//
// main is reduced to exit-code translation, and run is an ordinary
// function a test can call with its own context, argument list, and
// output buffers.
package runner

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cdsf/internal/cache"
	"cdsf/internal/log"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/tracing"
)

// shutdownGrace bounds how long Run waits for in-flight debug-server
// handlers after the body returns.
const shutdownGrace = 2 * time.Second

// RunFunc is the testable body of a CLI: it receives the process
// context (cancelled by SIGINT/SIGTERM), the argument list (without the
// program name), and the output streams, and returns the process error.
type RunFunc func(ctx context.Context, args []string, stdout, stderr io.Writer) error

// Main runs a CLI body under signal-driven cancellation and translates
// its error into the process exit code. It never returns.
func Main(name string, run RunFunc) {
	os.Exit(Exec(name, os.Args[1:], os.Stdout, os.Stderr, run))
}

// Exec is Main without the os.Exit: it installs the signal context,
// runs the body, prints the error (if any) to stderr, and returns the
// exit code — 0 on success and on -h/-help, nonzero otherwise
// (including cancellation and deadline expiry). A second SIGINT or
// SIGTERM while the first is still draining restores the default
// signal disposition, so it terminates the process immediately.
func Exec(name string, args []string, stdout, stderr io.Writer, run RunFunc) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal cancels ctx, un-register the handler: the
	// drain is bounded by the user's ability to send a second signal.
	go func() {
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, args, stdout, stderr)
	if err == nil {
		return 0
	}
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	fmt.Fprintf(stderr, "%s: %v\n", name, err)
	return 1
}

// Flags holds the values of the shared CLI flags.
type Flags struct {
	// MetricsDest is -metrics: where to write the metrics snapshot.
	MetricsDest string
	// TraceDest is -trace: where to write the Chrome trace.
	TraceDest string
	// DebugAddr is -debug-addr: the live debug endpoint address.
	DebugAddr string
	// Timeout is -timeout: a wall-clock bound on the whole run, applied
	// as a context deadline; 0 means no bound.
	Timeout time.Duration
	// Workers is -workers (only when registered via RegisterWorkerFlags
	// or RegisterWorkers): the worker-pool size for parallel engines.
	Workers int
	// PMF is -pmf: the distribution backend for the engines that can
	// run on either (sparse is the exact default; grid trades a
	// bounded quantization error for faster kernels).
	PMF pmf.Backend
	// CacheSpec is -cache: "" disables the content-addressed solve
	// cache, "on" enables it with the default bound, and a size like
	// "256MiB" or "1GiB" sets the byte bound.
	CacheSpec string
	// LogDest is -log: where the structured JSON-lines log goes. "-"
	// means stderr (never stdout — result documents own stdout), any
	// other value is a file path. Empty disables logging.
	LogDest string
	// LogLevel is -log-level: the minimum severity emitted (debug,
	// info, warn, error). Ignored without -log.
	LogLevel string
}

// RegisterFlags installs the shared observability and runtime flags
// (-metrics, -trace, -debug-addr, -timeout, -pmf, -cache) on fs and
// returns the struct their values land in.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{PMF: pmf.BackendSparse}
	fs.StringVar(&f.MetricsDest, "metrics", "", `collect runtime metrics and write them to this destination: "-" or "json" for JSON on stdout, "csv" for CSV on stdout, or a file path (.csv for CSV, JSON otherwise)`)
	fs.StringVar(&f.TraceDest, "trace", "", `record span timelines and write Chrome Trace Event JSON (chrome://tracing, Perfetto) to this destination: "-" for stdout or a file path`)
	fs.StringVar(&f.DebugAddr, "debug-addr", "", `serve live debug endpoints (/debug/pprof/*, /metrics, /progress, /trace) on this address, e.g. ":6060"`)
	fs.DurationVar(&f.Timeout, "timeout", 0, `abort the run after this wall-clock duration (e.g. 30s, 5m); the partial run still flushes -metrics and -trace (0: no limit)`)
	fs.TextVar(&f.PMF, "pmf", pmf.BackendSparse, `PMF backend for the Stage-I engines: "sparse" (exact pulses, bit-identical to earlier releases) or "grid" (dense fixed-step lattice: faster kernels within the documented quantization-error bound)`)
	fs.StringVar(&f.CacheSpec, "cache", "", `content-addressed solve cache: "on" for the default 256MiB bound, or a size like "64MiB"/"1GiB"; repeated identical work is replayed bit-identically from cache (empty: disabled)`)
	fs.StringVar(&f.LogDest, "log", "", `write structured JSON-lines logs to this destination: "-" for stderr or a file path; flushed unconditionally, even when the run fails or is cancelled (empty: disabled — stdout is never touched)`)
	fs.StringVar(&f.LogLevel, "log-level", "info", `minimum severity for -log records: "debug", "info", "warn", or "error"`)
	return f
}

// RegisterWorkerFlags additionally installs -workers, for CLIs whose
// -workers flag means the worker-pool size of the parallel engines
// (dlssim's -workers is the simulated group size and is NOT this
// flag). The default is runtime.NumCPU(); results are identical for
// any value.
func RegisterWorkerFlags(fs *flag.FlagSet) *Flags {
	f := RegisterFlags(fs)
	f.RegisterWorkers(fs)
	return f
}

// RegisterWorkers installs the -workers pool-size flag on fs.
func (f *Flags) RegisterWorkers(fs *flag.FlagSet) {
	fs.IntVar(&f.Workers, "workers", runtime.NumCPU(), "worker pool size for the parallel engines (results are identical for any value)")
}

// Session exposes the observability collectors Run installed, for the
// body to thread into configs (ra.Problem, sim.Config, core
// StageIIConfig). Either may be nil when the corresponding flag is
// unset.
type Session struct {
	// Metrics is the registry collecting this run's counters, non-nil
	// when -metrics or -debug-addr was given.
	Metrics *metrics.Registry
	// Tracer is the span collector, non-nil when -trace or -debug-addr
	// was given.
	Tracer *tracing.Tracer
	// Cache is the content-addressed solve cache, non-nil when -cache
	// was given. Bodies thread it into ra.Problem.Cache,
	// core.StageIIConfig.Cache, or server.Options.Cache; seeded results
	// are bit-identical with it on or off.
	Cache *cache.Cache
	// Log is the structured logger, non-nil when -log was given. Bodies
	// thread it into server.Options.Logger (or log directly); it is
	// also installed as the process default. The sink is stderr or a
	// file, never stdout, so result documents are byte-identical with
	// logging on or off.
	Log *log.Logger
}

// Run executes body inside an observability session derived from the
// flags:
//
//   - with -metrics or -debug-addr, a metrics registry is created and
//     installed as the process default (and as the pmf cache's sink);
//   - with -trace or -debug-addr, a tracer is created and installed as
//     the process default;
//   - with -debug-addr, a progress board and the live debug HTTP server
//     are started (readiness is announced on stderr);
//   - with -timeout, ctx is bounded by context.WithTimeout.
//
// With -log, a structured JSON-lines logger is created (sink: stderr
// for "-", else the named file), installed as the process default, and
// exposed as Session.Log.
//
// The -metrics, -trace, and -log outputs are ALWAYS written — body
// failing or being cancelled does not lose the observability of the
// partial run — and the debug server is shut down gracefully (bounded
// by shutdownGrace). The returned error joins the body's error with
// any flush or shutdown error.
func (f *Flags) Run(ctx context.Context, name string, stderr io.Writer, body func(ctx context.Context, s *Session) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{}
	if f.MetricsDest != "" || f.DebugAddr != "" {
		s.Metrics = metrics.NewRegistry()
		metrics.SetDefault(s.Metrics)
		pmf.SetMetrics(s.Metrics)
		defer func() {
			pmf.SetMetrics(nil)
			metrics.SetDefault(nil)
		}()
	}
	if f.TraceDest != "" || f.DebugAddr != "" {
		s.Tracer = tracing.NewSized(0, s.Metrics)
		tracing.SetDefault(s.Tracer)
		defer tracing.SetDefault(nil)
	}
	if f.CacheSpec != "" {
		c, err := f.buildCache(s.Metrics)
		if err != nil {
			return err
		}
		s.Cache = c
	}
	var logFile *os.File
	if f.LogDest != "" {
		lvl, err := log.ParseLevel(f.LogLevel)
		if err != nil {
			return fmt.Errorf("-log-level: %w", err)
		}
		sink := io.Writer(stderr)
		if f.LogDest != "-" {
			file, err := os.Create(f.LogDest)
			if err != nil {
				return fmt.Errorf("-log: %w", err)
			}
			logFile = file
			sink = file
		}
		s.Log = log.New(sink, log.Options{Level: lvl})
		log.SetDefault(s.Log)
		defer log.SetDefault(nil)
		s.Log.Info("run starting", log.F("name", name))
	}
	var srv *tracing.DebugServer
	var srvErr error
	if f.DebugAddr != "" {
		prog := tracing.NewProgress()
		tracing.SetProgress(prog)
		defer tracing.SetProgress(nil)
		srv, srvErr = tracing.StartDebug(f.DebugAddr, s.Metrics, prog, s.Tracer)
		if srvErr == nil {
			fmt.Fprintf(stderr, "%s: debug endpoints on http://%s/\n", name, srv.Addr())
		}
	}

	var bodyErr error
	if srvErr == nil {
		runCtx := ctx
		if f.Timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, f.Timeout)
			defer cancel()
		}
		bodyErr = body(runCtx, s)
	}

	// Flush observability unconditionally: a failed or cancelled run's
	// partial metrics, trace, and log are exactly what a postmortem
	// needs.
	if s.Log != nil {
		if bodyErr != nil {
			s.Log.Error("run failed", log.F("name", name), log.F("error", bodyErr.Error()))
		} else {
			s.Log.Info("run finished", log.F("name", name))
		}
	}
	var logErr error
	if logFile != nil {
		logErr = logFile.Close()
	}
	flushErr := errors.Join(
		metrics.WriteTo(s.Metrics, f.MetricsDest),
		tracing.WriteTo(s.Tracer, f.TraceDest),
		logErr,
	)

	var downErr error
	if srv != nil {
		downCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		downErr = srv.Shutdown(downCtx)
		cancel()
	}
	return errors.Join(srvErr, bodyErr, flushErr, downErr)
}

// buildCache resolves the -cache spec into a cache wired to the
// session's metrics registry (which may be nil).
func (f *Flags) buildCache(reg *metrics.Registry) (*cache.Cache, error) {
	opts := cache.Options{Metrics: reg}
	switch f.CacheSpec {
	case "on", "default":
		// Default bounds.
	default:
		n, err := cache.ParseSize(f.CacheSpec)
		if err != nil {
			return nil, fmt.Errorf("-cache: %w", err)
		}
		opts.MaxBytes = n
	}
	return cache.New(opts), nil
}

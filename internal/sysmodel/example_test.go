package sysmodel_test

import (
	"fmt"

	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// ExampleApplication_ParallelTimePMF applies the paper's Eq. 2: the
// execution time of the paper's application 3 on 8 processors of
// type 2 (5% serial, 95% parallel).
func ExampleApplication_ParallelTimePMF() {
	app := sysmodel.Application{
		Name:          "App 3",
		SerialIters:   216,
		ParallelIters: 4104,
		ExecTime:      []pmf.PMF{pmf.Point(12000), pmf.Point(8000)},
	}
	par := app.ParallelTimePMF(1, 8)
	fmt.Printf("serial fraction = %.2f\n", app.SerialFraction())
	fmt.Printf("T(8 procs of type 2) = %.0f\n", par.Mean())
	// Output:
	// serial fraction = 0.05
	// T(8 procs of type 2) = 1350
}

// ExampleSystem_WeightedAvailability computes the paper's Eq. 1 for the
// reference system: 75%.
func ExampleSystem_WeightedAvailability() {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "Type 2", Count: 8, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})},
	}}
	fmt.Printf("weighted availability = %.0f%%\n", sys.WeightedAvailability()*100)
	// Output:
	// weighted availability = 75%
}

// ExampleEnumerateAllocations counts the feasible power-of-2
// allocations of one application on the paper's system.
func ExampleEnumerateAllocations() {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 4, Avail: pmf.Point(1)},
		{Name: "T2", Count: 8, Avail: pmf.Point(1)},
	}}
	app := sysmodel.Application{
		Name: "a", SerialIters: 1, ParallelIters: 9,
		ExecTime: []pmf.PMF{pmf.Point(10), pmf.Point(20)},
	}
	n := sysmodel.CountAllocations(sys, sysmodel.Batch{app})
	fmt.Printf("feasible allocations: %d\n", n) // {1,2,4} on T1 + {1,2,4,8} on T2
	// Output:
	// feasible allocations: 7
}

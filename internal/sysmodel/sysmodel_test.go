package sysmodel

import (
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/pmf"
)

func twoTypeSystem() *System {
	return &System{Types: []ProcType{
		{Name: "T1", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 8, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.25}, {Value: 0.5, Prob: 0.25}, {Value: 1, Prob: 0.5}})},
	}}
}

func testApp() Application {
	return Application{
		Name:          "app",
		SerialIters:   300,
		ParallelIters: 700,
		ExecTime: []pmf.PMF{
			pmf.Point(1000),
			pmf.Point(2000),
		},
	}
}

func TestWeightedAvailabilityEq1(t *testing.T) {
	sys := twoTypeSystem()
	// (4*0.875 + 8*0.6875) / 12 = 0.75.
	if got := sys.WeightedAvailability(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("weighted availability = %v, want 0.75", got)
	}
	if sys.TotalProcessors() != 12 {
		t.Errorf("total processors = %d", sys.TotalProcessors())
	}
}

func TestSystemValidate(t *testing.T) {
	sys := twoTypeSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &System{}
	if err := bad.Validate(); err == nil {
		t.Error("empty system validated")
	}
	bad = &System{Types: []ProcType{{Name: "x", Count: 0, Avail: pmf.Point(1)}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-count type validated")
	}
	bad = &System{Types: []ProcType{{Name: "x", Count: 1, Avail: pmf.Point(1.5)}}}
	if err := bad.Validate(); err == nil {
		t.Error("availability > 1 validated")
	}
	bad = &System{Types: []ProcType{{Name: "x", Count: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("missing availability validated")
	}
}

func TestWithAvailability(t *testing.T) {
	sys := twoTypeSystem()
	newAvail := []pmf.PMF{pmf.Point(0.5), pmf.Point(0.25)}
	pert := sys.WithAvailability(newAvail)
	if got := pert.WeightedAvailability(); math.Abs(got-(4*0.5+8*0.25)/12) > 1e-12 {
		t.Errorf("perturbed weighted availability = %v", got)
	}
	// The original must be untouched.
	if got := sys.WeightedAvailability(); math.Abs(got-0.75) > 1e-12 {
		t.Error("WithAvailability mutated the original system")
	}
}

func TestApplicationFractions(t *testing.T) {
	a := testApp()
	if a.TotalIters() != 1000 {
		t.Errorf("total iters = %d", a.TotalIters())
	}
	if a.SerialFraction() != 0.3 || a.ParallelFraction() != 0.7 {
		t.Errorf("fractions = %v / %v", a.SerialFraction(), a.ParallelFraction())
	}
}

func TestApplicationValidate(t *testing.T) {
	a := testApp()
	if err := a.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := testApp()
	bad.ParallelIters = 0
	if err := bad.Validate(2); err == nil {
		t.Error("zero parallel iterations validated")
	}
	bad = testApp()
	bad.ExecTime = bad.ExecTime[:1]
	if err := bad.Validate(2); err == nil {
		t.Error("missing exec-time PMF validated")
	}
	bad = testApp()
	bad.ExecTime[0] = pmf.Point(-5)
	if err := bad.Validate(2); err == nil {
		t.Error("negative execution time validated")
	}
}

func TestParallelTimePMFEq2(t *testing.T) {
	a := testApp()
	// T = 1000, s = 0.3, p = 0.7, n = 4: 300 + 175 = 475.
	p := a.ParallelTimePMF(0, 4)
	if p.Len() != 1 || math.Abs(p.Mean()-475) > 1e-9 {
		t.Errorf("parallel time = %v, want 475", p.Mean())
	}
	// n = 1 must reproduce the single-processor time.
	p1 := a.ParallelTimePMF(0, 1)
	if math.Abs(p1.Mean()-1000) > 1e-9 {
		t.Errorf("n=1 parallel time = %v, want 1000", p1.Mean())
	}
	// Probabilities are preserved pulse by pulse.
	multi := Application{
		Name: "m", SerialIters: 300, ParallelIters: 700,
		ExecTime: []pmf.PMF{pmf.MustNew([]pmf.Pulse{
			{Value: 900, Prob: 0.25}, {Value: 1100, Prob: 0.75}}), pmf.Point(1)},
	}
	mp := multi.ParallelTimePMF(0, 2)
	if mp.At(0).Prob != 0.25 || mp.At(1).Prob != 0.75 {
		t.Error("Eq.2 changed pulse probabilities")
	}
}

func TestCompletionPMF(t *testing.T) {
	a := testApp()
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	c := a.CompletionPMF(0, 4, avail)
	// Parallel time 475 at availability 0.5 -> 950; at 1 -> 475.
	if c.Min() != 475 || c.Max() != 950 {
		t.Errorf("completion support = [%v, %v]", c.Min(), c.Max())
	}
	if math.Abs(c.Mean()-712.5) > 1e-9 {
		t.Errorf("completion mean = %v", c.Mean())
	}
}

func TestAllocationValidate(t *testing.T) {
	sys := twoTypeSystem()
	batch := Batch{testApp(), testApp(), testApp()}
	good := Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}, {Type: 1, Procs: 8}}
	if err := good.Validate(sys, batch); err != nil {
		t.Fatal(err)
	}
	over := Allocation{{Type: 0, Procs: 4}, {Type: 0, Procs: 2}, {Type: 1, Procs: 8}}
	if err := over.Validate(sys, batch); err == nil {
		t.Error("oversubscription validated")
	}
	short := Allocation{{Type: 0, Procs: 2}}
	if err := short.Validate(sys, batch); err == nil {
		t.Error("incomplete allocation validated")
	}
	badType := Allocation{{Type: 5, Procs: 1}, {Type: 0, Procs: 1}, {Type: 0, Procs: 1}}
	if err := badType.Validate(sys, batch); err == nil {
		t.Error("unknown type validated")
	}
	zero := Allocation{{Type: 0, Procs: 0}, {Type: 0, Procs: 1}, {Type: 0, Procs: 1}}
	if err := zero.Validate(sys, batch); err == nil {
		t.Error("zero-processor assignment validated")
	}
}

func TestAllocationHelpers(t *testing.T) {
	al := Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	used := al.Used(2)
	if used[0] != 2 || used[1] != 4 {
		t.Errorf("used = %v", used)
	}
	cl := al.Clone()
	cl[0].Procs = 1
	if al[0].Procs != 2 {
		t.Error("Clone aliases the original")
	}
	if !al.Equal(Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}) {
		t.Error("Equal false negative")
	}
	if al.Equal(cl) {
		t.Error("Equal false positive")
	}
	if got := al.String(); got != "app0->T0x2 app1->T1x4" {
		t.Errorf("String = %q", got)
	}
}

func TestPowerOfTwoCounts(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{0, nil}, {1, []int{1}}, {7, []int{1, 2, 4}}, {8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		got := PowerOfTwoCounts(c.max)
		if len(got) != len(c.want) {
			t.Errorf("PowerOfTwoCounts(%d) = %v", c.max, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PowerOfTwoCounts(%d) = %v", c.max, got)
			}
		}
	}
}

func TestEnumerateAllocationsFeasibleAndComplete(t *testing.T) {
	sys := twoTypeSystem()
	batch := Batch{testApp(), testApp()}
	n := 0
	EnumerateAllocations(sys, batch, func(al Allocation) bool {
		n++
		if err := al.Validate(sys, batch); err != nil {
			t.Fatalf("enumerated infeasible allocation %v: %v", al, err)
		}
		return true
	})
	// Per app: type 0 counts {1,2,4} and type 1 counts {1,2,4,8} = 7
	// options unconstrained; minus combinations exceeding capacity.
	if n != CountAllocations(sys, batch) {
		t.Errorf("visit count %d != CountAllocations %d", n, CountAllocations(sys, batch))
	}
	if n == 0 {
		t.Fatal("no allocations enumerated")
	}
	// Manual count for one app: 3 + 4 = 7 options.
	single := 0
	EnumerateAllocations(sys, Batch{testApp()}, func(Allocation) bool {
		single++
		return true
	})
	if single != 7 {
		t.Errorf("single-app options = %d, want 7", single)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	sys := twoTypeSystem()
	batch := Batch{testApp(), testApp()}
	n := 0
	EnumerateAllocations(sys, batch, func(Allocation) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestQuickEq2Monotone property-checks that the parallel time decreases
// (weakly) with more processors and stays above the serial floor.
func TestQuickEq2Monotone(t *testing.T) {
	a := testApp()
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		t1 := a.ParallelTimePMF(0, n).Mean()
		t2 := a.ParallelTimePMF(0, n+1).Mean()
		serialFloor := a.SerialFraction() * a.ExecTime[0].Mean()
		return t2 <= t1+1e-9 && t2 >= serialFloor-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

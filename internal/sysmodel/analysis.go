package sysmodel

import (
	"fmt"
)

// This file provides allocation-analysis helpers used by the reports
// and the resource-manager studies: utilization accounting and
// Amdahl-style speedup/efficiency estimates per application.

// AllocationStats summarizes how an allocation uses the system.
type AllocationStats struct {
	// UsedByType[j] is the number of processors of type j consumed.
	UsedByType []int
	// IdleByType[j] is the number left unused.
	IdleByType []int
	// TotalUsed and TotalIdle aggregate across types.
	TotalUsed, TotalIdle int
	// Utilization is TotalUsed / TotalProcessors.
	Utilization float64
}

// Stats computes utilization accounting for an allocation; it returns
// an error if the allocation is infeasible.
func (al Allocation) Stats(sys *System, batch Batch) (*AllocationStats, error) {
	if err := al.Validate(sys, batch); err != nil {
		return nil, err
	}
	s := &AllocationStats{
		UsedByType: al.Used(len(sys.Types)),
		IdleByType: make([]int, len(sys.Types)),
	}
	total := 0
	for j, t := range sys.Types {
		s.IdleByType[j] = t.Count - s.UsedByType[j]
		s.TotalUsed += s.UsedByType[j]
		s.TotalIdle += s.IdleByType[j]
		total += t.Count
	}
	s.Utilization = float64(s.TotalUsed) / float64(total)
	return s, nil
}

// Speedup returns the expected speedup of application i under
// assignment as: the single-processor expected time divided by the
// Eq. 2 parallel expected time (availability cancels, so this is the
// pure Amdahl factor s + p/n inverted).
func (a *Application) Speedup(j, n int) float64 {
	single := a.ExecTime[j].Mean()
	parallel := a.ParallelTimePMF(j, n).Mean()
	return single / parallel
}

// Efficiency returns Speedup / n, the per-processor efficiency of the
// assignment — the quantity an energy- or utilization-aware allocator
// would trade against robustness.
func (a *Application) Efficiency(j, n int) float64 {
	return a.Speedup(j, n) / float64(n)
}

// MaxUsefulProcessors returns the smallest power-of-2 processor count
// at which the application's marginal speedup from doubling drops below
// the given threshold (e.g. 1.1 = at least 10% faster per doubling),
// capped at max. It formalizes "how many processors are worth
// assigning" under Amdahl's law.
func (a *Application) MaxUsefulProcessors(j, max int, threshold float64) (int, error) {
	if max < 1 {
		return 0, fmt.Errorf("sysmodel: max %d", max)
	}
	if threshold <= 1 {
		return 0, fmt.Errorf("sysmodel: threshold %v must exceed 1", threshold)
	}
	n := 1
	for n*2 <= max {
		gain := a.ParallelTimePMF(j, n).Mean() / a.ParallelTimePMF(j, n*2).Mean()
		if gain < threshold {
			break
		}
		n *= 2
	}
	return n, nil
}

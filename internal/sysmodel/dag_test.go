package sysmodel

import (
	"errors"
	"math"
	"testing"

	"cdsf/internal/pmf"
)

func TestValidateEdgesPaths(t *testing.T) {
	for _, tc := range []struct {
		name  string
		edges []Edge
		n     int
		path  string // "" means valid
	}{
		{"empty", nil, 3, ""},
		{"chain", []Edge{{0, 1}, {1, 2}}, 3, ""},
		{"duplicate edges ok", []Edge{{0, 1}, {0, 1}}, 2, ""},
		{"from out of range", []Edge{{0, 1}, {5, 2}}, 3, "edges[1].from"},
		{"from negative", []Edge{{-1, 1}}, 3, "edges[0].from"},
		{"to out of range", []Edge{{0, 3}}, 3, "edges[0].to"},
		{"self edge", []Edge{{0, 1}, {2, 2}}, 3, "edges[1]"},
		{"two cycle", []Edge{{0, 1}, {1, 0}}, 2, "edges"},
		{"long cycle", []Edge{{0, 1}, {1, 2}, {2, 0}}, 3, "edges"},
	} {
		err := ValidateEdges(tc.edges, tc.n)
		if tc.path == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		var ee *EdgeError
		if !errors.As(err, &ee) {
			t.Errorf("%s: error %v is not an *EdgeError", tc.name, err)
			continue
		}
		if ee.Path != tc.path {
			t.Errorf("%s: path %q, want %q", tc.name, ee.Path, tc.path)
		}
		if ee.Msg == "" || ee.Error() == ee.Msg {
			t.Errorf("%s: Error() %q should prefix the path", tc.name, ee.Error())
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	// Kahn with smallest-index-first: ready = {2, 3}, emit 2, which
	// frees 0; then 0, 3, 1.
	order, err := TopoOrder([]Edge{{2, 0}, {3, 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	// No edges: identity order.
	order, err = TopoOrder(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("edge-free order %v is not the identity", order)
		}
	}
}

func TestPredsSuccsSinks(t *testing.T) {
	edges := []Edge{{2, 0}, {1, 0}, {2, 0}, {1, 3}}
	preds := Preds(edges, 4)
	if len(preds[0]) != 2 || preds[0][0] != 1 || preds[0][1] != 2 {
		t.Errorf("preds[0] = %v, want sorted deduped [1 2]", preds[0])
	}
	if len(preds[1]) != 0 || len(preds[2]) != 0 {
		t.Errorf("sources gained predecessors: %v", preds)
	}
	succs := Succs(edges, 4)
	if len(succs[2]) != 2 {
		t.Errorf("succs[2] = %v, want duplicates preserved", succs[2])
	}
	sinks := Sinks(edges, 4)
	if len(sinks) != 2 || sinks[0] != 0 || sinks[1] != 3 {
		t.Errorf("sinks %v, want [0 3]", sinks)
	}
	all := Sinks(nil, 3)
	if len(all) != 3 {
		t.Errorf("edge-free sinks %v, want every application", all)
	}
}

// TestComposeDAGDeterministic checks the PERT recurrence on point
// distributions, where max and + are exact arithmetic.
func TestComposeDAGDeterministic(t *testing.T) {
	dists := []pmf.PMF{pmf.Point(2), pmf.Point(5), pmf.Point(3)}
	out, err := ComposeDAG(dists, []Edge{{0, 2}, {1, 2}}, DAGMaxPulses)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[2].Mean(); got != 8 {
		t.Errorf("C2 = %v, want max(2,5)+3 = 8", got)
	}
	if out[0].Mean() != 2 || out[1].Mean() != 5 {
		t.Errorf("source PMFs changed: %v, %v", out[0].Mean(), out[1].Mean())
	}
}

// TestComposeDAGNoEdgesIdentity pins the degeneration the API depends
// on: without edges the composition returns the inputs untouched.
func TestComposeDAGNoEdgesIdentity(t *testing.T) {
	dists := []pmf.PMF{pmf.Point(1), pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})}
	out, err := ComposeDAG(dists, nil, DAGMaxPulses)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dists {
		if out[i].Len() != dists[i].Len() || out[i].Mean() != dists[i].Mean() {
			t.Errorf("app %d: composition altered an edge-free PMF", i)
		}
	}
}

// TestComposeDAGMatchesEnumeration compares the composed fork-join
// distribution against brute-force enumeration of every outcome. The
// branches share no ancestors, so the PERT independence approximation
// is exact here.
func TestComposeDAGMatchesEnumeration(t *testing.T) {
	t0 := pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.3}, {Value: 4, Prob: 0.7}})
	t1 := pmf.MustNew([]pmf.Pulse{{Value: 2, Prob: 0.6}, {Value: 3, Prob: 0.4}})
	t2 := pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	out, err := ComposeDAG([]pmf.PMF{t0, t1, t2}, []Edge{{0, 2}, {1, 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate C2 = max(T0, T1) + T2 over the 8 outcomes.
	cdf := func(x float64) float64 {
		var pr float64
		for _, a := range t0.Pulses() {
			for _, b := range t1.Pulses() {
				for _, c := range t2.Pulses() {
					if math.Max(a.Value, b.Value)+c.Value <= x {
						pr += a.Prob * b.Prob * c.Prob
					}
				}
			}
		}
		return pr
	}
	for _, x := range []float64{2.5, 3, 4, 4.5, 5, 6, 7} {
		if got, want := out[2].PrLE(x), cdf(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Pr(C2 <= %v) = %v, want %v", x, got, want)
		}
	}
}

// TestComposeDAGGridAgreesSparse runs the same fork-join through both
// backends on lattice-aligned pulses, where the grid composition is
// exact and must agree with the sparse one.
func TestComposeDAGGridAgreesSparse(t *testing.T) {
	const step = 0.5
	dists := []pmf.PMF{
		pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.3}, {Value: 4, Prob: 0.7}}),
		pmf.MustNew([]pmf.Pulse{{Value: 2, Prob: 0.6}, {Value: 3.5, Prob: 0.4}}),
		pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.5}, {Value: 2.5, Prob: 0.5}}),
	}
	edges := []Edge{{0, 2}, {1, 2}}
	sparse, err := ComposeDAG(dists, edges, DAGMaxPulses)
	if err != nil {
		t.Fatal(err)
	}
	grids := make([]*pmf.Grid, len(dists))
	for i, d := range dists {
		grids[i] = d.ToGrid(step)
	}
	composed, err := ComposeDAGGrid(grids, edges)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseGrids(composed)
	defer ReleaseGrids(grids)
	for i := range dists {
		for _, x := range []float64{2, 3, 4, 5, 6, 7} {
			if got, want := composed[i].PrLE(x), sparse[i].PrLE(x); math.Abs(got-want) > 1e-12 {
				t.Errorf("app %d: grid Pr(C <= %v) = %v, sparse %v", i, x, got, want)
			}
		}
	}
}

// TestComposeDAGCompaction bounds intermediate supports: a chain of
// wide PMFs composed with a tiny maxPulses stays within the bound and
// still carries total probability one.
func TestComposeDAGCompaction(t *testing.T) {
	wide := make([]pmf.Pulse, 64)
	for i := range wide {
		wide[i] = pmf.Pulse{Value: 1 + float64(i)*0.25, Prob: 1.0 / 64}
	}
	p := pmf.MustNew(wide)
	dists := []pmf.PMF{p, p, p, p}
	out, err := ComposeDAG(dists, []Edge{{0, 1}, {1, 2}, {2, 3}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out[1:] {
		if o.Len() > 16 {
			t.Errorf("composed app %d has %d pulses, want <= 16", i+1, o.Len())
		}
		if err := o.Validate(); err != nil {
			t.Errorf("composed app %d invalid: %v", i+1, err)
		}
	}
	if out[3].Mean() <= out[1].Mean() {
		t.Errorf("chain means not increasing: %v then %v", out[1].Mean(), out[3].Mean())
	}
}

// refAcyclic is an independent DFS cycle check used to cross-validate
// the Kahn-based validator under fuzzing.
func refAcyclic(edges []Edge, n int) bool {
	succs := Succs(edges, n)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range succs[u] {
			if color[v] == gray {
				return false
			}
			if color[v] == white && !visit(v) {
				return false
			}
		}
		color[u] = black
		return true
	}
	for i := 0; i < n; i++ {
		if color[i] == white && !visit(i) {
			return false
		}
	}
	return true
}

// FuzzDAGValidate feeds random edge sets to the validator: it must
// never panic, and it must accept exactly the in-range, self-edge-free
// sets that admit a topological order (cross-checked against an
// independent DFS cycle detector). Accepted sets must yield a TopoOrder
// that is a permutation respecting every edge.
func FuzzDAGValidate(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2})
	f.Add(uint8(3), []byte{0, 1, 1, 2, 2, 0})
	f.Add(uint8(2), []byte{0, 0})
	f.Add(uint8(5), []byte{})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		apps := int(n%16) + 1
		if len(raw) > 64 {
			raw = raw[:64]
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Bias endpoints so out-of-range and negative indices occur.
			edges = append(edges, Edge{From: int(raw[i]) - 2, To: int(raw[i+1]) - 2})
		}
		err := ValidateEdges(edges, apps)

		inRange := true
		for _, e := range edges {
			if e.From < 0 || e.From >= apps || e.To < 0 || e.To >= apps || e.From == e.To {
				inRange = false
				break
			}
		}
		want := inRange && refAcyclic(edges, apps)
		if (err == nil) != want {
			t.Fatalf("ValidateEdges(%v, %d) = %v, reference says valid=%v", edges, apps, err, want)
		}
		if err != nil {
			var ee *EdgeError
			if !errors.As(err, &ee) || ee.Path == "" {
				t.Fatalf("rejection %v is not a pathed *EdgeError", err)
			}
			return
		}
		order, oerr := TopoOrder(edges, apps)
		if oerr != nil {
			t.Fatalf("validated set failed TopoOrder: %v", oerr)
		}
		pos := make([]int, apps)
		seen := make([]bool, apps)
		for idx, v := range order {
			if v < 0 || v >= apps || seen[v] {
				t.Fatalf("order %v is not a permutation of 0..%d", order, apps-1)
			}
			seen[v] = true
			pos[v] = idx
		}
		if len(order) != apps {
			t.Fatalf("order %v has %d elements, want %d", order, len(order), apps)
		}
		for _, e := range edges {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("order %v violates edge %v", order, e)
			}
		}
	})
}

package sysmodel

import (
	"math"
	"testing"
)

func TestAllocationStats(t *testing.T) {
	sys := twoTypeSystem() // 4 + 8 processors
	batch := Batch{testApp(), testApp()}
	al := Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	s, err := al.Stats(sys, batch)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsedByType[0] != 2 || s.UsedByType[1] != 4 {
		t.Errorf("used = %v", s.UsedByType)
	}
	if s.IdleByType[0] != 2 || s.IdleByType[1] != 4 {
		t.Errorf("idle = %v", s.IdleByType)
	}
	if s.TotalUsed != 6 || s.TotalIdle != 6 {
		t.Errorf("totals = %d/%d", s.TotalUsed, s.TotalIdle)
	}
	if math.Abs(s.Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %v", s.Utilization)
	}
	bad := Allocation{{Type: 0, Procs: 8}, {Type: 1, Procs: 4}}
	if _, err := bad.Stats(sys, batch); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	a := testApp() // s = 0.3, p = 0.7
	// Amdahl: speedup(n) = 1 / (0.3 + 0.7/n).
	for _, n := range []int{1, 2, 4, 8} {
		want := 1 / (0.3 + 0.7/float64(n))
		if got := a.Speedup(0, n); math.Abs(got-want) > 1e-9 {
			t.Errorf("speedup(%d) = %v, want %v", n, got, want)
		}
		if got := a.Efficiency(0, n); math.Abs(got-want/float64(n)) > 1e-9 {
			t.Errorf("efficiency(%d) = %v", n, got)
		}
	}
	// Speedup saturates below 1/s.
	if s := a.Speedup(0, 1<<20); s >= 1/0.3 {
		t.Errorf("speedup %v exceeds Amdahl limit", s)
	}
}

func TestMaxUsefulProcessors(t *testing.T) {
	a := testApp() // s = 0.3: doubling 4 -> 8 gives 1/(0.3+0.175)=2.105 vs 1/(0.3+0.0875)=2.58, gain 1.23
	n, err := a.MaxUsefulProcessors(0, 64, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Gains per doubling: 1->2: 1.538, 2->4: 1.368, 4->8: 1.226,
	// 8->16: 1.129 < 1.2 so n stops at 8.
	if n != 8 {
		t.Errorf("max useful = %d, want 8", n)
	}
	// A nearly fully parallel app can use everything.
	par := testApp()
	par.SerialIters = 1
	par.ParallelIters = 9999
	n, err = par.MaxUsefulProcessors(0, 64, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if n < 32 {
		t.Errorf("parallel app max useful = %d", n)
	}
	if _, err := a.MaxUsefulProcessors(0, 0, 1.2); err == nil {
		t.Error("max 0 accepted")
	}
	if _, err := a.MaxUsefulProcessors(0, 8, 1.0); err == nil {
		t.Error("threshold 1.0 accepted")
	}
}

package sysmodel

// This file extends the batch model with precedence constraints: a set
// of directed edges over the applications of a batch turns the
// independent batch of the paper into a DAG workload (scientific
// campaigns and pipeline workflows). The helpers here are the shared
// foundation of every DAG-aware layer: deterministic validation and
// topological ordering for Stage I and the API, and the PERT-style
// completion-time composition that Stage I's phi_1 is computed from.
//
// Composition model: application i cannot start before every
// predecessor has finished, so its completion time is
//
//	C_i = T_i + max_{p in preds(i)} C_p
//
// where T_i is the application's own (stochastic) completion time on
// its assigned processors. Composing in topological order with the
// pmf Max/Add operators yields each C_i. Branch completion times that
// share ancestors are treated as independent when maxed — the
// classical PERT approximation; the Stage-II simulator provides the
// exact Monte-Carlo counterpart.
//
// phi_1 over a DAG is Pr(every application finishes by the deadline).
// Because C_i is monotone along edges (execution times are strictly
// positive), the event {all C_i <= Delta} equals {C_s <= Delta for
// every sink s}, so phi_1 is the product of the sink probabilities
// under the same independence approximation. An edge-free batch makes
// every application a sink and recovers the paper's independent
// product exactly.

import (
	"fmt"
	"sort"

	"cdsf/internal/pmf"
)

// Edge is one precedence constraint: application From must finish
// before application To may start. Indices refer to positions in the
// batch.
type Edge struct {
	From int
	To   int
}

// EdgeError is a validation failure of one edge set, carrying the
// field path of the offending element in the canonical instance
// schema (e.g. "edges[3].from") so API layers can surface it in
// structured error documents.
type EdgeError struct {
	// Path locates the failure: "edges[i].from", "edges[i].to",
	// "edges[i]", or "edges" for whole-set failures like cycles.
	Path string
	// Msg describes the failure.
	Msg string
}

func (e *EdgeError) Error() string { return e.Path + ": " + e.Msg }

// ValidateEdges checks a precedence-edge set over n applications:
// every endpoint must name an application (0 <= idx < n), self-edges
// are rejected, and the edges must admit a topological order (no
// cycles). Duplicate edges are permitted — they are semantically
// idempotent. Failures are *EdgeError values with canonical field
// paths.
func ValidateEdges(edges []Edge, n int) error {
	for i, e := range edges {
		if e.From < 0 || e.From >= n {
			return &EdgeError{Path: fmt.Sprintf("edges[%d].from", i),
				Msg: fmt.Sprintf("unknown application %d (batch has %d)", e.From, n)}
		}
		if e.To < 0 || e.To >= n {
			return &EdgeError{Path: fmt.Sprintf("edges[%d].to", i),
				Msg: fmt.Sprintf("unknown application %d (batch has %d)", e.To, n)}
		}
		if e.From == e.To {
			return &EdgeError{Path: fmt.Sprintf("edges[%d]", i),
				Msg: fmt.Sprintf("self-edge on application %d", e.From)}
		}
	}
	if _, err := TopoOrder(edges, n); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological order of applications
// 0..n-1 under the edges: Kahn's algorithm emitting the
// smallest-index ready application first, so the order depends only on
// the edge set, never on map iteration or insertion order. It returns
// an *EdgeError on a cycle (endpoints must already be in range; use
// ValidateEdges for full validation).
func TopoOrder(edges []Edge, n int) ([]int, error) {
	indeg := make([]int, n)
	for _, e := range edges {
		if e.To >= 0 && e.To < n {
			indeg[e.To]++
		}
	}
	succs := Succs(edges, n)
	order := make([]int, 0, n)
	emitted := make([]bool, n)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if !emitted[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			cyc := make([]int, 0, n-len(order))
			for i := 0; i < n; i++ {
				if !emitted[i] {
					cyc = append(cyc, i)
				}
			}
			return nil, &EdgeError{Path: "edges",
				Msg: fmt.Sprintf("precedence cycle through applications %v", cyc)}
		}
		emitted[next] = true
		order = append(order, next)
		for _, s := range succs[next] {
			indeg[s]--
		}
	}
	return order, nil
}

// Preds returns, for each application, its sorted, deduplicated
// predecessor list under the edges.
func Preds(edges []Edge, n int) [][]int {
	out := make([][]int, n)
	for _, e := range edges {
		if e.To >= 0 && e.To < n && e.From >= 0 && e.From < n {
			out[e.To] = append(out[e.To], e.From)
		}
	}
	for i := range out {
		out[i] = sortedUnique(out[i])
	}
	return out
}

// Succs returns, for each application, its successor list under the
// edges, with duplicates preserved (TopoOrder's in-degree bookkeeping
// counts edges, not neighbors). Endpoints outside 0..n-1 are skipped.
func Succs(edges []Edge, n int) [][]int {
	out := make([][]int, n)
	for _, e := range edges {
		if e.From >= 0 && e.From < n && e.To >= 0 && e.To < n {
			out[e.From] = append(out[e.From], e.To)
		}
	}
	return out
}

// Sinks returns the sorted applications with no successors — the
// terminal applications whose completion determines the DAG makespan.
// With no edges every application is a sink.
func Sinks(edges []Edge, n int) []int {
	hasSucc := make([]bool, n)
	for _, e := range edges {
		if e.From >= 0 && e.From < n {
			hasSucc[e.From] = true
		}
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !hasSucc[i] {
			out = append(out, i)
		}
	}
	return out
}

// sortedUnique sorts s ascending and drops duplicates in place.
func sortedUnique(s []int) []int {
	if len(s) < 2 {
		return s
	}
	sort.Ints(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// DAGMaxPulses bounds the pulse count of each intermediate PMF during
// sparse DAG composition: Max and Add grow supports multiplicatively
// along chains, so each composed distribution is compacted back to this
// many pulses. The bound matches the grid backend's resolution scale
// (ra quantizes at deadline/1024), keeping the two backends' phi_1
// within the quantization bounds of DESIGN.md §9.
const DAGMaxPulses = 2048

// ComposeDAG composes per-application completion-time PMFs along the
// precedence edges: out[i] is the PMF of C_i = T_i + max over
// predecessors' C, built in topological order with pmf.Max / pmf.Add
// under the PERT independence approximation. dists[i] is application
// i's standalone completion PMF (CompletionPMF under its assignment).
// Intermediates are compacted to maxPulses pulses (<= 0 disables
// compaction; DAGMaxPulses is the standard choice). Source
// applications' PMFs are returned unchanged, so with no edges the
// output equals dists element-for-element.
func ComposeDAG(dists []pmf.PMF, edges []Edge, maxPulses int) ([]pmf.PMF, error) {
	order, err := TopoOrder(edges, len(dists))
	if err != nil {
		return nil, err
	}
	preds := Preds(edges, len(dists))
	out := make([]pmf.PMF, len(dists))
	for _, i := range order {
		if len(preds[i]) == 0 {
			out[i] = dists[i]
			continue
		}
		ready := out[preds[i][0]]
		for _, p := range preds[i][1:] {
			ready = pmf.Max(ready, out[p])
			if maxPulses > 0 {
				ready = ready.Compact(maxPulses)
			}
		}
		c := pmf.Add(ready, dists[i])
		if maxPulses > 0 {
			c = c.Compact(maxPulses)
		}
		out[i] = c
	}
	return out, nil
}

// ComposeDAGGrid is ComposeDAG on the dense grid backend: all inputs
// must share one lattice step, Max is the CDF-product MaxWith and Add
// the exact index-shifted convolution, so no compaction is needed —
// the lattice itself bounds resolution. Every returned grid is owned
// by the caller and must be Released (source applications are
// cloned); the input grids are never released here.
func ComposeDAGGrid(dists []*pmf.Grid, edges []Edge) ([]*pmf.Grid, error) {
	order, err := TopoOrder(edges, len(dists))
	if err != nil {
		return nil, err
	}
	preds := Preds(edges, len(dists))
	out := make([]*pmf.Grid, len(dists))
	for _, i := range order {
		if len(preds[i]) == 0 {
			out[i] = dists[i].Clone()
			continue
		}
		ready := out[preds[i][0]]
		owned := false
		for _, p := range preds[i][1:] {
			next := ready.MaxWith(out[p])
			if owned {
				ready.Release()
			}
			ready, owned = next, true
		}
		out[i] = ready.Add(dists[i])
		if owned {
			ready.Release()
		}
	}
	return out, nil
}

// ReleaseGrids releases every non-nil grid of a ComposeDAGGrid result.
func ReleaseGrids(gs []*pmf.Grid) {
	for _, g := range gs {
		if g != nil {
			g.Release()
		}
	}
}

// Package sysmodel defines the heterogeneous system and application
// model of the paper: processor types with stochastic availability,
// data-parallel applications with stochastic single-processor execution
// times and serial/parallel fractions, batches, and resource
// allocations. It implements the paper's Eq. 1 (weighted system
// availability) and Eq. 2 (parallel execution-time PMF) plus the
// completion-time PMF used by Stage I.
package sysmodel

import (
	"fmt"

	"cdsf/internal/pmf"
)

// ProcType describes one class of processors in the heterogeneous
// system.
type ProcType struct {
	// Name identifies the type in reports (e.g. "Type 1").
	Name string
	// Count is the number of processors of this type.
	Count int
	// Avail is the PMF of the fractional availability of a processor of
	// this type, with support in (0, 1]. The paper's Table I expresses
	// these in percent; this model uses fractions.
	Avail pmf.PMF
}

// ExpectedAvail returns E[Avail], the expected fractional availability.
func (t ProcType) ExpectedAvail() float64 { return t.Avail.Mean() }

// System is a heterogeneous computing system: a set of processor types.
type System struct {
	Types []ProcType
}

// Validate checks counts are positive and availability PMFs have support
// in (0, 1].
func (s *System) Validate() error {
	if len(s.Types) == 0 {
		return fmt.Errorf("sysmodel: system has no processor types")
	}
	for i, t := range s.Types {
		if t.Count <= 0 {
			return fmt.Errorf("sysmodel: type %d (%s) has count %d", i, t.Name, t.Count)
		}
		if t.Avail.IsZero() {
			return fmt.Errorf("sysmodel: type %d (%s) has no availability PMF", i, t.Name)
		}
		if err := t.Avail.Validate(); err != nil {
			return fmt.Errorf("sysmodel: type %d (%s): %w", i, t.Name, err)
		}
		if t.Avail.Min() <= 0 || t.Avail.Max() > 1 {
			return fmt.Errorf("sysmodel: type %d (%s) availability support [%v,%v] outside (0,1]",
				i, t.Name, t.Avail.Min(), t.Avail.Max())
		}
	}
	return nil
}

// TotalProcessors returns the number of processors across all types.
func (s *System) TotalProcessors() int {
	n := 0
	for _, t := range s.Types {
		n += t.Count
	}
	return n
}

// WeightedAvailability implements the paper's Eq. 1: the
// processor-count-weighted mean of the per-type expected availabilities,
// as a fraction in (0, 1].
func (s *System) WeightedAvailability() float64 {
	num, den := 0.0, 0.0
	for _, t := range s.Types {
		num += float64(t.Count) * t.ExpectedAvail()
		den += float64(t.Count)
	}
	return num / den
}

// WithAvailability returns a copy of the system whose per-type
// availability PMFs are replaced by avail (indexed like Types). It is
// used to evaluate the Stage-II cases, which perturb availability while
// keeping the machine inventory fixed. It panics if the lengths differ.
func (s *System) WithAvailability(avail []pmf.PMF) *System {
	if len(avail) != len(s.Types) {
		panic(fmt.Sprintf("sysmodel: %d availability PMFs for %d types", len(avail), len(s.Types)))
	}
	out := &System{Types: make([]ProcType, len(s.Types))}
	for i, t := range s.Types {
		t.Avail = avail[i]
		out.Types[i] = t
	}
	return out
}

// Application is one data-parallel scientific application of the batch
// (paper Table II + Table III). Its loop body has SerialIters iterations
// that must run on a single processor and ParallelIters iterations that
// may be spread over the allocated processors of one type.
type Application struct {
	// Name identifies the application in reports (e.g. "App 1").
	Name string
	// SerialIters and ParallelIters count the loop iterations of each
	// kind; their ratio determines the serial/parallel time fractions.
	SerialIters   int
	ParallelIters int
	// ExecTime[j] is the PMF of the execution time of the whole
	// application on a single dedicated processor of type j.
	ExecTime []pmf.PMF
}

// Validate checks iteration counts and per-type execution-time PMFs.
func (a *Application) Validate(numTypes int) error {
	if a.SerialIters < 0 || a.ParallelIters <= 0 {
		return fmt.Errorf("sysmodel: app %s has %d serial / %d parallel iterations",
			a.Name, a.SerialIters, a.ParallelIters)
	}
	if len(a.ExecTime) != numTypes {
		return fmt.Errorf("sysmodel: app %s has %d exec-time PMFs for %d types",
			a.Name, len(a.ExecTime), numTypes)
	}
	for j, p := range a.ExecTime {
		if p.IsZero() {
			return fmt.Errorf("sysmodel: app %s missing exec-time PMF for type %d", a.Name, j)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sysmodel: app %s type %d: %w", a.Name, j, err)
		}
		if p.Min() <= 0 {
			return fmt.Errorf("sysmodel: app %s type %d has non-positive execution time %v",
				a.Name, j, p.Min())
		}
	}
	return nil
}

// TotalIters returns the total number of loop iterations.
func (a *Application) TotalIters() int { return a.SerialIters + a.ParallelIters }

// SerialFraction returns the serial share s of the application's work,
// i.e. SerialIters / TotalIters (paper Table II's "% serial").
func (a *Application) SerialFraction() float64 {
	return float64(a.SerialIters) / float64(a.TotalIters())
}

// ParallelFraction returns 1 - SerialFraction.
func (a *Application) ParallelFraction() float64 {
	return float64(a.ParallelIters) / float64(a.TotalIters())
}

// ParallelTimePMF implements the paper's Eq. 2: the PMF of the
// application's execution time on n dedicated processors of type j,
// obtained by rescaling every pulse T of the single-processor PMF to
// s*T + p*T/n. Probabilities are unchanged. It panics if n < 1 or j is
// out of range.
func (a *Application) ParallelTimePMF(j, n int) pmf.PMF {
	if n < 1 {
		panic(fmt.Sprintf("sysmodel: ParallelTimePMF with n=%d", n))
	}
	if j < 0 || j >= len(a.ExecTime) {
		panic(fmt.Sprintf("sysmodel: ParallelTimePMF with type %d of %d", j, len(a.ExecTime)))
	}
	s := a.SerialFraction()
	p := a.ParallelFraction()
	nf := float64(n)
	return a.ExecTime[j].Map(func(t float64) float64 {
		return s*t + p*t/nf
	})
}

// CompletionPMF returns the PMF of the application's completion time on
// n processors of type j whose availability follows avail: the parallel
// execution time divided by the (independent) fractional availability.
// This is the PMF Stage I sums below the deadline to obtain each
// application's completion probability.
func (a *Application) CompletionPMF(j, n int, avail pmf.PMF) pmf.PMF {
	return pmf.Div(a.ParallelTimePMF(j, n), avail)
}

// CompletionGrid is CompletionPMF on the dense grid backend: the
// parallel execution time is quantized once onto the lattice of the
// given step and divided by the (sparse) availability PMF, whose
// support in (0, 1] is far below any useful completion-time step. The
// caller owns the grid and should Release it after reading the
// deadline probability and expectation off it. Results differ from
// CompletionPMF by at most the quantization bound documented in
// DESIGN.md ("Two PMF backends").
func (a *Application) CompletionGrid(j, n int, avail pmf.PMF, step float64) *pmf.Grid {
	g := a.ParallelTimePMF(j, n).ToGrid(step)
	defer g.Release()
	return g.DivPMF(avail)
}

// Batch is the set of applications mapped together in Stage I.
type Batch []Application

// Validate validates each application against the system's type count.
func (b Batch) Validate(numTypes int) error {
	if len(b) == 0 {
		return fmt.Errorf("sysmodel: empty batch")
	}
	for i := range b {
		if err := b[i].Validate(numTypes); err != nil {
			return fmt.Errorf("sysmodel: batch[%d]: %w", i, err)
		}
	}
	return nil
}

package sysmodel

import (
	"fmt"
	"strings"
)

// Assignment allocates one application to Procs processors of a single
// processor type (the paper restricts each application to processors of
// one type).
type Assignment struct {
	// Type indexes System.Types.
	Type int
	// Procs is the number of processors of that type assigned.
	Procs int
}

// Allocation maps each application of a batch (by index) to its
// assignment. It is the output of Stage I and the input of Stage II.
type Allocation []Assignment

// Validate checks the allocation against the system and batch: every
// application assigned, positive processor counts, and per-type capacity
// respected (processors are dedicated to one application for the batch
// duration, per the paper's no-reallocation rule).
func (al Allocation) Validate(sys *System, batch Batch) error {
	if len(al) != len(batch) {
		return fmt.Errorf("sysmodel: allocation covers %d of %d applications", len(al), len(batch))
	}
	used := make([]int, len(sys.Types))
	for i, as := range al {
		if as.Type < 0 || as.Type >= len(sys.Types) {
			return fmt.Errorf("sysmodel: app %d assigned to unknown type %d", i, as.Type)
		}
		if as.Procs < 1 {
			return fmt.Errorf("sysmodel: app %d assigned %d processors", i, as.Procs)
		}
		used[as.Type] += as.Procs
	}
	for j, u := range used {
		if u > sys.Types[j].Count {
			return fmt.Errorf("sysmodel: type %d oversubscribed: %d used of %d",
				j, u, sys.Types[j].Count)
		}
	}
	return nil
}

// Used returns the number of processors of each type consumed by the
// allocation.
func (al Allocation) Used(numTypes int) []int {
	used := make([]int, numTypes)
	for _, as := range al {
		used[as.Type] += as.Procs
	}
	return used
}

// Clone returns a deep copy.
func (al Allocation) Clone() Allocation {
	return append(Allocation(nil), al...)
}

// Equal reports whether two allocations are identical.
func (al Allocation) Equal(other Allocation) bool {
	if len(al) != len(other) {
		return false
	}
	for i := range al {
		if al[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the allocation as "app0->T0x4 app1->T1x2 ...".
func (al Allocation) String() string {
	var b strings.Builder
	for i, as := range al {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "app%d->T%dx%d", i, as.Type, as.Procs)
	}
	return b.String()
}

// PowerOfTwoCounts returns the ascending powers of two that are <= max
// (1, 2, 4, ...). The paper assumes applications are assigned a
// power-of-2 number of processors of one type.
func PowerOfTwoCounts(max int) []int {
	var out []int
	for c := 1; c <= max; c *= 2 {
		out = append(out, c)
	}
	return out
}

// EnumerateAllocations calls visit with every feasible allocation of the
// batch onto the system where each application receives a power-of-2
// number of processors of a single type and type capacities are
// respected. visit must not retain the allocation (it is reused);
// returning false stops the enumeration early. The number of feasible
// allocations grows exponentially with the batch size, so this is only
// for small instances and for validating heuristics.
func EnumerateAllocations(sys *System, batch Batch, visit func(Allocation) bool) {
	EnumerateAllocationsFrom(sys, batch, nil, visit)
}

// EnumerateAllocationsFrom enumerates the feasible completions of a
// fixed assignment prefix: applications 0..len(prefix)-1 keep their
// prefix assignments (whose processors are deducted from the
// capacities), and the remaining applications are enumerated exactly as
// EnumerateAllocations would. Visit order matches the corresponding
// subsequence of the full enumeration, which is what lets a parallel
// search partition the space by prefix and still reduce in the
// sequential tie-break order. A nil or empty prefix enumerates
// everything. It panics if the prefix is longer than the batch.
func EnumerateAllocationsFrom(sys *System, batch Batch, prefix Allocation, visit func(Allocation) bool) {
	if len(prefix) > len(batch) {
		panic(fmt.Sprintf("sysmodel: prefix of %d assignments for %d applications", len(prefix), len(batch)))
	}
	al := make(Allocation, len(batch))
	copy(al, prefix)
	remaining := make([]int, len(sys.Types))
	for j, t := range sys.Types {
		remaining[j] = t.Count
	}
	for _, as := range prefix {
		remaining[as.Type] -= as.Procs
		if remaining[as.Type] < 0 {
			return // infeasible prefix: nothing to enumerate
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(batch) {
			return visit(al)
		}
		for j := range sys.Types {
			for _, c := range PowerOfTwoCounts(remaining[j]) {
				al[i] = Assignment{Type: j, Procs: c}
				remaining[j] -= c
				ok := rec(i + 1)
				remaining[j] += c
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec(len(prefix))
}

// CountAllocations returns the number of feasible allocations
// EnumerateAllocations would visit.
func CountAllocations(sys *System, batch Batch) int {
	n := 0
	EnumerateAllocations(sys, batch, func(Allocation) bool {
		n++
		return true
	})
	return n
}

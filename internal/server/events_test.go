package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/events"
	"cdsf/internal/log"
	"cdsf/internal/metrics"
)

// The helpers below keep the SSE tests readable: a frame is one
// (id, event, data) triple off the wire.

type sseFrame struct {
	ID    int64
	Event string
	Data  events.Event
}

// readFrames reads SSE frames from r until EOF (journal closed) or n
// frames have been read (n <= 0: until EOF).
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for n <= 0 || len(frames) < n {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			return frames
		}
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			frames = append(frames, cur)
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = events.ParseLastEventID(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func getEvents(t *testing.T, base, id string) []events.Event {
	t.Helper()
	var evs []events.Event
	resp := getInto(t, base+"/v1/jobs/"+id+"/events", &evs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events for %s: status %d", id, resp.StatusCode)
	}
	return evs
}

func eventTypes(evs []events.Event) []events.Type {
	types := make([]events.Type, len(evs))
	for i, ev := range evs {
		types[i] = ev.Type
	}
	return types
}

func TestJobEventsLifecycleJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{Events: events.NewLog(events.Options{})})
	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	waitState(t, ts.URL, j.ID, api.JobDone)

	evs := getEvents(t, ts.URL, j.ID)
	if len(evs) < 4 {
		t.Fatalf("journal has %d events (%v), want at least accepted/queued/started/done", len(evs), eventTypes(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d, want %d (journal %v)", i, ev.Seq, i+1, evs)
		}
		if ev.Job != j.ID {
			t.Errorf("event %d carries job %q, want %q", i, ev.Job, j.ID)
		}
	}
	if evs[0].Type != events.TypeAccepted || evs[1].Type != events.TypeQueued || evs[2].Type != events.TypeStarted {
		t.Errorf("journal starts %v, want accepted/queued/started", eventTypes(evs[:3]))
	}
	if evs[0].Detail != string(api.KindSolve) {
		t.Errorf("accepted detail %q, want job kind", evs[0].Detail)
	}
	last := evs[len(evs)-1]
	if last.Type != events.TypeDone || !last.Type.Terminal() {
		t.Errorf("journal ends with %s, want done", last.Type)
	}

	// Bad follow values and unknown jobs are rejected.
	if resp := getInto(t, ts.URL+"/v1/jobs/"+j.ID+"/events?follow=2", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("follow=2 status %d, want 400", resp.StatusCode)
	}
	if resp := getInto(t, ts.URL+"/v1/jobs/job-999999/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status %d, want 404", resp.StatusCode)
	}

	// The flight recorder holds the same events, tagged per job.
	var ring []events.Event
	if resp := getInto(t, ts.URL+"/debug/events", &ring); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events status %d", resp.StatusCode)
	}
	if len(ring) != len(evs) {
		t.Errorf("ring has %d events, journal %d", len(ring), len(evs))
	}
}

func TestJobEventsDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	waitState(t, ts.URL, j.ID, api.JobDone)
	for _, path := range []string{"/v1/jobs/" + j.ID + "/events", "/debug/events"} {
		resp := getInto(t, ts.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without events: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestJobEventsCachedReplay(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{
		Metrics: reg,
		Cache:   cache.New(cache.Options{Metrics: reg}),
		Events:  events.NewLog(events.Options{Metrics: reg}),
	})
	var a, b api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &a)
	waitState(t, ts.URL, a.ID, api.JobDone)
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &b)
	waitState(t, ts.URL, b.ID, api.JobDone)

	types := eventTypes(getEvents(t, ts.URL, b.ID))
	want := []events.Type{events.TypeAccepted, events.TypeCacheResultHit, events.TypeDone}
	if len(types) != len(want) {
		t.Fatalf("cached job journal %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("cached job journal %v, want %v", types, want)
		}
	}
}

func TestJobEventsSSETermination(t *testing.T) {
	_, ts := newTestServer(t, Options{Events: events.NewLog(events.Options{})})
	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	waitState(t, ts.URL, j.ID, api.JobDone)

	// The job is terminal, so its journal is closed: a follow stream
	// replays everything and then ends on its own.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("follow content type %q", ct)
	}
	frames := readFrames(t, bufio.NewReader(resp.Body), 0)

	evs := getEvents(t, ts.URL, j.ID)
	if len(frames) != len(evs) {
		t.Fatalf("SSE replayed %d frames, journal has %d events", len(frames), len(evs))
	}
	for i, f := range frames {
		if f.ID != evs[i].Seq || f.Event != string(evs[i].Type) || f.Data.Seq != evs[i].Seq {
			t.Errorf("frame %d = id %d event %s, journal seq %d type %s", i, f.ID, f.Event, evs[i].Seq, evs[i].Type)
		}
	}
	if last := frames[len(frames)-1]; !events.Type(last.Event).Terminal() {
		t.Errorf("stream ended on %s, want a terminal event", last.Event)
	}
}

func TestJobEventsSSEResume(t *testing.T) {
	s, ts := newTestServer(t, Options{Queue: 4, Executors: 1, Events: events.NewLog(events.Options{})})
	var j api.Job
	post(t, ts.URL+"/v1/simulate", longSimulate(), &j)
	waitState(t, ts.URL, j.ID, api.JobRunning)

	// First connection: read through the started event, then drop.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	first := readFrames(t, bufio.NewReader(resp.Body), 3)
	resp.Body.Close()
	if len(first) != 3 || first[2].Event != string(events.TypeStarted) {
		t.Fatalf("first connection read %+v, want accepted/queued/started", first)
	}
	cursor := first[len(first)-1].ID

	// Finish the job while disconnected, then reconnect with the
	// standard Last-Event-ID header: the stream resumes at cursor+1 and
	// ends at the terminal event, with no duplicates and no gaps.
	cancelJob(t, ts.URL, j.ID)
	waitState(t, ts.URL, j.ID, api.JobCancelled)

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.ID+"/events?follow=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatInt(cursor, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := readFrames(t, bufio.NewReader(resp2.Body), 0)
	if len(rest) == 0 {
		t.Fatal("resumed stream was empty")
	}
	if rest[0].ID != cursor+1 {
		t.Errorf("resumed stream starts at seq %d, want %d", rest[0].ID, cursor+1)
	}
	if last := rest[len(rest)-1]; last.Event != string(events.TypeCancelled) {
		t.Errorf("resumed stream ends on %s, want cancelled", last.Event)
	}

	// The two connections together replay the journal exactly.
	evs := getEvents(t, ts.URL, j.ID)
	combined := append(first, rest...)
	if len(combined) != len(evs) {
		t.Fatalf("combined stream has %d frames, journal %d events", len(combined), len(evs))
	}
	for i, f := range combined {
		if f.ID != evs[i].Seq {
			t.Errorf("combined frame %d has seq %d, journal %d", i, f.ID, evs[i].Seq)
		}
	}
	_ = s
}

// cancelJob issues DELETE /v1/jobs/{id}.
func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, err := http.NewRequest("DELETE", base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// 200 for queued jobs (cancelled synchronously), 202 for running
	// jobs (cancellation requested, context cancelled).
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE job %s: status %d", id, resp.StatusCode)
	}
}

func TestRequestMetricsMiddleware(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{Metrics: reg})
	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	waitState(t, ts.URL, j.ID, api.JobDone)
	getInto(t, ts.URL+"/v1/jobs", nil)
	getInto(t, ts.URL+"/v1/healthz", nil)
	getInto(t, ts.URL+"/v1/jobs/job-999999", nil)

	snap := reg.Snapshot()
	for counter, min := range map[string]int64{
		"http.requests.solve.202":   1,
		"http.requests.jobs.200":    1,
		"http.requests.job.200":     1, // waitState polls
		"http.requests.job.404":     1,
		"http.requests.healthz.200": 1,
	} {
		if got := snap.Counters[counter]; got < min {
			t.Errorf("counter %s = %d, want >= %d", counter, got, min)
		}
	}
	hist, ok := snap.Histograms["http.latency_seconds.solve"]
	if !ok || hist.Count < 1 {
		t.Fatalf("no latency histogram for the solve route: %+v", snap.Histograms)
	}
	var total int64
	for _, b := range hist.Buckets {
		total += b.Count
	}
	if total != hist.Count {
		t.Errorf("latency buckets sum to %d, histogram count %d", total, hist.Count)
	}

	// The Prometheus rendering exposes the same data as cumulative
	// le-labeled buckets.
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"http_requests_solve_202 ",
		`http_latency_seconds_solve_bucket{le="`,
		`http_latency_seconds_solve_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestEventsDeterminism pins the central observability guarantee: the
// seeded solve result document is byte-identical whether the event
// journal and structured logging are on or off.
func TestEventsDeterminism(t *testing.T) {
	var logBuf syncBuffer
	run := func(opts Options) json.RawMessage {
		_, ts := newTestServer(t, opts)
		var j api.Job
		post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "exhaustive"}, &j)
		return waitState(t, ts.URL, j.ID, api.JobDone).Result
	}
	plain := run(Options{})
	observed := run(Options{
		Events: events.NewLog(events.Options{}),
		Logger: log.New(&logBuf, log.Options{Level: log.LevelDebug}),
	})
	if !bytes.Equal(plain, observed) {
		t.Errorf("result documents differ with observability on:\nplain:    %s\nobserved: %s", plain, observed)
	}
	out := logBuf.String()
	if out == "" {
		t.Fatal("no log output despite a debug-level logger")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("log line is not valid JSON: %q", line)
		}
	}
}

// syncBuffer makes a bytes.Buffer safe to read while the server's
// handler goroutines may still be logging (the middleware logs after
// the response bytes have reached the client).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
	"cdsf/internal/metrics"
	"cdsf/internal/store"
)

// submitSolve posts one solve request and returns the accepted
// envelope.
func submitSolve(t *testing.T, base string, req api.SolveRequest) api.Job {
	t.Helper()
	var j api.Job
	resp := post(t, base+"/v1/solve", req, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	return j
}

// solveReference runs req on a fresh single-process server and returns
// the result bytes as served — the byte-identity baseline for store
// replay and remote dispatch.
func solveReference(t *testing.T, req api.SolveRequest) []byte {
	t.Helper()
	_, ts := newTestServer(t, Options{})
	j := submitSolve(t, ts.URL, req)
	return waitState(t, ts.URL, j.ID, api.JobDone).Result
}

func TestJobsPagination(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ids := make([]string, 5)
	for i := range ids {
		j := submitSolve(t, ts.URL, api.SolveRequest{Heuristic: "greedy"})
		waitState(t, ts.URL, j.ID, api.JobDone)
		ids[i] = j.ID
	}

	page := func(query string) api.JobList {
		t.Helper()
		var l api.JobList
		resp := getInto(t, ts.URL+"/v1/jobs"+query, &l)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
		}
		return l
	}
	got := func(l api.JobList) []string {
		out := make([]string, len(l.Jobs))
		for i, j := range l.Jobs {
			out[i] = j.ID
		}
		return out
	}

	// Unpaginated: everything, no cursor.
	all := page("")
	if len(all.Jobs) != 5 || all.Total != 5 || all.Next != "" {
		t.Fatalf("unpaginated list: %d jobs, total %d, next %q", len(all.Jobs), all.Total, all.Next)
	}

	// Page through with limit=2: 2 + 2 + 1, cursors chaining, total
	// constant throughout.
	p1 := page("?limit=2")
	if fmt.Sprint(got(p1)) != fmt.Sprint(ids[:2]) || p1.Total != 5 || p1.Next != ids[1] {
		t.Fatalf("page 1: ids %v total %d next %q", got(p1), p1.Total, p1.Next)
	}
	p2 := page("?limit=2&after=" + p1.Next)
	if fmt.Sprint(got(p2)) != fmt.Sprint(ids[2:4]) || p2.Total != 5 || p2.Next != ids[3] {
		t.Fatalf("page 2: ids %v total %d next %q", got(p2), p2.Total, p2.Next)
	}
	p3 := page("?limit=2&after=" + p2.Next)
	if fmt.Sprint(got(p3)) != fmt.Sprint(ids[4:]) || p3.Total != 5 || p3.Next != "" {
		t.Fatalf("page 3: ids %v total %d next %q", got(p3), p3.Total, p3.Next)
	}

	// A state filter composes with pagination, and total still counts
	// every match.
	f := page("?state=done&limit=3")
	if len(f.Jobs) != 3 || f.Total != 5 || f.Next != ids[2] {
		t.Fatalf("filtered page: %d jobs, total %d, next %q", len(f.Jobs), f.Total, f.Next)
	}
	if n := page("?state=failed"); n.Total != 0 || len(n.Jobs) != 0 {
		t.Fatalf("failed filter: %+v", n)
	}

	// Bad cursors and limits are the client's fault.
	for _, q := range []string{"?after=job-999999", "?limit=0", "?limit=-1", "?limit=x"} {
		if resp := getInto(t, ts.URL+"/v1/jobs"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestRetryAfterDividesByExecutors(t *testing.T) {
	// A bare server (executors never started): 8 queued jobs at a 2s
	// mean over 4 executors drain in ceil(8x2/4) = 4 seconds, not 16.
	s := &Server{opts: Options{Queue: 16, Executors: 4}, queue: make(chan *job, 16)}
	for i := 0; i < 8; i++ {
		s.queue <- &job{}
	}
	for i := 0; i < 3; i++ {
		s.recordWall(2 * time.Second)
	}
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("retryAfterSeconds = %d, want 4", got)
	}
}

func TestServerRecoversInterruptedJobs(t *testing.T) {
	// Journal an accepted solve whose executor never finished — the
	// state a kill -9 mid-job leaves behind — then hand the store to a
	// fresh server: the job re-runs under its own id to the exact bytes
	// of an uninterrupted run.
	req := api.SolveRequest{Heuristic: "genetic", Seed: 7}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id := w.NextID()
	for _, rec := range []store.Record{
		{Job: id, Type: events.TypeAccepted, Kind: api.KindSolve, Request: raw},
		{Job: id, Type: events.TypeQueued},
		{Job: id, Type: events.TypeStarted},
	} {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{Store: w2, Metrics: reg})
	done := waitState(t, ts.URL, id, api.JobDone)
	if want := solveReference(t, req); string(done.Result) != string(want) {
		t.Errorf("recovered result differs from uninterrupted run:\n%s\nvs\n%s", done.Result, want)
	}
	if reg.Counter("server.jobs_recovered").Value() != 1 {
		t.Errorf("jobs_recovered = %d, want 1", reg.Counter("server.jobs_recovered").Value())
	}
}

func TestWALServerServesReplayedResults(t *testing.T) {
	req := api.SolveRequest{Heuristic: "greedy", Seed: 3}
	dir := t.TempDir()
	w, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: w})
	ts := httptest.NewServer(s.Handler())
	j := submitSolve(t, ts.URL, req)
	first := waitState(t, ts.URL, j.ID, api.JobDone)
	s.Drain(time.Second) // closes the WAL
	ts.Close()

	// A restarted server on the same directory serves the finished job
	// bit-for-bit without re-running anything.
	w2, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Options{Store: w2})
	replayed := getJob(t, ts2.URL, j.ID)
	if replayed.State != api.JobDone || string(replayed.Result) != string(first.Result) {
		t.Fatalf("replayed job: state %s, bytes match %v", replayed.State,
			string(replayed.Result) == string(first.Result))
	}

	var h api.Health
	getInto(t, ts2.URL+"/v1/healthz", &h)
	if h.Store == nil || h.Store.Backend != "wal" {
		t.Fatalf("healthz store block: %+v", h.Store)
	}
	if h.Store.ReplayedJobs != 1 || h.Store.RecoveredJobs != 0 || h.Store.ReplayedRecords == 0 {
		t.Errorf("healthz replay stats: %+v", *h.Store)
	}
}

func TestRemoteDispatchToWorker(t *testing.T) {
	req := api.SolveRequest{Heuristic: "greedy", Seed: 5}
	_, worker := newTestServer(t, Options{})
	reg := metrics.NewRegistry()
	_, coord := newTestServer(t, Options{Metrics: reg})

	var wl api.WorkerList
	resp := post(t, coord.URL+"/v1/workers", api.WorkerRegistration{Name: "w1", Addr: worker.URL}, &wl)
	if resp.StatusCode != http.StatusOK || len(wl.Workers) != 1 || !wl.Workers[0].Alive {
		t.Fatalf("register: status %d, %+v", resp.StatusCode, wl)
	}

	j := submitSolve(t, coord.URL, req)
	done := waitState(t, coord.URL, j.ID, api.JobDone)
	if done.Node != "w1" {
		t.Errorf("job node %q, want w1", done.Node)
	}
	if want := solveReference(t, req); string(done.Result) != string(want) {
		t.Errorf("remote result differs from local run:\n%s\nvs\n%s", done.Result, want)
	}
	if reg.Counter("worker.dispatched").Value() != 1 || reg.Counter("worker.completed").Value() != 1 {
		t.Errorf("dispatch counters: dispatched %d completed %d",
			reg.Counter("worker.dispatched").Value(), reg.Counter("worker.completed").Value())
	}

	// The worker itself ran the job: it shows up in the worker's own
	// job list.
	var l api.JobList
	getInto(t, worker.URL+"/v1/jobs", &l)
	if l.Total != 1 || l.Jobs[0].State != api.JobDone {
		t.Errorf("worker job list: %+v", l)
	}
}

func TestWorkerDeathReassignsLease(t *testing.T) {
	req := api.SolveRequest{Heuristic: "greedy", Seed: 9}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// Decide which of two names the ring places first for this request,
	// and give that name to the doomed worker — so the test
	// deterministically exercises reassignment, not just placement.
	probe := newPeerSet(time.Hour, nil, nil)
	probe.register("wa", "http://a")
	probe.register("wb", "http://b")
	doomed, _, ok := probe.pick(placementKey(api.KindSolve, raw), nil)
	if !ok {
		t.Fatal("probe ring empty")
	}
	survivor := "wa"
	if doomed == "wa" {
		survivor = "wb"
	}

	// The doomed worker accepts the dispatch and then answers every
	// poll 404, as a worker that crashed and restarted empty would.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			writeJSON(w, http.StatusAccepted, api.Job{ID: "job-000001", Kind: api.KindSolve, State: api.JobQueued})
			return
		}
		writeError(w, http.StatusNotFound, api.ErrNotFound, "gone")
	}))
	defer dead.Close()
	_, workerTS := newTestServer(t, Options{})

	reg := metrics.NewRegistry()
	_, coord := newTestServer(t, Options{Metrics: reg})
	post(t, coord.URL+"/v1/workers", api.WorkerRegistration{Name: doomed, Addr: dead.URL}, nil)
	post(t, coord.URL+"/v1/workers", api.WorkerRegistration{Name: survivor, Addr: workerTS.URL}, nil)

	j := submitSolve(t, coord.URL, req)
	done := waitState(t, coord.URL, j.ID, api.JobDone)
	if done.Node != survivor {
		t.Errorf("job node %q, want survivor %q", done.Node, survivor)
	}
	if want := solveReference(t, req); string(done.Result) != string(want) {
		t.Errorf("reassigned result differs from local run")
	}
	if reg.Counter("worker.reassigned").Value() != 1 {
		t.Errorf("worker.reassigned = %d, want 1", reg.Counter("worker.reassigned").Value())
	}
}

func TestWorkerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Registration validation.
	for _, body := range []api.WorkerRegistration{
		{Name: "", Addr: "http://x"},
		{Name: "w1", Addr: ""},
		{Name: "w1", Addr: "not a url"},
		{Name: "w1", Addr: "ftp://x"},
	} {
		if resp := post(t, ts.URL+"/v1/workers", body, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %+v: status %d, want 400", body, resp.StatusCode)
		}
	}

	post(t, ts.URL+"/v1/workers", api.WorkerRegistration{Name: "w1", Addr: "http://127.0.0.1:1/"}, nil)
	var wl api.WorkerList
	getInto(t, ts.URL+"/v1/workers", &wl)
	if len(wl.Workers) != 1 || wl.Workers[0].Name != "w1" || wl.Workers[0].Addr != "http://127.0.0.1:1" {
		t.Fatalf("worker list: %+v", wl)
	}

	// The health document shows the peer.
	var h api.Health
	getInto(t, ts.URL+"/v1/healthz", &h)
	if len(h.Workers) != 1 || !h.Workers[0].Alive {
		t.Errorf("healthz workers: %+v", h.Workers)
	}
	if h.Store == nil || h.Store.Backend != "memory" {
		t.Errorf("healthz store: %+v", h.Store)
	}

	// Deregistration is idempotent-with-404.
	del := func(name string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/"+name, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del("w1"); got != http.StatusOK {
		t.Errorf("deregister: status %d, want 200", got)
	}
	if got := del("w1"); got != http.StatusNotFound {
		t.Errorf("second deregister: status %d, want 404", got)
	}
}

func TestPeerSetLivenessAndPlacement(t *testing.T) {
	ps := newPeerSet(60*time.Millisecond, nil, nil)
	ps.register("w1", "http://a")
	ps.register("w2", "http://b")
	if !ps.alive("w1") || !ps.alive("w2") {
		t.Fatal("fresh registrations not alive")
	}

	// Placement is stable for a fixed key, and exclusion moves to the
	// other peer.
	key := placementKey(api.KindSolve, []byte(`{"seed":1}`))
	n1, _, ok := ps.pick(key, nil)
	if !ok {
		t.Fatal("pick failed with two live peers")
	}
	for i := 0; i < 10; i++ {
		if n, _, _ := ps.pick(key, nil); n != n1 {
			t.Fatalf("placement unstable: %q then %q", n1, n)
		}
	}
	n2, _, ok := ps.pick(key, map[string]bool{n1: true})
	if !ok || n2 == n1 {
		t.Fatalf("exclusion pick: %q ok=%v", n2, ok)
	}

	// Silence past the heartbeat timeout kills liveness and placement;
	// a fresh heartbeat resurrects both.
	time.Sleep(90 * time.Millisecond)
	if ps.alive("w1") || ps.alive("w2") {
		t.Fatal("stale peers still alive")
	}
	if _, _, ok := ps.pick(key, nil); ok {
		t.Fatal("pick returned a dead peer")
	}
	ps.register(n1, "http://a2")
	if got, _, ok := ps.pick(key, nil); !ok || got != n1 {
		t.Fatalf("pick after heartbeat: %q ok=%v", got, ok)
	}
	if !ps.remove(n1) || ps.remove(n1) {
		t.Fatal("remove not idempotent-with-false")
	}
	if _, _, ok := ps.pick(key, nil); ok {
		t.Fatal("pick returned a removed peer")
	}
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/config"
	"cdsf/internal/experiments"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

// TestAPIVersionReported pins the v1.1 discovery contract: healthz and
// the job list both carry api_version "1.1" alongside the v1 route
// version.
func TestAPIVersionReported(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.APIVersion != api.MinorVersion || api.MinorVersion != "1.1" {
		t.Errorf("healthz api_version %q, want %q", h.APIVersion, "1.1")
	}
	if h.Version != api.Version {
		t.Errorf("healthz version %q, want %q", h.Version, api.Version)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jl api.JobList
	if err := json.NewDecoder(resp.Body).Decode(&jl); err != nil {
		t.Fatal(err)
	}
	if jl.APIVersion != "1.1" {
		t.Errorf("jobs api_version %q, want %q", jl.APIVersion, "1.1")
	}
}

// TestErrorDocument pins the v1.1 error contract: every 4xx answers the
// structured {code, message, field} document, with the field path set
// for DAG validation failures.
func TestErrorDocument(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	check := func(req api.SolveRequest, wantField string) {
		t.Helper()
		var apiErr api.Error
		resp := post(t, ts.URL+"/v1/solve", req, &apiErr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if apiErr.Code != api.ErrBadRequest {
			t.Errorf("code %q, want %q", apiErr.Code, api.ErrBadRequest)
		}
		if apiErr.Message == "" {
			t.Error("empty error message")
		}
		if apiErr.Field != wantField {
			t.Errorf("field %q, want %q", apiErr.Field, wantField)
		}
	}
	// Unknown application index: the field path names the exact edge end.
	check(api.SolveRequest{Edges: []config.EdgeSpec{{From: 0, To: 99}}}, "edges[0].to")
	check(api.SolveRequest{Edges: []config.EdgeSpec{{From: -1, To: 1}}}, "edges[0].from")
	// Self-edge: the path names the edge.
	check(api.SolveRequest{Edges: []config.EdgeSpec{{From: 1, To: 1}}}, "edges[0]")
	// Cycle: no single edge is at fault; the path is the edges field.
	check(api.SolveRequest{Edges: []config.EdgeSpec{{From: 0, To: 1}, {From: 1, To: 0}}}, "edges")

	// Non-validation 4xx bodies carry a code too.
	var apiErr api.Error
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || apiErr.Code != api.ErrNotFound {
		t.Errorf("missing job: status %d code %q, want 404 %q", resp.StatusCode, apiErr.Code, api.ErrNotFound)
	}
}

// solveDAGDirect computes the expected result of a seeded DAG solve via
// the library: the reference the service must match bit for bit.
func solveDAGDirect(t *testing.T, edges []sysmodel.Edge, heuristic string) *robustness.StageIResult {
	t.Helper()
	f := experiments.Framework()
	h, err := ra.ByName(heuristic)
	if err != nil {
		t.Fatal(err)
	}
	al, err := ra.SolveContext(context.Background(), h, &ra.Problem{
		Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline, Edges: edges,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := robustness.EvaluateStageIDAG(f.Sys, f.Batch, edges, al, f.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSolveDAGDeterministic is the v1.1 acceptance check: a seeded DAG
// solve through the service is bit-identical to the direct library
// call, with the result cache off and on (including the cached replay),
// and two jobs differing only in topology never share a cache key.
func TestSolveDAGDeterministic(t *testing.T) {
	edges := []config.EdgeSpec{{From: 0, To: 2}, {From: 1, To: 2}}
	want := solveDAGDirect(t, []sysmodel.Edge{{From: 0, To: 2}, {From: 1, To: 2}}, "heft")

	solveOnce := func(ts string, req api.SolveRequest) (api.Job, api.SolveResult) {
		t.Helper()
		var j api.Job
		resp := post(t, ts+"/v1/solve", req, &j)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d, want 202", resp.StatusCode)
		}
		done := waitState(t, ts, j.ID, api.JobDone)
		var res api.SolveResult
		if err := json.Unmarshal(done.Result, &res); err != nil {
			t.Fatal(err)
		}
		return done, res
	}
	checkMatch := func(res api.SolveResult) {
		t.Helper()
		if !api.ToAllocation(res.Allocation).Equal(want.Alloc) {
			t.Errorf("service allocation %v != direct %v", res.Allocation, want.Alloc)
		}
		if res.Phi1 != want.Phi1 {
			t.Errorf("service phi1 %v != direct %v", res.Phi1, want.Phi1)
		}
		for i := range want.PerApp {
			if res.PerApp[i] != want.PerApp[i] || res.ExpectedTimes[i] != want.ExpectedTimes[i] {
				t.Errorf("app %d: service (%v, %v) != direct (%v, %v)",
					i, res.PerApp[i], res.ExpectedTimes[i], want.PerApp[i], want.ExpectedTimes[i])
			}
		}
	}

	req := api.SolveRequest{Heuristic: "heft", Edges: edges}

	// Cache off.
	_, ts := newTestServer(t, Options{})
	_, res := solveOnce(ts.URL, req)
	checkMatch(res)

	// Cache on: the first run computes, the repeat replays from the
	// result tier; both must match the direct call.
	c := cache.New(cache.Options{})
	_, ts2 := newTestServer(t, Options{Cache: c})
	j1, res1 := solveOnce(ts2.URL, req)
	checkMatch(res1)
	j2, res2 := solveOnce(ts2.URL, req)
	checkMatch(res2)
	if j2.Cache == nil || !j2.Cache.ResultHit {
		t.Error("repeat DAG solve was not answered from the result cache")
	}
	if j1.Cache == nil || j1.Cache.Key == "" {
		t.Fatal("first DAG solve carried no cache key")
	}

	// A topology change must change the cache identity even for the
	// embedded paper example (which has no canonical instance echo).
	j3, _ := solveOnce(ts2.URL, api.SolveRequest{Heuristic: "heft", Edges: []config.EdgeSpec{{From: 1, To: 2}}})
	if j3.Cache != nil && j3.Cache.Key == j1.Cache.Key {
		t.Error("different topologies produced the same cache key")
	}
	// And the edge-free request keys differently from every DAG one.
	j4, _ := solveOnce(ts2.URL, api.SolveRequest{Heuristic: "heft"})
	if j4.Cache != nil && j4.Cache.Key == j1.Cache.Key {
		t.Error("edge-free request shares a cache key with a DAG request")
	}
}

// TestSimulateDAGGatesReleases submits a fork-join simulate job: the
// sink application's mean completion must be at least the slower
// source's, because every repetition gates the sink on its
// predecessors' finish times.
func TestSimulateDAGGatesReleases(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := api.SimulateRequest{
		Edges:      []config.EdgeSpec{{From: 0, To: 2}, {From: 1, To: 2}},
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Reps:       5,
		Seed:       11,
	}
	var j api.Job
	resp := post(t, ts.URL+"/v1/simulate", req, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	var res api.SimulateResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	src := res.PerApp[0][0].MeanTime
	if m := res.PerApp[1][0].MeanTime; m > src {
		src = m
	}
	sink := res.PerApp[2][0].MeanTime
	if sink <= src {
		t.Errorf("sink mean %v not after slower source mean %v", sink, src)
	}
}

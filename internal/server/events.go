package server

import (
	"fmt"
	"net/http"

	"cdsf/internal/api"
	"cdsf/internal/events"
)

// This file serves the job-event journal over HTTP:
//
//	GET /v1/jobs/{id}/events           the journal as a JSON array
//	GET /v1/jobs/{id}/events?follow=1  Server-Sent Events: replay then
//	                                   live, id: = sequence number,
//	                                   Last-Event-ID resumes
//	GET /debug/events                  the cross-job flight-recorder
//	                                   ring, newest RingBound events
//
// The SSE resume contract: every frame carries the journal sequence
// number as its SSE id, so a client that reconnects with the standard
// Last-Event-ID header (what EventSource does automatically, and what
// a curl loop can pass by hand) first replays the retained journal
// past that sequence and then goes live. If the bounded journal
// trimmed past the client's cursor, the replay starts at the oldest
// retained event and the client observes the gap in the seq numbers —
// bounded memory is chosen over unbounded replay. The stream ends when
// the job's journal closes (the job reached a terminal state, whose
// event is always the last frame).

// handleJobEvents serves one job's journal, as JSON or as SSE.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		writeError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	if s.opts.Events == nil {
		writeError(w, http.StatusNotFound, api.ErrNotFound, "event journal disabled on this server")
		return
	}
	// The journal exists for every registered job when events are on;
	// Lookup (not Journal) so a disabled-then-enabled server can never
	// invent an empty journal for a pre-enablement job.
	journal := s.opts.Events.Lookup(id)
	if journal == nil {
		writeError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no event journal for job %q", id))
		return
	}
	switch q := r.URL.Query().Get("follow"); q {
	case "", "0", "false":
		evs := journal.Snapshot()
		if evs == nil {
			evs = []events.Event{}
		}
		writeJSON(w, http.StatusOK, evs)
	case "1", "true":
		s.followJournal(w, r, journal)
	default:
		writeError(w, http.StatusBadRequest, api.ErrBadRequest, fmt.Sprintf("follow=%q (want 0 or 1)", q))
	}
}

// followJournal streams a journal as SSE until the journal closes or
// the client disconnects.
func (s *Server) followJournal(w http.ResponseWriter, r *http.Request, journal *events.Journal) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, api.ErrInternal, "streaming unsupported by this connection")
		return
	}
	// Resume cursor: the standard Last-Event-ID header (sent by
	// EventSource on reconnect) wins; ?after= is the curl-friendly
	// spelling of the same thing.
	after := events.ParseLastEventID(r.Header.Get("Last-Event-ID"))
	if after == 0 {
		after = events.ParseLastEventID(r.URL.Query().Get("after"))
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Snapshot-then-subscribe is atomic in the journal, so nothing
	// recorded between replay and live delivery is lost or duplicated.
	replay, sub := journal.Subscribe(after)
	defer journal.Unsubscribe(sub)

	last := after
	send := func(ev events.Event) bool {
		if err := events.WriteSSE(w, ev); err != nil {
			return false
		}
		fl.Flush()
		last = ev.Seq
		return true
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Journal closed. Backfill whatever the buffer missed at
				// the end (the terminal event is always retained), then
				// finish the stream.
				for _, e := range journal.Since(last) {
					if !send(e) {
						return
					}
				}
				return
			}
			switch {
			case ev.Seq <= last:
				// Already sent during replay.
			case ev.Seq == last+1:
				if !send(ev) {
					return
				}
			default:
				// The subscription dropped events (stalled reader):
				// backfill the gap from the journal, which includes ev.
				for _, e := range journal.Since(last) {
					if !send(e) {
						return
					}
				}
			}
		}
	}
}

// handleDebugEvents serves the cross-job flight recorder.
func (s *Server) handleDebugEvents(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Events == nil {
		writeError(w, http.StatusNotFound, api.ErrNotFound, "event journal disabled on this server")
		return
	}
	ring := s.opts.Events.Ring()
	if ring == nil {
		ring = []events.Event{}
	}
	writeJSON(w, http.StatusOK, ring)
}

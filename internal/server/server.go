// Package server turns the CDSF framework into a long-running
// scheduling service: a bounded job queue and executor pool driving
// the ctx-first engine entry points (ra.SolveContext,
// sim.RunManyContext via core's case driver, core.RunScenarioContext)
// behind the versioned HTTP/JSON API defined in internal/api.
//
// The lifecycle of a job is queued -> running -> done|failed|cancelled.
// Admission is backpressured: when the queue is full the service
// answers 429 with a Retry-After header instead of buffering without
// bound, and while draining it answers 503. Every job runs under its
// own context derived from the server's base context, so DELETE
// cancels one job and Drain cancels them all — reusing the repository's
// cancellation contract (DESIGN.md §7): a cancelled engine drains its
// worker pools and returns an error wrapping context.Canceled, which
// the server maps to the cancelled state.
//
// Job state lives in a pluggable store.JobStore: every lifecycle
// transition is expressed as a store record, and the envelopes the API
// serves are materialized from those records. The default memory store
// reproduces the original in-process behaviour exactly (jobs die with
// the process); the WAL store journals each transition durably, and New
// replays interrupted jobs from the journal after a crash — seeded jobs
// re-run to bit-identical result bytes (DESIGN.md §12).
//
// When worker peers register (POST /v1/workers), the executor pool
// additionally acts as a coordinator: jobs are placed on live workers
// by consistent hashing over their request bytes and run remotely over
// the same v1 API, with leases reassigned when a worker dies
// (worker.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/events"
	"cdsf/internal/log"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/store"
	"cdsf/internal/tracing"
)

// Options configures a Server.
type Options struct {
	// Queue bounds the number of jobs waiting for an executor (running
	// jobs do not count). Submissions beyond the bound are rejected
	// with 429; the queue never grows without limit. Non-positive
	// means 16.
	Queue int
	// Executors is the number of jobs executed concurrently.
	// Non-positive means 2: jobs are themselves internally parallel,
	// so a small executor pool saturates the machine while keeping
	// per-job latency predictable.
	Executors int
	// Workers is the default engine worker-pool size per job, used
	// when a request does not set its own. Non-positive means
	// runtime.NumCPU(). Results are identical for any value.
	Workers int
	// PMFBackend is the default Stage-I distribution backend for jobs
	// whose request leaves pmf_backend empty. The zero value is the
	// sparse (exact) backend, keeping seeded service results
	// bit-identical to earlier releases.
	PMFBackend pmf.Backend
	// Metrics receives the server's own counters and is threaded into
	// every job's engine configuration. Nil means a fresh registry
	// (the /metrics endpoint then reports only this server).
	Metrics *metrics.Registry
	// Tracer is threaded into every job's engine configuration; nil
	// disables tracing.
	Tracer *tracing.Tracer
	// Cache is the content-addressed solve cache. When set, a repeat of
	// a byte-identical request is answered straight from the result
	// tier at admission time — an already-done job, no queue trip — and
	// solve/scenario jobs share warm Stage-I evaluation tables across
	// deadlines, heuristics, and availability cases. Envelopes gain a
	// "cache" block with the job's key and hit counts. Nil disables
	// caching; envelopes and behaviour are then unchanged.
	Cache *cache.Cache
	// Events is the job-event journal: every job records its lifecycle
	// (accepted, queued, started, sampled progress, cache hits,
	// terminal state) into a per-job journal served by
	// GET /v1/jobs/{id}/events (JSON and SSE) and a cross-job ring on
	// /debug/events. Nil disables event recording (the nil-no-op
	// default; the event endpoints then answer 404) — cdsfd wires one
	// in unconditionally, since journals are bounded in-memory state
	// that never touches result documents.
	Events *events.Log
	// Logger emits structured JSON-lines service logs: job lifecycle
	// transitions at info, per-request lines at debug, failures at
	// warn/error. Nil disables logging; results and response bodies are
	// byte-identical either way.
	Logger *log.Logger
	// ProgressInterval is how often a running job's progress board is
	// sampled into its event journal (only when Events is set and the
	// job tracks progress). Non-positive means 250ms.
	ProgressInterval time.Duration
	// Store is the job store behind the lifecycle: every transition is
	// appended to it and envelopes are read back from it. Nil means a
	// fresh in-memory store (the original non-durable behaviour); cdsfd
	// -store wires in the WAL store, whose interrupted jobs New
	// re-enqueues before the executor pool starts. The server owns the
	// store from here on and closes it at the end of Drain.
	Store store.JobStore
	// HeartbeatTimeout is how long a registered worker peer may stay
	// silent before it is considered dead: placement skips it and its
	// leased jobs are reassigned. Non-positive means 10s.
	HeartbeatTimeout time.Duration
}

// Server owns the job queue, the executor pool, and the worker-peer
// registry; job state lives in the store. Create one with New and
// expose it with Handler; stop it with Drain.
type Server struct {
	opts  Options
	store store.JobStore
	peers *peerSet

	queue    chan *job
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool

	// closeStore guards the single store close at the end of Drain
	// (Drain itself is idempotent).
	closeStore sync.Once

	// baseCtx parents every job context; baseCancel is the drain
	// hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// inflight counts jobs currently holding an executor and
	// httpInflight counts requests currently in a handler; queueDepth
	// mirrors len(queue) into the metrics registry for the RED gauges
	// and /v1/healthz.
	inflight     atomic.Int64
	httpInflight atomic.Int64
	queueDepth   *metrics.Gauge
	inflightG    *metrics.Gauge

	// admitMu serializes admissions: the queue-capacity check, the
	// durable accepted append, and the queue push happen as one unit,
	// so a 202 means the job is journaled AND has a queue slot.
	admitMu sync.Mutex

	// mu guards the runtime job map and serializes lifecycle decisions
	// (the check-then-append sequences); the store serializes its own
	// state internally.
	mu   sync.Mutex
	jobs map[string]*job

	// wallMu guards the ring of recent job wall times feeding the
	// Retry-After estimate (separate from mu: admission reads it while
	// holding no job state).
	wallMu     sync.Mutex
	recentWall [wallWindow]time.Duration
	wallCount  int // total recorded; ring index is wallCount % wallWindow
}

// wallWindow is the size of the rolling window of job wall times
// behind the Retry-After estimate.
const wallWindow = 32

// job is the server-side control state of one admitted job; the wire
// envelope it serves is materialized by the store from the appended
// lifecycle records.
type job struct {
	id       string
	kind     api.JobKind
	request  json.RawMessage
	progress *tracing.Progress
	journal  *events.Journal
	run      func(ctx context.Context, prog *tracing.Progress) (any, error)
	cancel   context.CancelFunc

	// cacheKey is the job's result-tier content address (zero when
	// caching is off for this job); cacheInfo is the envelope block
	// attached once the job reaches done. The run closure may write
	// cacheInfo's warm counts while running — it is published into the
	// done record only under mu after run returns, so snapshots never
	// see it mid-write.
	cacheKey  cache.Key
	cacheInfo *api.CacheInfo
}

// Sentinel admission errors; the HTTP layer maps them to 503 and 429.
var (
	errDraining  = errors.New("server: draining, not admitting jobs")
	errQueueFull = errors.New("server: job queue full")
)

// New starts a server: the store's interrupted jobs (if any) are
// re-enqueued, the executor pool is running, and Handler can be
// mounted immediately. Callers must eventually call Drain (or Close)
// to stop the pool.
func New(opts Options) *Server {
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 250 * time.Millisecond
	}
	if opts.Store == nil {
		opts.Store = store.NewMemory()
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := opts.Store.Interrupted()
	s := &Server{
		opts:  opts,
		store: opts.Store,
		// The queue is oversized by the recovery backlog so replayed
		// jobs always fit; admission still enforces opts.Queue.
		queue:      make(chan *job, opts.Queue+len(interrupted)),
		stop:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*job{},
		queueDepth: opts.Metrics.Gauge("server.queue_depth"),
		inflightG:  opts.Metrics.Gauge("server.jobs_inflight"),
	}
	s.peers = newPeerSet(opts.HeartbeatTimeout, opts.Metrics, opts.Logger)
	for _, rec := range interrupted {
		s.recoverJob(rec)
	}
	s.queueDepth.Set(float64(len(s.queue)))
	s.wg.Add(opts.Executors)
	for i := 0; i < opts.Executors; i++ {
		go s.executor()
	}
	return s
}

// recoverJob re-enqueues one interrupted job from its journaled
// request: the request is re-validated through the same dispatch layer
// HTTP submissions use and the job re-runs under its original id.
// Deterministic (seeded) jobs reproduce their result bytes exactly. A
// request that no longer validates fails the job instead of dropping
// it, so the crash leaves an explanation rather than a hole.
func (s *Server) recoverJob(rec store.Job) {
	id := rec.Env.ID
	spec, err := s.prepare(rec.Env.Kind, rec.Request)
	if err != nil {
		_ = s.store.Append(store.Record{Job: id, Type: events.TypeFailed,
			Detail: fmt.Sprintf("recovery: %v", err)})
		s.opts.Metrics.Counter("server.jobs_failed").Inc()
		s.opts.Logger.Error("recovered job failed re-validation",
			log.F("job", id), log.F("error", err.Error()))
		return
	}
	j := &job{id: id, kind: spec.kind, request: rec.Request,
		run: spec.run, cacheKey: spec.key, cacheInfo: spec.info}
	if spec.withProgress {
		j.progress = tracing.NewProgress()
	}
	j.journal = s.opts.Events.Journal(id)
	j.journal.Record(events.Event{Type: events.TypeAccepted, Detail: string(spec.kind)})
	if spec.cached != nil {
		// The result tier already holds this job's bytes (an identical
		// job finished before the crash): complete it at recovery.
		_ = s.store.Append(store.Record{Job: id, Type: events.TypeDone, Result: spec.cached,
			Cache: &api.CacheInfo{Key: spec.key.String(), ResultHit: true}})
		j.journal.Record(events.Event{Type: events.TypeCacheResultHit, Detail: spec.key.String()})
		j.journal.Record(events.Event{Type: events.TypeDone, Detail: "replayed from cache"})
		j.journal.Close()
		s.opts.Metrics.Counter("server.jobs_done").Inc()
		return
	}
	_ = s.store.Append(store.Record{Job: id, Type: events.TypeQueued, Detail: "recovered after restart"})
	j.journal.Record(events.Event{Type: events.TypeQueued, Detail: "recovered after restart"})
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.queue <- j
	s.opts.Metrics.Counter("server.jobs_recovered").Inc()
	s.opts.Logger.Info("job recovered from journal", log.F("job", id), log.F("kind", string(spec.kind)))
}

// enqueue admits a prepared job: it allocates an id, durably journals
// acceptance, and registers the job for lookup — all under the
// admission lock, so a 202 means the accepted record hit the store
// (fsynced, on the WAL backend) and the job holds a queue slot.
func (s *Server) enqueue(spec *jobSpec) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	id := s.store.NextID()
	j := &job{id: id, kind: spec.kind, request: spec.request,
		run: spec.run, cacheKey: spec.key, cacheInfo: spec.info}
	if spec.withProgress {
		j.progress = tracing.NewProgress()
	}

	s.admitMu.Lock()
	// Backpressure against the configured bound, not the (possibly
	// recovery-oversized) channel capacity.
	if len(s.queue) >= s.opts.Queue {
		s.admitMu.Unlock()
		s.opts.Metrics.Counter("server.jobs_rejected").Inc()
		s.opts.Logger.Warn("job rejected: queue full",
			log.F("kind", string(spec.kind)), log.F("queue_depth", len(s.queue)))
		return api.Job{}, errQueueFull
	}
	if err := s.store.Append(store.Record{Job: id, Type: events.TypeAccepted,
		Kind: spec.kind, Request: spec.request}); err != nil {
		s.admitMu.Unlock()
		s.opts.Logger.Error("job store append failed", log.F("job", id), log.F("error", err.Error()))
		return api.Job{}, fmt.Errorf("job store: %w", err)
	}
	_ = s.store.Append(store.Record{Job: id, Type: events.TypeQueued})
	j.journal = s.opts.Events.Journal(id)
	j.journal.Record(events.Event{Type: events.TypeAccepted, Detail: string(spec.kind)})
	j.journal.Record(events.Event{Type: events.TypeQueued})
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	// The capacity check above held: only admitters (serialized here)
	// fill the channel and executors only drain it, so this never
	// blocks.
	s.queue <- j
	depth := len(s.queue)
	s.admitMu.Unlock()

	s.queueDepth.Set(float64(depth))
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	s.opts.Logger.Info("job accepted", log.F("job", id),
		log.F("kind", string(spec.kind)), log.F("queue_depth", depth))
	return s.snapshot(id), nil
}

// admitCached registers an already-done job answering a request whose
// result document was found in the cache: the envelope is terminal on
// arrival, never touches the queue (so cached repeats are immune to
// backpressure), and is served by the job endpoints like any other.
func (s *Server) admitCached(spec *jobSpec) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	id := s.store.NextID()
	s.admitMu.Lock()
	err := s.store.Append(store.Record{Job: id, Type: events.TypeAccepted,
		Kind: spec.kind, Request: spec.request})
	if err == nil {
		err = s.store.Append(store.Record{Job: id, Type: events.TypeDone, Result: spec.cached,
			Cache: &api.CacheInfo{Key: spec.key.String(), ResultHit: true}})
	}
	s.admitMu.Unlock()
	if err != nil {
		s.opts.Logger.Error("job store append failed", log.F("job", id), log.F("error", err.Error()))
		return api.Job{}, fmt.Errorf("job store: %w", err)
	}
	// The whole lifecycle collapses into one admission: the journal
	// still tells the full story, including where the result came from.
	journal := s.opts.Events.Journal(id)
	journal.Record(events.Event{Type: events.TypeAccepted, Detail: string(spec.kind)})
	journal.Record(events.Event{Type: events.TypeCacheResultHit, Detail: spec.key.String()})
	journal.Record(events.Event{Type: events.TypeDone, Detail: "replayed from cache"})
	journal.Close()
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	s.opts.Metrics.Counter("server.jobs_cached").Inc()
	s.opts.Metrics.Counter("server.jobs_done").Inc()
	s.opts.Logger.Info("job answered from cache", log.F("job", id),
		log.F("kind", string(spec.kind)), log.F("key", spec.key.String()))
	return s.snapshot(id), nil
}

// executor pulls jobs off the queue until the server stops. A closed
// stop channel finishes the current job but claims no further ones —
// the first half of the drain sequence.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through running to a terminal state, executing
// locally or — when live worker peers are registered — remotely on the
// peer the job's request hashes to.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if rec, ok := s.store.Get(j.id); !ok || rec.Env.State != api.JobQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	started := time.Now().UTC()
	_ = s.store.Append(store.Record{Job: j.id, Type: events.TypeStarted, Time: started})
	s.mu.Unlock()

	s.inflight.Add(1)
	s.inflightG.Set(float64(s.inflight.Load()))
	s.queueDepth.Set(float64(len(s.queue)))
	j.journal.Record(events.Event{Type: events.TypeStarted})
	s.opts.Logger.Info("job started", log.F("job", j.id), log.F("kind", string(j.kind)))
	stopSampler := s.startProgressSampler(j)

	raw, node, ran, err := s.runRemote(ctx, j)
	if !ran {
		var res any
		res, err = j.run(ctx, j.progress)
		if err == nil {
			raw, err = json.Marshal(res)
			if err != nil {
				err = fmt.Errorf("encoding result: %v", err)
			}
		}
	}
	cancel()
	// Stop sampling before the terminal event so progress ticks never
	// follow it in the journal.
	stopSampler()
	defer func() {
		s.inflight.Add(-1)
		s.inflightG.Set(float64(s.inflight.Load()))
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	done := time.Now().UTC()
	wall := done.Sub(started)
	jl := s.opts.Logger.With(log.F("job", j.id), log.F("kind", string(j.kind)),
		log.F("wall_seconds", wall.Seconds()))
	if node != "" {
		jl = jl.With(log.F("node", node))
	}
	defer j.journal.Close()
	switch {
	case err == nil:
		rec := store.Record{Job: j.id, Type: events.TypeDone, Result: raw, Time: done}
		if j.cacheInfo != nil {
			// Store the exact marshaled bytes, so a later hit replays
			// them bit-identically, and publish the cache block (the run
			// closure filled its warm counts before returning).
			s.opts.Cache.PutResult(j.cacheKey, raw)
			rec.Cache = j.cacheInfo
			if j.cacheInfo.WarmHits > 0 || j.cacheInfo.WarmMisses > 0 {
				j.journal.Record(events.Event{Type: events.TypeCacheWarm,
					WarmHits: j.cacheInfo.WarmHits, WarmMisses: j.cacheInfo.WarmMisses})
			}
		}
		_ = s.store.Append(rec)
		s.recordWall(wall)
		s.opts.Metrics.Counter("server.jobs_done").Inc()
		j.journal.Record(events.Event{Type: events.TypeDone})
		jl.Info("job done")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Distinguish a drain (server shutdown) from a client cancel in
		// the journal: clients watching the stream learn whether to
		// resubmit elsewhere or accept the DELETE they asked for.
		typ := events.TypeCancelled
		if s.draining.Load() {
			typ = events.TypeDrained
		}
		_ = s.store.Append(store.Record{Job: j.id, Type: typ, Detail: err.Error(), Time: done})
		s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
		j.journal.Record(events.Event{Type: typ, Detail: err.Error()})
		jl.Info("job cancelled", log.F("error", err.Error()), log.F("draining", s.draining.Load()))
	default:
		_ = s.store.Append(store.Record{Job: j.id, Type: events.TypeFailed, Detail: err.Error(), Time: done})
		s.opts.Metrics.Counter("server.jobs_failed").Inc()
		j.journal.Record(events.Event{Type: events.TypeFailed, Detail: err.Error()})
		jl.Error("job failed", log.F("error", err.Error()))
	}
}

// startProgressSampler launches a goroutine mirroring the job's
// progress board into its event journal and the store every
// ProgressInterval (only when a snapshot changed). The returned stop
// function halts sampling, records one final changed snapshot, and
// only then returns — so the terminal event always follows the last
// progress tick. It is a no-op (returning a no-op stop) when the job
// has no board.
func (s *Server) startProgressSampler(j *job) (stop func()) {
	if j.progress == nil {
		return func() {}
	}
	halt := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(s.opts.ProgressInterval)
		defer tick.Stop()
		var last events.ProgressCounts
		emit := func() {
			p := j.progress.Snapshot()
			cur := events.ProgressCounts{
				Scenarios:    events.Counts(p.Scenarios),
				Cases:        events.Counts(p.Cases),
				Replications: events.Counts(p.Replications),
			}
			if cur == last {
				return
			}
			last = cur
			snap := cur
			j.journal.Record(events.Event{Type: events.TypeProgress, Progress: &snap})
			_ = s.store.Append(store.Record{Job: j.id, Type: events.TypeProgress,
				Progress: &api.Progress{
					Scenarios:    api.Counts(p.Scenarios),
					Cases:        api.Counts(p.Cases),
					Replications: api.Counts(p.Replications),
				}})
		}
		for {
			select {
			case <-halt:
				emit()
				return
			case <-tick.C:
				emit()
			}
		}
	}()
	return func() {
		close(halt)
		<-done
	}
}

// recordWall folds one finished job's wall time into the rolling
// window behind the Retry-After estimate.
func (s *Server) recordWall(d time.Duration) {
	if d < 0 {
		return
	}
	s.wallMu.Lock()
	s.recentWall[s.wallCount%wallWindow] = d
	s.wallCount++
	s.wallMu.Unlock()
}

// meanWall returns the rolling mean of recent job wall times (0 with
// no history yet).
func (s *Server) meanWall() time.Duration {
	s.wallMu.Lock()
	defer s.wallMu.Unlock()
	n := s.wallCount
	if n > wallWindow {
		n = wallWindow
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.recentWall[i]
	}
	return sum / time.Duration(n)
}

// retryAfterSeconds estimates when a rejected client should retry: the
// backlog's expected drain time — queue depth times the rolling mean
// job wall time, divided by the executor-pool width since that many
// jobs drain concurrently — rounded up, with a 1-second floor (which
// is also the answer before any job has finished).
func (s *Server) retryAfterSeconds() int {
	mean := s.meanWall()
	secs := int(math.Ceil(float64(len(s.queue)) * mean.Seconds() / float64(s.opts.Executors)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// snapshot materializes a job's wire envelope from the store,
// overlaying the live progress board for jobs that track one.
func (s *Server) snapshot(id string) api.Job {
	rec, _ := s.store.Get(id)
	return s.decorate(rec.Env)
}

// decorate overlays the live progress counts onto a stored envelope:
// the board is sampled into the store only periodically, so the
// in-process counts are fresher whenever the job is local.
func (s *Server) decorate(env api.Job) api.Job {
	s.mu.Lock()
	j := s.jobs[env.ID]
	s.mu.Unlock()
	if j != nil && j.progress != nil {
		p := j.progress.Snapshot()
		env.Progress = &api.Progress{
			Scenarios:    api.Counts(p.Scenarios),
			Cases:        api.Counts(p.Cases),
			Replications: api.Counts(p.Replications),
		}
	}
	return env
}

// lookup reports whether the store knows the job.
func (s *Server) lookup(id string) (store.Job, bool) {
	return s.store.Get(id)
}

// list returns envelope snapshots in submission order, keeping only
// the given states (nil keeps everything), starting after the job id
// `after` (empty starts at the beginning; an unknown id is an error),
// and returning at most limit envelopes (non-positive means all).
// total counts every match regardless of the page, and next is the
// cursor for the following page ("" on the last one).
func (s *Server) list(states map[api.JobState]bool, after string, limit int) (jobs []api.Job, total int, next string, err error) {
	recs := s.store.List()
	start := 0
	if after != "" {
		found := false
		for i, rec := range recs {
			if rec.Env.ID == after {
				start, found = i+1, true
				break
			}
		}
		if !found {
			return nil, 0, "", fmt.Errorf("unknown cursor %q", after)
		}
	}
	jobs = []api.Job{}
	truncated := false
	for i, rec := range recs {
		if states != nil && !states[rec.Env.State] {
			continue
		}
		total++
		if i < start {
			continue
		}
		if limit > 0 && len(jobs) >= limit {
			truncated = true
			continue
		}
		jobs = append(jobs, s.decorate(rec.Env))
	}
	if truncated && len(jobs) > 0 {
		next = jobs[len(jobs)-1].ID
	}
	return jobs, total, next, nil
}

// cancelJob requests cancellation of a job. Queued jobs cancel
// immediately; running jobs have their context cancelled and reach the
// cancelled state when the engine drains (the caller polls); terminal
// jobs are left untouched. The bool reports whether the job exists.
func (s *Server) cancelJob(id string) (api.Job, bool) {
	rec, ok := s.store.Get(id)
	if !ok {
		return api.Job{}, false
	}
	var cancel context.CancelFunc
	s.mu.Lock()
	j := s.jobs[id]
	rec, _ = s.store.Get(id)
	switch {
	case j == nil:
		// Terminal on arrival (cache-answered): nothing to cancel.
	case rec.Env.State == api.JobQueued:
		s.finalizeCancelledLocked(j, "cancelled while queued", events.TypeCancelled)
	case rec.Env.State == api.JobRunning:
		cancel = j.cancel
		s.opts.Logger.Info("job cancel requested", log.F("job", id))
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return s.snapshot(id), true
}

// finalizeCancelledLocked finalizes a not-yet-running job as
// cancelled, recording typ (cancelled for client DELETEs, drained for
// shutdown) as the terminal transition. Callers hold s.mu.
func (s *Server) finalizeCancelledLocked(j *job, why string, typ events.Type) {
	_ = s.store.Append(store.Record{Job: j.id, Type: typ, Detail: why})
	s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
	j.journal.Record(events.Event{Type: typ, Detail: why})
	j.journal.Close()
	s.opts.Logger.Info("job cancelled before start", log.F("job", j.id), log.F("error", why))
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down: it stops admitting new jobs, cancels
// the ones still waiting in the queue, gives running jobs up to
// timeout to finish on their own, then cancels their contexts and
// waits for the engines to drain their worker pools. A non-positive
// timeout cancels running jobs immediately. The job store is closed
// once everything has settled. Drain is idempotent and returns once
// every executor has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		close(s.stop)
		s.opts.Logger.Info("draining", log.F("timeout_seconds", timeout.Seconds()),
			log.F("queue_depth", len(s.queue)), log.F("inflight", s.inflight.Load()))
	})
	s.drainQueued()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
		}
	}
	// Cancel whatever is still running (a no-op if everything
	// finished) and wait for the engines to drain.
	s.baseCancel()
	<-done
	// A submission that raced the draining flag may have slipped into
	// the queue after the first sweep; with the executors gone this
	// sweep is final.
	s.drainQueued()
	s.closeStore.Do(func() {
		if err := s.store.Close(); err != nil {
			s.opts.Logger.Error("closing job store", log.F("error", err.Error()))
		}
	})
}

// Close is Drain with immediate cancellation.
func (s *Server) Close() { s.Drain(0) }

// drainQueued empties the queue channel, cancelling every job that
// never reached an executor.
func (s *Server) drainQueued() {
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			if rec, ok := s.store.Get(j.id); ok && rec.Env.State == api.JobQueued {
				s.finalizeCancelledLocked(j, "cancelled before start: server draining", events.TypeDrained)
			}
			s.mu.Unlock()
		default:
			return
		}
	}
}

// progressSnapshot aggregates every job's progress board — the
// /progress debug endpoint's view of the whole server.
func (s *Server) progressSnapshot() tracing.ProgressSnapshot {
	s.mu.Lock()
	boards := make([]*tracing.Progress, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.progress != nil {
			boards = append(boards, j.progress)
		}
	}
	s.mu.Unlock()
	var sum tracing.ProgressSnapshot
	for _, b := range boards {
		p := b.Snapshot()
		sum.Scenarios.Done += p.Scenarios.Done
		sum.Scenarios.Planned += p.Scenarios.Planned
		sum.Cases.Done += p.Cases.Done
		sum.Cases.Planned += p.Cases.Planned
		sum.Replications.Done += p.Replications.Done
		sum.Replications.Planned += p.Replications.Planned
	}
	return sum
}

// Package server turns the CDSF framework into a long-running
// scheduling service: a bounded job queue and executor pool driving
// the ctx-first engine entry points (ra.SolveContext,
// sim.RunManyContext via core's case driver, core.RunScenarioContext)
// behind the versioned HTTP/JSON API defined in internal/api.
//
// The lifecycle of a job is queued -> running -> done|failed|cancelled.
// Admission is backpressured: when the queue is full the service
// answers 429 with a Retry-After header instead of buffering without
// bound, and while draining it answers 503. Every job runs under its
// own context derived from the server's base context, so DELETE
// cancels one job and Drain cancels them all — reusing the repository's
// cancellation contract (DESIGN.md §7): a cancelled engine drains its
// worker pools and returns an error wrapping context.Canceled, which
// the server maps to the cancelled state.
//
// The server deliberately has no persistence: jobs live in memory for
// the lifetime of the process, which is what the reproduction needs
// and keeps the package dependency-free (net/http only).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/events"
	"cdsf/internal/log"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/tracing"
)

// Options configures a Server.
type Options struct {
	// Queue bounds the number of jobs waiting for an executor (running
	// jobs do not count). Submissions beyond the bound are rejected
	// with 429; the queue never grows without limit. Non-positive
	// means 16.
	Queue int
	// Executors is the number of jobs executed concurrently.
	// Non-positive means 2: jobs are themselves internally parallel,
	// so a small executor pool saturates the machine while keeping
	// per-job latency predictable.
	Executors int
	// Workers is the default engine worker-pool size per job, used
	// when a request does not set its own. Non-positive means
	// runtime.NumCPU(). Results are identical for any value.
	Workers int
	// PMFBackend is the default Stage-I distribution backend for jobs
	// whose request leaves pmf_backend empty. The zero value is the
	// sparse (exact) backend, keeping seeded service results
	// bit-identical to earlier releases.
	PMFBackend pmf.Backend
	// Metrics receives the server's own counters and is threaded into
	// every job's engine configuration. Nil means a fresh registry
	// (the /metrics endpoint then reports only this server).
	Metrics *metrics.Registry
	// Tracer is threaded into every job's engine configuration; nil
	// disables tracing.
	Tracer *tracing.Tracer
	// Cache is the content-addressed solve cache. When set, a repeat of
	// a byte-identical request is answered straight from the result
	// tier at admission time — an already-done job, no queue trip — and
	// solve/scenario jobs share warm Stage-I evaluation tables across
	// deadlines, heuristics, and availability cases. Envelopes gain a
	// "cache" block with the job's key and hit counts. Nil disables
	// caching; envelopes and behaviour are then unchanged.
	Cache *cache.Cache
	// Events is the job-event journal: every job records its lifecycle
	// (accepted, queued, started, sampled progress, cache hits,
	// terminal state) into a per-job journal served by
	// GET /v1/jobs/{id}/events (JSON and SSE) and a cross-job ring on
	// /debug/events. Nil disables event recording (the nil-no-op
	// default; the event endpoints then answer 404) — cdsfd wires one
	// in unconditionally, since journals are bounded in-memory state
	// that never touches result documents.
	Events *events.Log
	// Logger emits structured JSON-lines service logs: job lifecycle
	// transitions at info, per-request lines at debug, failures at
	// warn/error. Nil disables logging; results and response bodies are
	// byte-identical either way.
	Logger *log.Logger
	// ProgressInterval is how often a running job's progress board is
	// sampled into its event journal (only when Events is set and the
	// job tracks progress). Non-positive means 250ms.
	ProgressInterval time.Duration
}

// Server owns the job table, the bounded queue, and the executor pool.
// Create one with New and expose it with Handler; stop it with Drain.
type Server struct {
	opts Options

	queue    chan *job
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool

	// baseCtx parents every job context; baseCancel is the drain
	// hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// inflight counts jobs currently holding an executor and
	// httpInflight counts requests currently in a handler; queueDepth
	// mirrors len(queue) into the metrics registry for the RED gauges
	// and /v1/healthz.
	inflight     atomic.Int64
	httpInflight atomic.Int64
	queueDepth   *metrics.Gauge
	inflightG    *metrics.Gauge

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int

	// wallMu guards the ring of recent job wall times feeding the
	// Retry-After estimate (separate from mu: admission reads it while
	// holding no job state).
	wallMu     sync.Mutex
	recentWall [wallWindow]time.Duration
	wallCount  int // total recorded; ring index is wallCount % wallWindow
}

// wallWindow is the size of the rolling window of job wall times
// behind the Retry-After estimate.
const wallWindow = 32

// job pairs the wire envelope with the server-side control state. The
// envelope is mutated only under Server.mu.
type job struct {
	env      api.Job
	progress *tracing.Progress
	journal  *events.Journal
	run      func(ctx context.Context, prog *tracing.Progress) (any, error)
	cancel   context.CancelFunc

	// cacheKey is the job's result-tier content address (zero when
	// caching is off for this job); cacheInfo is the envelope block
	// attached once the job reaches done. The run closure may write
	// cacheInfo's warm counts while running — it is published into the
	// envelope only under mu after run returns, so snapshots never see
	// it mid-write.
	cacheKey  cache.Key
	cacheInfo *api.CacheInfo
}

// Sentinel admission errors; the HTTP layer maps them to 503 and 429.
var (
	errDraining  = errors.New("server: draining, not admitting jobs")
	errQueueFull = errors.New("server: job queue full")
)

// New starts a server: the executor pool is running and Handler can be
// mounted immediately. Callers must eventually call Drain (or Close)
// to stop the pool.
func New(opts Options) *Server {
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 250 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		queue:      make(chan *job, opts.Queue),
		stop:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*job{},
		queueDepth: opts.Metrics.Gauge("server.queue_depth"),
		inflightG:  opts.Metrics.Gauge("server.jobs_inflight"),
	}
	s.wg.Add(opts.Executors)
	for i := 0; i < opts.Executors; i++ {
		go s.executor()
	}
	return s
}

// enqueue admits a job: it allocates an id, tries the bounded queue,
// and registers the job for lookup. run receives the job's context and
// its progress board (nil for kinds without Stage-II fan-out). A
// non-nil info carries the job's cache identity: the finished result
// is stored under key and the block is attached to the done envelope.
func (s *Server) enqueue(kind api.JobKind, withProgress bool, key cache.Key, info *api.CacheInfo, run func(ctx context.Context, prog *tracing.Progress) (any, error)) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	s.mu.Unlock()

	j := &job{
		env:       api.Job{ID: id, Kind: kind, State: api.JobQueued, Created: time.Now().UTC()},
		run:       run,
		cacheKey:  key,
		cacheInfo: info,
	}
	if withProgress {
		j.progress = tracing.NewProgress()
	}
	select {
	case s.queue <- j:
	default:
		s.opts.Metrics.Counter("server.jobs_rejected").Inc()
		s.opts.Logger.Warn("job rejected: queue full",
			log.F("kind", string(kind)), log.F("queue_depth", len(s.queue)))
		return api.Job{}, errQueueFull
	}
	depth := len(s.queue)
	s.queueDepth.Set(float64(depth))
	j.journal = s.opts.Events.Journal(id)
	j.journal.Record(events.Event{Type: events.TypeAccepted, Detail: string(kind)})
	j.journal.Record(events.Event{Type: events.TypeQueued})
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	s.opts.Logger.Info("job accepted", log.F("job", id),
		log.F("kind", string(kind)), log.F("queue_depth", depth))
	return s.snapshot(j), nil
}

// admitCached registers an already-done job answering a request whose
// result document was found in the cache: the envelope is terminal on
// arrival, never touches the queue (so cached repeats are immune to
// backpressure), and is served by the job endpoints like any other.
func (s *Server) admitCached(kind api.JobKind, key cache.Key, doc []byte) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	now := time.Now().UTC()
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := &job{env: api.Job{
		ID: id, Kind: kind, State: api.JobDone,
		Created: now, Started: &now, Finished: &now,
		Result: doc,
		Cache:  &api.CacheInfo{Key: key.String(), ResultHit: true},
	}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	// The whole lifecycle collapses into one admission: the journal
	// still tells the full story, including where the result came from.
	j.journal = s.opts.Events.Journal(id)
	j.journal.Record(events.Event{Type: events.TypeAccepted, Detail: string(kind)})
	j.journal.Record(events.Event{Type: events.TypeCacheResultHit, Detail: key.String()})
	j.journal.Record(events.Event{Type: events.TypeDone, Detail: "replayed from cache"})
	j.journal.Close()
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	s.opts.Metrics.Counter("server.jobs_cached").Inc()
	s.opts.Metrics.Counter("server.jobs_done").Inc()
	s.opts.Logger.Info("job answered from cache", log.F("job", id),
		log.F("kind", string(kind)), log.F("key", key.String()))
	return s.snapshot(j), nil
}

// executor pulls jobs off the queue until the server stops. A closed
// stop channel finishes the current job but claims no further ones —
// the first half of the drain sequence.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through running to a terminal state.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.env.State != api.JobQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	now := time.Now().UTC()
	j.env.State = api.JobRunning
	j.env.Started = &now
	s.mu.Unlock()

	s.inflight.Add(1)
	s.inflightG.Set(float64(s.inflight.Load()))
	s.queueDepth.Set(float64(len(s.queue)))
	j.journal.Record(events.Event{Type: events.TypeStarted})
	s.opts.Logger.Info("job started", log.F("job", j.env.ID), log.F("kind", string(j.env.Kind)))
	stopSampler := s.startProgressSampler(j)

	res, err := j.run(ctx, j.progress)
	cancel()
	// Stop sampling before the terminal event so progress ticks never
	// follow it in the journal.
	stopSampler()
	defer func() {
		s.inflight.Add(-1)
		s.inflightG.Set(float64(s.inflight.Load()))
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	done := time.Now().UTC()
	j.env.Finished = &done
	wall := done.Sub(*j.env.Started)
	jl := s.opts.Logger.With(log.F("job", j.env.ID), log.F("kind", string(j.env.Kind)),
		log.F("wall_seconds", wall.Seconds()))
	defer j.journal.Close()
	switch {
	case err == nil:
		raw, mErr := json.Marshal(res)
		if mErr != nil {
			j.env.State = api.JobFailed
			j.env.Error = fmt.Sprintf("encoding result: %v", mErr)
			s.opts.Metrics.Counter("server.jobs_failed").Inc()
			j.journal.Record(events.Event{Type: events.TypeFailed, Detail: j.env.Error})
			jl.Error("job failed", log.F("error", j.env.Error))
			return
		}
		j.env.State = api.JobDone
		j.env.Result = raw
		if j.cacheInfo != nil {
			// Store the exact marshaled bytes, so a later hit replays
			// them bit-identically, and publish the cache block (the run
			// closure filled its warm counts before returning).
			s.opts.Cache.PutResult(j.cacheKey, raw)
			j.env.Cache = j.cacheInfo
			if j.cacheInfo.WarmHits > 0 || j.cacheInfo.WarmMisses > 0 {
				j.journal.Record(events.Event{Type: events.TypeCacheWarm,
					WarmHits: j.cacheInfo.WarmHits, WarmMisses: j.cacheInfo.WarmMisses})
			}
		}
		s.recordWall(wall)
		s.opts.Metrics.Counter("server.jobs_done").Inc()
		j.journal.Record(events.Event{Type: events.TypeDone})
		jl.Info("job done")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.env.State = api.JobCancelled
		j.env.Error = err.Error()
		s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
		// Distinguish a drain (server shutdown) from a client cancel in
		// the journal: clients watching the stream learn whether to
		// resubmit elsewhere or accept the DELETE they asked for.
		typ := events.TypeCancelled
		if s.draining.Load() {
			typ = events.TypeDrained
		}
		j.journal.Record(events.Event{Type: typ, Detail: j.env.Error})
		jl.Info("job cancelled", log.F("error", j.env.Error), log.F("draining", s.draining.Load()))
	default:
		j.env.State = api.JobFailed
		j.env.Error = err.Error()
		s.opts.Metrics.Counter("server.jobs_failed").Inc()
		j.journal.Record(events.Event{Type: events.TypeFailed, Detail: j.env.Error})
		jl.Error("job failed", log.F("error", j.env.Error))
	}
}

// startProgressSampler launches a goroutine mirroring the job's
// progress board into its event journal every ProgressInterval (only
// when a snapshot changed). The returned stop function halts sampling,
// records one final changed snapshot, and only then returns — so the
// terminal event always follows the last progress tick. It is a no-op
// (returning a no-op stop) when the job has no board or no journal.
func (s *Server) startProgressSampler(j *job) (stop func()) {
	if j.progress == nil || j.journal == nil {
		return func() {}
	}
	halt := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(s.opts.ProgressInterval)
		defer tick.Stop()
		var last events.ProgressCounts
		emit := func() {
			p := j.progress.Snapshot()
			cur := events.ProgressCounts{
				Scenarios:    events.Counts(p.Scenarios),
				Cases:        events.Counts(p.Cases),
				Replications: events.Counts(p.Replications),
			}
			if cur == last {
				return
			}
			last = cur
			snap := cur
			j.journal.Record(events.Event{Type: events.TypeProgress, Progress: &snap})
		}
		for {
			select {
			case <-halt:
				emit()
				return
			case <-tick.C:
				emit()
			}
		}
	}()
	return func() {
		close(halt)
		<-done
	}
}

// recordWall folds one finished job's wall time into the rolling
// window behind the Retry-After estimate.
func (s *Server) recordWall(d time.Duration) {
	if d < 0 {
		return
	}
	s.wallMu.Lock()
	s.recentWall[s.wallCount%wallWindow] = d
	s.wallCount++
	s.wallMu.Unlock()
}

// meanWall returns the rolling mean of recent job wall times (0 with
// no history yet).
func (s *Server) meanWall() time.Duration {
	s.wallMu.Lock()
	defer s.wallMu.Unlock()
	n := s.wallCount
	if n > wallWindow {
		n = wallWindow
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.recentWall[i]
	}
	return sum / time.Duration(n)
}

// retryAfterSeconds estimates when a rejected client should retry:
// the current queue depth times the rolling mean job wall time,
// rounded up, with a 1-second floor (which is also the answer before
// any job has finished — the old hardcoded behaviour).
func (s *Server) retryAfterSeconds() int {
	mean := s.meanWall()
	secs := int(math.Ceil(float64(len(s.queue)) * mean.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// snapshot copies a job's envelope, attaching the current progress
// counts for jobs that track them.
func (s *Server) snapshot(j *job) api.Job {
	s.mu.Lock()
	env := j.env
	s.mu.Unlock()
	if j.progress != nil {
		p := j.progress.Snapshot()
		env.Progress = &api.Progress{
			Scenarios:    api.Counts(p.Scenarios),
			Cases:        api.Counts(p.Cases),
			Replications: api.Counts(p.Replications),
		}
	}
	return env
}

// lookup returns the job with the given id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns envelope snapshots in submission order, keeping only
// the given states (nil keeps everything).
func (s *Server) list(states map[api.JobState]bool) []api.Job {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]api.Job, 0, len(js))
	for _, j := range js {
		env := s.snapshot(j)
		if states == nil || states[env.State] {
			out = append(out, env)
		}
	}
	return out
}

// cancelJob requests cancellation of a job. Queued jobs cancel
// immediately; running jobs have their context cancelled and reach the
// cancelled state when the engine drains (the caller polls); terminal
// jobs are left untouched. The bool reports whether the job exists.
func (s *Server) cancelJob(id string) (api.Job, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return api.Job{}, false
	}
	var cancel context.CancelFunc
	s.mu.Lock()
	switch j.env.State {
	case api.JobQueued:
		s.markCancelledLocked(j, "cancelled while queued", events.TypeCancelled)
	case api.JobRunning:
		cancel = j.cancel
		s.opts.Logger.Info("job cancel requested", log.F("job", id))
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return s.snapshot(j), true
}

// markCancelledLocked finalizes a not-yet-running job as cancelled,
// recording typ (cancelled for client DELETEs, drained for shutdown)
// as the journal's terminal event. Callers hold s.mu.
func (s *Server) markCancelledLocked(j *job, why string, typ events.Type) {
	now := time.Now().UTC()
	j.env.State = api.JobCancelled
	j.env.Finished = &now
	j.env.Error = why
	s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
	j.journal.Record(events.Event{Type: typ, Detail: why})
	j.journal.Close()
	s.opts.Logger.Info("job cancelled before start", log.F("job", j.env.ID), log.F("error", why))
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down: it stops admitting new jobs, cancels
// the ones still waiting in the queue, gives running jobs up to
// timeout to finish on their own, then cancels their contexts and
// waits for the engines to drain their worker pools. A non-positive
// timeout cancels running jobs immediately. Drain is idempotent and
// returns once every executor has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		close(s.stop)
		s.opts.Logger.Info("draining", log.F("timeout_seconds", timeout.Seconds()),
			log.F("queue_depth", len(s.queue)), log.F("inflight", s.inflight.Load()))
	})
	s.drainQueued()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
		}
	}
	// Cancel whatever is still running (a no-op if everything
	// finished) and wait for the engines to drain.
	s.baseCancel()
	<-done
	// A submission that raced the draining flag may have slipped into
	// the queue after the first sweep; with the executors gone this
	// sweep is final.
	s.drainQueued()
}

// Close is Drain with immediate cancellation.
func (s *Server) Close() { s.Drain(0) }

// drainQueued empties the queue channel, cancelling every job that
// never reached an executor.
func (s *Server) drainQueued() {
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			if j.env.State == api.JobQueued {
				s.markCancelledLocked(j, "cancelled before start: server draining", events.TypeDrained)
			}
			s.mu.Unlock()
		default:
			return
		}
	}
}

// progressSnapshot aggregates every job's progress board — the
// /progress debug endpoint's view of the whole server.
func (s *Server) progressSnapshot() tracing.ProgressSnapshot {
	s.mu.Lock()
	boards := make([]*tracing.Progress, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j.progress != nil {
			boards = append(boards, j.progress)
		}
	}
	s.mu.Unlock()
	var sum tracing.ProgressSnapshot
	for _, b := range boards {
		p := b.Snapshot()
		sum.Scenarios.Done += p.Scenarios.Done
		sum.Scenarios.Planned += p.Scenarios.Planned
		sum.Cases.Done += p.Cases.Done
		sum.Cases.Planned += p.Cases.Planned
		sum.Replications.Done += p.Replications.Done
		sum.Replications.Planned += p.Replications.Planned
	}
	return sum
}

// Package server turns the CDSF framework into a long-running
// scheduling service: a bounded job queue and executor pool driving
// the ctx-first engine entry points (ra.SolveContext,
// sim.RunManyContext via core's case driver, core.RunScenarioContext)
// behind the versioned HTTP/JSON API defined in internal/api.
//
// The lifecycle of a job is queued -> running -> done|failed|cancelled.
// Admission is backpressured: when the queue is full the service
// answers 429 with a Retry-After header instead of buffering without
// bound, and while draining it answers 503. Every job runs under its
// own context derived from the server's base context, so DELETE
// cancels one job and Drain cancels them all — reusing the repository's
// cancellation contract (DESIGN.md §7): a cancelled engine drains its
// worker pools and returns an error wrapping context.Canceled, which
// the server maps to the cancelled state.
//
// The server deliberately has no persistence: jobs live in memory for
// the lifetime of the process, which is what the reproduction needs
// and keeps the package dependency-free (net/http only).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/tracing"
)

// Options configures a Server.
type Options struct {
	// Queue bounds the number of jobs waiting for an executor (running
	// jobs do not count). Submissions beyond the bound are rejected
	// with 429; the queue never grows without limit. Non-positive
	// means 16.
	Queue int
	// Executors is the number of jobs executed concurrently.
	// Non-positive means 2: jobs are themselves internally parallel,
	// so a small executor pool saturates the machine while keeping
	// per-job latency predictable.
	Executors int
	// Workers is the default engine worker-pool size per job, used
	// when a request does not set its own. Non-positive means
	// runtime.NumCPU(). Results are identical for any value.
	Workers int
	// PMFBackend is the default Stage-I distribution backend for jobs
	// whose request leaves pmf_backend empty. The zero value is the
	// sparse (exact) backend, keeping seeded service results
	// bit-identical to earlier releases.
	PMFBackend pmf.Backend
	// Metrics receives the server's own counters and is threaded into
	// every job's engine configuration. Nil means a fresh registry
	// (the /metrics endpoint then reports only this server).
	Metrics *metrics.Registry
	// Tracer is threaded into every job's engine configuration; nil
	// disables tracing.
	Tracer *tracing.Tracer
	// Cache is the content-addressed solve cache. When set, a repeat of
	// a byte-identical request is answered straight from the result
	// tier at admission time — an already-done job, no queue trip — and
	// solve/scenario jobs share warm Stage-I evaluation tables across
	// deadlines, heuristics, and availability cases. Envelopes gain a
	// "cache" block with the job's key and hit counts. Nil disables
	// caching; envelopes and behaviour are then unchanged.
	Cache *cache.Cache
}

// Server owns the job table, the bounded queue, and the executor pool.
// Create one with New and expose it with Handler; stop it with Drain.
type Server struct {
	opts Options

	queue    chan *job
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool

	// baseCtx parents every job context; baseCancel is the drain
	// hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int

	// wallMu guards the ring of recent job wall times feeding the
	// Retry-After estimate (separate from mu: admission reads it while
	// holding no job state).
	wallMu     sync.Mutex
	recentWall [wallWindow]time.Duration
	wallCount  int // total recorded; ring index is wallCount % wallWindow
}

// wallWindow is the size of the rolling window of job wall times
// behind the Retry-After estimate.
const wallWindow = 32

// job pairs the wire envelope with the server-side control state. The
// envelope is mutated only under Server.mu.
type job struct {
	env      api.Job
	progress *tracing.Progress
	run      func(ctx context.Context, prog *tracing.Progress) (any, error)
	cancel   context.CancelFunc

	// cacheKey is the job's result-tier content address (zero when
	// caching is off for this job); cacheInfo is the envelope block
	// attached once the job reaches done. The run closure may write
	// cacheInfo's warm counts while running — it is published into the
	// envelope only under mu after run returns, so snapshots never see
	// it mid-write.
	cacheKey  cache.Key
	cacheInfo *api.CacheInfo
}

// Sentinel admission errors; the HTTP layer maps them to 503 and 429.
var (
	errDraining  = errors.New("server: draining, not admitting jobs")
	errQueueFull = errors.New("server: job queue full")
)

// New starts a server: the executor pool is running and Handler can be
// mounted immediately. Callers must eventually call Drain (or Close)
// to stop the pool.
func New(opts Options) *Server {
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		queue:      make(chan *job, opts.Queue),
		stop:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*job{},
	}
	s.wg.Add(opts.Executors)
	for i := 0; i < opts.Executors; i++ {
		go s.executor()
	}
	return s
}

// enqueue admits a job: it allocates an id, tries the bounded queue,
// and registers the job for lookup. run receives the job's context and
// its progress board (nil for kinds without Stage-II fan-out). A
// non-nil info carries the job's cache identity: the finished result
// is stored under key and the block is attached to the done envelope.
func (s *Server) enqueue(kind api.JobKind, withProgress bool, key cache.Key, info *api.CacheInfo, run func(ctx context.Context, prog *tracing.Progress) (any, error)) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	s.mu.Unlock()

	j := &job{
		env:       api.Job{ID: id, Kind: kind, State: api.JobQueued, Created: time.Now().UTC()},
		run:       run,
		cacheKey:  key,
		cacheInfo: info,
	}
	if withProgress {
		j.progress = tracing.NewProgress()
	}
	select {
	case s.queue <- j:
	default:
		s.opts.Metrics.Counter("server.jobs_rejected").Inc()
		return api.Job{}, errQueueFull
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	return s.snapshot(j), nil
}

// admitCached registers an already-done job answering a request whose
// result document was found in the cache: the envelope is terminal on
// arrival, never touches the queue (so cached repeats are immune to
// backpressure), and is served by the job endpoints like any other.
func (s *Server) admitCached(kind api.JobKind, key cache.Key, doc []byte) (api.Job, error) {
	if s.draining.Load() {
		return api.Job{}, errDraining
	}
	now := time.Now().UTC()
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := &job{env: api.Job{
		ID: id, Kind: kind, State: api.JobDone,
		Created: now, Started: &now, Finished: &now,
		Result: doc,
		Cache:  &api.CacheInfo{Key: key.String(), ResultHit: true},
	}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.opts.Metrics.Counter("server.jobs_submitted").Inc()
	s.opts.Metrics.Counter("server.jobs_cached").Inc()
	s.opts.Metrics.Counter("server.jobs_done").Inc()
	return s.snapshot(j), nil
}

// executor pulls jobs off the queue until the server stops. A closed
// stop channel finishes the current job but claims no further ones —
// the first half of the drain sequence.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through running to a terminal state.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.env.State != api.JobQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	now := time.Now().UTC()
	j.env.State = api.JobRunning
	j.env.Started = &now
	s.mu.Unlock()

	res, err := j.run(ctx, j.progress)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	done := time.Now().UTC()
	j.env.Finished = &done
	switch {
	case err == nil:
		raw, mErr := json.Marshal(res)
		if mErr != nil {
			j.env.State = api.JobFailed
			j.env.Error = fmt.Sprintf("encoding result: %v", mErr)
			s.opts.Metrics.Counter("server.jobs_failed").Inc()
			return
		}
		j.env.State = api.JobDone
		j.env.Result = raw
		if j.cacheInfo != nil {
			// Store the exact marshaled bytes, so a later hit replays
			// them bit-identically, and publish the cache block (the run
			// closure filled its warm counts before returning).
			s.opts.Cache.PutResult(j.cacheKey, raw)
			j.env.Cache = j.cacheInfo
		}
		s.recordWall(done.Sub(*j.env.Started))
		s.opts.Metrics.Counter("server.jobs_done").Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.env.State = api.JobCancelled
		j.env.Error = err.Error()
		s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
	default:
		j.env.State = api.JobFailed
		j.env.Error = err.Error()
		s.opts.Metrics.Counter("server.jobs_failed").Inc()
	}
}

// recordWall folds one finished job's wall time into the rolling
// window behind the Retry-After estimate.
func (s *Server) recordWall(d time.Duration) {
	if d < 0 {
		return
	}
	s.wallMu.Lock()
	s.recentWall[s.wallCount%wallWindow] = d
	s.wallCount++
	s.wallMu.Unlock()
}

// meanWall returns the rolling mean of recent job wall times (0 with
// no history yet).
func (s *Server) meanWall() time.Duration {
	s.wallMu.Lock()
	defer s.wallMu.Unlock()
	n := s.wallCount
	if n > wallWindow {
		n = wallWindow
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.recentWall[i]
	}
	return sum / time.Duration(n)
}

// retryAfterSeconds estimates when a rejected client should retry:
// the current queue depth times the rolling mean job wall time,
// rounded up, with a 1-second floor (which is also the answer before
// any job has finished — the old hardcoded behaviour).
func (s *Server) retryAfterSeconds() int {
	mean := s.meanWall()
	secs := int(math.Ceil(float64(len(s.queue)) * mean.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// snapshot copies a job's envelope, attaching the current progress
// counts for jobs that track them.
func (s *Server) snapshot(j *job) api.Job {
	s.mu.Lock()
	env := j.env
	s.mu.Unlock()
	if j.progress != nil {
		p := j.progress.Snapshot()
		env.Progress = &api.Progress{
			Scenarios:    api.Counts(p.Scenarios),
			Cases:        api.Counts(p.Cases),
			Replications: api.Counts(p.Replications),
		}
	}
	return env
}

// lookup returns the job with the given id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns envelope snapshots in submission order, keeping only
// the given states (nil keeps everything).
func (s *Server) list(states map[api.JobState]bool) []api.Job {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]api.Job, 0, len(js))
	for _, j := range js {
		env := s.snapshot(j)
		if states == nil || states[env.State] {
			out = append(out, env)
		}
	}
	return out
}

// cancelJob requests cancellation of a job. Queued jobs cancel
// immediately; running jobs have their context cancelled and reach the
// cancelled state when the engine drains (the caller polls); terminal
// jobs are left untouched. The bool reports whether the job exists.
func (s *Server) cancelJob(id string) (api.Job, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return api.Job{}, false
	}
	var cancel context.CancelFunc
	s.mu.Lock()
	switch j.env.State {
	case api.JobQueued:
		s.markCancelledLocked(j, "cancelled while queued")
	case api.JobRunning:
		cancel = j.cancel
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return s.snapshot(j), true
}

// markCancelledLocked finalizes a not-yet-running job as cancelled.
// Callers hold s.mu.
func (s *Server) markCancelledLocked(j *job, why string) {
	now := time.Now().UTC()
	j.env.State = api.JobCancelled
	j.env.Finished = &now
	j.env.Error = why
	s.opts.Metrics.Counter("server.jobs_cancelled").Inc()
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down: it stops admitting new jobs, cancels
// the ones still waiting in the queue, gives running jobs up to
// timeout to finish on their own, then cancels their contexts and
// waits for the engines to drain their worker pools. A non-positive
// timeout cancels running jobs immediately. Drain is idempotent and
// returns once every executor has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.drainQueued()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
		}
	}
	// Cancel whatever is still running (a no-op if everything
	// finished) and wait for the engines to drain.
	s.baseCancel()
	<-done
	// A submission that raced the draining flag may have slipped into
	// the queue after the first sweep; with the executors gone this
	// sweep is final.
	s.drainQueued()
}

// Close is Drain with immediate cancellation.
func (s *Server) Close() { s.Drain(0) }

// drainQueued empties the queue channel, cancelling every job that
// never reached an executor.
func (s *Server) drainQueued() {
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			if j.env.State == api.JobQueued {
				s.markCancelledLocked(j, "cancelled before start: server draining")
			}
			s.mu.Unlock()
		default:
			return
		}
	}
}

// progressSnapshot aggregates every job's progress board — the
// /progress debug endpoint's view of the whole server.
func (s *Server) progressSnapshot() tracing.ProgressSnapshot {
	s.mu.Lock()
	boards := make([]*tracing.Progress, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j.progress != nil {
			boards = append(boards, j.progress)
		}
	}
	s.mu.Unlock()
	var sum tracing.ProgressSnapshot
	for _, b := range boards {
		p := b.Snapshot()
		sum.Scenarios.Done += p.Scenarios.Done
		sum.Scenarios.Planned += p.Scenarios.Planned
		sum.Cases.Done += p.Cases.Done
		sum.Cases.Planned += p.Cases.Planned
		sum.Replications.Done += p.Replications.Done
		sum.Replications.Planned += p.Replications.Planned
	}
	return sum
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/config"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// This file is the dispatch layer: it turns a validated request
// document into a jobSpec — everything the executor needs to run the
// job. It used to live inline in the HTTP handlers; it is a separate
// layer now because two more callers need it: WAL crash recovery
// (re-dispatching an interrupted job from its journaled request) and
// the worker protocol (the retained request document is what the
// coordinator forwards to a worker peer). All three paths validate
// and build identically, so a replayed or remotely-run job is
// bit-identical to a locally submitted one.

// jobSpec is a fully validated, ready-to-run job: the run closure for
// local execution, the raw request document for remote dispatch and
// durable storage, and the job's cache identity.
type jobSpec struct {
	kind         api.JobKind
	withProgress bool
	// request is the canonical re-marshaling of the validated request,
	// journaled by the store and forwarded verbatim to worker peers.
	request json.RawMessage
	// key/info carry the cache identity (zero/nil when caching is off);
	// cached is the result-tier document when the request was already
	// answered once — the job then completes at admission.
	key    cache.Key
	info   *api.CacheInfo
	cached []byte
	run    func(ctx context.Context, prog *tracing.Progress) (any, error)
}

// prepare validates a raw request document of the given kind — the
// crash-recovery entry point, re-dispatching a journaled request.
func (s *Server) prepare(kind api.JobKind, raw json.RawMessage) (*jobSpec, error) {
	switch kind {
	case api.KindSolve:
		var req api.SolveRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, fmt.Errorf("decoding stored request: %w", err)
		}
		return s.prepareSolve(&req)
	case api.KindSimulate:
		var req api.SimulateRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, fmt.Errorf("decoding stored request: %w", err)
		}
		return s.prepareSimulate(&req)
	case api.KindScenario:
		var req api.ScenarioRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, fmt.Errorf("decoding stored request: %w", err)
		}
		return s.prepareScenario(&req)
	}
	return nil, fmt.Errorf("unknown job kind %q", kind)
}

// rawRequest re-marshals a validated request into the canonical bytes
// the store journals and the coordinator forwards to workers.
func rawRequest(req any) (json.RawMessage, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	return raw, nil
}

// instanceField folds the request's problem identity into a result
// key: the canonical instance bytes, or a fixed marker for the
// embedded paper example (which has no canonical echo). A submitted
// instance's echo already contains its effective edges; the paper
// example folds request edges in explicitly, so two jobs differing
// only in topology can never share a key.
func instanceField(h *cache.Hasher, p *problem) {
	if p.echo != nil {
		h.String("instance").Bytes(p.echo)
	} else {
		h.String("paper-example")
		for _, e := range p.edges {
			h.Int(e.From).Int(e.To)
		}
	}
}

// problem is a resolved problem document: the model objects, the
// availability cases to evaluate, the precedence edges, and the
// canonical echo of the submitted instance (nil for the embedded paper
// example).
type problem struct {
	sys      *sysmodel.System
	batch    sysmodel.Batch
	deadline float64
	cases    []core.Case
	edges    []sysmodel.Edge
	echo     json.RawMessage
}

// resolveProblem builds the model objects for a request. A nil instance
// means the embedded paper example with the paper's four availability
// cases; an instance without declared cases gets core.FallbackCases,
// exactly like the cdsf CLI. Non-empty request edges (v1.1) override
// the instance's own and become part of the canonical echo, so the
// result document and the cache identity both carry the effective
// topology.
func resolveProblem(inst *config.Instance, edges []config.EdgeSpec) (*problem, error) {
	if inst != nil && len(edges) > 0 {
		clone := *inst
		clone.Edges = edges
		inst = &clone
	}
	if inst == nil {
		f := experiments.Framework()
		p := &problem{sys: f.Sys, batch: f.Batch, deadline: f.Deadline, cases: experiments.Cases()}
		if len(edges) > 0 {
			es := make([]sysmodel.Edge, len(edges))
			for i, e := range edges {
				es[i] = sysmodel.Edge{From: e.From, To: e.To}
			}
			if err := sysmodel.ValidateEdges(es, len(p.batch)); err != nil {
				return nil, err
			}
			p.edges = es
		}
		return p, nil
	}
	sys, batch, deadline, err := config.Build(inst)
	if err != nil {
		return nil, err
	}
	es, err := config.BuildEdges(inst)
	if err != nil {
		return nil, err
	}
	named, err := config.BuildCases(inst)
	if err != nil {
		return nil, err
	}
	cases := make([]core.Case, 0, len(named))
	for _, na := range named {
		cases = append(cases, core.Case{Name: na.Name, Avail: na.Avail})
	}
	if len(cases) == 0 {
		cases = core.FallbackCases(sys)
	}
	echo, err := config.Marshal(inst)
	if err != nil {
		return nil, err
	}
	return &problem{sys: sys, batch: batch, deadline: deadline, cases: cases, edges: es, echo: echo}, nil
}

// resolveCase picks the availability case a simulate request names:
// empty or "reference" means the reference availability, anything else
// must match one of the instance's cases.
func (p *problem) resolveCase(name string) (core.Case, error) {
	if name == "" || strings.EqualFold(name, "reference") {
		ref := make([]pmf.PMF, len(p.sys.Types))
		for j, t := range p.sys.Types {
			ref[j] = t.Avail
		}
		return core.Case{Name: "reference", Avail: ref}, nil
	}
	for _, c := range p.cases {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	names := make([]string, len(p.cases))
	for i, c := range p.cases {
		names[i] = c.Name
	}
	return core.Case{}, fmt.Errorf("unknown case %q (have reference, %s)", name, strings.Join(names, ", "))
}

// workersFor resolves a request's worker count against the server
// default.
func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.opts.Workers
}

// backendFor resolves a request's pmf_backend against the server
// default; an unknown name is the client's fault.
func (s *Server) backendFor(requested string) (pmf.Backend, error) {
	if requested == "" {
		return s.opts.PMFBackend, nil
	}
	return pmf.ParseBackend(requested)
}

// stageII builds the Stage-II configuration for a request from the
// paper defaults, threading in the server's instrumentation.
func (s *Server) stageII(deadline float64, seed uint64, reps int) core.StageIIConfig {
	cfg := core.DefaultStageII(deadline, seed)
	if reps > 0 {
		cfg.Reps = reps
	}
	cfg.Metrics = s.opts.Metrics
	cfg.Tracer = s.opts.Tracer
	return cfg
}

// prepareSolve validates a Stage-I request (bad instances and unknown
// heuristic names are the client's fault) and builds the search job.
func (s *Server) prepareSolve(req *api.SolveRequest) (*jobSpec, error) {
	p, err := resolveProblem(req.Instance, req.Edges)
	if err != nil {
		return nil, err
	}
	deadline := p.deadline
	if req.Deadline > 0 {
		deadline = req.Deadline
	}
	name := req.Heuristic
	if name == "" {
		name = "exhaustive"
	}
	h, err := ra.ByName(name)
	if err != nil {
		return nil, err
	}
	ra.SetWorkers(h, s.workersFor(req.Workers))
	if req.Seed != 0 {
		ra.SetSeed(h, req.Seed)
	}
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		return nil, err
	}
	prob := &ra.Problem{Sys: p.sys, Batch: p.batch, Deadline: deadline, Edges: p.edges,
		Backend: backend, Metrics: s.opts.Metrics, Tracer: s.opts.Tracer}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	raw, err := rawRequest(req)
	if err != nil {
		return nil, err
	}
	label := h.Name()
	spec := &jobSpec{kind: api.KindSolve, request: raw}
	if s.opts.Cache != nil {
		// Everything the result document depends on; Workers is
		// deliberately excluded (results are identical for any count).
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindSolve))
		instanceField(hk, p)
		hk.String(label).Float64(deadline).Uint64(req.Seed).String(backend.String())
		spec.key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(spec.key); ok {
			spec.cached = doc
			return spec, nil
		}
		spec.info = &api.CacheInfo{Key: spec.key.String()}
		prob.Cache = s.opts.Cache
	}
	info := spec.info
	spec.run = func(ctx context.Context, _ *tracing.Progress) (any, error) {
		al, err := ra.SolveContext(ctx, h, prob)
		if err != nil {
			return nil, err
		}
		if info != nil {
			info.WarmHits, info.WarmMisses = prob.CacheCounts()
		}
		st, err := robustness.EvaluateStageIDAG(p.sys, p.batch, p.edges, al, deadline)
		if err != nil {
			return nil, err
		}
		wire := api.FromStageI(st)
		return api.SolveResult{
			Heuristic:     label,
			Allocation:    wire.Allocation,
			Phi1:          wire.Phi1,
			PerApp:        wire.PerApp,
			ExpectedTimes: wire.ExpectedTimes,
			Instance:      p.echo,
		}, nil
	}
	return spec, nil
}

// prepareSimulate validates a Stage-II request and builds the
// Monte-Carlo job evaluating a fixed allocation under one case.
func (s *Server) prepareSimulate(req *api.SimulateRequest) (*jobSpec, error) {
	p, err := resolveProblem(req.Instance, req.Edges)
	if err != nil {
		return nil, err
	}
	if len(req.Allocation) == 0 {
		return nil, fmt.Errorf("allocation is required")
	}
	alloc := api.ToAllocation(req.Allocation)
	if err := alloc.Validate(p.sys, p.batch); err != nil {
		return nil, err
	}
	var techs []dls.Technique
	if len(req.Techniques) == 0 {
		techs = core.RobustRAS()
	} else {
		for _, name := range req.Techniques {
			t, ok := dls.Get(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown technique %q (have %s)",
					name, strings.Join(dls.Names(), ", "))
			}
			techs = append(techs, t)
		}
	}
	c, err := p.resolveCase(req.Case)
	if err != nil {
		return nil, err
	}
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		return nil, err
	}
	cfg := s.stageII(p.deadline, req.Seed, req.Reps)
	cfg.PMFBackend = backend
	if req.Overhead != nil {
		cfg.Overhead = *req.Overhead
	}
	if req.IterCV != nil {
		cfg.IterCV = *req.IterCV
	}
	if req.TimeSteps > 0 {
		cfg.TimeSteps = req.TimeSteps
	}
	raw, err := rawRequest(req)
	if err != nil {
		return nil, err
	}
	f := &core.Framework{Sys: p.sys, Batch: p.batch, Deadline: p.deadline, Edges: p.edges}
	spec := &jobSpec{kind: api.KindSimulate, withProgress: true, request: raw}
	if s.opts.Cache != nil {
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindSimulate))
		instanceField(hk, p)
		for _, as := range alloc {
			hk.Int(as.Type).Int(as.Procs)
		}
		for _, t := range techs {
			hk.String(t.Name)
		}
		hk.String(c.Name).Int(cfg.Reps).Uint64(req.Seed)
		hk.Float64(cfg.Overhead).Float64(cfg.IterCV).Int(cfg.TimeSteps)
		hk.String(backend.String())
		spec.key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(spec.key); ok {
			spec.cached = doc
			return spec, nil
		}
		spec.info = &api.CacheInfo{Key: spec.key.String()}
		cfg.Cache = s.opts.Cache
	}
	spec.run = func(ctx context.Context, prog *tracing.Progress) (any, error) {
		run := cfg
		run.Progress = prog
		cr, err := f.RunCaseContext(ctx, alloc, techs, c, run)
		if err != nil {
			return nil, err
		}
		return api.SimulateResult{CaseResult: api.FromCaseResult(cr), Instance: p.echo}, nil
	}
	return spec, nil
}

// prepareScenario validates a full framework request and builds the
// dual-stage job over every availability case.
func (s *Server) prepareScenario(req *api.ScenarioRequest) (*jobSpec, error) {
	p, err := resolveProblem(req.Instance, req.Edges)
	if err != nil {
		return nil, err
	}
	scenario := req.Scenario
	if scenario == 0 {
		scenario = 4
	}
	sc, err := core.BuildScenario(scenario, req.IM, req.RAS)
	if err != nil {
		return nil, err
	}
	ra.SetWorkers(sc.IM, s.workersFor(req.Workers))
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		return nil, err
	}
	f := &core.Framework{Sys: p.sys, Batch: p.batch, Deadline: p.deadline, Edges: p.edges}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	cfg := s.stageII(p.deadline, req.Seed, req.Reps)
	cfg.PMFBackend = backend
	cases := p.cases
	raw, err := rawRequest(req)
	if err != nil {
		return nil, err
	}
	spec := &jobSpec{kind: api.KindScenario, withProgress: true, request: raw}
	if s.opts.Cache != nil {
		// sc.Name encodes the resolved scenario: the paper scenarios
		// have unique labels and custom ones embed the IM and technique
		// names, so two requests resolving differently can never share
		// a key.
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindScenario))
		instanceField(hk, p)
		hk.String(sc.Name).Int(cfg.Reps).Uint64(req.Seed).String(backend.String())
		spec.key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(spec.key); ok {
			spec.cached = doc
			return spec, nil
		}
		spec.info = &api.CacheInfo{Key: spec.key.String()}
		cfg.Cache = s.opts.Cache
	}
	info := spec.info
	spec.run = func(ctx context.Context, prog *tracing.Progress) (any, error) {
		run := cfg
		run.Progress = prog
		res, err := f.RunScenarioContext(ctx, sc, cases, run)
		if err != nil {
			return nil, err
		}
		if info != nil {
			info.WarmHits, info.WarmMisses = res.WarmHits, res.WarmMisses
		}
		wire := api.FromScenarioResult(res)
		wire.Instance = p.echo
		return wire, nil
	}
	return spec, nil
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// maxRequestBytes bounds a request body. Instances carry explicit PMFs
// per application and type, so the bound is generous; it exists to keep
// a misbehaving client from exhausting memory, not to constrain real
// documents.
const maxRequestBytes = 16 << 20

// Handler returns the service's HTTP surface:
//
//	POST   /v1/solve             submit a Stage-I search        -> 202 + Job
//	POST   /v1/simulate          submit a Stage-II Monte Carlo  -> 202 + Job
//	POST   /v1/scenario          submit a full framework run    -> 202 + Job
//	GET    /v1/jobs              list jobs (?state=a,b filters;
//	                             ?limit=n&after=id paginates)
//	GET    /v1/jobs/{id}         poll one job
//	DELETE /v1/jobs/{id}         cancel one job
//	GET    /v1/jobs/{id}/events  the job's event journal (JSON;
//	                             ?follow=1 streams SSE with
//	                             Last-Event-ID resume)
//	GET    /v1/healthz           liveness: queue depth, inflight,
//	                             drain state, cache counters, job
//	                             store stats, worker liveness
//	POST   /v1/workers           register a worker peer (repeat as
//	                             heartbeat)
//	GET    /v1/workers           list worker peers and liveness
//	DELETE /v1/workers/{name}    deregister a worker peer
//
// plus the debug endpoints every CLI exposes behind -debug-addr
// (/metrics, /progress, /trace, /debug/pprof/*) and the cross-job
// event ring (/debug/events), mounted on the same mux with the
// server's registry and the aggregate of every job's progress board.
//
// Every route above is wrapped in the RED middleware (middleware.go):
// per-route/status counters, latency histograms, and inflight gauges
// land in the same registry the /metrics endpoint serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/scenario", s.instrument("scenario", s.handleScenario))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("POST /v1/workers", s.instrument("worker_register", s.handleWorkerRegister))
	mux.HandleFunc("GET /v1/workers", s.instrument("workers", s.handleWorkers))
	mux.HandleFunc("DELETE /v1/workers/{name}", s.instrument("worker_deregister", s.handleWorkerDeregister))
	mux.HandleFunc("GET /debug/events", s.instrument("debug_events", s.handleDebugEvents))
	tracing.Mount(mux, s.opts.Metrics, s.progressSnapshot, s.opts.Tracer)
	return mux
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the uniform v1.1 error document: a stable code
// plus a human-readable message.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.Error{Code: code, Message: msg})
}

// writeFieldError writes the error document for a validation failure,
// extracting the offending JSON field path when the error carries one:
// DAG edge errors (sysmodel.EdgeError, paths like "edges[3].from") and
// JSON type mismatches (whose Field is the decoder's dotted path) both
// do.
func writeFieldError(w http.ResponseWriter, status int, code string, err error) {
	doc := api.Error{Code: code, Message: err.Error()}
	var ee *sysmodel.EdgeError
	var te *json.UnmarshalTypeError
	switch {
	case errors.As(err, &ee):
		doc.Field = ee.Path
	case errors.As(err, &te) && te.Field != "":
		doc.Field = te.Field
	}
	writeJSON(w, status, doc)
}

// decode parses a request body strictly: unknown fields are rejected so
// a typo'd option fails loudly instead of silently running with
// defaults.
func decode[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	req := new(T)
	if err := dec.Decode(req); err != nil {
		writeFieldError(w, http.StatusBadRequest, api.ErrBadRequest,
			fmt.Errorf("decoding request: %w", err))
		return nil, false
	}
	return req, true
}

// accept admits a prepared job and writes the admission response: 202
// with the envelope and a Location header (whether the job was
// enqueued or answered terminally from the cache), 429 + Retry-After
// when the queue is full, 503 while draining. The Retry-After estimate
// is the backlog's drain time: queue depth x the rolling mean of
// recent job wall times / the executor-pool width (floor 1s).
func (s *Server) accept(w http.ResponseWriter, spec *jobSpec) {
	var j api.Job
	var err error
	if spec.cached != nil {
		j, err = s.admitCached(spec)
	} else {
		j, err = s.enqueue(spec)
	}
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, api.ErrDraining, err.Error())
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, api.ErrQueueFull, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, api.ErrInternal, err.Error())
	default:
		w.Header().Set("Location", "/"+api.Version+"/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j)
	}
}

// handleSolve validates a Stage-I request eagerly (bad instances and
// unknown heuristic names are the client's fault and answer 400) and
// admits the search.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.SolveRequest](w, r)
	if !ok {
		return
	}
	spec, err := s.prepareSolve(req)
	if err != nil {
		writeFieldError(w, http.StatusBadRequest, api.ErrBadRequest, err)
		return
	}
	s.accept(w, spec)
}

// handleSimulate validates a Stage-II request eagerly and admits the
// Monte-Carlo evaluation of the fixed allocation under one case.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.SimulateRequest](w, r)
	if !ok {
		return
	}
	spec, err := s.prepareSimulate(req)
	if err != nil {
		writeFieldError(w, http.StatusBadRequest, api.ErrBadRequest, err)
		return
	}
	s.accept(w, spec)
}

// handleScenario validates a full framework request eagerly and admits
// the dual-stage run over every availability case.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.ScenarioRequest](w, r)
	if !ok {
		return
	}
	spec, err := s.prepareScenario(req)
	if err != nil {
		writeFieldError(w, http.StatusBadRequest, api.ErrBadRequest, err)
		return
	}
	s.accept(w, spec)
}

// handleJobs lists jobs, optionally filtered by ?state=queued,running
// and paginated with ?limit=n (page size) and ?after=id (exclusive
// cursor — the id the previous page's "next" reported). The response's
// total counts every match, so clients can size progress bars without
// walking all pages.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var states map[api.JobState]bool
	if vals, ok := q["state"]; ok {
		states = map[api.JobState]bool{}
		for _, v := range vals {
			for _, part := range strings.Split(v, ",") {
				st := api.JobState(strings.TrimSpace(part))
				switch st {
				case api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCancelled:
					states[st] = true
				default:
					writeError(w, http.StatusBadRequest, api.ErrBadRequest, fmt.Sprintf("unknown state %q", part))
					return
				}
			}
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, api.ErrBadRequest, fmt.Sprintf("limit must be a positive integer, got %q", v))
			return
		}
		limit = n
	}
	jobs, total, next, err := s.list(states, q.Get("after"), limit)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.ErrBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, api.JobList{APIVersion: api.MinorVersion, Jobs: jobs, Total: total, Next: next})
}

// handleJob polls one job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		writeError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(id))
}

// handleCancel cancels one job. A job cancelled while queued (or
// already terminal) answers 200 with its final envelope; a running job
// answers 202 — its context is cancelled and the engine drains, so the
// client polls until the state flips to cancelled.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	env, ok := s.cancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	status := http.StatusOK
	if env.State == api.JobRunning {
		status = http.StatusAccepted
	}
	writeJSON(w, status, env)
}

// handleWorkerRegister registers (or heartbeats) a worker peer: a
// cdsfd process running with -coordinator pointed here. Re-posting the
// same registration is the heartbeat; a changed address re-routes the
// peer's ring slots. The response lists every registered peer, so a
// worker sees its cohort.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, api.ErrDraining, errDraining.Error())
		return
	}
	reg, ok := decode[api.WorkerRegistration](w, r)
	if !ok {
		return
	}
	if reg.Name == "" {
		writeJSON(w, http.StatusBadRequest, api.Error{Code: api.ErrBadRequest, Message: "worker name is required", Field: "name"})
		return
	}
	u, err := url.Parse(reg.Addr)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		writeJSON(w, http.StatusBadRequest, api.Error{Code: api.ErrBadRequest, Message: fmt.Sprintf("worker addr must be an http(s) base URL, got %q", reg.Addr), Field: "addr"})
		return
	}
	s.peers.register(reg.Name, strings.TrimRight(reg.Addr, "/"))
	writeJSON(w, http.StatusOK, api.WorkerList{Workers: s.peers.statuses(time.Now())})
}

// handleWorkers lists the registered worker peers with liveness and
// lease counts.
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.WorkerList{Workers: s.peers.statuses(time.Now())})
}

// handleWorkerDeregister removes a worker peer from the registry. Jobs
// it still holds are reassigned by the executors exactly as if the
// worker had died.
func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.peers.remove(name) {
		writeError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no worker %q", name))
		return
	}
	writeJSON(w, http.StatusOK, api.WorkerList{Workers: s.peers.statuses(time.Now())})
}

// handleHealth reports liveness as a structured document: drain state,
// queue and executor saturation, lifetime job counts, the job store's
// backend and journal/replay stats, and — when present — the cache
// counters and per-worker liveness. "ok" flips to "draining" once
// admission has stopped, so a load balancer keying on the status
// string stops routing during shutdown.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	reg := s.opts.Metrics
	h := api.Health{
		Status:        "ok",
		Version:       api.Version,
		APIVersion:    api.MinorVersion,
		Draining:      s.Draining(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.Queue,
		Inflight:      int(s.inflight.Load()),
		Executors:     s.opts.Executors,
		Jobs: api.HealthJobs{
			Submitted: reg.Counter("server.jobs_submitted").Value(),
			Done:      reg.Counter("server.jobs_done").Value(),
			Failed:    reg.Counter("server.jobs_failed").Value(),
			Cancelled: reg.Counter("server.jobs_cancelled").Value(),
			Rejected:  reg.Counter("server.jobs_rejected").Value(),
		},
	}
	if h.Draining {
		h.Status = "draining"
	}
	st := s.store.Stats()
	h.Store = &api.HealthStore{
		Backend:         st.Backend,
		Jobs:            st.Jobs,
		Records:         st.Records,
		WALBytes:        st.WALBytes,
		Fsyncs:          st.Fsyncs,
		ReplayedRecords: st.ReplayedRecords,
		ReplayedJobs:    st.ReplayedJobs,
		RecoveredJobs:   st.RecoveredJobs,
		TruncatedBytes:  st.TruncatedBytes,
	}
	if s.opts.Cache != nil {
		h.Cache = &api.HealthCache{
			ResultHits:   reg.Counter("cache.result_hits").Value(),
			ResultMisses: reg.Counter("cache.result_misses").Value(),
			TableHits:    reg.Counter("cache.table_hits").Value(),
			TableMisses:  reg.Counter("cache.table_misses").Value(),
		}
	}
	if ws := s.peers.statuses(time.Now()); len(ws) > 0 {
		h.Workers = ws
	}
	writeJSON(w, http.StatusOK, h)
}

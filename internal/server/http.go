package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/config"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/experiments"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// maxRequestBytes bounds a request body. Instances carry explicit PMFs
// per application and type, so the bound is generous; it exists to keep
// a misbehaving client from exhausting memory, not to constrain real
// documents.
const maxRequestBytes = 16 << 20

// Handler returns the service's HTTP surface:
//
//	POST   /v1/solve             submit a Stage-I search        -> 202 + Job
//	POST   /v1/simulate          submit a Stage-II Monte Carlo  -> 202 + Job
//	POST   /v1/scenario          submit a full framework run    -> 202 + Job
//	GET    /v1/jobs              list jobs (?state=a,b filters)
//	GET    /v1/jobs/{id}         poll one job
//	DELETE /v1/jobs/{id}         cancel one job
//	GET    /v1/jobs/{id}/events  the job's event journal (JSON;
//	                             ?follow=1 streams SSE with
//	                             Last-Event-ID resume)
//	GET    /v1/healthz           liveness: queue depth, inflight,
//	                             drain state, cache counters
//
// plus the debug endpoints every CLI exposes behind -debug-addr
// (/metrics, /progress, /trace, /debug/pprof/*) and the cross-job
// event ring (/debug/events), mounted on the same mux with the
// server's registry and the aggregate of every job's progress board.
//
// Every route above is wrapped in the RED middleware (middleware.go):
// per-route/status counters, latency histograms, and inflight gauges
// land in the same registry the /metrics endpoint serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/scenario", s.instrument("scenario", s.handleScenario))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /debug/events", s.instrument("debug_events", s.handleDebugEvents))
	tracing.Mount(mux, s.opts.Metrics, s.progressSnapshot, s.opts.Tracer)
	return mux
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, api.Error{Error: msg})
}

// decode parses a request body strictly: unknown fields are rejected so
// a typo'd option fails loudly instead of silently running with
// defaults.
func decode[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	req := new(T)
	if err := dec.Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return nil, false
	}
	return req, true
}

// accept enqueues a validated job and writes the admission response:
// 202 with the envelope and a Location header, 429 + Retry-After when
// the queue is full, 503 while draining. The Retry-After estimate is
// queue depth x the rolling mean of recent job wall times (floor 1s),
// so a deep backlog of slow jobs pushes clients back further than a
// shallow one. key/info carry the job's cache identity (zero/nil when
// caching is off).
func (s *Server) accept(w http.ResponseWriter, kind api.JobKind, withProgress bool, key cache.Key, info *api.CacheInfo, run func(ctx context.Context, prog *tracing.Progress) (any, error)) {
	j, err := s.enqueue(kind, withProgress, key, info, run)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err.Error())
	default:
		w.Header().Set("Location", "/"+api.Version+"/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j)
	}
}

// acceptCached answers a request whose result document is already in
// the cache: an already-done job is registered and returned with the
// usual 202 + Location, so clients observe the same protocol either
// way — just terminally faster.
func (s *Server) acceptCached(w http.ResponseWriter, kind api.JobKind, key cache.Key, doc []byte) {
	j, err := s.admitCached(kind, key, doc)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Location", "/"+api.Version+"/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

// instanceField folds the request's problem identity into a result
// key: the canonical instance bytes, or a fixed marker for the
// embedded paper example (which has no canonical echo).
func instanceField(h *cache.Hasher, p *problem) {
	if p.echo != nil {
		h.String("instance").Bytes(p.echo)
	} else {
		h.String("paper-example")
	}
}

// problem is a resolved problem document: the model objects, the
// availability cases to evaluate, and the canonical echo of the
// submitted instance (nil for the embedded paper example).
type problem struct {
	sys      *sysmodel.System
	batch    sysmodel.Batch
	deadline float64
	cases    []core.Case
	echo     json.RawMessage
}

// resolveProblem builds the model objects for a request. A nil instance
// means the embedded paper example with the paper's four availability
// cases; an instance without declared cases gets core.FallbackCases,
// exactly like the cdsf CLI.
func resolveProblem(inst *config.Instance) (*problem, error) {
	if inst == nil {
		f := experiments.Framework()
		return &problem{sys: f.Sys, batch: f.Batch, deadline: f.Deadline, cases: experiments.Cases()}, nil
	}
	sys, batch, deadline, err := config.Build(inst)
	if err != nil {
		return nil, err
	}
	named, err := config.BuildCases(inst)
	if err != nil {
		return nil, err
	}
	cases := make([]core.Case, 0, len(named))
	for _, na := range named {
		cases = append(cases, core.Case{Name: na.Name, Avail: na.Avail})
	}
	if len(cases) == 0 {
		cases = core.FallbackCases(sys)
	}
	echo, err := config.Marshal(inst)
	if err != nil {
		return nil, err
	}
	return &problem{sys: sys, batch: batch, deadline: deadline, cases: cases, echo: echo}, nil
}

// resolveCase picks the availability case a simulate request names:
// empty or "reference" means the reference availability, anything else
// must match one of the instance's cases.
func (p *problem) resolveCase(name string) (core.Case, error) {
	if name == "" || strings.EqualFold(name, "reference") {
		ref := make([]pmf.PMF, len(p.sys.Types))
		for j, t := range p.sys.Types {
			ref[j] = t.Avail
		}
		return core.Case{Name: "reference", Avail: ref}, nil
	}
	for _, c := range p.cases {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	names := make([]string, len(p.cases))
	for i, c := range p.cases {
		names[i] = c.Name
	}
	return core.Case{}, fmt.Errorf("unknown case %q (have reference, %s)", name, strings.Join(names, ", "))
}

// workersFor resolves a request's worker count against the server
// default.
func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.opts.Workers
}

// backendFor resolves a request's pmf_backend against the server
// default; an unknown name is the client's fault.
func (s *Server) backendFor(requested string) (pmf.Backend, error) {
	if requested == "" {
		return s.opts.PMFBackend, nil
	}
	return pmf.ParseBackend(requested)
}

// stageII builds the Stage-II configuration for a request from the
// paper defaults, threading in the server's instrumentation.
func (s *Server) stageII(deadline float64, seed uint64, reps int) core.StageIIConfig {
	cfg := core.DefaultStageII(deadline, seed)
	if reps > 0 {
		cfg.Reps = reps
	}
	cfg.Metrics = s.opts.Metrics
	cfg.Tracer = s.opts.Tracer
	return cfg
}

// handleSolve validates a Stage-I request eagerly (bad instances and
// unknown heuristic names are the client's fault and answer 400) and
// enqueues the search.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.SolveRequest](w, r)
	if !ok {
		return
	}
	p, err := resolveProblem(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline := p.deadline
	if req.Deadline > 0 {
		deadline = req.Deadline
	}
	name := req.Heuristic
	if name == "" {
		name = "exhaustive"
	}
	h, err := ra.ByName(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ra.SetWorkers(h, s.workersFor(req.Workers))
	if req.Seed != 0 {
		ra.SetSeed(h, req.Seed)
	}
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	prob := &ra.Problem{Sys: p.sys, Batch: p.batch, Deadline: deadline,
		Backend: backend, Metrics: s.opts.Metrics, Tracer: s.opts.Tracer}
	if err := prob.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	label := h.Name()
	var key cache.Key
	var info *api.CacheInfo
	if s.opts.Cache != nil {
		// Everything the result document depends on; Workers is
		// deliberately excluded (results are identical for any count).
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindSolve))
		instanceField(hk, p)
		hk.String(label).Float64(deadline).Uint64(req.Seed).String(backend.String())
		key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(key); ok {
			s.acceptCached(w, api.KindSolve, key, doc)
			return
		}
		info = &api.CacheInfo{Key: key.String()}
		prob.Cache = s.opts.Cache
	}
	s.accept(w, api.KindSolve, false, key, info, func(ctx context.Context, _ *tracing.Progress) (any, error) {
		al, err := ra.SolveContext(ctx, h, prob)
		if err != nil {
			return nil, err
		}
		if info != nil {
			info.WarmHits, info.WarmMisses = prob.CacheCounts()
		}
		st, err := robustness.EvaluateStageI(p.sys, p.batch, al, deadline)
		if err != nil {
			return nil, err
		}
		wire := api.FromStageI(st)
		return api.SolveResult{
			Heuristic:     label,
			Allocation:    wire.Allocation,
			Phi1:          wire.Phi1,
			PerApp:        wire.PerApp,
			ExpectedTimes: wire.ExpectedTimes,
			Instance:      p.echo,
		}, nil
	})
}

// handleSimulate validates a Stage-II request eagerly and enqueues the
// Monte-Carlo evaluation of the fixed allocation under one case.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.SimulateRequest](w, r)
	if !ok {
		return
	}
	p, err := resolveProblem(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Allocation) == 0 {
		writeError(w, http.StatusBadRequest, "allocation is required")
		return
	}
	alloc := api.ToAllocation(req.Allocation)
	if err := alloc.Validate(p.sys, p.batch); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var techs []dls.Technique
	if len(req.Techniques) == 0 {
		techs = core.RobustRAS()
	} else {
		for _, name := range req.Techniques {
			t, ok := dls.Get(strings.TrimSpace(name))
			if !ok {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown technique %q (have %s)",
					name, strings.Join(dls.Names(), ", ")))
				return
			}
			techs = append(techs, t)
		}
	}
	c, err := p.resolveCase(req.Case)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := s.stageII(p.deadline, req.Seed, req.Reps)
	cfg.PMFBackend = backend
	if req.Overhead != nil {
		cfg.Overhead = *req.Overhead
	}
	if req.IterCV != nil {
		cfg.IterCV = *req.IterCV
	}
	if req.TimeSteps > 0 {
		cfg.TimeSteps = req.TimeSteps
	}
	f := &core.Framework{Sys: p.sys, Batch: p.batch, Deadline: p.deadline}
	var key cache.Key
	var info *api.CacheInfo
	if s.opts.Cache != nil {
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindSimulate))
		instanceField(hk, p)
		for _, as := range alloc {
			hk.Int(as.Type).Int(as.Procs)
		}
		for _, t := range techs {
			hk.String(t.Name)
		}
		hk.String(c.Name).Int(cfg.Reps).Uint64(req.Seed)
		hk.Float64(cfg.Overhead).Float64(cfg.IterCV).Int(cfg.TimeSteps)
		hk.String(backend.String())
		key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(key); ok {
			s.acceptCached(w, api.KindSimulate, key, doc)
			return
		}
		info = &api.CacheInfo{Key: key.String()}
		cfg.Cache = s.opts.Cache
	}
	s.accept(w, api.KindSimulate, true, key, info, func(ctx context.Context, prog *tracing.Progress) (any, error) {
		run := cfg
		run.Progress = prog
		cr, err := f.RunCaseContext(ctx, alloc, techs, c, run)
		if err != nil {
			return nil, err
		}
		return api.SimulateResult{CaseResult: api.FromCaseResult(cr), Instance: p.echo}, nil
	})
}

// handleScenario validates a full framework request eagerly and
// enqueues the dual-stage run over every availability case.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[api.ScenarioRequest](w, r)
	if !ok {
		return
	}
	p, err := resolveProblem(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scenario := req.Scenario
	if scenario == 0 {
		scenario = 4
	}
	sc, err := core.BuildScenario(scenario, req.IM, req.RAS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ra.SetWorkers(sc.IM, s.workersFor(req.Workers))
	backend, err := s.backendFor(req.PMFBackend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	f := &core.Framework{Sys: p.sys, Batch: p.batch, Deadline: p.deadline}
	if err := f.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := s.stageII(p.deadline, req.Seed, req.Reps)
	cfg.PMFBackend = backend
	cases := p.cases
	var key cache.Key
	var info *api.CacheInfo
	if s.opts.Cache != nil {
		// sc.Name encodes the resolved scenario: the paper scenarios
		// have unique labels and custom ones embed the IM and technique
		// names, so two requests resolving differently can never share
		// a key.
		hk := cache.NewHasher("cdsf-result-v1")
		hk.String(string(api.KindScenario))
		instanceField(hk, p)
		hk.String(sc.Name).Int(cfg.Reps).Uint64(req.Seed).String(backend.String())
		key = hk.Sum()
		if doc, ok := s.opts.Cache.GetResult(key); ok {
			s.acceptCached(w, api.KindScenario, key, doc)
			return
		}
		info = &api.CacheInfo{Key: key.String()}
		cfg.Cache = s.opts.Cache
	}
	s.accept(w, api.KindScenario, true, key, info, func(ctx context.Context, prog *tracing.Progress) (any, error) {
		run := cfg
		run.Progress = prog
		res, err := f.RunScenarioContext(ctx, sc, cases, run)
		if err != nil {
			return nil, err
		}
		if info != nil {
			info.WarmHits, info.WarmMisses = res.WarmHits, res.WarmMisses
		}
		wire := api.FromScenarioResult(res)
		wire.Instance = p.echo
		return wire, nil
	})
}

// handleJobs lists jobs, optionally filtered by ?state=queued,running.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var states map[api.JobState]bool
	if vals, ok := r.URL.Query()["state"]; ok {
		states = map[api.JobState]bool{}
		for _, v := range vals {
			for _, part := range strings.Split(v, ",") {
				st := api.JobState(strings.TrimSpace(part))
				switch st {
				case api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCancelled:
					states[st] = true
				default:
					writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q", part))
					return
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, api.JobList{Jobs: s.list(states)})
}

// handleJob polls one job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(j))
}

// handleCancel cancels one job. A job cancelled while queued (or
// already terminal) answers 200 with its final envelope; a running job
// answers 202 — its context is cancelled and the engine drains, so the
// client polls until the state flips to cancelled.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	env, ok := s.cancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	status := http.StatusOK
	if env.State == api.JobRunning {
		status = http.StatusAccepted
	}
	writeJSON(w, status, env)
}

// handleHealth reports liveness as a structured document: drain state,
// queue and executor saturation, lifetime job counts, and — when the
// server runs with a solve cache — the cache hit counters. "ok" flips
// to "draining" once admission has stopped, so a load balancer keying
// on the status string stops routing during shutdown.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	reg := s.opts.Metrics
	h := api.Health{
		Status:        "ok",
		Version:       api.Version,
		Draining:      s.Draining(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Inflight:      int(s.inflight.Load()),
		Executors:     s.opts.Executors,
		Jobs: api.HealthJobs{
			Submitted: reg.Counter("server.jobs_submitted").Value(),
			Done:      reg.Counter("server.jobs_done").Value(),
			Failed:    reg.Counter("server.jobs_failed").Value(),
			Cancelled: reg.Counter("server.jobs_cancelled").Value(),
			Rejected:  reg.Counter("server.jobs_rejected").Value(),
		},
	}
	if h.Draining {
		h.Status = "draining"
	}
	if s.opts.Cache != nil {
		h.Cache = &api.HealthCache{
			ResultHits:   reg.Counter("cache.result_hits").Value(),
			ResultMisses: reg.Counter("cache.result_misses").Value(),
			TableHits:    reg.Counter("cache.table_hits").Value(),
			TableMisses:  reg.Counter("cache.table_misses").Value(),
		}
	}
	writeJSON(w, http.StatusOK, h)
}

package server

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/metrics"
)

// overflow submits one more long job than the server can hold and
// returns the 429 response.
func overflow(t *testing.T, base string) *http.Response {
	t.Helper()
	var apiErr api.Error
	resp := post(t, base+"/v1/simulate", longSimulate(), &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	return resp
}

// fillServer occupies the single executor and every queue slot with
// long-running jobs.
func fillServer(t *testing.T, s *Server, ts string, queueSlots int) {
	t.Helper()
	var running api.Job
	post(t, ts+"/v1/simulate", longSimulate(), &running)
	waitState(t, ts, running.ID, api.JobRunning)
	for i := 0; i < queueSlots; i++ {
		var queued api.Job
		if resp := post(t, ts+"/v1/simulate", longSimulate(), &queued); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestRetryAfterScalesWithBacklog is the regression test for the
// hardcoded Retry-After: the estimate is queue depth times the rolling
// mean of recent job wall times (floor 1s), so a deeper backlog pushes
// clients back further.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	// No wall-time history: the floor answers 1, the old behaviour.
	s1, ts1 := newTestServer(t, Options{Queue: 1, Executors: 1})
	fillServer(t, s1, ts1.URL, 1)
	if got := overflow(t, ts1.URL).Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After with no history = %q, want %q", got, "1")
	}

	// A 2s mean over a depth-1 backlog: ceil(1 x 2s) = 2.
	s2, ts2 := newTestServer(t, Options{Queue: 1, Executors: 1})
	for i := 0; i < 3; i++ {
		s2.recordWall(2 * time.Second)
	}
	fillServer(t, s2, ts2.URL, 1)
	shallow := overflow(t, ts2.URL).Header.Get("Retry-After")
	if shallow != "2" {
		t.Errorf("Retry-After at depth 1 = %q, want %q", shallow, "2")
	}

	// The same mean over a depth-3 backlog: ceil(3 x 2s) = 6 > 2.
	s3, ts3 := newTestServer(t, Options{Queue: 3, Executors: 1})
	for i := 0; i < 3; i++ {
		s3.recordWall(2 * time.Second)
	}
	fillServer(t, s3, ts3.URL, 3)
	deep := overflow(t, ts3.URL).Header.Get("Retry-After")
	if deep != "6" {
		t.Errorf("Retry-After at depth 3 = %q, want %q", deep, "6")
	}
}

func TestRetryAfterRollingMean(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	if got := s.meanWall(); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	s.recordWall(1 * time.Second)
	s.recordWall(3 * time.Second)
	if got := s.meanWall(); got != 2*time.Second {
		t.Errorf("mean = %v, want 2s", got)
	}
	// Negative durations (clock weirdness) are ignored.
	s.recordWall(-time.Second)
	if got := s.meanWall(); got != 2*time.Second {
		t.Errorf("mean after negative sample = %v, want 2s", got)
	}
	// The window is rolling: flood with 5s samples and the old 1s/3s
	// fall out.
	for i := 0; i < wallWindow; i++ {
		s.recordWall(5 * time.Second)
	}
	if got := s.meanWall(); got != 5*time.Second {
		t.Errorf("mean after window rollover = %v, want 5s", got)
	}
}

// TestCachedSolveRepeatBitIdentical is the result-tier acceptance
// test: an identical repeat request is answered terminally at
// admission with the exact bytes of the first run.
func TestCachedSolveRepeatBitIdentical(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cache.New(cache.Options{Metrics: reg})
	_, ts := newTestServer(t, Options{Cache: c, Metrics: reg})

	req := api.SolveRequest{Heuristic: "genetic", Seed: 11}
	var first api.Job
	if resp := post(t, ts.URL+"/v1/solve", req, &first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if first.Cache != nil && first.Cache.ResultHit {
		t.Fatal("first submission claimed a result hit")
	}
	done := waitState(t, ts.URL, first.ID, api.JobDone)
	if done.Cache == nil || done.Cache.Key == "" || done.Cache.ResultHit {
		t.Fatalf("finished job cache block = %+v", done.Cache)
	}
	if done.Cache.WarmMisses == 0 {
		t.Errorf("cold solve reported no warm misses: %+v", done.Cache)
	}

	var repeat api.Job
	resp := post(t, ts.URL+"/v1/solve", req, &repeat)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if repeat.State != api.JobDone {
		t.Fatalf("repeat state %s, want done at admission", repeat.State)
	}
	if repeat.Cache == nil || !repeat.Cache.ResultHit || repeat.Cache.Key != done.Cache.Key {
		t.Fatalf("repeat cache block = %+v, want result hit under key %s", repeat.Cache, done.Cache.Key)
	}
	if !bytes.Equal(repeat.Result, done.Result) {
		t.Errorf("cached result bytes differ:\nfirst  %s\nrepeat %s", done.Result, repeat.Result)
	}
	if got := reg.Counter("server.jobs_cached").Value(); got != 1 {
		t.Errorf("server.jobs_cached = %d, want 1", got)
	}
	if got := reg.Counter("cache.result_hits").Value(); got != 1 {
		t.Errorf("cache.result_hits = %d, want 1", got)
	}

	// A different seed is a different key: it must run, not replay.
	var other api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "genetic", Seed: 12}, &other)
	if other.State == api.JobDone {
		t.Error("different seed was served from cache")
	}
	waitState(t, ts.URL, other.ID, api.JobDone)
}

// TestCachedRepeatImmuneToBackpressure pins the admission-time
// short-circuit: a cached repeat never touches the queue, so it
// succeeds even when submissions would otherwise bounce with 429.
func TestCachedRepeatImmuneToBackpressure(t *testing.T) {
	c := cache.New(cache.Options{})
	s, ts := newTestServer(t, Options{Queue: 1, Executors: 1, Cache: c})

	req := api.SolveRequest{Heuristic: "greedy", Seed: 3}
	var first api.Job
	post(t, ts.URL+"/v1/solve", req, &first)
	waitState(t, ts.URL, first.ID, api.JobDone)

	fillServer(t, s, ts.URL, 1)
	overflow(t, ts.URL) // the queue really is full

	var repeat api.Job
	resp := post(t, ts.URL+"/v1/solve", req, &repeat)
	if resp.StatusCode != http.StatusAccepted || repeat.State != api.JobDone {
		t.Fatalf("cached repeat under backpressure: status %d, state %s", resp.StatusCode, repeat.State)
	}
	if repeat.Cache == nil || !repeat.Cache.ResultHit {
		t.Errorf("repeat cache block = %+v", repeat.Cache)
	}
}

// TestCachedRepeatRejectedWhileDraining: the cache must not punch a
// hole through the drain barrier.
func TestCachedRepeatRejectedWhileDraining(t *testing.T) {
	c := cache.New(cache.Options{})
	_, ts := newTestServer(t, Options{Cache: c})
	req := api.SolveRequest{Heuristic: "greedy", Seed: 4}
	var first api.Job
	post(t, ts.URL+"/v1/solve", req, &first)
	waitState(t, ts.URL, first.ID, api.JobDone)

	s2, ts2 := newTestServer(t, Options{Cache: c})
	s2.Drain(0)
	var apiErr api.Error
	if resp := post(t, ts2.URL+"/v1/solve", req, &apiErr); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining cached repeat status %d, want 503", resp.StatusCode)
	}
}

// TestWarmHitsAcrossDeadlines pins the delta-solve path at the server
// layer: a solve differing only in deadline is a result-tier miss but
// re-derives its evaluation table from the warm tier.
func TestWarmHitsAcrossDeadlines(t *testing.T) {
	c := cache.New(cache.Options{})
	_, ts := newTestServer(t, Options{Cache: c})

	var first api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &first)
	done := waitState(t, ts.URL, first.ID, api.JobDone)
	if done.Cache == nil || done.Cache.WarmHits != 0 || done.Cache.WarmMisses == 0 {
		t.Fatalf("cold cache block = %+v", done.Cache)
	}

	var delta api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy", Deadline: 4000}, &delta)
	if delta.State == api.JobDone {
		t.Fatal("different deadline was served from the result tier")
	}
	deltaDone := waitState(t, ts.URL, delta.ID, api.JobDone)
	if deltaDone.Cache == nil || deltaDone.Cache.WarmHits == 0 || deltaDone.Cache.WarmMisses != 0 {
		t.Fatalf("delta cache block = %+v, want pure warm hits", deltaDone.Cache)
	}
}

// TestCachedSimulateAndScenarioRepeat covers the other two endpoints'
// key construction: identical repeats replay bit-identically, and a
// request differing in one knob (reps) misses.
func TestCachedSimulateAndScenarioRepeat(t *testing.T) {
	c := cache.New(cache.Options{})
	_, ts := newTestServer(t, Options{Cache: c})

	sim := api.SimulateRequest{
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Reps:       5,
		Seed:       9,
	}
	var first api.Job
	post(t, ts.URL+"/v1/simulate", sim, &first)
	done := waitState(t, ts.URL, first.ID, api.JobDone)

	var repeat api.Job
	post(t, ts.URL+"/v1/simulate", sim, &repeat)
	if repeat.State != api.JobDone || repeat.Cache == nil || !repeat.Cache.ResultHit {
		t.Fatalf("simulate repeat: state %s, cache %+v", repeat.State, repeat.Cache)
	}
	if !bytes.Equal(repeat.Result, done.Result) {
		t.Error("simulate repeat bytes differ")
	}
	sim.Reps = 6
	var other api.Job
	post(t, ts.URL+"/v1/simulate", sim, &other)
	if other.State == api.JobDone {
		t.Error("different reps was served from cache")
	}
	waitState(t, ts.URL, other.ID, api.JobDone)

	scen := api.ScenarioRequest{Scenario: 1, Reps: 4, Seed: 2}
	var s1 api.Job
	post(t, ts.URL+"/v1/scenario", scen, &s1)
	s1done := waitState(t, ts.URL, s1.ID, api.JobDone)
	if s1done.Cache == nil || s1done.Cache.WarmMisses == 0 {
		t.Errorf("scenario cold cache block = %+v", s1done.Cache)
	}
	var s2 api.Job
	post(t, ts.URL+"/v1/scenario", scen, &s2)
	if s2.State != api.JobDone || s2.Cache == nil || !s2.Cache.ResultHit {
		t.Fatalf("scenario repeat: state %s, cache %+v", s2.State, s2.Cache)
	}
	if !bytes.Equal(s2.Result, s1done.Result) {
		t.Error("scenario repeat bytes differ")
	}
}

// TestCachelessServerOmitsCacheBlock: deployments without -cache keep
// the v0-compatible envelope (no cache field at all).
func TestCachelessServerOmitsCacheBlock(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	if done.Cache != nil {
		t.Errorf("cacheless job carries a cache block: %+v", done.Cache)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/cache"
	"cdsf/internal/config"
	"cdsf/internal/core"
	"cdsf/internal/experiments"
	"cdsf/internal/metrics"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/tracing"
)

// newTestServer starts a server and an httptest front end, both torn
// down (with immediate job cancellation) when the test ends.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post submits a request body and decodes the response into out (when
// non-nil), returning the raw response for header/status checks.
func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// getJob polls one job.
func getJob(t *testing.T, base, id string) api.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var j api.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitState polls until the job reaches want (terminal states also stop
// the wait so a failed job reports its error instead of timing out).
func waitState(t *testing.T, base, id string, want api.JobState) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := getJob(t, base, id)
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return api.Job{}
}

// loadPaperInstance parses the checked-in paper instance document.
func loadPaperInstance(t *testing.T) *config.Instance {
	t.Helper()
	f, err := os.Open("../../examples/instances/paper.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := config.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// longSimulate returns a request that keeps an executor busy until
// cancelled: millions of repetitions of the cheapest technique.
func longSimulate() api.SimulateRequest {
	return api.SimulateRequest{
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Reps:       2_000_000,
	}
}

func TestSolveJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var j api.Job
	resp := post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if want := "/v1/jobs/" + j.ID; resp.Header.Get("Location") != want {
		t.Errorf("Location %q, want %q", resp.Header.Get("Location"), want)
	}
	if j.Kind != api.KindSolve || j.State.Terminal() {
		t.Fatalf("fresh job: %+v", j)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	if done.Started == nil || done.Finished == nil {
		t.Error("done job missing timestamps")
	}
	var res api.SolveResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Heuristic == "" || len(res.Allocation) != 3 || res.Phi1 <= 0 || res.Phi1 > 1 {
		t.Errorf("suspicious solve result: %+v", res)
	}
	if res.Instance != nil {
		t.Error("paper-default job echoed an instance")
	}
}

// TestSolveBitIdentical is the acceptance check: a seeded POST /v1/solve
// must produce exactly the result of the equivalent direct library
// call, allocation and floats alike.
func TestSolveBitIdentical(t *testing.T) {
	inst := loadPaperInstance(t)
	_, ts := newTestServer(t, Options{})
	var j api.Job
	resp := post(t, ts.URL+"/v1/solve", api.SolveRequest{
		Instance: inst, Heuristic: "genetic", Seed: 7, Workers: 3,
	}, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	var got api.SolveResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}

	sys, batch, deadline, err := config.Build(inst)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ra.ByName("genetic")
	if err != nil {
		t.Fatal(err)
	}
	ra.SetSeed(h, 7)
	ra.SetWorkers(h, 3)
	al, err := ra.SolveContext(context.Background(), h, &ra.Problem{Sys: sys, Batch: batch, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if !al.Equal(api.ToAllocation(got.Allocation)) {
		t.Errorf("service allocation %v != direct %v", got.Allocation, api.FromAllocation(al))
	}
	st, err := robustness.EvaluateStageI(sys, batch, al, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi1 != st.Phi1 {
		t.Errorf("service phi1 %v != direct %v", got.Phi1, st.Phi1)
	}
	for i := range st.PerApp {
		if got.PerApp[i] != st.PerApp[i] || got.ExpectedTimes[i] != st.ExpectedTimes[i] {
			t.Errorf("app %d: service (%v, %v) != direct (%v, %v)",
				i, got.PerApp[i], got.ExpectedTimes[i], st.PerApp[i], st.ExpectedTimes[i])
		}
	}
	if got.Instance == nil {
		t.Error("submitted instance was not echoed")
	}
}

// TestSolveGridBackend submits a solve under the grid backend: the
// job must complete and, at the paper's scale, agree with the sparse
// exhaustive optimum's allocation.
func TestSolveGridBackend(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var j api.Job
	resp := post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "exhaustive", PMFBackend: "grid"}, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	var grid api.SolveResult
	if err := json.Unmarshal(done.Result, &grid); err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "exhaustive"}, &j)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done = waitState(t, ts.URL, j.ID, api.JobDone)
	var sparse api.SolveResult
	if err := json.Unmarshal(done.Result, &sparse); err != nil {
		t.Fatal(err)
	}
	if !api.ToAllocation(grid.Allocation).Equal(api.ToAllocation(sparse.Allocation)) {
		t.Errorf("grid allocation %v != sparse %v", grid.Allocation, sparse.Allocation)
	}
	if diff := grid.Phi1 - sparse.Phi1; diff > 0.01 || diff < -0.01 {
		t.Errorf("grid phi1 %v vs sparse %v beyond the quantization bound", grid.Phi1, sparse.Phi1)
	}
}

func TestSimulateJobMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := api.SimulateRequest{
		Allocation: []api.Assignment{{Type: 0, Procs: 4}, {Type: 1, Procs: 4}, {Type: 1, Procs: 4}},
		Techniques: []string{"STATIC"},
		Case:       "Case 2",
		Reps:       3,
		Seed:       42,
	}
	var j api.Job
	if resp := post(t, ts.URL+"/v1/simulate", req, &j); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	var got api.SimulateResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}

	f := experiments.Framework()
	cfg := core.DefaultStageII(f.Deadline, 42)
	cfg.Reps = 3
	var c core.Case
	for _, cc := range experiments.Cases() {
		if cc.Name == "Case 2" {
			c = cc
		}
	}
	cr, err := f.RunCaseContext(context.Background(), api.ToAllocation(req.Allocation),
		core.NaiveRAS(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := api.FromCaseResult(cr)
	gotJSON, _ := json.Marshal(got.CaseResult)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service simulate differs from direct call:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// The job's final progress board accounts for every replication:
	// 3 apps x 1 technique x 3 reps.
	if done.Progress == nil {
		t.Fatal("simulate job reported no progress")
	}
	if done.Progress.Replications.Planned != 9 || done.Progress.Replications.Done != 9 {
		t.Errorf("replications %+v, want 9/9", done.Progress.Replications)
	}
}

func TestScenarioJobMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := api.ScenarioRequest{Scenario: 1, Reps: 2, Seed: 11}
	var j api.Job
	if resp := post(t, ts.URL+"/v1/scenario", req, &j); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	done := waitState(t, ts.URL, j.ID, api.JobDone)
	var got api.ScenarioResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}

	f := experiments.Framework()
	sc, err := core.BuildScenario(1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultStageII(f.Deadline, 11)
	cfg.Reps = 2
	res, err := f.RunScenarioContext(context.Background(), sc, experiments.Cases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := api.FromScenarioResult(res)
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service scenario differs from direct call:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if len(got.Cases) != 4 {
		t.Errorf("evaluated %d cases, want 4", len(got.Cases))
	}
}

func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Options{Queue: 1, Executors: 1})

	// First job occupies the single executor...
	var running api.Job
	post(t, ts.URL+"/v1/simulate", longSimulate(), &running)
	waitState(t, ts.URL, running.ID, api.JobRunning)
	// ...second fills the single queue slot...
	var queued api.Job
	if resp := post(t, ts.URL+"/v1/simulate", longSimulate(), &queued); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status %d, want 202", resp.StatusCode)
	}
	// ...third must bounce with 429 + Retry-After.
	var apiErr api.Error
	resp := post(t, ts.URL+"/v1/simulate", longSimulate(), &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if apiErr.Message == "" {
		t.Error("429 without error body")
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Queue: 4, Executors: 1})
	var j api.Job
	post(t, ts.URL+"/v1/simulate", longSimulate(), &j)
	waitState(t, ts.URL, j.ID, api.JobRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job status %d, want 202", resp.StatusCode)
	}
	final := waitState(t, ts.URL, j.ID, api.JobCancelled)
	if final.Error == "" {
		t.Error("cancelled job has no error message")
	}
	if final.Result != nil {
		t.Error("cancelled job has a result")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Queue: 4, Executors: 1})
	var running, queued api.Job
	post(t, ts.URL+"/v1/simulate", longSimulate(), &running)
	waitState(t, ts.URL, running.ID, api.JobRunning)
	post(t, ts.URL+"/v1/simulate", longSimulate(), &queued)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final api.Job
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued job status %d, want 200", resp.StatusCode)
	}
	if final.State != api.JobCancelled {
		t.Fatalf("queued job state %s after DELETE, want cancelled", final.State)
	}
	// Idempotent: cancelling a terminal job answers 200 and changes
	// nothing.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("second DELETE status %d, want 200", resp2.StatusCode)
	}
}

func TestListJobsAndFilters(t *testing.T) {
	_, ts := newTestServer(t, Options{Queue: 4, Executors: 1})
	var a, b api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &a)
	waitState(t, ts.URL, a.ID, api.JobDone)
	post(t, ts.URL+"/v1/simulate", longSimulate(), &b)
	waitState(t, ts.URL, b.ID, api.JobRunning)

	var all api.JobList
	resp := getInto(t, ts.URL+"/v1/jobs", &all)
	if resp.StatusCode != http.StatusOK || len(all.Jobs) != 2 {
		t.Fatalf("list: status %d, %d jobs", resp.StatusCode, len(all.Jobs))
	}
	if all.Jobs[0].ID != a.ID || all.Jobs[1].ID != b.ID {
		t.Error("list not in submission order")
	}

	var runningOnly api.JobList
	getInto(t, ts.URL+"/v1/jobs?state=running", &runningOnly)
	if len(runningOnly.Jobs) != 1 || runningOnly.Jobs[0].ID != b.ID {
		t.Errorf("state=running filter returned %+v", runningOnly.Jobs)
	}
	var both api.JobList
	getInto(t, ts.URL+"/v1/jobs?state=done,running", &both)
	if len(both.Jobs) != 2 {
		t.Errorf("state=done,running filter returned %d jobs", len(both.Jobs))
	}
	resp, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr api.Error
	_ = json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus state filter status %d, want 400", resp.StatusCode)
	}
	if apiErr.Message == "" {
		t.Error("bogus state filter returned no error body")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	checkStatus := func(path string, body string, want int) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr api.Error
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("POST %s %q: status %d, want %d", path, body, resp.StatusCode, want)
		}
		if apiErr.Message == "" {
			t.Errorf("POST %s %q: no error body", path, body)
		}
	}
	checkStatus("/v1/solve", "{not json", http.StatusBadRequest)
	checkStatus("/v1/solve", `{"bogusField": 1}`, http.StatusBadRequest)
	checkStatus("/v1/solve", `{"heuristic": "nope"}`, http.StatusBadRequest)
	checkStatus("/v1/simulate", `{}`, http.StatusBadRequest) // allocation required
	checkStatus("/v1/simulate", `{"allocation": [{"type": 0, "procs": 100}, {"type": 0, "procs": 1}, {"type": 0, "procs": 1}]}`, http.StatusBadRequest)
	checkStatus("/v1/simulate", `{"allocation": [{"type": 0, "procs": 2}, {"type": 1, "procs": 4}, {"type": 1, "procs": 4}], "techniques": ["NOPE"]}`, http.StatusBadRequest)
	checkStatus("/v1/simulate", `{"allocation": [{"type": 0, "procs": 2}, {"type": 1, "procs": 4}, {"type": 1, "procs": 4}], "case": "nope"}`, http.StatusBadRequest)
	checkStatus("/v1/scenario", `{"scenario": 9}`, http.StatusBadRequest)
	checkStatus("/v1/scenario", `{"ras": ["NOPE"]}`, http.StatusBadRequest)
	checkStatus("/v1/solve", `{"pmf_backend": "nope"}`, http.StatusBadRequest)
	checkStatus("/v1/scenario", `{"pmf_backend": "nope"}`, http.StatusBadRequest)

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status %d, want 405", resp.StatusCode)
	}
}

func TestDrainRejectsAndCancels(t *testing.T) {
	s := New(Options{Queue: 4, Executors: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var running, queued api.Job
	post(t, ts.URL+"/v1/simulate", longSimulate(), &running)
	waitState(t, ts.URL, running.ID, api.JobRunning)
	post(t, ts.URL+"/v1/simulate", longSimulate(), &queued)

	start := time.Now()
	s.Drain(50 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain took %v", elapsed)
	}
	if !s.Draining() {
		t.Error("server not draining after Drain")
	}

	// Everything reached a terminal state: the queued job cancelled
	// without running, the running job cancelled via its context.
	if st := getJob(t, ts.URL, queued.ID).State; st != api.JobCancelled {
		t.Errorf("queued job state %s after drain, want cancelled", st)
	}
	if st := getJob(t, ts.URL, running.ID).State; st != api.JobCancelled {
		t.Errorf("running job state %s after drain, want cancelled", st)
	}

	// New submissions bounce with 503.
	resp := post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining status %d, want 503", resp.StatusCode)
	}

	// Drain is idempotent.
	s.Drain(0)
}

func TestDrainWaitsForShortJobs(t *testing.T) {
	s := New(Options{Queue: 4, Executors: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// A few hundred repetitions: long enough to still be running when
	// Drain starts, short enough to finish well within the timeout.
	req := longSimulate()
	req.Reps = 500
	var j api.Job
	post(t, ts.URL+"/v1/simulate", req, &j)
	waitState(t, ts.URL, j.ID, api.JobRunning)
	s.Drain(2 * time.Minute)
	if st := getJob(t, ts.URL, j.ID).State; st != api.JobDone {
		t.Errorf("short job state %s after generous drain, want done", st)
	}
}

func TestDebugEndpointsMounted(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := tracing.New()
	s, ts := newTestServer(t, Options{Metrics: reg, Tracer: tr})

	var j api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &j)
	waitState(t, ts.URL, j.ID, api.JobDone)

	for _, path := range []string{"/metrics", "/metrics?format=prom", "/progress", "/trace", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["server.jobs_submitted"] != 1 || snap.Counters["server.jobs_done"] != 1 {
		t.Errorf("job counters missing from registry: %+v", snap.Counters)
	}
	_ = s
}

func TestHealthz(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Options{Queue: 4, Executors: 2, Metrics: reg, Cache: cache.New(cache.Options{Metrics: reg})})
	var h api.Health
	resp := getInto(t, ts.URL+"/v1/healthz", &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Version != api.Version || h.Draining {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, h)
	}
	if h.QueueCapacity != 4 || h.Executors != 2 {
		t.Errorf("healthz capacity/executors = %d/%d, want 4/2", h.QueueCapacity, h.Executors)
	}
	if h.Cache == nil {
		t.Fatal("healthz: no cache block despite a configured cache")
	}

	// Run the same solve twice: the second replays from cache, and the
	// job and cache tallies show up in the health document.
	var a, b api.Job
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &a)
	waitState(t, ts.URL, a.ID, api.JobDone)
	post(t, ts.URL+"/v1/solve", api.SolveRequest{Heuristic: "greedy"}, &b)
	waitState(t, ts.URL, b.ID, api.JobDone)
	getInto(t, ts.URL+"/v1/healthz", &h)
	if h.Jobs.Submitted != 2 || h.Jobs.Done != 2 {
		t.Errorf("healthz jobs = %+v, want 2 submitted / 2 done", h.Jobs)
	}
	if h.Cache.ResultHits != 1 || h.Cache.ResultMisses != 1 {
		t.Errorf("healthz cache = %+v, want 1 hit / 1 miss", *h.Cache)
	}

	// Draining flips the status.
	s.Drain(0)
	getInto(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "draining" || !h.Draining {
		t.Errorf("healthz while draining: %+v", h)
	}
}

// getInto GETs a URL and decodes the body into out when non-nil.
func getInto(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

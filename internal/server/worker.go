package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cdsf/internal/api"
	"cdsf/internal/events"
	"cdsf/internal/log"
	"cdsf/internal/metrics"
	"cdsf/internal/store"
)

// This file is the coordinator half of worker mode: a registry of
// worker peers (cdsfd processes that POST /v1/workers here and re-post
// as heartbeats) and the remote execution path the executors take when
// live peers exist.
//
// Placement is consistent hashing: each peer owns ringReplicas virtual
// points on a 64-bit ring and a job lands on the first live point at
// or after the hash of its kind+request bytes. Adding or removing one
// worker therefore only moves the jobs that hashed to it, and a
// byte-identical request always lands on the same worker while the
// cohort is stable — which keeps that worker's solve cache warm for it.
//
// Liveness is lazy (DESIGN.md §12): a peer is alive while its last
// heartbeat is younger than the timeout; there is no sweeper goroutine.
// Placement skips dead peers, and an executor polling a dead peer
// reassigns the lease inline: the job never left the executor, so
// reassignment is a new `assigned` record and a dispatch to the next
// live point on the ring — no re-queue, no second executor.
//
// The protocol is the ordinary v1 API: the coordinator POSTs the job's
// retained request document to the worker, polls GET /v1/jobs/{id},
// and DELETEs on cancellation. Workers are plain cdsfd servers; they
// do not know they are workers.

// ringReplicas is the number of virtual ring points per peer: enough
// to spread load evenly across a handful of workers, cheap to rebuild.
const ringReplicas = 64

// remotePollInterval is how often the coordinator polls a worker for a
// dispatched job's state.
const remotePollInterval = 100 * time.Millisecond

// remoteFailures is how many consecutive poll failures it takes to
// declare the worker lost (transient blips survive; a dead process
// does not).
const remoteFailures = 3

// errWorkerLost marks dispatch errors that mean the worker, not the
// job, failed: the lease is reassigned to another peer.
var errWorkerLost = errors.New("worker lost")

// peer is one registered worker.
type peer struct {
	name       string
	addr       string
	lastBeat   time.Time
	leased     map[string]bool
	dispatched int64
	completed  int64
}

// ringPoint is one virtual node: a hash position owned by a peer.
type ringPoint struct {
	h    uint64
	name string
}

// peerSet is the worker registry plus its consistent-hash ring.
type peerSet struct {
	timeout time.Duration
	metrics *metrics.Registry
	logger  *log.Logger

	mu    sync.Mutex
	peers map[string]*peer
	ring  []ringPoint
}

func newPeerSet(timeout time.Duration, reg *metrics.Registry, logger *log.Logger) *peerSet {
	return &peerSet{timeout: timeout, metrics: reg, logger: logger, peers: map[string]*peer{}}
}

// register adds or heartbeats a peer; a new peer or a changed address
// rebuilds the ring.
func (ps *peerSet) register(name, addr string) {
	now := time.Now()
	ps.mu.Lock()
	p, ok := ps.peers[name]
	if !ok {
		p = &peer{name: name, leased: map[string]bool{}}
		ps.peers[name] = p
	}
	rebuild := !ok || p.addr != addr
	p.addr = addr
	p.lastBeat = now
	if rebuild {
		ps.rebuildLocked()
	}
	ps.mu.Unlock()
	ps.metrics.Counter("worker.heartbeats").Inc()
	if rebuild {
		ps.logger.Info("worker registered", log.F("worker", name), log.F("addr", addr))
	}
}

// remove deregisters a peer; false if it was never registered.
func (ps *peerSet) remove(name string) bool {
	ps.mu.Lock()
	_, ok := ps.peers[name]
	if ok {
		delete(ps.peers, name)
		ps.rebuildLocked()
	}
	ps.mu.Unlock()
	if ok {
		ps.logger.Info("worker deregistered", log.F("worker", name))
	}
	return ok
}

// rebuildLocked recomputes the virtual-node ring. Callers hold ps.mu.
func (ps *peerSet) rebuildLocked() {
	ps.ring = ps.ring[:0]
	for name := range ps.peers {
		for i := 0; i < ringReplicas; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", name, i)
			ps.ring = append(ps.ring, ringPoint{h: h.Sum64(), name: name})
		}
	}
	sort.Slice(ps.ring, func(i, j int) bool { return ps.ring[i].h < ps.ring[j].h })
}

// aliveLocked reports whether a peer's heartbeat is fresh.
func (ps *peerSet) aliveLocked(p *peer, now time.Time) bool {
	return now.Sub(p.lastBeat) <= ps.timeout
}

// alive reports whether the named peer is registered and heartbeating.
func (ps *peerSet) alive(name string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[name]
	return ok && ps.aliveLocked(p, time.Now())
}

// pick walks the ring from the key's position and returns the first
// live, not-excluded peer (name and address snapshot), or ok=false
// when no such peer exists — the caller then runs the job locally.
func (ps *peerSet) pick(key uint64, exclude map[string]bool) (name, addr string, ok bool) {
	now := time.Now()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.ring) == 0 {
		return "", "", false
	}
	start := sort.Search(len(ps.ring), func(i int) bool { return ps.ring[i].h >= key })
	seen := map[string]bool{}
	for i := 0; i < len(ps.ring); i++ {
		pt := ps.ring[(start+i)%len(ps.ring)]
		if seen[pt.name] {
			continue
		}
		seen[pt.name] = true
		if exclude[pt.name] {
			continue
		}
		p := ps.peers[pt.name]
		if p == nil || !ps.aliveLocked(p, now) {
			continue
		}
		return p.name, p.addr, true
	}
	return "", "", false
}

// lease/complete/release track which jobs a peer currently holds.
func (ps *peerSet) lease(name, jobID string) {
	ps.mu.Lock()
	if p := ps.peers[name]; p != nil {
		p.leased[jobID] = true
		p.dispatched++
	}
	ps.mu.Unlock()
}

func (ps *peerSet) complete(name, jobID string) {
	ps.mu.Lock()
	if p := ps.peers[name]; p != nil {
		delete(p.leased, jobID)
		p.completed++
	}
	ps.mu.Unlock()
}

func (ps *peerSet) release(name, jobID string) {
	ps.mu.Lock()
	if p := ps.peers[name]; p != nil {
		delete(p.leased, jobID)
	}
	ps.mu.Unlock()
}

// statuses snapshots every peer for /v1/workers and /v1/healthz,
// sorted by name.
func (ps *peerSet) statuses(now time.Time) []api.WorkerStatus {
	ps.mu.Lock()
	out := make([]api.WorkerStatus, 0, len(ps.peers))
	for _, p := range ps.peers {
		out = append(out, api.WorkerStatus{
			Name:                 p.name,
			Addr:                 p.addr,
			Alive:                ps.aliveLocked(p, now),
			LastHeartbeatSeconds: now.Sub(p.lastBeat).Seconds(),
			Leased:               len(p.leased),
			Dispatched:           p.dispatched,
			Completed:            p.completed,
		})
	}
	ps.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// placementKey hashes a job's identity — kind plus the canonical
// request bytes — onto the ring, so byte-identical requests always
// land on the same worker.
func placementKey(kind api.JobKind, request []byte) uint64 {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(request)
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// remoteClient is the HTTP client for coordinator->worker calls: the
// per-request timeout covers submissions and polls (jobs themselves
// may run far longer — they are polled, not awaited).
var remoteClient = &http.Client{Timeout: 15 * time.Second}

// runRemote runs a job on a worker peer when one is live. ran=false
// means no peer took the job (none registered, none alive, or all
// excluded after failures) and the caller runs it locally. When
// ran=true the job finished remotely: raw holds the compacted result
// bytes on success, and err carries a cancellation or the remote
// failure otherwise.
//
// Worker death — detected by failed polls, a lost job id, or a missed
// heartbeat — reassigns the lease inline: an `assigned` record with an
// empty node releases the lease in the store, the dead peer is
// excluded, and the ring yields the next candidate.
func (s *Server) runRemote(ctx context.Context, j *job) (raw []byte, node string, ran bool, err error) {
	if j.request == nil {
		return nil, "", false, nil
	}
	exclude := map[string]bool{}
	key := placementKey(j.kind, j.request)
	for {
		name, addr, ok := s.peers.pick(key, exclude)
		if !ok {
			return nil, "", false, nil
		}
		s.peers.lease(name, j.id)
		_ = s.store.Append(store.Record{Job: j.id, Type: events.TypeAssigned, Node: name})
		j.journal.Record(events.Event{Type: events.TypeAssigned, Detail: name})
		s.opts.Metrics.Counter("worker.dispatched").Inc()
		s.opts.Logger.Info("job dispatched to worker", log.F("job", j.id), log.F("worker", name))

		raw, err := s.dispatchOnce(ctx, j, name, addr)
		if errors.Is(err, errWorkerLost) {
			s.peers.release(name, j.id)
			_ = s.store.Append(store.Record{Job: j.id, Type: events.TypeAssigned, Node: "",
				Detail: fmt.Sprintf("lease reassigned from %s: %v", name, err)})
			j.journal.Record(events.Event{Type: events.TypeAssigned,
				Detail: fmt.Sprintf("lease reassigned from %s", name)})
			s.opts.Metrics.Counter("worker.reassigned").Inc()
			s.opts.Logger.Warn("worker lost, reassigning lease",
				log.F("job", j.id), log.F("worker", name), log.F("error", err.Error()))
			exclude[name] = true
			continue
		}
		if err == nil {
			s.peers.complete(name, j.id)
			s.opts.Metrics.Counter("worker.completed").Inc()
		} else {
			s.peers.release(name, j.id)
		}
		return raw, name, true, err
	}
}

// dispatchOnce submits a job to one worker and polls it to a terminal
// state. Errors wrapping errWorkerLost mean the worker failed and the
// job should move; any other error is the job's own outcome.
func (s *Server) dispatchOnce(ctx context.Context, j *job, name, addr string) ([]byte, error) {
	var path string
	switch j.kind {
	case api.KindSolve:
		path = "/v1/solve"
	case api.KindSimulate:
		path = "/v1/simulate"
	case api.KindScenario:
		path = "/v1/scenario"
	default:
		return nil, fmt.Errorf("unknown job kind %q", j.kind)
	}
	var sub api.Job
	status, err := s.remoteCall(ctx, http.MethodPost, addr+path, j.request, &sub)
	if err != nil {
		return nil, fmt.Errorf("%w: submitting to %s: %v", errWorkerLost, name, err)
	}
	if status != http.StatusAccepted {
		// 429/503/5xx: the worker is full, draining, or broken — move
		// the job. A 400 would be a coordinator bug (the request was
		// validated here first) and is reported as such either way.
		return nil, fmt.Errorf("%w: %s answered %d", errWorkerLost, name, status)
	}

	jobURL := addr + "/v1/jobs/" + sub.ID
	failures := 0
	for {
		select {
		case <-ctx.Done():
			// Best-effort remote cancel, then propagate the local
			// cancellation (drain or client DELETE).
			cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = s.remoteCall(cancelCtx, http.MethodDelete, jobURL, nil, nil)
			cancel()
			return nil, ctx.Err()
		case <-time.After(remotePollInterval):
		}
		if !s.peers.alive(name) {
			return nil, fmt.Errorf("%w: %s stopped heartbeating", errWorkerLost, name)
		}
		var env api.Job
		status, err := s.remoteCall(ctx, http.MethodGet, jobURL, nil, &env)
		if err != nil || status == http.StatusNotFound {
			// A 404 means the worker restarted and lost the job.
			failures++
			if failures >= remoteFailures {
				return nil, fmt.Errorf("%w: polling %s: status %d, %v", errWorkerLost, name, status, err)
			}
			continue
		}
		failures = 0
		if status != http.StatusOK {
			return nil, fmt.Errorf("%w: %s answered %d to a poll", errWorkerLost, name, status)
		}
		switch env.State {
		case api.JobDone:
			// Compact the (indent-formatted) response body back to the
			// canonical marshaled bytes, so a remote result is
			// bit-identical to a local run of the same request.
			var buf bytes.Buffer
			if err := json.Compact(&buf, env.Result); err != nil {
				return nil, fmt.Errorf("%w: %s returned an unparsable result: %v", errWorkerLost, name, err)
			}
			return buf.Bytes(), nil
		case api.JobFailed:
			// The job itself failed (deterministically — it would fail
			// anywhere): this is the job's outcome, not the worker's.
			return nil, errors.New(env.Error)
		case api.JobCancelled:
			// The worker drained or something cancelled the job there;
			// nothing was lost, so run it elsewhere.
			return nil, fmt.Errorf("%w: %s cancelled the job (draining?)", errWorkerLost, name)
		}
	}
}

// remoteCall performs one coordinator->worker HTTP exchange, decoding
// the response into out when it is non-nil and the body is JSON.
func (s *Server) remoteCall(ctx context.Context, method, url string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := remoteClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

package server

import (
	"fmt"
	"net/http"
	"time"

	"cdsf/internal/log"
)

// This file implements the HTTP-layer RED metrics (Rate, Errors,
// Duration) every v1 and debug-mux route is wrapped in:
//
//   - http.requests.<route>.<status>   per-route/status counters — the
//     rate and error view in one family (4xx/5xx statuses are the
//     errors);
//   - http.latency_seconds.<route>     fixed-bucket histograms,
//     visible as cumulative le buckets in /metrics?format=prom;
//   - http.inflight                    requests currently in a handler;
//   - server.queue_depth, server.jobs_inflight
//     admission-side gauges refreshed on every request (and on every
//     queue transition), so the saturation view is current even
//     between jobs.
//
// The middleware reads clocks and counters only — never request or
// response bodies — so instrumented responses are byte-identical to
// uninstrumented ones.

// latencyBounds are the fixed histogram bucket upper bounds, in
// seconds. Solve jobs admit in microseconds and the debug exports run
// milliseconds-to-seconds, so the buckets span 1ms to 30s.
var latencyBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// statusWriter captures the response status for the RED counters. It
// forwards Flush so the SSE handler can stream through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming;
// the SSE handler checks for http.Flusher through this wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route handler in the RED middleware. The
// route's histogram and the shared gauges are resolved once at mount
// time (registry lookups take a mutex); only the per-status counter is
// looked up per request, because the status is not known until the
// handler returns.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.opts.Metrics
	hist := reg.Histogram("http.latency_seconds."+route, latencyBounds)
	inflight := reg.Gauge("http.inflight")
	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Set(float64(s.httpInflight.Add(1)))
		s.queueDepth.Set(float64(len(s.queue)))
		s.inflightG.Set(float64(s.inflight.Load()))
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		elapsed := time.Since(t0)
		inflight.Set(float64(s.httpInflight.Add(-1)))
		if sw.status == 0 {
			// The handler wrote neither header nor body.
			sw.status = http.StatusOK
		}
		hist.Observe(elapsed.Seconds())
		reg.Counter(fmt.Sprintf("http.requests.%s.%d", route, sw.status)).Inc()
		s.opts.Logger.Debug("http request",
			log.F("route", route), log.F("method", r.Method), log.F("path", r.URL.Path),
			log.F("status", sw.status), log.F("elapsed_seconds", elapsed.Seconds()))
	}
}

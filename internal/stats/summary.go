package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if len(xs) == 0.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (type-7 estimator). It panics on an empty
// slice or p outside [0,1]. xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, p)
}

// QuantileSorted is Quantile for input already sorted ascending; it
// avoids the copy-and-sort, so callers that query many quantiles of
// the same data can sort once. It panics on an empty slice or p outside
// [0,1].
func QuantileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of [0,1]", p))
	}
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	i := int(math.Floor(h))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	return s[i] + (h-float64(i))*(s[i+1]-s[i])
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm). The adaptive DLS techniques use one per worker to estimate
// per-iteration execution moments from observed chunk times.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddWeighted folds an observation that represents k identical
// measurements (e.g. a chunk of k iterations whose per-iteration time
// averaged x). The variance contribution treats the k measurements as
// all equal to x, which underestimates spread slightly but keeps the
// estimator stable for the adaptive schedulers.
func (w *Welford) AddWeighted(x float64, k int) {
	for i := 0; i < k; i++ {
		w.Add(x)
	}
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any observation.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the running population variance, or NaN before any
// observation.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Merge combines another accumulator into w (Chan et al. parallel
// update), leaving other unchanged.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	d := other.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += other.m2 + d*d*n1*n2/tot
	w.n += other.n
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
// It panics on empty samples.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	d := 0.0
	for i < len(a) && j < len(b) {
		// Process one distinct value, consuming all its ties from both
		// samples, then compare the empirical CDFs.
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSStatisticAgainstCDF returns the one-sample KS statistic of xs
// against a reference CDF.
func KSStatisticAgainstCDF(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		panic("stats: KSStatisticAgainstCDF of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSCritical returns the approximate critical value of the two-sample
// KS statistic at the given significance level (alpha in {0.10, 0.05,
// 0.01}) for sample sizes n and m — the large-sample c(alpha) *
// sqrt((n+m)/(n*m)) approximation.
func KSCritical(alpha float64, n, m int) (float64, error) {
	var c float64
	switch {
	case math.Abs(alpha-0.10) < 1e-9:
		c = 1.22
	case math.Abs(alpha-0.05) < 1e-9:
		c = 1.36
	case math.Abs(alpha-0.01) < 1e-9:
		c = 1.63
	default:
		return 0, fmt.Errorf("stats: unsupported KS significance level %v", alpha)
	}
	if n <= 0 || m <= 0 {
		return 0, fmt.Errorf("stats: invalid KS sample sizes %d, %d", n, m)
	}
	return c * math.Sqrt(float64(n+m)/float64(n*m)), nil
}

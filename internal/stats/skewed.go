package stats

import (
	"fmt"
	"math"

	"cdsf/internal/rng"
)

// This file adds the right-skewed distributions the DLS literature uses
// for irregular iteration times: log-normal and gamma. Scientific loop
// bodies rarely have symmetric costs — occasional slow iterations
// (cache misses, deeper recursion, more solver steps) produce long
// right tails that stress non-adaptive chunking harder than a normal
// model does.

// LogNormal is the distribution of exp(N(MuLog, SigmaLog^2)).
type LogNormal struct {
	MuLog    float64
	SigmaLog float64
}

// NewLogNormal returns the log-normal with the given *log-space*
// parameters. It panics if sigmaLog is not positive.
func NewLogNormal(muLog, sigmaLog float64) LogNormal {
	if sigmaLog <= 0 {
		panic(fmt.Sprintf("stats: non-positive sigmaLog %v", sigmaLog))
	}
	return LogNormal{MuLog: muLog, SigmaLog: sigmaLog}
}

// LogNormalFromMoments returns the log-normal with the given mean and
// standard deviation (real-space). It panics unless both are positive.
func LogNormalFromMoments(mean, stddev float64) LogNormal {
	if mean <= 0 || stddev <= 0 {
		panic(fmt.Sprintf("stats: invalid log-normal moments (%v, %v)", mean, stddev))
	}
	cv2 := (stddev / mean) * (stddev / mean)
	sigma2 := math.Log(1 + cv2)
	return LogNormal{
		MuLog:    math.Log(mean) - sigma2/2,
		SigmaLog: math.Sqrt(sigma2),
	}
}

// Mean returns exp(MuLog + SigmaLog^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2)
}

// Var returns (exp(SigmaLog^2)-1) * exp(2MuLog + SigmaLog^2).
func (l LogNormal) Var() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return (math.Exp(s2) - 1) * math.Exp(2*l.MuLog+s2)
}

// CDF returns P(X <= x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.MuLog, Sigma: l.SigmaLog}.CDF(math.Log(x))
}

// Quantile returns the p-quantile for p in (0,1).
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.MuLog, Sigma: l.SigmaLog}.Quantile(p))
}

// Sample draws one variate.
func (l LogNormal) Sample(r *rng.Source) float64 {
	return math.Exp(l.MuLog + l.SigmaLog*r.NormFloat64())
}

// Gamma is the gamma distribution with shape K and scale Theta.
type Gamma struct {
	K     float64
	Theta float64
}

// NewGamma returns a Gamma with the given shape and scale. It panics
// unless both are positive.
func NewGamma(k, theta float64) Gamma {
	if k <= 0 || theta <= 0 {
		panic(fmt.Sprintf("stats: invalid gamma parameters (%v, %v)", k, theta))
	}
	return Gamma{K: k, Theta: theta}
}

// GammaFromMoments returns the Gamma with the given mean and standard
// deviation. It panics unless both are positive.
func GammaFromMoments(mean, stddev float64) Gamma {
	if mean <= 0 || stddev <= 0 {
		panic(fmt.Sprintf("stats: invalid gamma moments (%v, %v)", mean, stddev))
	}
	v := stddev * stddev
	return Gamma{K: mean * mean / v, Theta: v / mean}
}

// Mean returns K*Theta.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// Var returns K*Theta^2.
func (g Gamma) Var() float64 { return g.K * g.Theta * g.Theta }

// CDF returns the regularized lower incomplete gamma P(K, x/Theta),
// evaluated by series/continued-fraction expansion (Numerical Recipes
// gammp).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(g.K, x/g.Theta)
}

// Quantile returns the p-quantile for p in (0,1) by bisection on the
// CDF (robust, ~1e-10 accuracy).
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	// Bracket: mean + enough standard deviations.
	lo, hi := 0.0, g.Mean()+20*math.Sqrt(g.Var())
	for g.CDF(hi) < p {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Sample draws one variate with the Marsaglia-Tsang squeeze method
// (boosted for K < 1).
func (g Gamma) Sample(r *rng.Source) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// X_k = X_{k+1} * U^{1/k}.
		boost = math.Pow(r.Float64()+1e-300, 1/k)
		k++
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Theta
		}
	}
}

// regularizedGammaP computes P(a, x) = gamma_lower(a, x) / Gamma(a).
func regularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic(fmt.Sprintf("stats: regularizedGammaP(%v, %v)", a, x))
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma)
}

// gammaContinuedFraction evaluates Q(a,x) = 1 - P(a,x) by Lentz's
// continued fraction.
func gammaContinuedFraction(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma) * h
}

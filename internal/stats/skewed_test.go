package stats

import (
	"math"
	"testing"

	"cdsf/internal/rng"
)

func TestLogNormalMoments(t *testing.T) {
	l := LogNormalFromMoments(100, 30)
	if math.Abs(l.Mean()-100) > 1e-9 {
		t.Errorf("mean = %v", l.Mean())
	}
	if math.Abs(math.Sqrt(l.Var())-30) > 1e-9 {
		t.Errorf("stddev = %v", math.Sqrt(l.Var()))
	}
}

func TestLogNormalCDFQuantileRoundTrip(t *testing.T) {
	l := NewLogNormal(1, 0.5)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := l.Quantile(p)
		if got := l.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if l.CDF(-1) != 0 || l.CDF(0) != 0 {
		t.Error("CDF not zero at non-positive x")
	}
}

func TestLogNormalSampleMoments(t *testing.T) {
	l := LogNormalFromMoments(50, 20)
	r := rng.New(3)
	var w Welford
	for i := 0; i < 200000; i++ {
		x := l.Sample(r)
		if x <= 0 {
			t.Fatalf("non-positive sample %v", x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-50) > 0.5 {
		t.Errorf("sample mean = %v", w.Mean())
	}
	if math.Abs(w.StdDev()-20) > 0.5 {
		t.Errorf("sample stddev = %v", w.StdDev())
	}
}

func TestGammaMoments(t *testing.T) {
	g := GammaFromMoments(100, 30)
	if math.Abs(g.Mean()-100) > 1e-9 {
		t.Errorf("mean = %v", g.Mean())
	}
	if math.Abs(math.Sqrt(g.Var())-30) > 1e-9 {
		t.Errorf("stddev = %v", math.Sqrt(g.Var()))
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(k=1, theta=1) is Exponential(1): CDF(x) = 1 - e^-x.
	g := NewGamma(1, 1)
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := g.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Gamma(k=2, theta=1): CDF(x) = 1 - (1+x) e^-x.
	g2 := NewGamma(2, 1)
	for _, x := range []float64{0.5, 1, 3} {
		want := 1 - (1+x)*math.Exp(-x)
		if got := g2.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("k=2 CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	g := NewGamma(3.7, 2.1)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	for _, tc := range []struct{ k, theta float64 }{
		{0.5, 2}, {1, 1}, {4, 0.5}, {20, 3},
	} {
		g := NewGamma(tc.k, tc.theta)
		r := rng.New(7)
		var w Welford
		for i := 0; i < 200000; i++ {
			x := g.Sample(r)
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
			w.Add(x)
		}
		if math.Abs(w.Mean()-g.Mean()) > 0.02*g.Mean()+0.01 {
			t.Errorf("k=%v: sample mean %v, want %v", tc.k, w.Mean(), g.Mean())
		}
		relVar := math.Abs(w.Var()-g.Var()) / g.Var()
		if relVar > 0.05 {
			t.Errorf("k=%v: sample var %v, want %v", tc.k, w.Var(), g.Var())
		}
	}
}

func TestSkewedImplementDist(t *testing.T) {
	var _ Dist = LogNormal{MuLog: 0, SigmaLog: 1}
	var _ Dist = Gamma{K: 1, Theta: 1}
}

// Package stats is the statistics substrate of the CDSF reproduction.
//
// It provides the small set of probability distributions, summary
// statistics, and histogram utilities that the paper's stochastic model
// requires: normal distributions for single-processor execution times
// (paper Table III generates PMFs by sampling Normal(mu, mu/10)),
// exponential inter-arrival times for the batch substrate, and streaming
// summaries for the runtime simulator. Only the standard library is used.
package stats

import (
	"fmt"
	"math"

	"cdsf/internal/rng"
)

// Dist is a continuous univariate probability distribution.
type Dist interface {
	// Mean returns the expected value of the distribution.
	Mean() float64
	// Var returns the variance of the distribution.
	Var() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in (0,1).
	Quantile(p float64) float64
	// Sample draws one variate using r.
	Sample(r *rng.Source) float64
}

// Normal is the normal (Gaussian) distribution N(Mu, Sigma^2).
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal with the given mean and standard deviation.
// It panics if sigma is not positive.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: non-positive sigma %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Var returns Sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x) using the error function.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile. It panics unless 0 < p < 1.
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	return n.Mu + n.Sigma*math.Sqrt2*erfinv(2*p-1)
}

// Sample draws one normal variate.
func (n Normal) Sample(r *rng.Source) float64 {
	return n.Mu + n.Sigma*r.NormFloat64()
}

// erfinv returns the inverse error function of x in (-1, 1), accurate to
// roughly 1e-12 after one Newton refinement of a rational initial guess
// (Giles, 2010).
func erfinv(x float64) float64 {
	if x <= -1 || x >= 1 {
		panic(fmt.Sprintf("stats: erfinv argument %v out of (-1,1)", x))
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 6.25 {
		w -= 3.125
		p = -3.6444120640178196996e-21
		p = -1.685059138182016589e-19 + p*w
		p = 1.2858480715256400167e-18 + p*w
		p = 1.115787767802518096e-17 + p*w
		p = -1.333171662854620906e-16 + p*w
		p = 2.0972767875968561637e-17 + p*w
		p = 6.6376381343583238325e-15 + p*w
		p = -4.0545662729752068639e-14 + p*w
		p = -8.1519341976054721522e-14 + p*w
		p = 2.6335093153082322977e-12 + p*w
		p = -1.2975133253453532498e-11 + p*w
		p = -5.4154120542946279317e-11 + p*w
		p = 1.051212273321532285e-09 + p*w
		p = -4.1126339803469836976e-09 + p*w
		p = -2.9070369957882005086e-08 + p*w
		p = 4.2347877827932403518e-07 + p*w
		p = -1.3654692000834678645e-06 + p*w
		p = -1.3882523362786468719e-05 + p*w
		p = 0.0001867342080340571352 + p*w
		p = -0.00074070253416626697512 + p*w
		p = -0.0060336708714301490533 + p*w
		p = 0.24015818242558961693 + p*w
		p = 1.6536545626831027356 + p*w
	} else if w < 16 {
		w = math.Sqrt(w) - 3.25
		p = 2.2137376921775787049e-09
		p = 9.0756561938885390979e-08 + p*w
		p = -2.7517406297064545428e-07 + p*w
		p = 1.8239629214389227755e-08 + p*w
		p = 1.5027403968909827627e-06 + p*w
		p = -4.013867526981545969e-06 + p*w
		p = 2.9234449089955446044e-06 + p*w
		p = 1.2475304481671778723e-05 + p*w
		p = -4.7318229009055733981e-05 + p*w
		p = 6.8284851459573175448e-05 + p*w
		p = 2.4031110387097893999e-05 + p*w
		p = -0.0003550375203628474796 + p*w
		p = 0.00095328937973738049703 + p*w
		p = -0.0016882755560235047313 + p*w
		p = 0.0024914420961078508066 + p*w
		p = -0.0037512085075692412107 + p*w
		p = 0.005370914553590063617 + p*w
		p = 1.0052589676941592334 + p*w
		p = 3.0838856104922207635 + p*w
	} else {
		w = math.Sqrt(w) - 5
		p = -2.7109920616438573243e-11
		p = -2.5556418169965252055e-10 + p*w
		p = 1.5076572693500548083e-09 + p*w
		p = -3.7894654401267369937e-09 + p*w
		p = 7.6157012080783393804e-09 + p*w
		p = -1.4960026627149240478e-08 + p*w
		p = 2.9147953450901080826e-08 + p*w
		p = -6.7711997758452339498e-08 + p*w
		p = 2.2900482228026654717e-07 + p*w
		p = -9.9298272942317002539e-07 + p*w
		p = 4.5260625972231537039e-06 + p*w
		p = -1.9681778105531670567e-05 + p*w
		p = 7.5995277030017761139e-05 + p*w
		p = -0.00021503011930044477347 + p*w
		p = -0.00013871931833623122026 + p*w
		p = 1.0103004648645343977 + p*w
		p = 4.8499064014085844221 + p*w
	}
	y := p * x
	// One Newton step: f(y) = erf(y) - x.
	e := math.Erf(y) - x
	y -= e / (2 / math.Sqrt(math.Pi) * math.Exp(-y*y))
	return y
}

// Uniform is the continuous uniform distribution on [A, B).
type Uniform struct {
	A, B float64
}

// NewUniform returns a Uniform on [a, b). It panics if b <= a.
func NewUniform(a, b float64) Uniform {
	if b <= a {
		panic(fmt.Sprintf("stats: uniform bounds [%v,%v) empty", a, b))
	}
	return Uniform{A: a, B: b}
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Var returns (B-A)^2/12.
func (u Uniform) Var() float64 { d := u.B - u.A; return d * d / 12 }

// CDF returns P(X <= x).
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x < u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Quantile returns the p-quantile. It panics unless 0 <= p <= 1.
func (u Uniform) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of [0,1]", p))
	}
	return u.A + p*(u.B-u.A)
}

// Sample draws one uniform variate.
func (u Uniform) Sample(r *rng.Source) float64 {
	return u.A + r.Float64()*(u.B-u.A)
}

// Exponential is the exponential distribution with rate Lambda.
type Exponential struct {
	Lambda float64
}

// NewExponential returns an Exponential with the given rate. It panics if
// lambda is not positive.
func NewExponential(lambda float64) Exponential {
	if lambda <= 0 {
		panic(fmt.Sprintf("stats: non-positive rate %v", lambda))
	}
	return Exponential{Lambda: lambda}
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Var returns 1/Lambda^2.
func (e Exponential) Var() float64 { return 1 / (e.Lambda * e.Lambda) }

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*x)
}

// Quantile returns the p-quantile. It panics unless 0 <= p < 1.
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of [0,1)", p))
	}
	return -math.Log(1-p) / e.Lambda
}

// Sample draws one exponential variate.
func (e Exponential) Sample(r *rng.Source) float64 {
	return r.ExpFloat64() / e.Lambda
}

// Truncated wraps a distribution, rejecting samples outside [Lo, Hi].
// It is used to keep sampled execution times strictly positive without
// distorting the bulk of the distribution (the paper's sigma = mu/10
// normals put ~1e-23 mass below zero, but a simulator must never see a
// non-positive service time).
type Truncated struct {
	Dist   Dist
	Lo, Hi float64
}

// Mean returns the mean of the underlying distribution. For the narrow
// truncations used in this repository the difference is negligible.
func (t Truncated) Mean() float64 { return t.Dist.Mean() }

// Var returns the variance of the underlying distribution.
func (t Truncated) Var() float64 { return t.Dist.Var() }

// CDF returns the truncated CDF.
func (t Truncated) CDF(x float64) float64 {
	lo, hi := t.Dist.CDF(t.Lo), t.Dist.CDF(t.Hi)
	if hi <= lo {
		panic("stats: truncation removes all mass")
	}
	switch {
	case x < t.Lo:
		return 0
	case x > t.Hi:
		return 1
	default:
		return (t.Dist.CDF(x) - lo) / (hi - lo)
	}
}

// Quantile returns the truncated p-quantile.
func (t Truncated) Quantile(p float64) float64 {
	lo, hi := t.Dist.CDF(t.Lo), t.Dist.CDF(t.Hi)
	return t.Dist.Quantile(lo + p*(hi-lo))
}

// Sample draws by rejection; for the narrow truncations used here the
// expected number of attempts is ~1.
func (t Truncated) Sample(r *rng.Source) float64 {
	for i := 0; i < 1000; i++ {
		x := t.Dist.Sample(r)
		if x >= t.Lo && x <= t.Hi {
			return x
		}
	}
	// Pathological truncation: fall back to the quantile transform.
	return t.Quantile(r.Float64())
}

package stats

import (
	"math"
	"testing"

	"cdsf/internal/rng"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 30}
	if d := KSStatistic(xs, ys); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSSameDistributionBelowCritical(t *testing.T) {
	n := NewNormal(5, 2)
	r := rng.New(11)
	const m = 2000
	xs := make([]float64, m)
	ys := make([]float64, m)
	for i := 0; i < m; i++ {
		xs[i] = n.Sample(r)
		ys[i] = n.Sample(r)
	}
	d := KSStatistic(xs, ys)
	crit, err := KSCritical(0.05, m, m)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("same-distribution KS %v above critical %v", d, crit)
	}
	// A clearly shifted distribution must exceed the critical value.
	for i := range ys {
		ys[i] += 1
	}
	if d := KSStatistic(xs, ys); d <= crit {
		t.Errorf("shifted-distribution KS %v below critical %v", d, crit)
	}
}

func TestKSAgainstCDF(t *testing.T) {
	n := NewNormal(0, 1)
	r := rng.New(3)
	const m = 3000
	xs := make([]float64, m)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	d := KSStatisticAgainstCDF(xs, n.CDF)
	crit, _ := KSCritical(0.05, m, m)
	if d > crit {
		t.Errorf("one-sample KS %v above critical %v", d, crit)
	}
	// Against the wrong CDF it must blow up.
	wrong := NewNormal(2, 1)
	if d := KSStatisticAgainstCDF(xs, wrong.CDF); d < 0.5 {
		t.Errorf("KS against wrong CDF only %v", d)
	}
}

func TestKSCriticalErrors(t *testing.T) {
	if _, err := KSCritical(0.2, 10, 10); err == nil {
		t.Error("unsupported alpha accepted")
	}
	if _, err := KSCritical(0.05, 0, 10); err == nil {
		t.Error("zero sample size accepted")
	}
	c10, _ := KSCritical(0.10, 100, 100)
	c01, _ := KSCritical(0.01, 100, 100)
	if c10 >= c01 {
		t.Error("critical values not ordered by significance")
	}
}

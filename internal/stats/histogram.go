package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width binning of a sample, used to turn empirical
// (or sampled) execution times into the discrete PMFs the paper's Stage-I
// model operates on.
type Histogram struct {
	// Lo is the left edge of the first bin.
	Lo float64
	// Width is the width of every bin; it is positive.
	Width float64
	// Counts holds the number of observations per bin.
	Counts []int
	// Total is the number of observations across all bins.
	Total int
}

// NewHistogram builds a histogram of xs with the given number of bins
// spanning [min(xs), max(xs)]. It panics if xs is empty or bins < 1.
func NewHistogram(xs []float64, bins int) *Histogram {
	if len(xs) == 0 {
		panic("stats: NewHistogram of empty sample")
	}
	if bins < 1 {
		panic(fmt.Sprintf("stats: NewHistogram with %d bins", bins))
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1 // degenerate sample: single bin of width 1/bins
	}
	h := &Histogram{
		Lo:     lo,
		Width:  (hi - lo) / float64(bins),
		Counts: make([]int, bins),
	}
	for _, x := range xs {
		h.Observe(x)
	}
	return h
}

// Observe adds one observation, clamping into the edge bins so that no
// data is silently dropped.
func (h *Histogram) Observe(x float64) {
	i := int(math.Floor((x - h.Lo) / h.Width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Probabilities returns the normalized per-bin relative frequencies.
// It panics if the histogram is empty.
func (h *Histogram) Probabilities() []float64 {
	if h.Total == 0 {
		panic("stats: Probabilities of empty histogram")
	}
	p := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.Total)
	}
	return p
}

// Mode returns the center of the most populated bin (ties broken toward
// the lower bin).
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs. It panics on an empty sample.
func NewECDF(xs []float64) *ECDF {
	if len(xs) == 0 {
		panic("stats: NewECDF of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample that is <= x.
func (e *ECDF) At(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/rng"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance = %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev = %v", s)
	}
}

func TestEmptySliceNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty-slice summaries should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Error("min/max wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated (it would be if sorted in place).
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Var()-Variance(xs)) > 1e-9 {
		t.Errorf("welford var %v != batch %v", w.Var(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Errorf("welford N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(4)
	var a, b, all Welford
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		a.Add(x)
		all.Add(x)
	}
	for i := 0; i < 300; i++ {
		x := r.Float64()*2 - 5
		b.Add(x)
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Errorf("merged var %v != %v", a.Var(), all.Var())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 {
		t.Errorf("merge into empty: mean %v", b.Mean())
	}
}

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 10 {
		t.Errorf("counts sum = %d", sum)
	}
	ps := h.Probabilities()
	total := 0.0
	for _, p := range ps {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", total)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram([]float64{0, 10}, 2)
	h.Observe(-5)
	h.Observe(100)
	if h.Counts[0] != 2 || h.Counts[1] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Total != 3 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Mode() < 3-1 || h.Mode() > 3+1 {
		t.Errorf("mode = %v for constant sample", h.Mode())
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
}

// TestQuickQuantileBounded property-checks that sample quantiles stay
// within [min, max].
func TestQuickQuantileBounded(t *testing.T) {
	f := func(raw []float64, praw float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			// Bound magnitudes so interpolation differences cannot
			// overflow; simulator times are far below this.
			if !math.IsNaN(x) && math.Abs(x) <= 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := math.Abs(praw)
		p -= math.Floor(p)
		q := Quantile(xs, p)
		return q >= Min(xs)-1e-9 && q <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickWelfordNonNegativeVar property-checks variance >= 0.
func TestQuickWelfordNonNegativeVar(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		for _, x := range raw {
			// Keep magnitudes where (x-mean)^2 cannot overflow float64;
			// the simulator's time values are far below this.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				continue
			}
			w.Add(x)
		}
		return w.N() == 0 || w.Var() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

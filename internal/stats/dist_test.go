package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/rng"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := NewNormal(0, 1)
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := NewNormal(10, 3)
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	n := NewNormal(2, 0.5)
	// Trapezoid integration of the PDF from -inf (effectively mu-8s).
	lo, hi := n.Mu-8*n.Sigma, n.Mu+1.2*n.Sigma
	const steps = 200000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * n.PDF(lo+float64(i)*h)
	}
	integral := sum * h
	if want := n.CDF(hi); math.Abs(integral-want) > 1e-6 {
		t.Errorf("integral of PDF = %v, CDF = %v", integral, want)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	n := NewNormal(5, 2)
	r := rng.New(1)
	const draws = 200000
	var w Welford
	for i := 0; i < draws; i++ {
		w.Add(n.Sample(r))
	}
	if math.Abs(w.Mean()-5) > 0.02 {
		t.Errorf("sample mean = %v, want ~5", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 0.02 {
		t.Errorf("sample stddev = %v, want ~2", w.StdDev())
	}
}

func TestNewNormalPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNormal(1, 0) did not panic")
		}
	}()
	NewNormal(1, 0)
}

func TestErfinvAccuracy(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999, 0.999999} {
		y := erfinv(x)
		if got := math.Erf(y); math.Abs(got-x) > 1e-12 {
			t.Errorf("Erf(erfinv(%v)) = %v", x, got)
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(2, 6)
	if u.Mean() != 4 {
		t.Errorf("mean = %v", u.Mean())
	}
	if math.Abs(u.Var()-16.0/12) > 1e-12 {
		t.Errorf("var = %v", u.Var())
	}
	if u.CDF(1) != 0 || u.CDF(7) != 1 || u.CDF(4) != 0.5 {
		t.Error("uniform CDF wrong")
	}
	if u.Quantile(0.25) != 3 {
		t.Errorf("quantile(0.25) = %v", u.Quantile(0.25))
	}
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < 2 || x >= 6 {
			t.Fatalf("sample %v out of [2,6)", x)
		}
	}
}

func TestExponential(t *testing.T) {
	e := NewExponential(0.5)
	if e.Mean() != 2 {
		t.Errorf("mean = %v", e.Mean())
	}
	if e.Var() != 4 {
		t.Errorf("var = %v", e.Var())
	}
	if got := e.CDF(2); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := e.Quantile(e.CDF(3)); math.Abs(got-3) > 1e-10 {
		t.Errorf("quantile round trip = %v", got)
	}
	r := rng.New(8)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(e.Sample(r))
	}
	if math.Abs(w.Mean()-2) > 0.03 {
		t.Errorf("sample mean = %v, want ~2", w.Mean())
	}
}

func TestTruncatedStaysInBounds(t *testing.T) {
	tr := Truncated{Dist: NewNormal(0, 1), Lo: -1, Hi: 2}
	r := rng.New(3)
	for i := 0; i < 20000; i++ {
		x := tr.Sample(r)
		if x < -1 || x > 2 {
			t.Fatalf("truncated sample %v out of bounds", x)
		}
	}
	if tr.CDF(-1.5) != 0 || tr.CDF(2.5) != 1 {
		t.Error("truncated CDF tails wrong")
	}
	if got := tr.CDF(tr.Quantile(0.3)); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("truncated quantile round trip = %v", got)
	}
}

// TestQuickNormalCDFMonotone property-checks monotonicity of the CDF.
func TestQuickNormalCDFMonotone(t *testing.T) {
	n := NewNormal(0, 1)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return n.CDF(lo) <= n.CDF(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickQuantileInRange property-checks the exponential quantile is
// non-negative and finite for p in [0,1).
func TestQuickQuantileInRange(t *testing.T) {
	e := NewExponential(1.5)
	f := func(raw float64) bool {
		p := math.Abs(raw)
		p -= math.Floor(p) // into [0,1)
		q := e.Quantile(p)
		return q >= 0 && !math.IsInf(q, 0) && !math.IsNaN(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

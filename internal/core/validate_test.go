package core

import (
	"testing"

	"cdsf/internal/sysmodel"
)

func TestValidateStageIMatchesAnalytic(t *testing.T) {
	f := testFramework()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	for i := range f.Batch {
		v, err := f.ValidateStageI(alloc, i, 200, 5)
		if err != nil {
			t.Fatal(err)
		}
		if v.MeanRelativeError() > 0.05 {
			t.Errorf("%s: sim mean %v vs analytic %v (%.1f%% off)",
				v.App, v.SimMean, v.AnalyticMean, v.MeanRelativeError()*100)
		}
		// The discretized analytic CDF and the simulated sample should be
		// close; the KS distance carries discretization plus scheduling
		// granularity, so allow a modest multiple of the critical value.
		if v.KS > 3*v.Critical {
			t.Errorf("%s: KS %v far above critical %v", v.App, v.KS, v.Critical)
		}
		t.Logf("%s: analytic %.1f sim %.1f KS %.3f (crit %.3f)",
			v.App, v.AnalyticMean, v.SimMean, v.KS, v.Critical)
	}
}

func TestValidateStageIErrors(t *testing.T) {
	f := testFramework()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	if _, err := f.ValidateStageI(alloc, 99, 100, 1); err == nil {
		t.Error("out-of-range app accepted")
	}
	if _, err := f.ValidateStageI(alloc, 0, 5, 1); err == nil {
		t.Error("too-few reps accepted")
	}
	bad := sysmodel.Allocation{{Type: 0, Procs: 64}, {Type: 1, Procs: 4}}
	if _, err := f.ValidateStageI(bad, 0, 100, 1); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

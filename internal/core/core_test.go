package core

import (
	"context"
	"math"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func testFramework() *Framework {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 2, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
	}}
	app := func(name string, mu1, mu2 float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          name,
			SerialIters:   50,
			ParallelIters: 950,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(mu1, mu1/10), 60),
				pmf.Discretize(stats.NewNormal(mu2, mu2/10), 60),
			},
		}
	}
	return &Framework{
		Sys:      sys,
		Batch:    sysmodel.Batch{app("a", 900, 1300), app("b", 1600, 1100)},
		Deadline: 1500,
	}
}

func quickCfg(seed uint64) StageIIConfig {
	return StageIIConfig{
		Reps:   5,
		IterCV: 0.2,
		Model: func(p pmf.PMF) availability.Model {
			return availability.Static{PMF: p}
		},
		Seed: seed,
	}
}

func testCases(f *Framework) []Case {
	ref := make([]pmf.PMF, len(f.Sys.Types))
	degraded := make([]pmf.PMF, len(f.Sys.Types))
	for j, t := range f.Sys.Types {
		ref[j] = t.Avail
		degraded[j] = t.Avail.Scale(0.5)
	}
	return []Case{
		{Name: "ref", Avail: ref},
		{Name: "half", Avail: degraded},
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	f := testFramework()
	sc := Scenario{Name: "test", IM: ra.Exhaustive{}, RAS: RobustRAS()}
	res, err := f.RunScenarioContext(context.Background(), sc, testCases(f), quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.StageI.Phi1 <= 0 || res.StageI.Phi1 > 1 {
		t.Errorf("phi1 = %v", res.StageI.Phi1)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("got %d cases", len(res.Cases))
	}
	for _, c := range res.Cases {
		if len(c.PerApp) != 2 {
			t.Fatalf("case %s has %d apps", c.Case.Name, len(c.PerApp))
		}
		for i, outs := range c.PerApp {
			if len(outs) != 4 {
				t.Fatalf("app %d has %d technique outcomes", i, len(outs))
			}
			for _, o := range outs {
				if o.MeanTime <= 0 {
					t.Errorf("%s %s: mean time %v", c.Case.Name, o.Technique, o.MeanTime)
				}
				if o.PrMeet < 0 || o.PrMeet > 1 {
					t.Errorf("PrMeet = %v", o.PrMeet)
				}
			}
		}
	}
	// The reference case must have decrease 0; the degraded one 0.5.
	if res.Cases[0].Decrease != 0 {
		t.Errorf("reference decrease = %v", res.Cases[0].Decrease)
	}
	if math.Abs(res.Cases[1].Decrease-0.5) > 1e-9 {
		t.Errorf("degraded decrease = %v", res.Cases[1].Decrease)
	}
}

func TestDegradedCaseSlower(t *testing.T) {
	f := testFramework()
	sc := Scenario{Name: "test", IM: ra.Exhaustive{}, RAS: NaiveRAS()}
	res, err := f.RunScenarioContext(context.Background(), sc, testCases(f), quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Batch {
		ref := res.Cases[0].PerApp[i][0].MeanTime
		deg := res.Cases[1].PerApp[i][0].MeanTime
		if deg <= ref {
			t.Errorf("app %d: degraded availability not slower (%v vs %v)", i, deg, ref)
		}
	}
}

func TestSystemRobustness(t *testing.T) {
	res := &ScenarioResult{
		StageI: &robustness.StageIResult{Phi1: 0.745},
		Cases: []CaseResult{
			{Decrease: 0, AllMeet: true},
			{Decrease: 0.28, AllMeet: true},
			{Decrease: 0.31, AllMeet: true},
			{Decrease: 0.33, AllMeet: false},
		},
	}
	tuple := SystemRobustness(res)
	if tuple.Rho1 != 0.745 {
		t.Errorf("rho1 = %v", tuple.Rho1)
	}
	if math.Abs(tuple.Rho2-0.31) > 1e-12 {
		t.Errorf("rho2 = %v", tuple.Rho2)
	}
}

func TestPaperScenarios(t *testing.T) {
	scs := PaperScenarios(ra.NaiveLoadBalance{}, ra.Exhaustive{})
	if len(scs) != 4 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	if len(scs[0].RAS) != 1 || scs[0].RAS[0].Name != "STATIC" {
		t.Error("scenario 1 RAS is not {STATIC}")
	}
	if len(scs[3].RAS) != 4 {
		t.Error("scenario 4 RAS is not the robust set")
	}
	if scs[1].IM.Name() != "exhaustive" || scs[2].IM.Name() != "naive" {
		t.Error("scenario IM policies wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	f := testFramework()
	sc := Scenario{Name: "t", IM: ra.Exhaustive{}, RAS: NaiveRAS()}
	bad := quickCfg(1)
	bad.Reps = 0
	if _, err := f.RunScenarioContext(context.Background(), sc, testCases(f), bad); err == nil {
		t.Error("zero reps accepted")
	}
	bad = quickCfg(1)
	bad.IterCV = 0
	if _, err := f.RunScenarioContext(context.Background(), sc, testCases(f), bad); err == nil {
		t.Error("zero IterCV accepted")
	}
	// Mismatched case availability length.
	badCase := []Case{{Name: "x", Avail: []pmf.PMF{pmf.Point(1)}}}
	if _, err := f.RunScenarioContext(context.Background(), sc, badCase, quickCfg(1)); err == nil {
		t.Error("mismatched case accepted")
	}
}

func TestDefaultStageIIValid(t *testing.T) {
	cfg := DefaultStageII(3250, 1)
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Model == nil || !cfg.BestMaster || !cfg.WeightsFromAvail {
		t.Error("default config missing calibrated settings")
	}
	m := cfg.Model(pmf.Point(1))
	if m.Expected() != 1 {
		t.Errorf("model expected availability = %v", m.Expected())
	}
}

func TestDecrease(t *testing.T) {
	f := testFramework()
	cs := testCases(f)
	if got := f.Decrease(cs[0]); got != 0 {
		t.Errorf("reference decrease = %v", got)
	}
	if got := f.Decrease(cs[1]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half decrease = %v", got)
	}
}

func TestSimTolerance(t *testing.T) {
	f := testFramework()
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	cfg := quickCfg(3)
	res, err := f.SimTolerance(alloc, RobustRAS(), cfg, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decrease <= 0 || res.Decrease >= 1 {
		t.Fatalf("tolerance = %v", res.Decrease)
	}
	for i, tech := range res.Technique {
		if tech == "" {
			t.Errorf("no feasible technique recorded for app %d", i)
		}
	}
	t.Logf("simulated tolerance: %.1f%% decrease (techniques %v)", res.Decrease*100, res.Technique)
	// Errors.
	if _, err := f.SimTolerance(alloc, RobustRAS(), cfg, 0, 0.05); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := f.SimTolerance(alloc, RobustRAS(), cfg, 0.5, 0); err == nil {
		t.Error("tol=0 accepted")
	}
	// A hopeless deadline errors out.
	tight := *f
	tight.Deadline = 1
	if _, err := tight.SimTolerance(alloc, RobustRAS(), quickCfg(3), 0.5, 0.05); err == nil {
		t.Error("infeasible instance accepted")
	}
}

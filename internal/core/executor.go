package core

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// SimExecutor executes a whole allocated batch through the Stage-II
// simulator and returns the batch makespan (the maximum application
// completion time). It satisfies batch.Executor, closing the loop
// between the resource-manager substrate and the runtime simulator: the
// paper's system makespan Psi "represents the time when the next batch
// of applications will require resources".
type SimExecutor struct {
	// Technique schedules every application's loop (one instance each).
	Technique dls.Technique
	// Config carries the Stage-II simulation parameters; Reps > 1
	// averages the per-application makespans.
	Config StageIIConfig
	// Avail optionally overrides the per-type availability PMFs used at
	// runtime (indexed like the system's types); nil uses the system's
	// own (i.e. runtime availability equals the Stage-I expectation).
	Avail []pmf.PMF
}

// Execute implements the batch.Executor contract; ctx cancels the
// per-application replication fan-outs.
func (e SimExecutor) Execute(ctx context.Context, sys *sysmodel.System, b sysmodel.Batch, alloc sysmodel.Allocation, seed uint64) (float64, error) {
	if e.Technique.New == nil {
		return 0, fmt.Errorf("core: SimExecutor has no technique")
	}
	if err := e.Config.validate(); err != nil {
		return 0, err
	}
	if err := alloc.Validate(sys, b); err != nil {
		return 0, err
	}
	mkModel := e.Config.Model
	if mkModel == nil {
		mkModel = func(p pmf.PMF) availability.Model { return availability.Static{PMF: p} }
	}
	makespan := 0.0
	for i := range b {
		as := alloc[i]
		avail := sys.Types[as.Type].Avail
		if e.Avail != nil {
			if len(e.Avail) != len(sys.Types) {
				return 0, fmt.Errorf("core: SimExecutor has %d availability PMFs for %d types",
					len(e.Avail), len(sys.Types))
			}
			avail = e.Avail[as.Type]
		}
		iterMean := b[i].ExecTime[as.Type].Mean() / float64(b[i].TotalIters())
		s, err := sim.RunManyContext(ctx, sim.Config{
			SerialIters:      b[i].SerialIters,
			ParallelIters:    b[i].ParallelIters,
			Workers:          as.Procs,
			IterTime:         stats.NewNormal(iterMean, e.Config.IterCV*iterMean),
			Avail:            mkModel(avail),
			Technique:        e.Technique,
			WeightsFromAvail: e.Config.WeightsFromAvail,
			BestMaster:       e.Config.BestMaster,
			Overhead:         e.Config.Overhead,
			Seed:             seed ^ uint64(i)<<32,
		}, e.Config.Reps)
		if err != nil {
			return 0, err
		}
		if m := s.Mean(); m > makespan {
			makespan = m
		}
	}
	return makespan, nil
}

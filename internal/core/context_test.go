package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cdsf/internal/dls"
	"cdsf/internal/ra"
)

func cancelScenario(t *testing.T) Scenario {
	t.Helper()
	fac, ok := dls.Get("FAC")
	if !ok {
		t.Fatal("FAC technique missing")
	}
	return Scenario{Name: "test", IM: ra.Greedy{}, RAS: []dls.Technique{fac}}
}

// A pre-cancelled context aborts RunScenarioContext before any Stage-II
// case completes, wrapping the cause.
func TestRunScenarioContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := testFramework()
	_, err := f.RunScenarioContext(ctx, cancelScenario(t), testCases(f), quickCfg(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// SimExecutor must forward its context into the Stage-II fan-out.
func TestSimExecutorCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := testFramework()
	fac, _ := dls.Get("FAC")
	ex := SimExecutor{Technique: fac, Config: quickCfg(1)}
	al, err := ra.SolveContext(context.Background(), ra.Greedy{}, &ra.Problem{
		Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(ctx, f.Sys, f.Batch, al, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The cancellation error names the case progress so an interrupted run
// is diagnosable.
func TestRunScenarioContextPartialProgressMessage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := testFramework()
	_, err := f.RunScenarioContext(ctx, cancelScenario(t), testCases(f), quickCfg(1))
	if err == nil {
		t.Fatal("cancelled scenario succeeded")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}

package core

import (
	"context"
	"testing"

	"cdsf/internal/batch"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func TestSimExecutorBasics(t *testing.T) {
	f := testFramework()
	af, _ := dls.Get("AF")
	e := SimExecutor{Technique: af, Config: quickCfg(2)}
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	mk, err := e.Execute(context.Background(), f.Sys, f.Batch, alloc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Fatalf("makespan %v", mk)
	}
	// The batch makespan dominates each application's own mean.
	half := SimExecutor{Technique: af, Config: quickCfg(2),
		Avail: []pmf.PMF{f.Sys.Types[0].Avail.Scale(0.5), f.Sys.Types[1].Avail.Scale(0.5)}}
	mkHalf, err := half.Execute(context.Background(), f.Sys, f.Batch, alloc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mkHalf <= mk {
		t.Errorf("halved availability makespan %v <= reference %v", mkHalf, mk)
	}
}

func TestSimExecutorValidation(t *testing.T) {
	f := testFramework()
	af, _ := dls.Get("AF")
	alloc := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	ctx := context.Background()
	if _, err := (SimExecutor{Config: quickCfg(1)}).Execute(ctx, f.Sys, f.Batch, alloc, 1); err == nil {
		t.Error("missing technique accepted")
	}
	bad := SimExecutor{Technique: af, Config: quickCfg(1), Avail: []pmf.PMF{pmf.Point(1)}}
	if _, err := bad.Execute(ctx, f.Sys, f.Batch, alloc, 1); err == nil {
		t.Error("mismatched Avail accepted")
	}
	over := sysmodel.Allocation{{Type: 0, Procs: 4}, {Type: 0, Procs: 4}}
	if _, err := (SimExecutor{Technique: af, Config: quickCfg(1)}).Execute(ctx, f.Sys, f.Batch, over, 1); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

// TestSimExecutorWithResourceManager wires the Stage-II simulator into
// the batch substrate end-to-end.
func TestSimExecutorWithResourceManager(t *testing.T) {
	f := testFramework()
	af, _ := dls.Get("AF")
	res, err := batch.RunContext(context.Background(), batch.Config{
		Sys: f.Sys,
		Arrivals: batch.ArrivalProcess{
			Interarrival: stats.NewExponential(1.0 / 400),
			Templates:    []sysmodel.Application{f.Batch[0], f.Batch[1]},
		},
		Heuristic: ra.Greedy{},
		Deadline:  f.Deadline,
		MaxBatch:  3,
		Jobs:      12,
		Executor:  SimExecutor{Technique: af, Config: quickCfg(5)},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) == 0 {
		t.Fatal("no batches executed")
	}
	for _, b := range res.Batches {
		if b.Makespan <= 0 {
			t.Errorf("batch %d makespan %v", b.Index, b.Makespan)
		}
	}
}

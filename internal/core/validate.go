package core

import (
	"context"
	"fmt"
	"math"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/rng"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// This file cross-validates the two halves of the framework: Stage I
// predicts each application's completion-time distribution analytically
// (parallel-time PMF divided by the availability PMF); Stage II
// observes completion times from the discrete-event simulator. Under
// the conditions Stage I assumes — the whole run governed by one
// availability draw, the application's total work drawn once per run
// from the execution-time PMF (input-data uncertainty is run-level, not
// per-iteration), and a schedule that splits work in proportion to
// processing rates — the two must agree. ValidateStageI measures the
// agreement with a Kolmogorov-Smirnov distance, quantifying how
// faithful the simulator substitution (DESIGN.md) is where the models
// overlap.

// ValidationResult reports the Stage-I vs Stage-II comparison for one
// application.
type ValidationResult struct {
	App string
	// AnalyticMean and SimMean are the two model means.
	AnalyticMean, SimMean float64
	// KS is the one-sample Kolmogorov-Smirnov distance between the
	// simulated makespans and the analytic completion-time CDF.
	KS float64
	// Critical is the 5% critical value for the simulated sample size;
	// KS <= Critical means the simulator is statistically
	// indistinguishable from the analytic model at that level.
	Critical float64
}

// ValidateStageI simulates application i of the framework's batch on
// its assigned processors under Stage-I-compatible conditions — the
// group shares one availability draw per run, the run's total work is
// one draw from the execution-time PMF, WF splits it by oracle weights,
// zero overhead — and compares the makespan sample with the analytic
// completion PMF.
func (f *Framework) ValidateStageI(alloc sysmodel.Allocation, i, reps int, seed uint64) (*ValidationResult, error) {
	if err := alloc.Validate(f.Sys, f.Batch); err != nil {
		return nil, err
	}
	if i < 0 || i >= len(f.Batch) {
		return nil, fmt.Errorf("core: application index %d out of range", i)
	}
	if reps < 10 {
		return nil, fmt.Errorf("core: %d repetitions too few for validation", reps)
	}
	app := &f.Batch[i]
	as := alloc[i]
	exec := app.ExecTime[as.Type]
	avail := f.Sys.Types[as.Type].Avail
	analytic := app.CompletionPMF(as.Type, as.Procs, avail)

	wf, ok := dls.Get("WF")
	if !ok {
		return nil, fmt.Errorf("core: WF technique missing")
	}
	r := rng.New(seed)
	makespans := make([]float64, 0, reps)
	for k := 0; k < reps; k++ {
		// Input-data uncertainty: one total-work draw per run.
		total := exec.Sample(r)
		iterMean := total / float64(app.TotalIters())
		// Availability uncertainty: one group-wide draw per run.
		model := &availability.SharedLoad{
			Shared:      avail,
			Idio:        pmf.Point(1),
			Mix:         1,
			Interval:    analytic.Max() * 100, // constant within a run
			Persistence: 0,
		}
		res, err := sim.RunContext(context.Background(), sim.Config{
			SerialIters:   app.SerialIters,
			ParallelIters: app.ParallelIters,
			Workers:       as.Procs,
			// Near-deterministic iterations: the run-level draw carries
			// the input variability, matching Stage I's model.
			IterTime:         stats.NewNormal(iterMean, 0.02*iterMean),
			Avail:            model,
			Technique:        wf,
			WeightsFromAvail: true,
			Overhead:         0,
			Seed:             r.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		makespans = append(makespans, res.Makespan)
	}
	ks := stats.KSStatisticAgainstCDF(makespans, analytic.PrLE)
	crit, err := stats.KSCritical(0.05, reps, reps)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, m := range makespans {
		sum += m
	}
	return &ValidationResult{
		App:          app.Name,
		AnalyticMean: analytic.Mean(),
		SimMean:      sum / float64(reps),
		KS:           ks,
		Critical:     crit,
	}, nil
}

// MeanRelativeError returns |SimMean - AnalyticMean| / AnalyticMean.
func (v *ValidationResult) MeanRelativeError() float64 {
	return math.Abs(v.SimMean-v.AnalyticMean) / v.AnalyticMean
}

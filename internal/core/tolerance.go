package core

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// SimTolerance generalizes the paper's rho_2 from four discrete cases
// to a continuous quantity: the largest uniform weighted-availability
// decrease under which every application of the allocated batch still
// meets the deadline in simulation (mean makespan criterion), found by
// bisection. The paper's Table I cases probe 28.17%, 30.77%, and
// 32.77%; SimTolerance answers "where exactly is the edge?".

// ToleranceResult reports the bisection outcome.
type ToleranceResult struct {
	// Decrease is the largest tolerable weighted-availability decrease
	// (a fraction; the paper's bracketed percentages).
	Decrease float64
	// Technique[i] is the best deadline-meeting technique for
	// application i at the tolerance point.
	Technique []string
}

// SimTolerance bisects the uniform availability scale on [lo, 1] until
// the feasible/infeasible boundary is localized within tol (in scale
// units). The RAS set supplies the candidate techniques; an application
// "meets" when some technique's mean simulated makespan is within the
// deadline.
func (f *Framework) SimTolerance(alloc sysmodel.Allocation, ras []dls.Technique, cfg StageIIConfig, lo, tol float64) (*ToleranceResult, error) {
	if err := alloc.Validate(f.Sys, f.Batch); err != nil {
		return nil, err
	}
	if lo <= 0 || lo >= 1 {
		return nil, fmt.Errorf("core: lower scale bound %v outside (0,1)", lo)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("core: non-positive tolerance %v", tol)
	}
	feasible := func(scale float64) (bool, []string, error) {
		best := make([]string, len(f.Batch))
		for i := range f.Batch {
			app := &f.Batch[i]
			as := alloc[i]
			avail := f.Sys.Types[as.Type].Avail.Scale(scale)
			mkModel := cfg.Model
			if mkModel == nil {
				mkModel = func(p pmf.PMF) availability.Model { return availability.Static{PMF: p} }
			}
			iterMean := app.ExecTime[as.Type].Mean() / float64(app.TotalIters())
			bestTime := 0.0
			for _, tech := range ras {
				s, err := sim.RunManyContext(context.Background(), sim.Config{
					SerialIters:      app.SerialIters,
					ParallelIters:    app.ParallelIters,
					Workers:          as.Procs,
					IterTime:         stats.NewNormal(iterMean, cfg.IterCV*iterMean),
					Avail:            mkModel(avail),
					Technique:        tech,
					WeightsFromAvail: cfg.WeightsFromAvail,
					BestMaster:       cfg.BestMaster,
					Overhead:         cfg.Overhead,
					Seed:             cfg.Seed ^ uint64(i)<<20,
				}, cfg.Reps)
				if err != nil {
					return false, nil, err
				}
				if m := s.Mean(); m <= f.Deadline && (best[i] == "" || m < bestTime) {
					best[i], bestTime = tech.Name, m
				}
			}
			if best[i] == "" {
				return false, nil, nil
			}
		}
		return true, best, nil
	}

	okHi, bestHi, err := feasible(1)
	if err != nil {
		return nil, err
	}
	if !okHi {
		return nil, fmt.Errorf("core: batch infeasible even at full availability")
	}
	okLo, _, err := feasible(lo)
	if err != nil {
		return nil, err
	}
	loS, hiS := lo, 1.0
	bestTech := bestHi
	if okLo {
		// Feasible down to the probe floor; report that as the bound.
		return &ToleranceResult{Decrease: 1 - lo, Technique: bestHi}, nil
	}
	for hiS-loS > tol {
		mid := (loS + hiS) / 2
		ok, best, err := feasible(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hiS = mid
			bestTech = best
		} else {
			loS = mid
		}
	}
	return &ToleranceResult{Decrease: 1 - hiS, Technique: bestTech}, nil
}

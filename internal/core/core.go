// Package core implements the combined dual-stage framework (CDSF)
// itself: it wires a Stage-I resource allocation heuristic to a Stage-II
// set of dynamic loop scheduling techniques, evaluates the four
// IM x RAS scenarios of the paper's Section IV, and quantifies the
// system robustness tuple (rho_1, rho_2).
//
// The public surface is:
//
//   - Framework: the problem (system, batch, deadline) plus reference
//     availability.
//   - Case: one runtime availability case (the paper's Table I cases).
//   - Scenario: an IM policy paired with a RAS technique set.
//   - RunScenario: Stage I (PMF mathematics) + Stage II (discrete-event
//     simulation per application, technique, and case).
//   - SystemRobustness: (rho_1, rho_2) from a scenario result.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cdsf/internal/availability"
	"cdsf/internal/cache"
	"cdsf/internal/dls"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/robustness"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// Framework is one CDSF problem instance. The System's availability
// PMFs are the reference (expected) availability A-hat that Stage I
// plans against.
type Framework struct {
	Sys      *sysmodel.System
	Batch    sysmodel.Batch
	Deadline float64

	// Edges are optional precedence constraints over the batch (the
	// v1.1 DAG schema): edge {From, To} means application From must
	// finish before To starts. Stage I then optimizes the DAG phi_1
	// (completion PMFs composed along predecessor chains) and Stage II
	// releases each application only when all its predecessors have
	// finished, per replication. Empty means the paper's independent
	// batch, bit-identical to the pre-DAG framework.
	Edges []sysmodel.Edge
}

// Validate checks the instance.
func (f *Framework) Validate() error {
	p := ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline, Edges: f.Edges}
	return p.Validate()
}

// Case is one runtime availability case: a name and one availability
// PMF per processor type. The reference case's PMFs equal the system's.
type Case struct {
	Name  string
	Avail []pmf.PMF
}

// Decrease returns this case's weighted-availability decrease
// 1 - E[A_case]/E[A_hat] relative to the framework's reference system.
func (f *Framework) Decrease(c Case) float64 {
	return robustness.AvailabilityDecrease(f.Sys, f.Sys.WithAvailability(c.Avail))
}

// FallbackCases returns the runtime availability cases evaluated when
// an instance declares none: the reference availability itself plus
// uniform degradations to 80% and 60% of it. The cdsf CLI and the
// scheduling service share this default, so an instance without cases
// behaves identically however it is submitted.
func FallbackCases(sys *sysmodel.System) []Case {
	ref := make([]pmf.PMF, len(sys.Types))
	for j, t := range sys.Types {
		ref[j] = t.Avail
	}
	cases := []Case{{Name: "reference", Avail: ref}}
	for _, scale := range []float64{0.8, 0.6} {
		scaled := make([]pmf.PMF, len(sys.Types))
		for j, t := range sys.Types {
			scaled[j] = t.Avail.Scale(scale)
		}
		cases = append(cases, Case{
			Name:  fmt.Sprintf("scaled %.0f%%", scale*100),
			Avail: scaled,
		})
	}
	return cases
}

// StageIIConfig controls the Stage-II simulations.
type StageIIConfig struct {
	// Reps is the number of independent simulation repetitions per
	// (application, technique, case); must be positive.
	Reps int
	// Overhead is the per-chunk scheduling overhead in time units.
	Overhead float64
	// IterCV is the coefficient of variation of a single iteration's
	// execution time (sigma/mu); must be positive.
	IterCV float64
	// Model builds the availability model for a group of processors
	// from the case's per-type availability PMF. Nil uses
	// availability.Static (one draw per processor per run).
	Model func(p pmf.PMF) availability.Model
	// WeightsFromAvail, when true, hands the DLS technique a-priori
	// worker weights equal to each worker's availability at the start of
	// the run — the "historical load knowledge" WF assumes.
	WeightsFromAvail bool
	// BestMaster, when true, stages the serial phase on the most
	// available processor of the group instead of an arbitrary one.
	BestMaster bool
	// TimeSteps runs each application as a time-stepping loop with this
	// many sweeps (0 or 1 means a single sweep); the deadline then
	// applies to the whole multi-sweep execution.
	TimeSteps int
	// PMFBackend selects the distribution representation of the
	// Stage-I search embedded in a scenario run: the exact sparse
	// pulses (the zero value) or the dense fixed-step grid (see
	// DESIGN.md, "Two PMF backends"). It never affects the Stage-II
	// Monte-Carlo replications, whose seeds and rng streams are
	// backend-independent.
	PMFBackend pmf.Backend
	// Seed drives all Stage-II randomness.
	Seed uint64
	// Metrics optionally receives end-to-end instrumentation: it is
	// threaded into the Stage-I ra.Problem and every Stage-II
	// sim.Config, and RunScenario adds per-scenario wall time and
	// repetition counts. Nil falls back to metrics.Default().
	Metrics *metrics.Registry
	// Tracer optionally receives the scenario's timeline: wall-clock
	// spans for Stage I and the scenario -> case -> application
	// nesting, plus one representative simulated-time chunk timeline
	// per (case, application, technique) cell on hierarchically named
	// lanes. Nil falls back to tracing.Default(). Spans derive only
	// from wall time and finished results, so seeded outputs are
	// bit-identical with tracing on or off.
	Tracer *tracing.Tracer
	// Progress optionally receives scenario/case/replication progress.
	// Nil falls back to tracing.DefaultProgress(), the process-wide
	// board the CLIs install with -debug-addr; the scheduling service
	// wires a per-job board here so concurrent jobs report separately.
	Progress *tracing.Progress
	// Cache optionally shares warm Stage-I evaluation-table
	// distributions across runs (see ra.Problem.Cache): scenarios over
	// the same types and applications reuse one cached distribution set
	// even when the deadline, heuristic, or availability cases differ.
	// Results are bit-identical with or without it. Nil disables
	// sharing.
	Cache *cache.Cache
}

// registry resolves the effective metrics registry for this config.
func (c *StageIIConfig) registry() *metrics.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return metrics.Default()
}

// tracer resolves the effective tracer for this config.
func (c *StageIIConfig) tracer() *tracing.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return tracing.Default()
}

// progress resolves the effective progress board for this config.
func (c *StageIIConfig) progress() *tracing.Progress {
	if c.Progress != nil {
		return c.Progress
	}
	return tracing.DefaultProgress()
}

// DefaultStageII returns the configuration used by the paper
// reproduction, calibrated (see EXPERIMENTS.md) to reproduce the
// paper's qualitative Stage-II results: 60 repetitions, overhead 1 time
// unit, iteration CV 0.3, Markov availability (bursty external load)
// with interval Delta/4 and persistence 0.5, availability-derived WF
// weights, and serial phases staged on the group's most available
// processor.
func DefaultStageII(deadline float64, seed uint64) StageIIConfig {
	return StageIIConfig{
		Reps:     60,
		Overhead: 1,
		IterCV:   0.3,
		Model: func(p pmf.PMF) availability.Model {
			return availability.Markov{PMF: p, Interval: deadline / 4, Persistence: 0.5}
		},
		WeightsFromAvail: true,
		BestMaster:       true,
		Seed:             seed,
	}
}

func (c *StageIIConfig) validate() error {
	if c.Reps <= 0 {
		return fmt.Errorf("core: %d stage-II repetitions", c.Reps)
	}
	if c.IterCV <= 0 {
		return fmt.Errorf("core: non-positive iteration CV %v", c.IterCV)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("core: negative overhead %v", c.Overhead)
	}
	if err := c.PMFBackend.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Scenario pairs a Stage-I policy with a Stage-II technique set — the
// paper's four scenarios are the cross product of {naive, robust} for
// both stages.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// IM is the Stage-I heuristic.
	IM ra.Heuristic
	// RAS is the Stage-II technique set; the best technique per
	// (application, case) is selected a posteriori as in the paper.
	RAS []dls.Technique
}

// NaiveRAS returns {STATIC}.
func NaiveRAS() []dls.Technique {
	t, ok := dls.Get("STATIC")
	if !ok {
		panic("core: STATIC technique missing")
	}
	return []dls.Technique{t}
}

// RobustRAS returns the paper's robust set {FAC, WF, AWF-B, AF}.
func RobustRAS() []dls.Technique { return dls.PaperRobustSet() }

// PaperScenarios returns the paper's four scenarios in order:
// naive-naive, robust-naive, naive-robust, robust-robust, with the
// given IM heuristics for naive and robust Stage I.
func PaperScenarios(naiveIM, robustIM ra.Heuristic) []Scenario {
	return []Scenario{
		{Name: "1) naive IM - naive RAS", IM: naiveIM, RAS: NaiveRAS()},
		{Name: "2) robust IM - naive RAS", IM: robustIM, RAS: NaiveRAS()},
		{Name: "3) naive IM - robust RAS", IM: naiveIM, RAS: RobustRAS()},
		{Name: "4) robust IM - robust RAS", IM: robustIM, RAS: RobustRAS()},
	}
}

// BuildScenario resolves the scenario selection shared by the cdsf CLI
// and the scheduling service: with no custom IM and no RAS names it
// returns one of the paper's four scenarios (naive load balance vs.
// exhaustive Stage I); otherwise a custom scenario pairing the named
// Stage-I heuristic (default exhaustive) with the named Stage-II
// techniques (default the paper's robust set). Heuristic names resolve
// through ra.ByName and technique names through the dls registry, so
// wire names, CLI flags, and report labels cannot drift.
func BuildScenario(scenario int, im string, ras []string) (Scenario, error) {
	if im == "" && len(ras) == 0 {
		if scenario < 1 || scenario > 4 {
			return Scenario{}, fmt.Errorf("core: scenario %d out of 1..4", scenario)
		}
		return PaperScenarios(ra.NaiveLoadBalance{}, ra.Exhaustive{})[scenario-1], nil
	}
	imName := im
	if imName == "" {
		imName = "exhaustive"
	}
	h, err := ra.ByName(imName)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{IM: h}
	if len(ras) == 0 {
		sc.RAS = RobustRAS()
	} else {
		for _, name := range ras {
			t, ok := dls.Get(strings.TrimSpace(name))
			if !ok {
				return Scenario{}, fmt.Errorf("core: unknown technique %q (have %s)",
					name, strings.Join(dls.Names(), ", "))
			}
			sc.RAS = append(sc.RAS, t)
		}
	}
	techNames := make([]string, len(sc.RAS))
	for i, t := range sc.RAS {
		techNames[i] = t.Name
	}
	sc.Name = fmt.Sprintf("custom: %s IM + {%s}", h.Name(), strings.Join(techNames, ","))
	return sc, nil
}

// TechOutcome is the Stage-II result of one (application, technique,
// case) cell.
type TechOutcome struct {
	Technique string
	// MeanTime is the mean simulated application completion time
	// (serial + parallel phases; for a DAG batch it is absolute —
	// release gate plus both phases — so the deadline check compares
	// end-to-end completion).
	MeanTime float64
	// StdDev is the standard deviation across repetitions.
	StdDev float64
	// PrMeet is the fraction of repetitions meeting the deadline.
	PrMeet float64
	// Meets reports whether the mean time satisfies the deadline (the
	// paper's per-figure criterion).
	Meets bool
}

// CaseResult is the Stage-II result of one availability case.
type CaseResult struct {
	Case Case
	// Decrease is 1 - E[A_case]/E[A_hat].
	Decrease float64
	// PerApp[i] lists the outcome of each technique for application i.
	PerApp [][]TechOutcome
	// Best[i] is the technique with the smallest mean time among those
	// meeting the deadline for application i, or "" if none meets it
	// (the paper's Table VI dash).
	Best []string
	// AllMeet reports whether every application had at least one
	// deadline-meeting technique.
	AllMeet bool
}

// ScenarioResult is the full evaluation of one scenario.
type ScenarioResult struct {
	Scenario string
	// StageI carries the allocation, phi_1, and Table-V expected times.
	StageI *robustness.StageIResult
	// Cases holds one CaseResult per evaluated availability case.
	Cases []CaseResult
	// WarmHits/WarmMisses count the Stage-I evaluation-table cells
	// derived from the warm solve cache vs computed from scratch (both
	// zero without a cfg.Cache). They describe how the run was
	// computed, not what it computed, and are not part of the wire
	// result document.
	WarmHits, WarmMisses int64
}

// RunScenarioContext is RunScenario under a context: ctx reaches the
// Stage-I search (through ra.SolveContext) and every Stage-II
// replication fan-out, and is additionally checked between cases, so a
// cancelled scenario drains its worker pools and returns an error
// wrapping ctx.Err(). Uncancelled seeded runs are bit-identical to
// RunScenario.
func (f *Framework) RunScenarioContext(ctx context.Context, sc Scenario, cases []Case, cfg StageIIConfig) (*ScenarioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := cfg.registry()
	var t0 time.Time
	if reg != nil {
		t0 = time.Now()
	}
	tr := cfg.tracer()
	prog := cfg.progress()
	prog.PlanScenarios(1)
	prog.PlanCases(len(cases))
	scenarioRegion := tr.Begin("stage2", sc.Name, "scenario")
	stage1Region := tr.Begin("stage2", "stage1: "+sc.IM.Name(), "stage1")
	prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline, Edges: f.Edges, Backend: cfg.PMFBackend, Metrics: cfg.Metrics, Tracer: cfg.Tracer, Cache: cfg.Cache}
	alloc, err := ra.SolveContext(ctx, sc.IM, prob)
	stage1Region.End()
	if err != nil {
		return nil, fmt.Errorf("core: stage I (%s): %w", sc.IM.Name(), err)
	}
	stage1, err := robustness.EvaluateStageIDAG(f.Sys, f.Batch, f.Edges, alloc, f.Deadline)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{Scenario: sc.Name, StageI: stage1}
	res.WarmHits, res.WarmMisses = prob.CacheCounts()
	for ci, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: canceled after %d/%d cases: %w", ci, len(cases), err)
		}
		caseRegion := tr.Begin("stage2", "case: "+c.Name, "case")
		cr, err := f.runCase(ctx, alloc, sc.RAS, c, cfg, uint64(ci), sc.Name+"/"+c.Name)
		caseRegion.End()
		if err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, *cr)
		prog.CaseDone()
	}
	scenarioRegion.End()
	prog.ScenarioDone()
	if reg != nil {
		name := metricName(sc.Name)
		reg.Counter("core.scenarios").Inc()
		reg.Timer("core.scenario_wall." + name).Observe(time.Since(t0))
		// One RunMany per (application, technique, case) at cfg.Reps
		// repetitions each.
		cells := len(f.Batch) * len(cases) * len(sc.RAS)
		reg.Counter("core.stage2_reps." + name).Add(int64(cells * cfg.Reps))
	}
	return res, nil
}

// metricName sanitizes a scenario name into a metric-name suffix:
// lower case, spaces and punctuation collapsed to single underscores.
func metricName(s string) string {
	var b strings.Builder
	lastUnderscore := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// RunCaseContext evaluates the Stage-II simulations of one availability
// case for a fixed allocation: for every (application, technique) cell
// it drives sim.RunManyContext with cfg.Reps repetitions and selects
// the best deadline-meeting technique per application, exactly as one
// case iteration of RunScenarioContext does. It is the entry point
// behind the scheduling service's simulate jobs. Seeded calls are
// bit-identical to the first case of a scenario run (the per-case seed
// salt is the case index, which is 0 here).
func (f *Framework) RunCaseContext(ctx context.Context, alloc sysmodel.Allocation, ras []dls.Technique, c Case, cfg StageIIConfig) (*CaseResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := alloc.Validate(f.Sys, f.Batch); err != nil {
		return nil, err
	}
	if len(ras) == 0 {
		return nil, fmt.Errorf("core: no stage-II techniques")
	}
	prog := cfg.progress()
	prog.PlanCases(1)
	cr, err := f.runCase(ctx, alloc, ras, c, cfg, 0, c.Name)
	if err != nil {
		return nil, err
	}
	prog.CaseDone()
	return cr, nil
}

func (f *Framework) runCase(ctx context.Context, alloc sysmodel.Allocation, ras []dls.Technique, c Case, cfg StageIIConfig, caseSalt uint64, traceScope string) (*CaseResult, error) {
	if len(c.Avail) != len(f.Sys.Types) {
		return nil, fmt.Errorf("core: case %q has %d availability PMFs for %d types",
			c.Name, len(c.Avail), len(f.Sys.Types))
	}
	mkModel := cfg.Model
	if mkModel == nil {
		mkModel = func(p pmf.PMF) availability.Model { return availability.Static{PMF: p} }
	}
	out := &CaseResult{
		Case:     c,
		Decrease: f.Decrease(c),
		PerApp:   make([][]TechOutcome, len(f.Batch)),
		Best:     make([]string, len(f.Batch)),
		AllMeet:  true,
	}
	// A DAG batch simulates applications in topological order so each
	// application's per-replication release time — the max of its
	// predecessors' absolute finish times in the same replication and
	// under the same technique — is known before it runs. Technique
	// chains are coupled per technique index: each technique is
	// evaluated as if the whole DAG ran under it, and the best per
	// application is still compared afterwards. An edge-free batch
	// takes the identical i = 0..n-1 path with no release gating.
	order := make([]int, len(f.Batch))
	for i := range order {
		order[i] = i
	}
	var preds [][]int
	var finishes [][][]float64 // [technique][app] -> per-rep absolute finish
	dag := len(f.Edges) > 0
	if dag {
		var err error
		order, err = sysmodel.TopoOrder(f.Edges, len(f.Batch))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		preds = sysmodel.Preds(f.Edges, len(f.Batch))
		finishes = make([][][]float64, len(ras))
		for ti := range finishes {
			finishes[ti] = make([][]float64, len(f.Batch))
		}
	}
	for _, i := range order {
		app := &f.Batch[i]
		as := alloc[i]
		iterMean := app.ExecTime[as.Type].Mean() / float64(app.TotalIters())
		iterDist := stats.Truncated{
			Dist: stats.NewNormal(iterMean, cfg.IterCV*iterMean),
			Lo:   iterMean * 1e-3,
			Hi:   iterMean * 1e3,
		}
		model := mkModel(c.Avail[as.Type])
		outcomes := make([]TechOutcome, 0, len(ras))
		bestName, bestTime := "", 0.0
		for ti, tech := range ras {
			var releases []float64
			if dag {
				// Repetition r of application i starts when repetition r of
				// every predecessor finished under the same technique;
				// sources carry the zero release explicitly so every DAG
				// run reports the sim.dag metrics uniformly.
				releases = make([]float64, cfg.Reps)
				for _, pr := range preds[i] {
					for r, fin := range finishes[ti][pr] {
						if fin > releases[r] {
							releases[r] = fin
						}
					}
				}
			}
			appRegion := cfg.tracer().Begin("stage2", app.Name+" / "+tech.Name, "app")
			s, err := f.simulateApp(ctx, app, as, tech, iterDist, model, cfg, releases,
				cfg.Seed^(caseSalt<<40)^(uint64(i)<<20)^uint64(ti)<<4,
				traceScope+"/"+app.Name+"/"+tech.Name)
			appRegion.End()
			if err != nil {
				return nil, err
			}
			if dag {
				finishes[ti][i] = s.Makespans
			}
			o := TechOutcome{
				Technique: tech.Name,
				MeanTime:  s.Mean(),
				StdDev:    s.StdDev(),
				PrMeet:    s.PrLE(f.Deadline),
			}
			o.Meets = o.MeanTime <= f.Deadline
			outcomes = append(outcomes, o)
			if o.Meets && (bestName == "" || o.MeanTime < bestTime) {
				bestName, bestTime = o.Technique, o.MeanTime
			}
		}
		out.PerApp[i] = outcomes
		out.Best[i] = bestName
		if bestName == "" {
			out.AllMeet = false
		}
	}
	return out, nil
}

func (f *Framework) simulateApp(ctx context.Context, app *sysmodel.Application, as sysmodel.Assignment, tech dls.Technique, iterDist stats.Dist, model availability.Model, cfg StageIIConfig, releases []float64, seed uint64, traceScope string) (*sim.Sample, error) {
	c := sim.Config{
		Releases:      releases,
		SerialIters:   app.SerialIters,
		ParallelIters: app.ParallelIters,
		Workers:       as.Procs,
		IterTime:      iterDist,
		Avail:         model,
		Technique:     tech,
		Overhead:      cfg.Overhead,
		Seed:          seed,
		BestMaster:    cfg.BestMaster,
		TimeSteps:     cfg.TimeSteps,
		Metrics:       cfg.Metrics,
		Tracer:        cfg.Tracer,
		TraceScope:    traceScope,
		Progress:      cfg.Progress,
	}
	if cfg.WeightsFromAvail {
		c.WeightsFromAvail = true
	}
	return sim.RunManyContext(ctx, c, cfg.Reps)
}

// SystemRobustness computes the paper's (rho_1, rho_2) from a scenario
// result: rho_1 is the Stage-I joint probability and rho_2 the largest
// availability decrease among cases where all applications met the
// deadline (0 when none qualifies).
func SystemRobustness(res *ScenarioResult) robustness.Tuple {
	outcomes := make([]robustness.StageIIOutcome, len(res.Cases))
	for i, c := range res.Cases {
		outcomes[i] = robustness.StageIIOutcome{
			Decrease:        c.Decrease,
			AllMeetDeadline: c.AllMeet,
		}
	}
	rho2, _ := robustness.StageIIRobustness(outcomes)
	return robustness.Tuple{Rho1: res.StageI.Phi1, Rho2: rho2}
}

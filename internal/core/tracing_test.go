package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"cdsf/internal/ra"
	"cdsf/internal/tracing"
)

// A traced RunScenario must emit the scenario -> case -> app hierarchy
// on the wall clock plus simulated-time worker lanes scoped
// scenario/case/app/technique, and must not change the results.
func TestRunScenarioTracing(t *testing.T) {
	f := testFramework()
	sc := Scenario{Name: "test", IM: ra.Exhaustive{}, RAS: RobustRAS()}
	plain, err := f.RunScenarioContext(context.Background(), sc, testCases(f), quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickCfg(1)
	cfg.Tracer = tracing.New()
	traced, err := f.RunScenarioContext(context.Background(), sc, testCases(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracing changed scenario results")
	}

	var sawScenario, sawCase, sawApp, sawStage1 bool
	var simLanes []string
	for _, s := range cfg.Tracer.Spans() {
		switch {
		case s.Clock == tracing.Wall && s.Lane == "stage2":
			switch s.Cat {
			case "scenario":
				sawScenario = true
			case "case":
				sawCase = true
			case "app":
				sawApp = true
			case "stage1":
				sawStage1 = true
			}
		case s.Clock == tracing.Sim:
			simLanes = append(simLanes, s.Lane)
		}
	}
	if !sawScenario || !sawCase || !sawApp || !sawStage1 {
		t.Errorf("wall hierarchy incomplete: scenario %v case %v app %v stage1 %v",
			sawScenario, sawCase, sawApp, sawStage1)
	}
	if len(simLanes) == 0 {
		t.Fatal("no simulated-time lanes")
	}
	// Lanes follow scenario/case/app/technique/w<NN>: 5 segments with
	// the scenario and case names leading.
	for _, lane := range simLanes {
		if !strings.HasPrefix(lane, "test/") {
			t.Fatalf("sim lane %q does not start with the scenario name", lane)
		}
		if parts := strings.Split(lane, "/"); len(parts) != 5 {
			t.Fatalf("sim lane %q does not follow scenario/case/app/technique/worker", lane)
		}
	}
}

// RunScenario reports scenario and case progress to the default board.
func TestRunScenarioProgress(t *testing.T) {
	prog := tracing.NewProgress()
	tracing.SetProgress(prog)
	defer tracing.SetProgress(nil)

	f := testFramework()
	sc := Scenario{Name: "test", IM: ra.Exhaustive{}, RAS: NaiveRAS()}
	cases := testCases(f)
	if _, err := f.RunScenarioContext(context.Background(), sc, cases, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
	s := prog.Snapshot()
	if s.Scenarios != (tracing.Counts{Done: 1, Planned: 1}) {
		t.Errorf("scenarios = %+v", s.Scenarios)
	}
	if s.Cases != (tracing.Counts{Done: int64(len(cases)), Planned: int64(len(cases))}) {
		t.Errorf("cases = %+v", s.Cases)
	}
	if s.Replications.Done == 0 || s.Replications.Done != s.Replications.Planned {
		t.Errorf("replications = %+v", s.Replications)
	}
}

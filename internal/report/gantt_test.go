package report

import (
	"strings"
	"testing"
)

func TestGanttRender(t *testing.T) {
	g := NewGantt("Chunks", 3)
	g.Width = 40
	g.Add(0, 0, 100, '#')
	g.Add(1, 50, 100, 'x')
	g.Add(2, 0, 10, 0) // zero glyph defaults to '#'
	out := g.String()
	if !strings.Contains(out, "Chunks") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 3 lanes + axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	w0 := lines[1]
	w1 := lines[2]
	w2 := lines[3]
	if strings.Count(w0, "#") != 40 {
		t.Errorf("lane 0 should span full width: %q", w0)
	}
	if n := strings.Count(w1, "x"); n < 18 || n > 22 {
		t.Errorf("lane 1 should span half the width, got %d: %q", n, w1)
	}
	if n := strings.Count(w2, "#"); n < 3 || n > 6 {
		t.Errorf("lane 2 should span ~10%%, got %d: %q", n, w2)
	}
	if !strings.Contains(lines[4], "100") {
		t.Errorf("axis missing max time: %q", lines[4])
	}
}

func TestGanttIgnoresInvalidSpans(t *testing.T) {
	g := NewGantt("", 2)
	g.Add(-1, 0, 10, '#') // bad lane
	g.Add(5, 0, 10, '#')  // bad lane
	g.Add(0, 10, 5, '#')  // end <= start
	g.Add(0, -5, 5, '#')  // negative start
	out := g.String()
	if strings.Contains(out, "#") {
		t.Errorf("invalid spans rendered: %q", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	g := NewGantt("none", 1)
	if out := g.String(); !strings.Contains(out, "no spans") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestGanttLaneLabels(t *testing.T) {
	g := NewGantt("", 3)
	g.Width = 10
	g.LaneLabels = []string{"fac/w00", "", "fac/serial"}
	for lane := 0; lane < 3; lane++ {
		g.Add(lane, 0, 10, '#')
	}
	lines := strings.Split(strings.TrimRight(g.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), g.String())
	}
	// Named lanes use their label; the empty entry falls back to "w<i>";
	// all rows pad to the widest label.
	for i, prefix := range []string{"fac/w00    ", "w1         ", "fac/serial "} {
		if !strings.HasPrefix(lines[i], prefix+"|") {
			t.Errorf("lane %d = %q, want prefix %q", i, lines[i], prefix+"|")
		}
	}
}

func TestGanttDefaultLabelsUnchanged(t *testing.T) {
	// Without LaneLabels the layout must stay the seed's "w<i> |...|"
	// form so existing golden CLI output is unaffected.
	g := NewGantt("", 2)
	g.Width = 10
	g.Add(0, 0, 10, '#')
	lines := strings.Split(strings.TrimRight(g.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "w0 |") || !strings.HasPrefix(lines[1], "w1 |") {
		t.Errorf("default labels changed:\n%s", g.String())
	}
}

func TestGanttTinySpanStillVisible(t *testing.T) {
	g := NewGantt("", 1)
	g.Width = 20
	g.Add(0, 999.99, 1000, '#') // 0.001% of the axis
	g.Add(0, 0, 0.0001, '#')
	out := g.String()
	if strings.Count(out, "#") < 2 {
		t.Errorf("tiny spans invisible: %q", out)
	}
}

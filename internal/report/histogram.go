package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cdsf/internal/stats"
)

// HistogramChart renders a sample as a vertical-bar ASCII histogram
// with an optional marker line (e.g. a deadline) — the makespan-
// distribution view of the Stage-II results.
type HistogramChart struct {
	// Title is printed above the chart when non-empty.
	Title string
	// Bins is the number of bins (default 20).
	Bins int
	// Height is the bar height in rows (default 8).
	Height int
	// MarkLabel and MarkValue draw a vertical marker at a data value;
	// MarkValue = 0 disables it.
	MarkLabel string
	MarkValue float64
	sample    []float64
}

// NewHistogramChart returns a chart over the sample (copied).
func NewHistogramChart(title string, sample []float64) *HistogramChart {
	return &HistogramChart{
		Title:  title,
		Bins:   20,
		Height: 8,
		sample: append([]float64(nil), sample...),
	}
}

// Render writes the chart to w.
func (h *HistogramChart) Render(w io.Writer) error {
	if len(h.sample) == 0 {
		_, err := io.WriteString(w, h.Title+" (no data)\n")
		return err
	}
	bins := h.Bins
	if bins <= 0 {
		bins = 20
	}
	height := h.Height
	if height <= 0 {
		height = 8
	}
	hist := stats.NewHistogram(h.sample, bins)
	maxCount := 0
	for _, c := range hist.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	markBin := -1
	if h.MarkValue > 0 {
		markBin = int(math.Floor((h.MarkValue - hist.Lo) / hist.Width))
		if markBin < 0 || markBin >= bins {
			markBin = -1
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for row := height; row >= 1; row-- {
		threshold := float64(maxCount) * float64(row) / float64(height)
		for i, c := range hist.Counts {
			switch {
			case float64(c) >= threshold:
				b.WriteByte('#')
			case i == markBin:
				b.WriteByte('|')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", bins))
	b.WriteByte('\n')
	lo := fmt.Sprintf("%.6g", hist.Lo)
	hi := fmt.Sprintf("%.6g", hist.Lo+float64(bins)*hist.Width)
	pad := bins - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s%s%s\n", lo, strings.Repeat(" ", pad), hi)
	if markBin >= 0 && h.MarkLabel != "" {
		fmt.Fprintf(&b, "(| marks %s = %.6g)\n", h.MarkLabel, h.MarkValue)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string.
func (h *HistogramChart) String() string {
	var sb strings.Builder
	_ = h.Render(&sb)
	return sb.String()
}

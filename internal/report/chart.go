package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one bar of a horizontal bar chart.
type Bar struct {
	// Label is printed left of the bar.
	Label string
	// Value is the bar length in data units.
	Value float64
	// Marker annotates the bar end (e.g. "!" for a deadline violation).
	Marker string
}

// BarChart renders grouped horizontal bars with an optional vertical
// reference line (the deadline in the paper's figures).
type BarChart struct {
	// Title is printed above the chart when non-empty.
	Title string
	// RefLabel and RefValue define the reference line; RefValue <= 0
	// disables it.
	RefLabel string
	RefValue float64
	// Width is the bar area width in characters (default 60).
	Width int
	bars  []Bar
	gaps  map[int]bool // indices before which a blank line is printed
}

// NewBarChart returns an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 60, gaps: map[int]bool{}}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64, marker string) {
	c.bars = append(c.bars, Bar{Label: label, Value: value, Marker: marker})
}

// Gap inserts a blank line before the next added bar, separating groups.
func (c *BarChart) Gap() {
	c.gaps[len(c.bars)] = true
}

// Render writes the chart to w.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.bars) == 0 {
		_, err := io.WriteString(w, c.Title+" (no data)\n")
		return err
	}
	maxVal := c.RefValue
	labelW := 0
	for _, b := range c.bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	width := c.Width
	if width <= 0 {
		width = 60
	}
	scale := float64(width) / maxVal
	refCol := -1
	if c.RefValue > 0 {
		refCol = int(math.Round(c.RefValue * scale))
		if refCol >= width {
			refCol = width - 1
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if refCol >= 0 && c.RefLabel != "" {
		fmt.Fprintf(&sb, "%*s%s %s = %.6g\n", labelW+2+refCol, "", "|", c.RefLabel, c.RefValue)
	}
	for i, b := range c.bars {
		if c.gaps[i] {
			sb.WriteByte('\n')
		}
		n := int(math.Round(b.Value * scale))
		if n > width {
			n = width
		}
		line := make([]byte, width)
		for j := range line {
			switch {
			case j < n:
				line[j] = '#'
			case j == refCol:
				line[j] = '|'
			default:
				line[j] = ' '
			}
		}
		if refCol >= 0 && refCol < n {
			line[refCol] = '|'
		}
		fmt.Fprintf(&sb, "%-*s  %s %.6g%s\n", labelW, b.Label, strings.TrimRight(string(line), " "), b.Value, b.Marker)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var sb strings.Builder
	_ = c.Render(&sb)
	return sb.String()
}

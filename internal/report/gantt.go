package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Span is one busy interval of one lane (a chunk executing on a
// worker).
type Span struct {
	// Lane indexes the row (worker).
	Lane int
	// Start and End delimit the busy interval.
	Start, End float64
	// Glyph marks the interval; 0 uses '#'.
	Glyph byte
}

// Gantt renders per-worker busy timelines as ASCII — the classic view
// of DLS chunk placement and load imbalance.
type Gantt struct {
	// Title is printed above the chart when non-empty.
	Title string
	// Lanes is the number of rows; lanes without spans render empty.
	Lanes int
	// Width is the time-axis width in characters (default 80).
	Width int
	// LaneLabels optionally names the rows; lanes beyond the list (or
	// with an empty entry) fall back to the default "w<lane>" label.
	LaneLabels []string
	spans      []Span
}

// NewGantt returns an empty chart with the given number of lanes.
func NewGantt(title string, lanes int) *Gantt {
	return &Gantt{Title: title, Lanes: lanes, Width: 80}
}

// Add appends one busy interval. Spans outside [0, inf) or with
// End <= Start are ignored.
func (g *Gantt) Add(lane int, start, end float64, glyph byte) {
	if lane < 0 || lane >= g.Lanes || end <= start || start < 0 {
		return
	}
	if glyph == 0 {
		glyph = '#'
	}
	g.spans = append(g.spans, Span{Lane: lane, Start: start, End: end, Glyph: glyph})
}

// Render writes the chart to w.
func (g *Gantt) Render(w io.Writer) error {
	width := g.Width
	if width <= 0 {
		width = 80
	}
	maxT := 0.0
	for _, s := range g.spans {
		if s.End > maxT {
			maxT = s.End
		}
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	if maxT == 0 {
		b.WriteString("(no spans)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	scale := float64(width) / maxT
	rows := make([][]byte, g.Lanes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, s := range g.spans {
		lo := int(math.Floor(s.Start * scale))
		hi := int(math.Ceil(s.End * scale))
		if hi > width {
			hi = width
		}
		if hi <= lo {
			hi = lo + 1
			if hi > width {
				lo, hi = width-1, width
			}
		}
		for j := lo; j < hi; j++ {
			rows[s.Lane][j] = s.Glyph
		}
	}
	labels := make([]string, g.Lanes)
	labelW := 0
	for i := range labels {
		labels[i] = fmt.Sprintf("w%d", i)
		if i < len(g.LaneLabels) && g.LaneLabels[i] != "" {
			labels[i] = g.LaneLabels[i]
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, row := range rows {
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, labels[i], row)
	}
	fmt.Fprintf(&b, "%*s 0%*s%.6g\n", labelW+1, "", width-1, "", maxT)
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string.
func (g *Gantt) String() string {
	var b strings.Builder
	_ = g.Render(&b)
	return b.String()
}

// Package report renders the reproduction's tables and figures as
// plain text (aligned tables, horizontal ASCII bar charts) and CSV, for
// the cmd tools and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them with aligned
// columns.
type Table struct {
	// Title is printed above the table when non-empty.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v except float64, which uses %.2f.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// Render to a strings.Builder never fails.
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRec := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRec(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRec(row); err != nil {
			return err
		}
	}
	return nil
}

package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("My Title", "Name", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// The "Value" column starts at the same offset on every row.
	idx := strings.Index(lines[1], "Value")
	for _, line := range lines[3:] {
		tail := strings.TrimSpace(line[idx:])
		if tail != "1" && tail != "22" {
			t.Errorf("misaligned row: %q", line)
		}
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Error("row missing")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRowf("s", 3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not formatted: %q", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int missing: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `with "quote", and comma`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with \"\"quote\"\", and comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Chart")
	c.RefLabel = "deadline"
	c.RefValue = 100
	c.Add("under", 50, "")
	c.Gap()
	c.Add("over", 150, " (!)")
	out := c.String()
	if !strings.Contains(out, "Chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "deadline = 100") {
		t.Errorf("missing reference annotation: %q", out)
	}
	if !strings.Contains(out, "150 (!)") {
		t.Errorf("missing marker: %q", out)
	}
	// The under bar must be shorter than the over bar.
	var underHashes, overHashes int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.HasPrefix(line, "under") {
			underHashes = n
		}
		if strings.HasPrefix(line, "over") {
			overHashes = n
		}
	}
	if underHashes == 0 || overHashes == 0 || underHashes >= overHashes {
		t.Errorf("bar lengths wrong: under=%d over=%d", underHashes, overHashes)
	}
	// Gap inserted a blank line.
	if !strings.Contains(out, "\n\n") {
		t.Error("missing group gap")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("Empty")
	if out := c.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestBarChartScalesToWidth(t *testing.T) {
	c := NewBarChart("W")
	c.Width = 10
	c.Add("x", 1000, "")
	out := c.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "#") > 10 {
			t.Errorf("bar exceeds width: %q", line)
		}
	}
}

func TestHistogramChart(t *testing.T) {
	sample := make([]float64, 0, 300)
	for i := 0; i < 200; i++ {
		sample = append(sample, 100+float64(i%10))
	}
	for i := 0; i < 100; i++ {
		sample = append(sample, 150+float64(i%5))
	}
	h := NewHistogramChart("Makespans", sample)
	h.MarkLabel = "deadline"
	h.MarkValue = 140
	out := h.String()
	if !strings.Contains(out, "Makespans") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if !strings.Contains(out, "deadline = 140") {
		t.Errorf("missing marker note:\n%s", out)
	}
	// Axis shows range endpoints.
	if !strings.Contains(out, "100") {
		t.Errorf("missing lower bound:\n%s", out)
	}
}

func TestHistogramChartEmpty(t *testing.T) {
	h := NewHistogramChart("none", nil)
	if out := h.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty = %q", out)
	}
}

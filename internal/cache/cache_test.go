package cache

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func testModel(t *testing.T, deadline float64) (*sysmodel.System, sysmodel.Batch) {
	t.Helper()
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: 2, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
	}}
	batch := sysmodel.Batch{{
		Name:          "App 1",
		SerialIters:   10,
		ParallelIters: 100,
		ExecTime:      []pmf.PMF{pmf.Discretize(stats.NewNormal(50, 5), 20)},
	}}
	_ = deadline
	return sys, batch
}

func TestHasherFraming(t *testing.T) {
	// Field boundaries are part of the identity: ("ab","c") != ("a","bc").
	a := NewHasher("d").String("ab").String("c").Sum()
	b := NewHasher("d").String("a").String("bc").Sum()
	if a == b {
		t.Error("framing collision: (ab,c) == (a,bc)")
	}
	// The domain label separates key spaces.
	if NewHasher("d1").String("x").Sum() == NewHasher("d2").String("x").Sum() {
		t.Error("distinct domains collided")
	}
	// Identical field sequences agree.
	if NewHasher("d").Uint64(7).Float64(1.5).Bool(true).Int(-3).Sum() !=
		NewHasher("d").Uint64(7).Float64(1.5).Bool(true).Int(-3).Sum() {
		t.Error("identical sequences disagree")
	}
	// Every field write changes the key.
	base := NewHasher("d").Uint64(7).Sum()
	for name, k := range map[string]Key{
		"uint64":  NewHasher("d").Uint64(8).Sum(),
		"float64": NewHasher("d").Uint64(7).Float64(0).Sum(),
		"bool":    NewHasher("d").Uint64(7).Bool(false).Sum(),
		"bytes":   NewHasher("d").Uint64(7).Bytes(nil).Sum(),
	} {
		if k == base {
			t.Errorf("%s write did not change the key", name)
		}
	}
	// Float keys distinguish bit patterns, not printed forms.
	if NewHasher("d").Float64(0.0).Sum() == NewHasher("d").Float64(negZero()).Sum() {
		t.Error("+0 and -0 collided")
	}
}

func negZero() float64 { var z float64; return -z }

func TestKeyStringAndZero(t *testing.T) {
	var k Key
	if !k.IsZero() {
		t.Error("zero key not IsZero")
	}
	k2 := NewHasher("d").Sum()
	if k2.IsZero() {
		t.Error("real key IsZero")
	}
	if len(k2.String()) != 64 {
		t.Errorf("hex form has length %d", len(k2.String()))
	}
}

func TestResultTierRoundTrip(t *testing.T) {
	c := New(Options{})
	k := NewHasher("cdsf-result-v1").String("x").Sum()
	if _, ok := c.GetResult(k); ok {
		t.Fatal("hit on empty cache")
	}
	doc := []byte(`{"x":1}`)
	c.PutResult(k, doc)
	doc[2] = 'y' // the cache copied on put, so this must not leak in
	got, ok := c.GetResult(k)
	if !ok || string(got) != `{"x":1}` {
		t.Fatalf("GetResult = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.ResultHits != 1 || s.ResultMisses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	// An empty document is never stored.
	c.PutResult(NewHasher("d").String("e").Sum(), nil)
	if c.Len() != 1 {
		t.Error("empty document was stored")
	}
}

func TestTableTierRoundTrip(t *testing.T) {
	c := New(Options{})
	k := NewHasher("cdsf-table-v1").String("x").Sum()
	p := pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 1}})
	c.PutTable(k, &Table{Types: 1, Logs: 2, Cells: []pmf.Dist{p, nil}})
	got, ok := c.GetTable(k)
	if !ok || got.Types != 1 || got.Logs != 2 || len(got.Cells) != 2 {
		t.Fatalf("GetTable = %+v, %v", got, ok)
	}
	if got.Cells[0].Mean() != 1 {
		t.Error("cell distribution corrupted")
	}
	// nil and empty tables are never stored.
	c.PutTable(k, nil)
	c.PutTable(NewHasher("d").Sum(), &Table{})
	if c.Len() != 1 {
		t.Error("degenerate table was stored")
	}
}

func TestTiersDoNotAlias(t *testing.T) {
	// Same raw key in both tiers: each tier only sees its own value.
	c := New(Options{})
	k := NewHasher("d").Sum()
	c.PutResult(k, []byte("doc"))
	if _, ok := c.GetTable(k); ok {
		t.Error("table get returned a result entry")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	k := NewHasher("d").Sum()
	if _, ok := c.GetResult(k); ok {
		t.Error("nil cache hit")
	}
	if _, ok := c.GetTable(k); ok {
		t.Error("nil cache hit")
	}
	c.PutResult(k, []byte("x"))
	c.PutTable(k, &Table{Cells: []pmf.Dist{nil}})
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache accumulated state")
	}
}

func TestLRUEntryBound(t *testing.T) {
	c := New(Options{MaxEntries: 4})
	keyOf := func(i int) Key { return NewHasher("d").Int(i).Sum() }
	for i := 0; i < 10; i++ {
		c.PutResult(keyOf(i), []byte{byte(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// The four most recent survive; the rest were evicted in order.
	for i := 0; i < 6; i++ {
		if _, ok := c.GetResult(keyOf(i)); ok {
			t.Errorf("key %d survived past the entry bound", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := c.GetResult(keyOf(i)); !ok {
			t.Errorf("recent key %d evicted", i)
		}
	}
	if s := c.Stats(); s.Evictions != 6 {
		t.Errorf("evictions = %d, want 6", s.Evictions)
	}
}

func TestLRUByteBoundAndRecency(t *testing.T) {
	// Each entry costs len(doc)+96 bytes; bound to fit two entries.
	c := New(Options{MaxBytes: 2 * (4 + 96)})
	keyOf := func(i int) Key { return NewHasher("d").Int(i).Sum() }
	c.PutResult(keyOf(0), []byte("aaaa"))
	c.PutResult(keyOf(1), []byte("bbbb"))
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := c.GetResult(keyOf(0)); !ok {
		t.Fatal("warm entry missing")
	}
	c.PutResult(keyOf(2), []byte("cccc"))
	if _, ok := c.GetResult(keyOf(1)); ok {
		t.Error("LRU victim survived")
	}
	if _, ok := c.GetResult(keyOf(0)); !ok {
		t.Error("recently used entry evicted")
	}
	if s := c.Stats(); s.Bytes > 2*(4+96) {
		t.Errorf("bytes %d over bound", s.Bytes)
	}
	// An entry larger than the whole budget is rejected outright.
	before := c.Len()
	c.PutResult(keyOf(3), make([]byte, 1024))
	if c.Len() != before {
		t.Error("oversize entry displaced the cache")
	}
}

func TestDuplicatePutRefreshesRecency(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	keyOf := func(i int) Key { return NewHasher("d").Int(i).Sum() }
	c.PutResult(keyOf(0), []byte("a"))
	c.PutResult(keyOf(1), []byte("b"))
	c.PutResult(keyOf(0), []byte("a")) // duplicate: refresh, not grow
	if c.Len() != 2 {
		t.Fatalf("Len = %d after duplicate put", c.Len())
	}
	c.PutResult(keyOf(2), []byte("c"))
	if _, ok := c.GetResult(keyOf(0)); !ok {
		t.Error("refreshed entry was evicted")
	}
	if _, ok := c.GetResult(keyOf(1)); ok {
		t.Error("stale entry survived")
	}
}

// TestLRUBoundUnderParallelLoad drives mixed hits and misses from many
// goroutines (run under -race) and checks the bounds hold at every
// observation point.
func TestLRUBoundUnderParallelLoad(t *testing.T) {
	const (
		workers    = 8
		opsPer     = 400
		maxEntries = 32
		maxBytes   = int64(maxEntries) * (8 + 96)
	)
	c := New(Options{MaxBytes: maxBytes, MaxEntries: maxEntries})
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// Half the key space is shared across workers (hits),
				// half is private (misses + evictions).
				var k Key
				if i%2 == 0 {
					k = NewHasher("shared").Int(i % 16).Sum()
				} else {
					k = NewHasher("private").Int(w).Int(i).Sum()
				}
				if doc, ok := c.GetResult(k); ok {
					if len(doc) != 8 {
						errs <- fmt.Sprintf("worker %d: cached doc has %d bytes", w, len(doc))
						return
					}
				} else {
					c.PutResult(k, []byte("12345678"))
				}
				if s := c.Stats(); s.Entries > maxEntries || s.Bytes > maxBytes {
					errs <- fmt.Sprintf("worker %d: bounds exceeded: %+v", w, s)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	s := c.Stats()
	if s.ResultHits == 0 || s.ResultMisses == 0 || s.Evictions == 0 {
		t.Errorf("load did not exercise all paths: %+v", s)
	}
}

func TestMetricsMirrors(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Options{Metrics: reg, MaxEntries: 1})
	keyOf := func(i int) Key { return NewHasher("d").Int(i).Sum() }
	c.GetResult(keyOf(0)) // result miss
	c.PutResult(keyOf(0), []byte("x"))
	c.GetResult(keyOf(0))              // result hit
	c.GetTable(keyOf(1))               // table miss
	c.PutResult(keyOf(2), []byte("y")) // evicts keyOf(0)
	for name, want := range map[string]int64{
		"cache.result_hits":   1,
		"cache.result_misses": 1,
		"cache.table_misses":  1,
		"cache.evictions":     1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.Gauge("cache.entries").Value(); got != 1 {
		t.Errorf("cache.entries = %v", got)
	}
	if got := reg.Gauge("cache.bytes").Value(); got <= 0 {
		t.Errorf("cache.bytes = %v", got)
	}
}

func TestTableKeyInvariances(t *testing.T) {
	sys, batch := testModel(t, 3000)

	base, err := TableKey(sys, batch, pmf.BackendSparse, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic.
	again, _ := TableKey(sys, batch, pmf.BackendSparse, 0)
	if base != again {
		t.Error("TableKey is not deterministic")
	}
	// Sparse keys ignore the grid step (sparse cells are exact at any
	// step).
	withStep, _ := TableKey(sys, batch, pmf.BackendSparse, 3.17)
	if base != withStep {
		t.Error("sparse TableKey depends on the grid step")
	}
	// Grid keys include the step: a different deadline quantizes onto a
	// different lattice, so it must be a warm miss.
	g1, _ := TableKey(sys, batch, pmf.BackendGrid, 3000.0/1024)
	g2, _ := TableKey(sys, batch, pmf.BackendGrid, 2800.0/1024)
	if g1 == g2 {
		t.Error("grid TableKey ignores the step")
	}
	if g1 == base {
		t.Error("grid and sparse TableKey collided")
	}
	// The model content is the identity: a changed mean changes the key.
	sys2, batch2 := testModel(t, 3000)
	batch2[0].SerialIters++
	changed, _ := TableKey(sys2, batch2, pmf.BackendSparse, 0)
	if changed == base {
		t.Error("TableKey ignores the batch content")
	}
}

func TestTableKeyRejectsNonFinite(t *testing.T) {
	// An infinite pulse probability passes the constructor's per-pulse
	// check and normalizes to NaN (Inf/Inf), so a non-finite pulse can
	// reach TableKey through the public API; the key must refuse to
	// hash it, naming the offending field.
	bad, err := pmf.New([]pmf.Pulse{{Value: 0.5, Prob: math.Inf(1)}, {Value: 1, Prob: 1}})
	if err != nil {
		t.Skip("constructor now rejects infinite probabilities; guard unreachable")
	}

	sys, batch := testModel(t, 3000)
	sys.Types[0].Avail = bad
	if _, err := TableKey(sys, batch, pmf.BackendSparse, 0); err == nil ||
		!strings.Contains(err.Error(), "types[0].availability") {
		t.Errorf("availability NaN: err = %v, want field path", err)
	}

	sys2, batch2 := testModel(t, 3000)
	batch2[0].ExecTime[0] = bad
	if _, err := TableKey(sys2, batch2, pmf.BackendSparse, 0); err == nil ||
		!strings.Contains(err.Error(), "applications[0].execTimes[0]") {
		t.Errorf("exec-time NaN: err = %v, want field path", err)
	}
}

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"1024":    1024,
		"1k":      1 << 10,
		"2kb":     2 << 10,
		"3KiB":    3 << 10,
		"4m":      4 << 20,
		"5MB":     5 << 20,
		"256MiB":  256 << 20,
		"1g":      1 << 30,
		"2GB":     2 << 30,
		"1GiB":    1 << 30,
		"512b":    512,
		" 64MiB ": 64 << 20,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "-1", "0", "1.5MiB", "MiB", "9999999999g"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, n)
		}
	}
}

func TestDistFootprint(t *testing.T) {
	p := pmf.MustNew([]pmf.Pulse{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.5}})
	if distFootprint(nil) != 0 {
		t.Error("nil footprint")
	}
	if distFootprint(p) <= 0 {
		t.Error("PMF footprint")
	}
	g := p.ToGrid(1)
	defer g.Release()
	if distFootprint(g.Clone()) <= 0 {
		t.Error("grid footprint")
	}
	tbl := &Table{Types: 1, Logs: 1, Cells: []pmf.Dist{p, nil}}
	if tbl.footprint() <= 0 {
		t.Error("table footprint")
	}
}

// Package cache implements the content-addressed solve cache: a
// bounded, concurrency-safe LRU keyed by SHA-256 of the canonical
// instance JSON (config.Marshal) plus the solver knobs that affect the
// result. Seeded runs in this repository are bit-identical at every
// layer, so replaying a cached artifact is exact, never approximate.
//
// The cache has two tiers sharing one LRU bound:
//
//   - The result tier stores finished result documents (the marshaled
//     JSON of a solve/simulate/scenario job) keyed by instance bytes
//     plus every knob the result depends on. A byte-identical repeat
//     request is served in O(lookup) with the exact bytes the first
//     run produced.
//
//   - The warm tier stores evaluation Tables: the per-allocation-cell
//     completion-time distributions behind a Stage-I evaluation table.
//     The table cells ra actually searches over store PrLE(Deadline)
//     and are NOT deadline-invariant, so the cache holds the pre-PrLE
//     distributions — under the sparse backend the completion PMF of a
//     cell depends only on the instance's types and applications, not
//     on the deadline, the heuristic, or the runtime availability
//     cases. A job that differs only in those re-derives its cells
//     with one cached-CDF PrLE read per cell (delta-solve) instead of
//     recomputing the completion-time convolutions.
//
// Both tiers are exact: result keys hash the canonical instance bytes
// (config.Marshal rejects non-finite floats, so NaN/Inf can never
// reach the hasher), table keys frame the model's pulses directly
// (TableKey rejects non-finite pulses itself), values are immutable
// once inserted, and a cached replay is pinned bit-identical to the
// uncached computation by the determinism tests.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"strconv"
	"strings"
	"sync"

	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// Key is a content address: a SHA-256 over canonical bytes.
type Key [sha256.Size]byte

// String returns the full lowercase hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// IsZero reports whether k is the zero (absent) key.
func (k Key) IsZero() bool { return k == Key{} }

// Hasher accumulates the fields of a cache key. Every write is framed
// (length-prefixed or fixed-width), so distinct field sequences can
// never collide by concatenation, and the field order is part of the
// key's identity.
type Hasher struct {
	h hash.Hash
	// buf batches field writes before they reach the hash: a per-call
	// [8]byte escapes through the hash.Hash interface (one allocation
	// per field) and tiny Write calls carry per-call overhead, both of
	// which dominate TableKey over large batches (tens of thousands of
	// pulse fields per key).
	buf []byte
}

// NewHasher starts a key over the given domain label; distinct domains
// ("cdsf-table-v1", "cdsf-result-v1", ...) can never produce colliding
// keys even from identical field sequences.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New(), buf: make([]byte, 0, hasherBufSize)}
	return h.String(domain)
}

// hasherBufSize is the flush threshold of the field batch buffer.
const hasherBufSize = 4096

// flush drains the batched fields into the hash.
func (h *Hasher) flush() {
	if len(h.buf) > 0 {
		h.h.Write(h.buf)
		h.buf = h.buf[:0]
	}
}

// Bytes appends a length-prefixed byte field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, uint64(len(b)))
	h.buf = append(h.buf, b...)
	if len(h.buf) >= hasherBufSize {
		h.flush()
	}
	return h
}

// String appends a length-prefixed string field.
func (h *Hasher) String(s string) *Hasher { return h.Bytes([]byte(s)) }

// Uint64 appends a fixed-width integer field.
func (h *Hasher) Uint64(v uint64) *Hasher {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, v)
	if len(h.buf) >= hasherBufSize {
		h.flush()
	}
	return h
}

// Int appends an int field.
func (h *Hasher) Int(v int) *Hasher { return h.Uint64(uint64(int64(v))) }

// Bool appends a bool field.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		return h.Uint64(1)
	}
	return h.Uint64(0)
}

// Float64 appends a float field by its exact IEEE-754 bits, so keys
// distinguish values that print identically (and -0 from +0).
func (h *Hasher) Float64(f float64) *Hasher {
	return h.Uint64(math.Float64bits(f))
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Key {
	h.flush()
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// Table is one warm-tier entry: the deadline-invariant completion-time
// distributions of a Stage-I evaluation table, indexed exactly like
// ra's cell array — (app*Types + type)*Logs + log2(procs) — with nil
// in the slots whose power-of-2 count exceeds the type's capacity.
// Cells must be immutable and pool-detached (grid distributions must
// be Clone()s, never grids whose buffers may return to the sync.Pool);
// a Table is shared by every goroutine that hits it.
type Table struct {
	Types int
	Logs  int
	Cells []pmf.Dist
}

// footprint estimates the resident bytes of a warm table for the LRU
// byte accounting.
func (t *Table) footprint() int64 {
	n := int64(64 + 16*len(t.Cells))
	for _, d := range t.Cells {
		n += distFootprint(d)
	}
	return n
}

// distFootprint estimates the resident bytes of one distribution.
func distFootprint(d pmf.Dist) int64 {
	switch d.(type) {
	case nil:
		return 0
	case pmf.PMF:
		// 16 bytes per pulse plus the cached CDF.
		return int64(24*d.Len()) + 48
	case *pmf.Grid:
		// Dense mass plus dense CDF.
		return int64(16*d.Len()) + 64
	default:
		return 64
	}
}

// TableKey returns the warm-tier identity of a Stage-I evaluation
// table: exactly the model inputs the completion distributions depend
// on — each type's capacity and availability PMF, each application's
// iteration split and per-type execution-time PMF — plus the PMF
// backend, and, for the grid backend, the exact lattice step (grid
// cells are quantized at step = deadline/1024, so they are reusable
// only at the same step). Name, deadline, and runtime availability
// cases are excluded: the distributions do not depend on them, which
// is what lets delta-solves share one entry.
//
// The model is framed straight through the Hasher rather than rendered
// to canonical JSON first: a table key is computed on every
// cache-assisted Precompute, and for large batches the fixed-point
// JSON rendering costs more than the warm derivation it would gate.
// It fails if the model contains non-finite values, which must never
// reach the hasher.
func TableKey(sys *sysmodel.System, batch sysmodel.Batch, backend pmf.Backend, gridStep float64) (Key, error) {
	h := NewHasher("cdsf-table-v1")
	hashPMF := func(p pmf.PMF, path string, args ...any) error {
		h.Int(p.Len())
		for i := 0; i < p.Len(); i++ {
			pl := p.At(i)
			if math.IsNaN(pl.Value) || math.IsInf(pl.Value, 0) ||
				math.IsNaN(pl.Prob) || math.IsInf(pl.Prob, 0) {
				return fmt.Errorf("cache: %s: non-finite pulse", fmt.Sprintf(path, args...))
			}
			h.Float64(pl.Value).Float64(pl.Prob)
		}
		return nil
	}
	h.Int(len(sys.Types))
	for j := range sys.Types {
		t := &sys.Types[j]
		h.Int(t.Count)
		if err := hashPMF(t.Avail, "types[%d].availability", j); err != nil {
			return Key{}, err
		}
	}
	h.Int(len(batch))
	for i := range batch {
		a := &batch[i]
		h.Int(a.SerialIters).Int(a.ParallelIters).Int(len(a.ExecTime))
		for j := range a.ExecTime {
			if err := hashPMF(a.ExecTime[j], "applications[%d].execTimes[%d]", i, j); err != nil {
				return Key{}, err
			}
		}
	}
	h.String(backend.String())
	if backend.IsGrid() {
		h.Float64(gridStep)
	}
	return h.Sum(), nil
}

// tier separates the key spaces (and the hit/miss counters) of the two
// value kinds sharing the LRU.
type tier uint8

const (
	tierResult tier = iota
	tierTable
)

// entry is one LRU node.
type entry struct {
	tier   tier
	key    Key
	size   int64
	result []byte
	table  *Table
}

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the total estimated resident size of the cached
	// values across both tiers; the least recently used entries are
	// evicted past it. Non-positive means 256 MiB.
	MaxBytes int64
	// MaxEntries bounds the entry count the same way. Non-positive
	// means 4096.
	MaxEntries int
	// Metrics optionally mirrors the cache counters (cache.result_hits,
	// cache.result_misses, cache.table_hits, cache.table_misses,
	// cache.evictions) and gauges (cache.bytes, cache.entries) into a
	// registry — the /metrics endpoint's view. Nil records only the
	// internal Stats.
	Metrics *metrics.Registry
}

// Cache is the bounded content-addressed store. All methods are safe
// for concurrent use; the zero value and the nil pointer behave as an
// always-miss cache, so callers thread an optional *Cache without
// guarding every touch.
type Cache struct {
	mu    sync.Mutex
	opts  Options
	lru   *list.List // front = most recently used
	index map[Key]*list.Element
	bytes int64
	stats Stats
	instr *instr
}

// instr holds the optional metrics mirrors.
type instr struct {
	resultHits, resultMisses *metrics.Counter
	tableHits, tableMisses   *metrics.Counter
	evictions                *metrics.Counter
	bytes, entries           *metrics.Gauge
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	ResultHits, ResultMisses int64
	TableHits, TableMisses   int64
	Evictions                int64
	Entries                  int
	Bytes                    int64
}

// New builds a cache. See Options for the defaults.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	c := &Cache{
		opts:  opts,
		lru:   list.New(),
		index: map[Key]*list.Element{},
	}
	if reg := opts.Metrics; reg != nil {
		c.instr = &instr{
			resultHits:   reg.Counter("cache.result_hits"),
			resultMisses: reg.Counter("cache.result_misses"),
			tableHits:    reg.Counter("cache.table_hits"),
			tableMisses:  reg.Counter("cache.table_misses"),
			evictions:    reg.Counter("cache.evictions"),
			bytes:        reg.Gauge("cache.bytes"),
			entries:      reg.Gauge("cache.entries"),
		}
	}
	return c
}

// get looks a key up in one tier and promotes it on hit. Tiers share
// the key space formally but every key embeds a domain label, so a
// result key can never alias a table key; the tier check is defensive.
func (c *Cache) get(t tier, k Key) *entry {
	el, ok := c.index[k]
	if !ok {
		return nil
	}
	e := el.Value.(*entry)
	if e.tier != t {
		return nil
	}
	c.lru.MoveToFront(el)
	return e
}

// put inserts (or refreshes) an entry and evicts past the bounds.
func (c *Cache) put(e *entry) {
	if old, ok := c.index[e.key]; ok {
		// Same content hash, same value: refresh recency only.
		c.lru.MoveToFront(old)
		return
	}
	if e.size > c.opts.MaxBytes {
		// A value larger than the whole budget would evict everything
		// and then still not fit.
		return
	}
	c.index[e.key] = c.lru.PushFront(e)
	c.bytes += e.size
	for (c.bytes > c.opts.MaxBytes || c.lru.Len() > c.opts.MaxEntries) && c.lru.Len() > 1 {
		c.evictOldest()
	}
	c.updateGauges()
}

// evictOldest drops the least recently used entry.
func (c *Cache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := c.lru.Remove(el).(*entry)
	delete(c.index, e.key)
	c.bytes -= e.size
	c.stats.Evictions++
	if c.instr != nil {
		c.instr.evictions.Inc()
	}
}

// updateGauges mirrors the size accounting into the metrics registry.
func (c *Cache) updateGauges() {
	if c.instr != nil {
		c.instr.bytes.Set(float64(c.bytes))
		c.instr.entries.Set(float64(c.lru.Len()))
	}
}

// GetResult returns the cached result document for the key. The
// returned bytes are shared and must not be modified.
func (c *Cache) GetResult(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.get(tierResult, k); e != nil {
		c.stats.ResultHits++
		if c.instr != nil {
			c.instr.resultHits.Inc()
		}
		return e.result, true
	}
	c.stats.ResultMisses++
	if c.instr != nil {
		c.instr.resultMisses.Inc()
	}
	return nil, false
}

// PutResult stores a finished result document under the key. The bytes
// are copied, so the caller may keep mutating its buffer.
func (c *Cache) PutResult(k Key, doc []byte) {
	if c == nil || len(doc) == 0 {
		return
	}
	cp := append([]byte(nil), doc...)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(&entry{tier: tierResult, key: k, size: int64(len(cp)) + 96, result: cp})
}

// GetTable returns the cached warm table for the key. The table and
// its distributions are shared and must be treated as immutable.
func (c *Cache) GetTable(k Key) (*Table, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.get(tierTable, k); e != nil {
		c.stats.TableHits++
		if c.instr != nil {
			c.instr.tableHits.Inc()
		}
		return e.table, true
	}
	c.stats.TableMisses++
	if c.instr != nil {
		c.instr.tableMisses.Inc()
	}
	return nil, false
}

// PutTable stores a warm table under the key. The cache takes shared
// ownership: the table, its cell slice, and every distribution must
// not be mutated (or Released) afterwards.
func (c *Cache) PutTable(k Key, t *Table) {
	if c == nil || t == nil || len(t.Cells) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(&entry{tier: tierTable, key: k, size: t.footprint(), table: t})
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// ParseSize parses a human-friendly byte size for the -cache flag:
// a plain integer is bytes, and the binary suffixes k/kb/kib, m/mb/mib,
// g/gb/gib (case-insensitive) scale by 1024, 1024^2, 1024^3.
func ParseSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("cache: empty size")
	}
	mult := int64(1)
	for _, sfx := range []struct {
		tag string
		m   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(t, sfx.tag) {
			mult = sfx.m
			t = strings.TrimSuffix(t, sfx.tag)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("cache: invalid size %q (want e.g. 268435456, 256MiB, 1GiB)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("cache: size %q overflows", s)
	}
	return n * mult, nil
}

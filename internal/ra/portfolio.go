package ra

import (
	"fmt"

	"cdsf/internal/sysmodel"
)

// Portfolio runs several heuristics and keeps the allocation with the
// highest phi_1 — the standard way to harden a production allocator
// against any single heuristic's blind spots. Objective evaluations are
// shared across members through the Problem's memo, so the portfolio
// costs roughly the sum of its members' search time, not its
// evaluations.
type Portfolio struct {
	// Members are the competing heuristics; empty uses the default
	// portfolio (greedy, maxmin, duplex, twophase, anneal, genetic).
	Members []Heuristic
}

func init() {
	registerHeuristic("portfolio", func() Heuristic { return Portfolio{} })
}

// Name returns "portfolio".
func (Portfolio) Name() string { return "portfolio" }

// DefaultPortfolio returns the default member set: the cheap
// constructive heuristics plus the two strongest metaheuristics.
func DefaultPortfolio() []Heuristic {
	names := []string{"greedy", "maxmin", "duplex", "twophase", "anneal", "genetic"}
	out := make([]Heuristic, 0, len(names))
	for _, n := range names {
		if h, ok := Get(n); ok {
			out = append(out, h)
		}
	}
	return out
}

// Allocate implements Heuristic: best member wins; members that fail
// are skipped, and an error is returned only if every member fails.
func (p Portfolio) Allocate(prob *Problem) (sysmodel.Allocation, error) {
	members := p.Members
	if len(members) == 0 {
		members = DefaultPortfolio()
	}
	var best sysmodel.Allocation
	bestPhi := -1.0
	var lastErr error
	for _, h := range members {
		al, err := h.Allocate(prob)
		if err != nil {
			lastErr = fmt.Errorf("ra: portfolio member %s: %w", h.Name(), err)
			continue
		}
		phi, err := prob.Objective(al)
		if err != nil {
			lastErr = err
			continue
		}
		if phi > bestPhi {
			bestPhi = phi
			best = al
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("ra: portfolio has no members")
	}
	return best, nil
}

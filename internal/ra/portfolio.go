package ra

import (
	"context"
	"fmt"

	"cdsf/internal/sysmodel"
)

// Portfolio runs several heuristics and keeps the allocation with the
// highest phi_1 — the standard way to harden a production allocator
// against any single heuristic's blind spots. Members run concurrently
// across a worker pool and share the Problem's precomputed evaluation
// table, so the portfolio costs roughly its slowest member's search
// time, not the sum. Results are merged in member order (first member
// wins phi_1 ties), so the outcome is identical for any worker count.
type Portfolio struct {
	// Members are the competing heuristics; empty uses the default
	// portfolio (greedy, maxmin, duplex, twophase, anneal, genetic).
	Members []Heuristic
	// Workers bounds the member worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

func init() {
	registerHeuristic("portfolio", func() Heuristic { return &Portfolio{} })
}

// Name returns "portfolio".
func (Portfolio) Name() string { return "portfolio" }

// SetWorkers implements WorkerSettable.
func (p *Portfolio) SetWorkers(workers int) { p.Workers = workers }

// DefaultPortfolio returns the default member set: the cheap
// constructive heuristics plus the two strongest metaheuristics.
func DefaultPortfolio() []Heuristic {
	names := []string{"greedy", "maxmin", "duplex", "twophase", "anneal", "genetic"}
	out := make([]Heuristic, 0, len(names))
	for _, n := range names {
		if h, ok := Get(n); ok {
			out = append(out, h)
		}
	}
	return out
}

// Allocate implements Heuristic: best member wins; members that fail
// are skipped, and an error is returned only if every member fails.
func (p Portfolio) Allocate(prob *Problem) (sysmodel.Allocation, error) {
	return p.AllocateContext(context.Background(), prob)
}

// AllocateContext implements ContextHeuristic: ctx reaches every member
// through SolveContext, so cancelling the portfolio cancels its
// members' searches, and the member pool drains before returning.
func (p Portfolio) AllocateContext(ctx context.Context, prob *Problem) (sysmodel.Allocation, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := prob.PrecomputeContext(ctx, p.Workers); err != nil {
		return nil, err
	}
	members := p.Members
	if len(members) == 0 {
		members = DefaultPortfolio()
	}
	type memberResult struct {
		al  sysmodel.Allocation
		phi float64
		err error
	}
	results := make([]memberResult, len(members))
	tr := prob.tracer()
	poolErr := runParallel(ctx, p.Workers, len(members), func(i int) {
		defer tr.Begin("stage1/portfolio/"+members[i].Name(), members[i].Name(), "stage1").End()
		al, err := SolveContext(ctx, members[i], prob)
		if err != nil {
			results[i] = memberResult{err: fmt.Errorf("ra: portfolio member %s: %w", members[i].Name(), err)}
			return
		}
		phi, err := prob.Objective(al)
		results[i] = memberResult{al: al, phi: phi, err: err}
	})
	if poolErr != nil {
		return nil, searchErr("portfolio", poolErr)
	}
	var best sysmodel.Allocation
	bestPhi := -1.0
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
			continue
		}
		if r.phi > bestPhi {
			bestPhi = r.phi
			best = r.al
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("ra: portfolio has no members")
	}
	return best, nil
}

package ra

import (
	"context"
	"math"
	"strings"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/robustness"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// dagProblem builds a 4-application instance with enough deadline
// slack that composed chains keep a nontrivial phi_1.
func dagProblem() *Problem {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 6, Avail: pmf.Point(1)},
	}}
	app := func(t1, t2 float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          "app",
			SerialIters:   50,
			ParallelIters: 950,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(t1, t1/10), 40),
				pmf.Discretize(stats.NewNormal(t2, t2/10), 40),
			},
		}
	}
	return &Problem{
		Sys: sys,
		Batch: sysmodel.Batch{
			app(900, 1200), app(1500, 1000), app(700, 900), app(1100, 1300),
		},
		Deadline: 6000,
	}
}

var forkJoin = []sysmodel.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}

func TestDAGHeuristicsRegistered(t *testing.T) {
	for _, name := range []string{"heft", "dag-greedy"} {
		h, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if !strings.EqualFold(h.Name(), name) {
			t.Errorf("ByName(%q).Name() = %q", name, h.Name())
		}
	}
}

// TestDAGHeuristicsAllocate runs both list schedulers on chain,
// fork-join, and edge-free topologies: allocations must be feasible,
// deterministic, and score a positive DAG phi_1.
func TestDAGHeuristicsAllocate(t *testing.T) {
	topologies := map[string][]sysmodel.Edge{
		"independent": nil,
		"chain":       {{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}},
		"fork-join":   forkJoin,
	}
	for _, name := range []string{"heft", "dag-greedy"} {
		h, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for topo, edges := range topologies {
			p := dagProblem()
			p.Edges = edges
			al, err := SolveContext(context.Background(), h, p)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, topo, err)
			}
			if err := al.Validate(p.Sys, p.Batch); err != nil {
				t.Fatalf("%s on %s: infeasible allocation %v: %v", name, topo, al, err)
			}
			phi, err := p.Objective(al)
			if err != nil {
				t.Fatal(err)
			}
			if phi <= 0 || phi > 1 {
				t.Errorf("%s on %s: phi_1 = %v outside (0, 1]", name, topo, phi)
			}
			again, err := SolveContext(context.Background(), h, p)
			if err != nil {
				t.Fatal(err)
			}
			if !al.Equal(again) {
				t.Errorf("%s on %s: repeated solve differs: %v vs %v", name, topo, al, again)
			}
		}
	}
}

// TestDAGHeuristicsExhaustProcessors pins the error paths when the
// system cannot give every application a processor.
func TestDAGHeuristicsExhaustProcessors(t *testing.T) {
	p := dagProblem()
	p.Sys = &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 2, Avail: pmf.Point(1)},
	}}
	for i := range p.Batch {
		p.Batch[i].ExecTime = p.Batch[i].ExecTime[:1]
	}
	p.Edges = forkJoin
	for _, name := range []string{"heft", "dag-greedy"} {
		h, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SolveContext(context.Background(), h, p); err == nil ||
			!strings.Contains(err.Error(), "ran out of processors") {
			t.Errorf("%s on a starved system: err = %v, want ran-out-of-processors", name, err)
		}
	}
}

// TestObjectiveMatchesStageIDAG couples Stage I's search objective to
// the externally reported evaluation: for any allocation, the DAG
// Objective must equal robustness.EvaluateStageIDAG's Phi1 on the
// sparse backend.
func TestObjectiveMatchesStageIDAG(t *testing.T) {
	p := dagProblem()
	p.Edges = forkJoin
	h, err := ByName("heft")
	if err != nil {
		t.Fatal(err)
	}
	al, err := SolveContext(context.Background(), h, p)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := p.Objective(al)
	if err != nil {
		t.Fatal(err)
	}
	st, err := robustness.EvaluateStageIDAG(p.Sys, p.Batch, p.Edges, al, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-st.Phi1) > 1e-12 {
		t.Errorf("Objective %v != EvaluateStageIDAG Phi1 %v", phi, st.Phi1)
	}
	// Edge-free, the DAG evaluation must degenerate to the independent
	// product exactly.
	p2 := dagProblem()
	phi2, err := p2.Objective(al)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := robustness.EvaluateStageIDAG(p2.Sys, p2.Batch, nil, al, p2.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if phi2 != st2.Phi1 {
		t.Errorf("edge-free Objective %v != EvaluateStageI Phi1 %v", phi2, st2.Phi1)
	}
}

// TestDAGPhiBackendsAgree is the acceptance check that the sparse and
// grid backends agree on the DAG phi_1 within the quantization bounds
// of DESIGN.md §9 (step = deadline/1024; the composed deviation stays
// well under the coarse envelope asserted here).
func TestDAGPhiBackendsAgree(t *testing.T) {
	for topo, edges := range map[string][]sysmodel.Edge{
		"chain":     {{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}},
		"fork-join": forkJoin,
	} {
		sp := dagProblem()
		sp.Edges = edges
		h, err := ByName("heft")
		if err != nil {
			t.Fatal(err)
		}
		al, err := SolveContext(context.Background(), h, sp)
		if err != nil {
			t.Fatal(err)
		}
		phiSparse, err := sp.Objective(al)
		if err != nil {
			t.Fatal(err)
		}
		gr := dagProblem()
		gr.Edges = edges
		gr.Backend = pmf.BackendGrid
		if err := gr.PrecomputeContext(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		phiGrid, err := gr.Objective(al)
		if err != nil {
			t.Fatal(err)
		}
		if phiGrid < 0 || phiGrid > 1 {
			t.Fatalf("%s: grid phi_1 = %v outside [0, 1]", topo, phiGrid)
		}
		if diff := math.Abs(phiSparse - phiGrid); diff > 0.02 {
			t.Errorf("%s: sparse phi_1 %v vs grid %v (diff %v) exceeds the quantization envelope",
				topo, phiSparse, phiGrid, diff)
		}
	}
}

package ra

// This file implements the DAG-aware Stage-I objective. With
// precedence edges on the Problem, phi_1 is no longer the product of
// standalone per-application deadline probabilities: each
// application's completion time is composed along its predecessor
// chains (C_i = T_i + max over preds C_p, the PERT approximation in
// sysmodel/dag.go) and phi_1 is the product over the sink
// applications. Both PMF backends are supported — sparse composition
// uses pmf.Max/pmf.Add with compaction, the grid backend uses the
// CDF-product MaxWith and index-shifted Add on the table's lattice —
// and the per-cell distributions retained by Precompute make each
// composition start from O(1) table reads.

import (
	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// distFor returns the full completion-time distribution of application
// i under assignment as: an O(1) read of the retained table
// distributions when available, a direct computation otherwise
// (non-power-of-2 hand-written allocations, or cells the warm cache
// was missing).
func (p *Problem) distFor(i int, as sysmodel.Assignment) pmf.Dist {
	if t := p.table; t != nil && t.dists != nil {
		if k, ok := log2of(as.Procs); ok && k < t.logs && as.Type >= 0 && as.Type < t.types && i >= 0 && i < len(p.Batch) {
			if d := t.dists[(i*t.types+as.Type)*t.logs+k]; d != nil {
				return d
			}
		}
	}
	return p.computeDist(i, as)
}

// dagPhi returns the DAG phi_1 of an allocation: the probability that
// every application of the precedence-constrained batch finishes by
// the deadline, computed by composing the per-application completion
// distributions along the edges and multiplying the sink
// probabilities. The allocation must already be validated. Safe for
// concurrent use once the Problem is precomputed (compositions build
// only private intermediates).
func (p *Problem) dagPhi(al sysmodel.Allocation) float64 {
	n := len(p.Batch)
	sinks := sysmodel.Sinks(p.Edges, n)
	if p.Backend.IsGrid() {
		dists := make([]*pmf.Grid, n)
		for i := 0; i < n; i++ {
			dists[i] = p.distFor(i, al[i]).(*pmf.Grid)
		}
		comp, err := sysmodel.ComposeDAGGrid(dists, p.Edges)
		if err != nil {
			return 0
		}
		phi := 1.0
		for _, s := range sinks {
			phi *= comp[s].PrLE(p.Deadline)
		}
		sysmodel.ReleaseGrids(comp)
		return phi
	}
	dists := make([]pmf.PMF, n)
	for i := 0; i < n; i++ {
		dists[i] = p.distFor(i, al[i]).(pmf.PMF)
	}
	comp, err := sysmodel.ComposeDAG(dists, p.Edges, sysmodel.DAGMaxPulses)
	if err != nil {
		return 0
	}
	phi := 1.0
	for _, s := range sinks {
		phi *= comp[s].PrLE(p.Deadline)
	}
	return phi
}

package ra

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdsf/internal/cache"
	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
)

// This file implements the Stage-I evaluation table: the dense,
// immutable (application x type x log2(count)) array of
// (Pr(T_i <= Delta), E[T_i]) cells that every search heuristic reads
// instead of recomputing completion PMFs. Building the table up front
// turns the inner loops of the searches into lock-free O(1) array reads
// and is what makes a Problem safe to share across goroutines.

// evalTable is the precomputed evaluation table. Cells are indexed by
// (app*types + type)*logs + log2(procs); slots whose power-of-2 count
// exceeds the type's capacity are never read. The table is immutable
// after construction.
type evalTable struct {
	types int
	logs  int // power-of-2 count slots per (app, type): log2(maxCount)+1
	cells []memoVal
	// dists holds each cell's full completion-time distribution when the
	// Problem carries precedence edges (indexed like cells; nil slices
	// and nil entries fall back to computeDist). DAG composition needs
	// whole distributions, not just the (prob, expected) pair, so the
	// table retains what it computed instead of discarding it.
	dists []pmf.Dist
}

// log2of returns (log2(n), true) when n is a positive power of two.
func log2of(n int) (int, bool) {
	if n < 1 || n&(n-1) != 0 {
		return 0, false
	}
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k, true
}

// normWorkers resolves a worker-count knob: non-positive means
// runtime.NumCPU().
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// Precompute eagerly builds the evaluation table with a bounded worker
// pool (workers <= 0 means runtime.NumCPU()). It validates the instance
// first and is idempotent: the first successful call builds the table,
// later calls return immediately. Cell values are independent of the
// worker count, so precomputed Problems behave identically however many
// workers built them.
//
// Precompute itself must not be called concurrently with other methods
// of an un-precomputed Problem; every Allocate implementation in this
// package calls it before fanning out, so plain sequential construction
// followed by concurrent use is always safe.
func (p *Problem) Precompute(workers int) error {
	return p.PrecomputeContext(context.Background(), workers)
}

// PrecomputeContext is Precompute under a context: the table build's
// worker pool drains at the next cell boundary when ctx is cancelled,
// the Problem is left un-precomputed (no partial table is ever
// published), and the returned error wraps ctx.Err().
func (p *Problem) PrecomputeContext(ctx context.Context, workers int) error {
	if p.table != nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	defer p.tracer().Begin("stage1", "precompute", "stage1").End()
	reg := p.registry()
	var t0 time.Time
	if reg != nil {
		t0 = time.Now()
		p.instr = instr{
			evals:  reg.Counter("ra.evaluations"),
			hits:   reg.Counter("ra.table_hits"),
			misses: reg.Counter("ra.table_misses"),
		}
	}
	maxCount := 0
	for _, t := range p.Sys.Types {
		if t.Count > maxCount {
			maxCount = t.Count
		}
	}
	logs := 1
	for 1<<logs <= maxCount {
		logs++
	}
	t := &evalTable{
		types: len(p.Sys.Types),
		logs:  logs,
		cells: make([]memoVal, len(p.Batch)*len(p.Sys.Types)*logs),
	}
	// One job per feasible cell: count 1<<k must not exceed the type's
	// capacity.
	type job struct{ i, j, k int }
	jobs := make([]job, 0, len(t.cells))
	for i := range p.Batch {
		for j, pt := range p.Sys.Types {
			for k := 0; 1<<k <= pt.Count; k++ {
				jobs = append(jobs, job{i, j, k})
			}
		}
	}

	// Warm-table path: the completion-time distribution behind each
	// cell does not depend on the deadline, the heuristic, or the
	// runtime availability cases, so Problems differing only in those
	// share one cached distribution set and each cell collapses to a
	// cached-CDF PrLE read plus a Mean (delta-solve). Cells are derived
	// from the same distribution objects the direct path would compute,
	// so the table is bit-identical whether the cache is absent, cold,
	// or warm.
	var warmKey cache.Key
	var warm *cache.Table
	var dists []pmf.Dist
	useCache := p.Cache != nil
	if useCache {
		step := 0.0
		if p.Backend.IsGrid() {
			step = p.gridStep()
		}
		k, err := cache.TableKey(p.Sys, p.Batch, p.Backend, step)
		if err != nil {
			useCache = false // unhashable instance: fall back to direct computation
		} else {
			warmKey = k
			if w, ok := p.Cache.GetTable(warmKey); ok &&
				w.Types == t.types && w.Logs == t.logs && len(w.Cells) == len(t.cells) {
				warm = w
			}
		}
		if warm == nil && useCache {
			dists = make([]pmf.Dist, len(t.cells))
		}
	}
	// A DAG problem composes the cells' full distributions, so retain
	// them even without a cache attached.
	if dists == nil && warm == nil && len(p.Edges) > 0 {
		dists = make([]pmf.Dist, len(t.cells))
	}

	if err := runParallel(ctx, workers, len(jobs), func(n int) {
		jb := jobs[n]
		idx := (jb.i*t.types+jb.j)*t.logs + jb.k
		if warm != nil {
			if d := warm.Cells[idx]; d != nil {
				t.cells[idx] = cellFromDist(d, p.Deadline)
				return
			}
		}
		as := sysmodel.Assignment{Type: jb.j, Procs: 1 << jb.k}
		if dists != nil {
			d := p.computeDist(jb.i, as)
			dists[idx] = d
			t.cells[idx] = cellFromDist(d, p.Deadline)
			return
		}
		t.cells[idx] = p.computeCell(jb.i, as)
	}); err != nil {
		return searchErr("precompute", err)
	}
	switch {
	case warm != nil:
		p.warmHits = int64(len(jobs))
		if len(p.Edges) > 0 {
			t.dists = warm.Cells
		}
	case dists != nil:
		if useCache {
			p.warmMisses = int64(len(jobs))
			p.Cache.PutTable(warmKey, &cache.Table{Types: t.types, Logs: t.logs, Cells: dists})
		}
		if len(p.Edges) > 0 {
			t.dists = dists
		}
	}
	p.table = t
	if reg != nil {
		reg.Counter("ra.precompute_cells").Add(int64(len(jobs)))
		reg.Timer("ra.precompute_wall").Observe(time.Since(t0))
	}
	return nil
}

// gridBinsPerDeadline fixes the lattice resolution of the grid
// backend: the step is Deadline/gridBinsPerDeadline, so a deadline
// probability read off a grid cell can differ from the sparse
// reference only by the mass within half a step (~0.05% of the
// deadline) of the deadline itself.
const gridBinsPerDeadline = 1024

// gridStep returns the lattice step used by grid-backend cells.
func (p *Problem) gridStep() float64 { return p.Deadline / gridBinsPerDeadline }

// computeCell evaluates one (application, assignment) cell from
// scratch, on whichever backend the Problem selects. The grid path
// quantizes the parallel-time PMF once, divides by the sparse
// availability with the dense kernel, reads the two cell values, and
// returns its buffers to the pool — steady-state it allocates nothing.
func (p *Problem) computeCell(i int, as sysmodel.Assignment) memoVal {
	if p.Backend.IsGrid() {
		g := p.Batch[i].CompletionGrid(as.Type, as.Procs, p.Sys.Types[as.Type].Avail, p.gridStep())
		mv := memoVal{prob: g.PrLE(p.Deadline), expected: g.Mean()}
		g.Release()
		return mv
	}
	c := p.Batch[i].CompletionPMF(as.Type, as.Procs, p.Sys.Types[as.Type].Avail)
	return memoVal{prob: c.PrLE(p.Deadline), expected: c.Mean()}
}

// computeDist evaluates one cell's full completion-time distribution —
// the cacheable, deadline-invariant object behind computeCell. The
// grid path clones off the pooled buffers so the returned distribution
// may be retained indefinitely.
func (p *Problem) computeDist(i int, as sysmodel.Assignment) pmf.Dist {
	if p.Backend.IsGrid() {
		g := p.Batch[i].CompletionGrid(as.Type, as.Procs, p.Sys.Types[as.Type].Avail, p.gridStep())
		c := g.Clone()
		g.Release()
		return c
	}
	return p.Batch[i].CompletionPMF(as.Type, as.Procs, p.Sys.Types[as.Type].Avail)
}

// cellFromDist derives a table cell from a completion-time
// distribution: the delta-solve step. The distribution carries a
// cached CDF, so PrLE is O(log n) sparse / O(1) grid; deriving from a
// freshly computed distribution and from the same distribution pulled
// warm out of the cache runs the very same reads, which is what pins
// cache-on/off bit-identity.
func cellFromDist(d pmf.Dist, deadline float64) memoVal {
	return memoVal{prob: d.PrLE(deadline), expected: d.Mean()}
}

// runParallel executes fn(0..n-1) across a bounded worker pool. With
// workers <= 1 (or n <= 1) it degenerates to a plain sequential loop.
// Tasks are claimed from an atomic counter, so every task runs exactly
// once; fn must write only to its own task's slot of any shared output.
//
// Cancellation: workers check ctx before claiming each task, so a
// cancelled context drains the pool at the next task boundary (in-flight
// tasks finish — or abort at their own internal checkpoints). runParallel
// then returns ctx.Err(); callers must treat their shared output as
// incomplete when it does.
func runParallel(ctx context.Context, workers, n int, fn func(int)) error {
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(k)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

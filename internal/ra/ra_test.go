package ra

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/pmf"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// smallProblem builds a compact instance with a known-good structure:
// one short and one long application on a 2-type system.
func smallProblem() *Problem {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 2, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 4, Avail: pmf.Point(1)},
	}}
	app := func(t1, t2 float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          "app",
			SerialIters:   100,
			ParallelIters: 900,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(t1, t1/10), 50),
				pmf.Discretize(stats.NewNormal(t2, t2/10), 50),
			},
		}
	}
	return &Problem{
		Sys:      sys,
		Batch:    sysmodel.Batch{app(1000, 1400), app(2500, 1800)},
		Deadline: 1200,
	}
}

// randomProblem builds a random feasible instance for property tests.
func randomProblem(seed uint64, apps int) *Problem {
	r := rng.New(seed)
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 2 + r.Intn(4), Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5 + 0.5*r.Float64(), Prob: 0.5},
			{Value: 0.25 + 0.25*r.Float64(), Prob: 0.5}})},
		{Name: "T2", Count: 2 + r.Intn(8), Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.4 + 0.6*r.Float64(), Prob: 1}})},
	}}
	b := make(sysmodel.Batch, apps)
	for i := range b {
		mu1 := 500 + 2500*r.Float64()
		mu2 := 500 + 2500*r.Float64()
		b[i] = sysmodel.Application{
			Name:          fmt.Sprintf("app%d", i),
			SerialIters:   1 + r.Intn(200),
			ParallelIters: 200 + r.Intn(2000),
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(mu1, mu1/10), 30),
				pmf.Discretize(stats.NewNormal(mu2, mu2/10), 30),
			},
		}
	}
	return &Problem{Sys: sys, Batch: b, Deadline: 800 + 2000*r.Float64()}
}

func TestGetAndNames(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("only %d heuristics registered: %v", len(names), names)
	}
	for _, n := range names {
		if _, ok := Get(n); !ok {
			t.Errorf("Get(%q) failed", n)
		}
	}
	if _, ok := Get("EXHAUSTIVE"); !ok {
		t.Error("lookup not case-insensitive")
	}
	if _, ok := Get("bogus"); ok {
		t.Error("unknown heuristic found")
	}
}

func TestProblemValidate(t *testing.T) {
	p := smallProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Deadline = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero deadline validated")
	}
	bad2 := *p
	bad2.Sys = nil
	if err := bad2.Validate(); err == nil {
		t.Error("nil system validated")
	}
}

func TestExhaustiveIsOptimal(t *testing.T) {
	p := smallProblem()
	best, err := Exhaustive{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	bestPhi, err := p.Objective(best)
	if err != nil {
		t.Fatal(err)
	}
	sysmodel.EnumerateAllocations(p.Sys, p.Batch, func(al sysmodel.Allocation) bool {
		phi, err := p.Objective(al)
		if err == nil && phi > bestPhi+1e-12 {
			t.Fatalf("allocation %v has phi %v > exhaustive %v", al, phi, bestPhi)
		}
		return true
	})
}

func TestAllHeuristicsFeasibleOnRandomInstances(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, apps := range []int{1, 2, 4} {
			p := randomProblem(seed, apps)
			for _, name := range Names() {
				h, _ := Get(name)
				al, err := h.Allocate(p)
				if err != nil {
					t.Errorf("seed %d apps %d %s: %v", seed, apps, name, err)
					continue
				}
				if err := al.Validate(p.Sys, p.Batch); err != nil {
					t.Errorf("seed %d apps %d %s: infeasible: %v", seed, apps, name, err)
				}
			}
		}
	}
}

func TestHeuristicsNeverBeatExhaustive(t *testing.T) {
	for seed := uint64(10); seed < 14; seed++ {
		p := randomProblem(seed, 3)
		opt, err := Exhaustive{}.Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		optPhi, err := p.Objective(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range Names() {
			if name == "exhaustive" {
				continue
			}
			h, _ := Get(name)
			al, err := h.Allocate(p)
			if err != nil {
				t.Errorf("seed %d %s: %v", seed, name, err)
				continue
			}
			phi, err := p.Objective(al)
			if err != nil {
				t.Fatal(err)
			}
			if phi > optPhi+1e-9 {
				t.Errorf("seed %d: %s phi %v beats exhaustive %v", seed, name, phi, optPhi)
			}
		}
	}
}

func TestMetaheuristicsReachOptimumOnSmall(t *testing.T) {
	p := smallProblem()
	opt, err := Exhaustive{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	optPhi, _ := p.Objective(opt)
	for _, name := range []string{"anneal", "genetic", "tabu"} {
		h, _ := Get(name)
		al, err := h.Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		phi, _ := p.Objective(al)
		if phi < optPhi-0.02 {
			t.Errorf("%s phi %v far from optimum %v on a tiny instance", name, phi, optPhi)
		}
	}
}

func TestRepairShrinksOversubscription(t *testing.T) {
	p := smallProblem()
	al := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 0, Procs: 2}} // 4 > 2 of T1
	if !repair(p, al) {
		t.Fatal("repair failed")
	}
	if err := al.Validate(p.Sys, p.Batch); err != nil {
		t.Fatalf("repair left infeasible allocation: %v", err)
	}
	// Power-of-2 invariant preserved.
	for _, as := range al {
		if as.Procs&(as.Procs-1) != 0 {
			t.Errorf("repair broke power-of-2: %d", as.Procs)
		}
	}
}

func TestRepairFailsWhenImpossible(t *testing.T) {
	// 3 applications on 2 processors of a single type cannot fit.
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 2, Avail: pmf.Point(1)},
	}}
	app := sysmodel.Application{
		Name: "a", SerialIters: 1, ParallelIters: 10,
		ExecTime: []pmf.PMF{pmf.Point(100)},
	}
	p := &Problem{Sys: sys, Batch: sysmodel.Batch{app, app, app}, Deadline: 100}
	al := sysmodel.Allocation{{Type: 0, Procs: 1}, {Type: 0, Procs: 1}, {Type: 0, Procs: 1}}
	if repair(p, al) {
		t.Error("repair succeeded on an impossible instance")
	}
}

func TestNeighborPreservesFeasibility(t *testing.T) {
	p := smallProblem()
	r := rng.New(1)
	cur, ok := randomAllocation(p, r)
	if !ok {
		t.Fatal("no initial allocation")
	}
	for i := 0; i < 200; i++ {
		next, ok := neighbor(p, cur, r)
		if !ok {
			continue
		}
		if err := next.Validate(p.Sys, p.Batch); err != nil {
			t.Fatalf("neighbor produced infeasible allocation: %v", err)
		}
		cur = next
	}
}

func TestRandomAllocationAlwaysFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProblem(seed%1000, int(seed%4)+1)
		r := rng.New(seed)
		al, ok := randomAllocation(p, r)
		if !ok {
			return false
		}
		return al.Validate(p.Sys, p.Batch) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScoreOrdering(t *testing.T) {
	a := score{phi: 0.9, maxExp: 100, sumExp: 200, defined: true}
	b := score{phi: 0.8, maxExp: 50, sumExp: 100, defined: true}
	if !a.better(b) {
		t.Error("higher phi should win")
	}
	c := score{phi: 0.9, maxExp: 90, sumExp: 300, defined: true}
	if !c.better(a) {
		t.Error("equal phi, lower maxExp should win")
	}
	d := score{phi: 0.9, maxExp: 100, sumExp: 150, defined: true}
	if !d.better(a) {
		t.Error("equal phi and maxExp, lower sumExp should win")
	}
	if !a.better(score{}) {
		t.Error("anything beats undefined")
	}
}

func TestObjectiveMatchesScorePhi(t *testing.T) {
	p := smallProblem()
	al := sysmodel.Allocation{{Type: 1, Procs: 2}, {Type: 1, Procs: 2}}
	phi, err := p.Objective(al)
	if err != nil {
		t.Fatal(err)
	}
	s := p.scoreOf(al)
	if math.Abs(phi-s.phi) > 1e-12 {
		t.Errorf("Objective %v != scoreOf.phi %v", phi, s.phi)
	}
}

func TestPortfolioBeatsEveryMember(t *testing.T) {
	p := smallProblem()
	port := Portfolio{}
	al, err := port.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	phiPort, err := p.Objective(al)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range DefaultPortfolio() {
		mal, err := h.Allocate(p)
		if err != nil {
			continue
		}
		phi, err := p.Objective(mal)
		if err != nil {
			t.Fatal(err)
		}
		if phi > phiPort+1e-9 {
			t.Errorf("member %s phi %v beats portfolio %v", h.Name(), phi, phiPort)
		}
	}
}

func TestPortfolioCustomMembers(t *testing.T) {
	p := smallProblem()
	port := Portfolio{Members: []Heuristic{NaiveLoadBalance{}}}
	al, err := port.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveLoadBalance{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !al.Equal(naive) {
		t.Error("single-member portfolio differs from the member")
	}
}

func TestMinimalRobustExact(t *testing.T) {
	p := smallProblem()
	opt, err := Exhaustive{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	optPhi, _ := p.Objective(opt)
	target := optPhi * 0.9
	al, err := MinimalRobust{Target: target}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	phi, _ := p.Objective(al)
	if phi < target {
		t.Fatalf("minimal allocation phi %v below target %v", phi, target)
	}
	procsOf := func(a sysmodel.Allocation) int {
		n := 0
		for _, as := range a {
			n += as.Procs
		}
		return n
	}
	if procsOf(al) > procsOf(opt) {
		t.Errorf("minimal allocation uses %d procs > phi-optimal %d", procsOf(al), procsOf(opt))
	}
	// Unreachable target errors only in strict mode; best-effort
	// returns the most robust allocation.
	if optPhi*1.5 <= 1 {
		if _, err := (MinimalRobust{Target: optPhi * 1.5, Strict: true}).Allocate(p); err == nil {
			t.Error("strict unreachable target accepted")
		}
		be, err := (MinimalRobust{Target: optPhi * 1.5}).Allocate(p)
		if err != nil {
			t.Fatalf("best-effort failed: %v", err)
		}
		bePhi, _ := p.Objective(be)
		if bePhi < optPhi-1e-9 {
			t.Errorf("best-effort phi %v below optimum %v", bePhi, optPhi)
		}
	}
	if _, err := (MinimalRobust{Target: 0}).Allocate(p); err == nil {
		t.Error("target 0 accepted")
	}
}

func TestMinimalRobustShrink(t *testing.T) {
	p := smallProblem()
	m := MinimalRobust{Target: 0.5, EnumerationLimit: 1} // force the greedy path
	al, err := m.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Validate(p.Sys, p.Batch); err != nil {
		t.Fatal(err)
	}
	phi, _ := p.Objective(al)
	if phi < 0.5 {
		t.Errorf("shrunk allocation phi %v below target", phi)
	}
	// Exact search at the same target must not use more processors.
	exact, err := (MinimalRobust{Target: 0.5}).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(a sysmodel.Allocation) int {
		n := 0
		for _, as := range a {
			n += as.Procs
		}
		return n
	}
	if sum(exact) > sum(al) {
		t.Errorf("exact minimal %d procs > greedy %d", sum(exact), sum(al))
	}
}

package ra

import (
	"testing"

	"cdsf/internal/cache"
	"cdsf/internal/pmf"
)

// cloneProblem returns a fresh un-precomputed Problem over the same
// model objects, so each solve builds (or warm-loads) its own table.
func cloneProblem(p *Problem) *Problem {
	return &Problem{Sys: p.Sys, Batch: p.Batch, Deadline: p.Deadline, Backend: p.Backend, Cache: p.Cache}
}

// solveCells precomputes the problem and returns its raw table cells.
func solveCells(t *testing.T, p *Problem) []memoVal {
	t.Helper()
	if err := p.Precompute(2); err != nil {
		t.Fatal(err)
	}
	return p.table.cells
}

// TestCacheBitIdenticalCells pins the central cache contract on both
// backends: the evaluation table built with the cache absent, cold,
// and warm is bit-identical cell for cell (exact float equality, not
// tolerance), and a heuristic solve returns the identical allocation.
func TestCacheBitIdenticalCells(t *testing.T) {
	for _, backend := range []pmf.Backend{pmf.BackendSparse, pmf.BackendGrid} {
		t.Run(backend.String(), func(t *testing.T) {
			base := randomProblem(7, 3)
			base.Backend = backend
			plain := solveCells(t, cloneProblem(base))

			c := cache.New(cache.Options{})
			withCache := cloneProblem(base)
			withCache.Cache = c
			cold := solveCells(t, withCache)
			if h, m := withCache.CacheCounts(); h != 0 || m == 0 {
				t.Fatalf("cold build counts = (%d, %d), want (0, >0)", h, m)
			}

			warmProb := cloneProblem(base)
			warmProb.Cache = c
			warm := solveCells(t, warmProb)
			if h, m := warmProb.CacheCounts(); h == 0 || m != 0 {
				t.Fatalf("warm build counts = (%d, %d), want (>0, 0)", h, m)
			}

			for i := range plain {
				if plain[i] != cold[i] {
					t.Fatalf("cell %d: cacheless %+v != cold %+v", i, plain[i], cold[i])
				}
				if plain[i] != warm[i] {
					t.Fatalf("cell %d: cacheless %+v != warm %+v", i, plain[i], warm[i])
				}
			}

			// The allocations a heuristic derives from the tables agree
			// exactly too.
			alPlain, err := Greedy{}.Allocate(cloneProblem(base))
			if err != nil {
				t.Fatal(err)
			}
			cachedBase := cloneProblem(base)
			cachedBase.Cache = c
			alWarm, err := Greedy{}.Allocate(cachedBase)
			if err != nil {
				t.Fatal(err)
			}
			if alPlain.String() != alWarm.String() {
				t.Errorf("allocations diverge: %s vs %s", alPlain, alWarm)
			}
		})
	}
}

// TestDeltaSolveReusesWarmTable pins the delta-solve path: a problem
// differing only in deadline re-derives its cells from the warm
// distributions (warm hit) and the derived cells are bit-identical to
// a from-scratch build at the new deadline.
func TestDeltaSolveReusesWarmTable(t *testing.T) {
	base := smallProblem()
	c := cache.New(cache.Options{})

	first := cloneProblem(base)
	first.Cache = c
	solveCells(t, first)
	if h, m := first.CacheCounts(); h != 0 || m == 0 {
		t.Fatalf("first build counts = (%d, %d)", h, m)
	}

	// Same instance, different deadline: warm hit under the sparse
	// backend (distributions are deadline-invariant).
	delta := cloneProblem(base)
	delta.Deadline = base.Deadline * 1.5
	delta.Cache = c
	got := solveCells(t, delta)
	if h, m := delta.CacheCounts(); h == 0 || m != 0 {
		t.Fatalf("delta build counts = (%d, %d), want (>0, 0)", h, m)
	}

	fresh := cloneProblem(base)
	fresh.Deadline = base.Deadline * 1.5
	want := solveCells(t, fresh)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("cell %d: delta-solved %+v != fresh %+v", i, got[i], want[i])
		}
	}

	// A changed instance must NOT hit the warm entry.
	other := randomProblem(3, 2)
	other.Cache = c
	solveCells(t, other)
	if h, _ := other.CacheCounts(); h != 0 {
		t.Error("different instance warm-hit the cached table")
	}
}

// TestGridDeltaDeadlineIsWarmMiss pins the grid caveat: the lattice
// step is deadline/1024, so a deadline change re-quantizes and must
// not reuse the cached grid cells.
func TestGridDeltaDeadlineIsWarmMiss(t *testing.T) {
	base := smallProblem()
	base.Backend = pmf.BackendGrid
	c := cache.New(cache.Options{})

	first := cloneProblem(base)
	first.Cache = c
	solveCells(t, first)

	delta := cloneProblem(base)
	delta.Deadline = base.Deadline * 2
	delta.Cache = c
	got := solveCells(t, delta)
	if h, m := delta.CacheCounts(); h != 0 || m == 0 {
		t.Fatalf("grid delta counts = (%d, %d), want (0, >0)", h, m)
	}
	// And the rebuilt cells match a cacheless build exactly.
	fresh := cloneProblem(base)
	fresh.Deadline = base.Deadline * 2
	want := solveCells(t, fresh)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("cell %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Same deadline again: now it hits.
	again := cloneProblem(base)
	again.Deadline = base.Deadline * 2
	again.Cache = c
	solveCells(t, again)
	if h, m := again.CacheCounts(); h == 0 || m != 0 {
		t.Fatalf("repeat grid counts = (%d, %d), want (>0, 0)", h, m)
	}
}

// TestWarmTableSharedAcrossGoroutines precomputes many Problems
// against one cache concurrently (meaningful under -race: cached
// distributions are shared, so any mutation of them would be flagged).
func TestWarmTableSharedAcrossGoroutines(t *testing.T) {
	base := smallProblem()
	c := cache.New(cache.Options{})
	seed := cloneProblem(base)
	seed.Cache = c
	want := solveCells(t, seed)

	const n = 8
	cells := make([][]memoVal, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for g := 0; g < n; g++ {
		go func(g int) {
			p := cloneProblem(base)
			p.Cache = c
			errs[g] = p.Precompute(2)
			if errs[g] == nil {
				cells[g] = p.table.cells
			}
			done <- g
		}(g)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for i := range want {
			if cells[g][i] != want[i] {
				t.Fatalf("goroutine %d cell %d: %+v != %+v", g, i, cells[g][i], want[i])
			}
		}
	}
}

package ra

import (
	"context"
	"fmt"

	"cdsf/internal/sysmodel"
)

// MinimalRobust finds the allocation using the fewest processors whose
// phi_1 still reaches a target probability — the complementary
// objective of the grid-allocation literature the paper contrasts with
// ("minimizes their makespan and allocates the minimum number of
// resources"): don't maximize robustness, buy exactly as much as the
// SLA requires and leave the rest of the machine for other work.
//
// For instances small enough to enumerate it is exact; otherwise it
// starts from a portfolio allocation and greedily halves the largest
// assignments while the target still holds. When no allocation reaches
// the target, the phi_1-maximizing allocation is returned instead
// (best effort) unless Strict is set.
type MinimalRobust struct {
	// Target is the required phi_1 in (0, 1].
	Target float64
	// Strict makes an unreachable target an error instead of falling
	// back to the most robust allocation found.
	Strict bool
	// EnumerationLimit bounds the instance size for the exact search
	// (number of feasible allocations); larger instances use the greedy
	// shrink. Default 200000.
	EnumerationLimit int
	// Workers bounds the worker pool used for the evaluation-table
	// build and the portfolio seeding the greedy shrink; non-positive
	// means runtime.NumCPU(). The result never depends on it.
	Workers int
}

func init() {
	registerHeuristic("minimal", func() Heuristic { return &MinimalRobust{Target: 0.7} })
}

// Name returns "minimal".
func (MinimalRobust) Name() string { return "minimal" }

// SetWorkers implements WorkerSettable.
func (m *MinimalRobust) SetWorkers(workers int) { m.Workers = workers }

// Allocate implements Heuristic.
func (m MinimalRobust) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return m.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: the exact enumeration
// checks ctx every cancelCheckStride allocations and the greedy shrink
// once per halving round.
func (m MinimalRobust) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.Target <= 0 || m.Target > 1 {
		return nil, fmt.Errorf("ra: minimal-robust target %v outside (0,1]", m.Target)
	}
	if err := p.PrecomputeContext(ctx, m.Workers); err != nil {
		return nil, err
	}
	limit := m.EnumerationLimit
	if limit <= 0 {
		limit = 200000
	}
	if sysmodel.CountAllocations(p.Sys, p.Batch) <= limit {
		return m.exact(ctx, p)
	}
	return m.shrink(ctx, p)
}

// exact enumerates all allocations, keeping the fewest-processor one
// meeting the target (ties broken by higher phi_1).
func (m MinimalRobust) exact(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	var best, fallback sysmodel.Allocation
	bestProcs := 1 << 30
	bestPhi, fallbackPhi := -1.0, -1.0
	var n int64
	sysmodel.EnumerateAllocations(p.Sys, p.Batch, func(al sysmodel.Allocation) bool {
		if n++; n%cancelCheckStride == 0 && ctx.Err() != nil {
			return false
		}
		phi, err := p.Objective(al)
		if err != nil {
			return true
		}
		if phi > fallbackPhi {
			fallback = al.Clone()
			fallbackPhi = phi
		}
		if phi < m.Target {
			return true
		}
		procs := 0
		for _, as := range al {
			procs += as.Procs
		}
		if procs < bestProcs || (procs == bestProcs && phi > bestPhi) {
			best = al.Clone()
			bestProcs = procs
			bestPhi = phi
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, searchErr("minimal", err)
	}
	if best == nil {
		if !m.Strict && fallback != nil {
			return fallback, nil
		}
		return nil, fmt.Errorf("ra: no allocation reaches phi1 >= %v", m.Target)
	}
	return best, nil
}

// shrink starts from the portfolio's allocation and halves the largest
// assignment that keeps the target satisfied until no halving fits.
func (m MinimalRobust) shrink(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	al, err := Portfolio{Workers: m.Workers}.AllocateContext(ctx, p)
	if err != nil {
		return nil, err
	}
	phi, err := p.Objective(al)
	if err != nil {
		return nil, err
	}
	if phi < m.Target {
		if !m.Strict {
			return al, nil // best effort: the most robust allocation found
		}
		return nil, fmt.Errorf("ra: best found phi1 %v below target %v", phi, m.Target)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("minimal", err)
		}
		// Try halving assignments from the largest down; accept the
		// first that keeps the target.
		type cand struct{ idx, procs int }
		best := cand{idx: -1}
		for i, as := range al {
			if as.Procs < 2 {
				continue
			}
			al[i].Procs = as.Procs / 2
			phi, err := p.Objective(al)
			al[i].Procs = as.Procs
			if err == nil && phi >= m.Target && as.Procs > best.procs {
				best = cand{idx: i, procs: as.Procs}
			}
		}
		if best.idx < 0 {
			return al, nil
		}
		al[best.idx].Procs /= 2
	}
}

package ra

// This file implements the list-scheduling heuristics for
// precedence-constrained batches: HEFT (Heterogeneous Earliest Finish
// Time — upward-rank priority order) and a dynamic ready-list EFT
// heuristic ("dag-greedy", the ready-task/earliest-finish-time loop).
// Both schedule one application at a time onto a (type, power-of-2
// count) assignment, estimating finish times from the evaluation
// table's expected completion times — the stochastic analogue of
// HEFT's deterministic cost matrix — and both degrade gracefully on an
// edge-free batch (HEFT becomes longest-expected-time-first, dag-greedy
// becomes min-EFT), so they are registered unconditionally.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cdsf/internal/sysmodel"
)

func init() {
	registerHeuristic("heft", func() Heuristic { return HEFT{} })
	registerHeuristic("dag-greedy", func() Heuristic { return DAGGreedy{} })
}

// eftPick is one candidate (assignment, estimated finish) during list
// scheduling.
type eftPick struct {
	as   sysmodel.Assignment
	eft  float64
	prob float64
	ok   bool
}

// bestEFT returns the assignment minimizing the estimated finish time
// ready + E[T_i] for application i within the remaining capacity,
// leaving at least reserve processors for yet-unassigned applications.
// Ties are broken by higher standalone deadline probability, then
// fewer processors, then lower type index — all deterministic.
func (p *Problem) bestEFT(i int, ready float64, remaining []int, reserve int) eftPick {
	total := 0
	for _, r := range remaining {
		total += r
	}
	best := eftPick{eft: math.Inf(1)}
	for j := range p.Sys.Types {
		for _, c := range feasibleCounts(remaining[j]) {
			if total-c < reserve {
				continue
			}
			as := sysmodel.Assignment{Type: j, Procs: c}
			eft := ready + p.appExpected(i, as)
			prob := p.appProb(i, as)
			better := eft < best.eft-1e-9 ||
				(math.Abs(eft-best.eft) <= 1e-9 && prob > best.prob+1e-12) ||
				(math.Abs(eft-best.eft) <= 1e-9 && math.Abs(prob-best.prob) <= 1e-12 && c < best.as.Procs)
			if !best.ok || better {
				best = eftPick{as: as, eft: eft, prob: prob, ok: true}
			}
		}
	}
	return best
}

// HEFT is the Heterogeneous-Earliest-Finish-Time list scheduler
// adapted to the stochastic model: applications are prioritized by
// upward rank (mean single-processor expected completion plus the
// longest downstream rank chain) and each is assigned, in rank order,
// the (type, power-of-2 count) minimizing its estimated finish time —
// the maximum predecessor finish estimate plus its own expected
// completion on the candidate assignment.
type HEFT struct{}

// Name returns "heft".
func (HEFT) Name() string { return "heft" }

// Allocate implements Heuristic.
func (h HEFT) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: ctx is checked once per
// scheduled application.
func (HEFT) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, 0); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	// Upward ranks over the reversed topological order. The node weight
	// is the mean over types of the single-processor expected completion
	// time; edges carry no communication cost in this model.
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := range p.Sys.Types {
			sum += p.appExpected(i, sysmodel.Assignment{Type: j, Procs: 1})
		}
		w[i] = sum / float64(len(p.Sys.Types))
	}
	order, err := sysmodel.TopoOrder(p.Edges, n)
	if err != nil {
		return nil, fmt.Errorf("ra: heft: %w", err)
	}
	succs := sysmodel.Succs(p.Edges, n)
	rank := make([]float64, n)
	for x := n - 1; x >= 0; x-- {
		i := order[x]
		best := 0.0
		for _, s := range succs[i] {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[i] = w[i] + best
	}
	// Schedule in decreasing rank (stable: ties keep batch order).
	byRank := make([]int, n)
	for i := range byRank {
		byRank[i] = i
	}
	sort.SliceStable(byRank, func(a, b int) bool { return rank[byRank[a]] > rank[byRank[b]]+1e-12 })

	preds := sysmodel.Preds(p.Edges, n)
	remaining := make([]int, len(p.Sys.Types))
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
	}
	al := make(sysmodel.Allocation, n)
	finish := make([]float64, n)
	for done, i := range byRank {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("heft", err)
		}
		ready := 0.0
		for _, pr := range preds[i] {
			if finish[pr] > ready {
				ready = finish[pr]
			}
		}
		pick := p.bestEFT(i, ready, remaining, n-done-1)
		if !pick.ok {
			return nil, fmt.Errorf("ra: heft ran out of processors")
		}
		al[i] = pick.as
		finish[i] = pick.eft
		remaining[pick.as.Type] -= pick.as.Procs
	}
	return al, nil
}

// DAGGreedy is the dynamic ready-list EFT scheduler: at every step the
// applications whose predecessors are all scheduled form the ready
// set, and the (ready application, assignment) pair with the smallest
// estimated finish time is scheduled next. Unlike HEFT the priority
// order adapts to the assignments already made.
type DAGGreedy struct{}

// Name returns "dag-greedy".
func (DAGGreedy) Name() string { return "dag-greedy" }

// Allocate implements Heuristic.
func (h DAGGreedy) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: ctx is checked once per
// scheduled application.
func (DAGGreedy) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, 0); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	preds := sysmodel.Preds(p.Edges, n)
	remaining := make([]int, len(p.Sys.Types))
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
	}
	al := make(sysmodel.Allocation, n)
	finish := make([]float64, n)
	scheduled := make([]bool, n)
	for done := 0; done < n; done++ {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("dag-greedy", err)
		}
		bestI := -1
		var bestPick eftPick
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			ready := 0.0
			isReady := true
			for _, pr := range preds[i] {
				if !scheduled[pr] {
					isReady = false
					break
				}
				if finish[pr] > ready {
					ready = finish[pr]
				}
			}
			if !isReady {
				continue
			}
			pick := p.bestEFT(i, ready, remaining, n-done-1)
			if !pick.ok {
				return nil, fmt.Errorf("ra: dag-greedy ran out of processors")
			}
			if bestI < 0 || pick.eft < bestPick.eft-1e-9 ||
				(math.Abs(pick.eft-bestPick.eft) <= 1e-9 && pick.prob > bestPick.prob+1e-12) {
				bestI, bestPick = i, pick
			}
		}
		if bestI < 0 {
			// Validation guarantees acyclic edges, so a ready application
			// always exists; defend anyway.
			return nil, fmt.Errorf("ra: dag-greedy found no ready application")
		}
		al[bestI] = bestPick.as
		finish[bestI] = bestPick.eft
		scheduled[bestI] = true
		remaining[bestPick.as.Type] -= bestPick.as.Procs
	}
	return al, nil
}

package ra_test

import (
	"fmt"

	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// ExampleExhaustive allocates a two-application batch optimally: the
// deadline-critical application receives the large reliable group.
func ExampleExhaustive() {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "reliable", Count: 4, Avail: pmf.Point(1)},
		{Name: "flaky", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.25, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
	}}
	app := func(name string, mu float64) sysmodel.Application {
		return sysmodel.Application{
			Name: name, SerialIters: 100, ParallelIters: 900,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(mu, mu/10), 50),
				pmf.Discretize(stats.NewNormal(mu, mu/10), 50),
			},
		}
	}
	batch := sysmodel.Batch{app("urgent", 3000), app("loose", 600)}
	prob := &ra.Problem{Sys: sys, Batch: batch, Deadline: 1200}
	alloc, err := (ra.Exhaustive{}).Allocate(prob)
	if err != nil {
		panic(err)
	}
	phi, _ := prob.Objective(alloc)
	fmt.Printf("urgent -> %s x%d\n", sys.Types[alloc[0].Type].Name, alloc[0].Procs)
	fmt.Printf("phi1 = %.2f\n", phi)
	// Output:
	// urgent -> reliable x4
	// phi1 = 0.98
}

// ExampleGet shows the registry: every heuristic optimizes the same
// objective and is interchangeable behind the Heuristic interface.
func ExampleGet() {
	names := []string{"naive", "twophase", "genetic", "portfolio"}
	for _, n := range names {
		if _, ok := ra.Get(n); ok {
			fmt.Println(n, "registered")
		}
	}
	// Output:
	// naive registered
	// twophase registered
	// genetic registered
	// portfolio registered
}

package ra

import (
	"cdsf/internal/sysmodel"
)

// Duplex runs Min-Min and Max-Min and keeps the allocation with the
// higher phi_1 — the classic Duplex heuristic of the Braun et al.
// heterogeneous-mapping taxonomy, adapted to the stochastic objective.
type Duplex struct{}

func init() {
	registerHeuristic("duplex", func() Heuristic { return Duplex{} })
}

// Name returns "duplex".
func (Duplex) Name() string { return "duplex" }

// Allocate implements Heuristic.
func (Duplex) Allocate(p *Problem) (sysmodel.Allocation, error) {
	a, errA := MinMin{}.Allocate(p)
	b, errB := MaxMin{}.Allocate(p)
	switch {
	case errA != nil && errB != nil:
		return nil, errA
	case errA != nil:
		return b, nil
	case errB != nil:
		return a, nil
	}
	phiA, errA := p.Objective(a)
	phiB, errB := p.Objective(b)
	if errA != nil {
		return b, nil
	}
	if errB != nil || phiA >= phiB {
		return a, nil
	}
	return b, nil
}

package ra

import (
	"context"

	"cdsf/internal/sysmodel"
)

// Duplex runs Min-Min and Max-Min and keeps the allocation with the
// higher phi_1 — the classic Duplex heuristic of the Braun et al.
// heterogeneous-mapping taxonomy, adapted to the stochastic objective.
type Duplex struct{}

func init() {
	registerHeuristic("duplex", func() Heuristic { return Duplex{} })
}

// Name returns "duplex".
func (Duplex) Name() string { return "duplex" }

// Allocate implements Heuristic.
func (h Duplex) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic by delegating to the two
// member searches.
func (Duplex) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := ctx.Err(); err != nil {
		return nil, searchErr("duplex", err)
	}
	a, errA := MinMin{}.AllocateContext(ctx, p)
	b, errB := MaxMin{}.AllocateContext(ctx, p)
	switch {
	case errA != nil && errB != nil:
		return nil, errA
	case errA != nil:
		return b, nil
	case errB != nil:
		return a, nil
	}
	phiA, errA := p.Objective(a)
	phiB, errB := p.Objective(b)
	if errA != nil {
		return b, nil
	}
	if errB != nil || phiA >= phiB {
		return a, nil
	}
	return b, nil
}

package ra

import (
	"context"
	"fmt"
	"math"

	"cdsf/internal/sysmodel"
)

// This file implements the paper's two Stage-I policies plus simple
// constructive heuristics.

func init() {
	registerHeuristic("naive", func() Heuristic { return NaiveLoadBalance{} })
	registerHeuristic("exhaustive", func() Heuristic { return &Exhaustive{} })
	registerHeuristic("greedy", func() Heuristic { return Greedy{} })
	registerHeuristic("minmin", func() Heuristic { return MinMin{} })
	registerHeuristic("maxmin", func() Heuristic { return MaxMin{} })
	registerHeuristic("twophase", func() Heuristic { return TwoPhaseGreedy{} })
}

// NaiveLoadBalance is the paper's naive IM policy: every application
// receives an equal share of the processors — the largest power of 2 not
// exceeding TotalProcessors/N — and among the feasible equal-share
// type placements the one with the highest phi_1 is chosen.
type NaiveLoadBalance struct{}

// Name returns "naive".
func (NaiveLoadBalance) Name() string { return "naive" }

// Allocate implements Heuristic.
func (h NaiveLoadBalance) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: the equal-share
// placement enumeration checks ctx every cancelCheckStride complete
// placements.
func (NaiveLoadBalance) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	share := 1
	for share*2*n <= p.Sys.TotalProcessors() {
		share *= 2
	}
	// Enumerate type placements with a fixed share per application and
	// keep the most robust feasible one; if the nominal equal share does
	// not fit the per-type capacities (e.g. 8 processors exist overall
	// but no single type has 8), halve it until a placement exists.
	leaves := 0
	stopped := false
	for ; share >= 1; share /= 2 {
		var best sysmodel.Allocation
		bestPhi := -1.0
		al := make(sysmodel.Allocation, n)
		remaining := make([]int, len(p.Sys.Types))
		for j, t := range p.Sys.Types {
			remaining[j] = t.Count
		}
		var rec func(i int)
		rec = func(i int) {
			if stopped {
				return
			}
			if i == n {
				if leaves++; leaves%cancelCheckStride == 0 && ctx.Err() != nil {
					stopped = true
					return
				}
				phi, err := p.Objective(al)
				if err == nil && phi > bestPhi {
					bestPhi = phi
					best = al.Clone()
				}
				return
			}
			for j := range p.Sys.Types {
				if remaining[j] < share {
					continue
				}
				al[i] = sysmodel.Assignment{Type: j, Procs: share}
				remaining[j] -= share
				rec(i + 1)
				remaining[j] += share
			}
		}
		rec(0)
		if stopped {
			return nil, searchErr("naive", ctx.Err())
		}
		if best != nil {
			return best, nil
		}
	}
	return nil, fmt.Errorf("ra: no feasible equal-share allocation")
}

// Exhaustive enumerates every feasible allocation and returns the one
// maximizing phi_1 — the paper's "robust IM" (optimal at small scale;
// exponential in batch size). Ties in phi_1 (common once discretized
// PMFs saturate at probability 1) are broken by the smaller expected
// system makespan (max of E[T_i]), then by the smaller sum of expected
// completion times, so the chosen allocation is also the most efficient
// among the equally robust ones.
//
// The enumeration is partitioned by the first application's assignment
// across a worker pool; each partition is scanned in sequential order
// and the partition winners are max-reduced in that same order, so the
// result is bit-identical for every worker count.
type Exhaustive struct {
	// Workers bounds the search's worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

// Name returns "exhaustive".
func (Exhaustive) Name() string { return "exhaustive" }

// SetWorkers implements WorkerSettable.
func (h *Exhaustive) SetWorkers(workers int) { h.Workers = workers }

// score orders allocations: higher phi_1 first, then lower expected
// makespan, then lower total expected time.
type score struct {
	phi     float64
	maxExp  float64
	sumExp  float64
	defined bool
}

func (s score) better(o score) bool {
	if !o.defined {
		return true
	}
	const tol = 1e-12
	if s.phi > o.phi+tol {
		return true
	}
	if s.phi < o.phi-tol {
		return false
	}
	if s.maxExp < o.maxExp-1e-9 {
		return true
	}
	if s.maxExp > o.maxExp+1e-9 {
		return false
	}
	return s.sumExp < o.sumExp-1e-9
}

func (p *Problem) scoreOf(al sysmodel.Allocation) score {
	s := score{phi: 1, defined: true}
	for i := range p.Batch {
		prob := p.appProb(i, al[i])
		exp := p.appExpected(i, al[i])
		s.phi *= prob
		s.sumExp += exp
		if exp > s.maxExp {
			s.maxExp = exp
		}
	}
	if len(p.Edges) > 0 {
		// Precedence edges change the objective: phi_1 is the composed
		// DAG probability, while the expected-time tie-breaks keep their
		// standalone per-application readings.
		s.phi = p.dagPhi(al)
	}
	return s
}

// Allocate implements Heuristic. The feasible space is partitioned by
// the first application's assignment (in enumeration order); workers
// scan partitions concurrently against the shared evaluation table, and
// the per-partition winners are reduced in partition order with the
// same first-wins tie-break the sequential scan uses.
func (h Exhaustive) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: each partition scan
// checks ctx every cancelCheckStride enumerated allocations and the
// partition pool drains at the next partition boundary, so cancelling a
// multi-billion-allocation search returns within milliseconds.
func (h Exhaustive) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, h.Workers); err != nil {
		return nil, err
	}
	// Partitions: every capacity-feasible assignment of application 0,
	// in the order the sequential enumeration would try them.
	var opts []sysmodel.Assignment
	for j := range p.Sys.Types {
		for _, c := range feasibleCounts(p.Sys.Types[j].Count) {
			opts = append(opts, sysmodel.Assignment{Type: j, Procs: c})
		}
	}
	type partBest struct {
		al sysmodel.Allocation
		s  score
	}
	results := make([]partBest, len(opts))
	// scanned tallies enumerated allocations; each partition counts in a
	// local integer and flushes once, so the scan loop stays free of
	// atomic traffic.
	scanned := p.registry().Counter("ra.exhaustive_scanned")
	tr := p.tracer()
	poolErr := runParallel(ctx, h.Workers, len(opts), func(k int) {
		defer tr.Begin(fmt.Sprintf("stage1/exhaustive/p%02d", k),
			fmt.Sprintf("partition app0=%dx type%d", opts[k].Procs, opts[k].Type+1), "stage1").End()
		var best sysmodel.Allocation
		var bestScore score
		var n int64
		sysmodel.EnumerateAllocationsFrom(p.Sys, p.Batch, sysmodel.Allocation{opts[k]}, func(al sysmodel.Allocation) bool {
			n++
			if n%cancelCheckStride == 0 && ctx.Err() != nil {
				return false
			}
			if s := p.scoreOf(al); s.better(bestScore) {
				bestScore = s
				best = al.Clone()
			}
			return true
		})
		scanned.Add(n)
		results[k] = partBest{al: best, s: bestScore}
	})
	if poolErr != nil {
		return nil, searchErr("exhaustive", poolErr)
	}
	var best sysmodel.Allocation
	var bestScore score
	for _, r := range results {
		if r.al != nil && r.s.better(bestScore) {
			best, bestScore = r.al, r.s
		}
	}
	if best == nil {
		return nil, fmt.Errorf("ra: no feasible allocation")
	}
	return best, nil
}

// Greedy assigns applications in decreasing order of their best
// single-application deadline probability's *scarcity* (the application
// whose best option is worst goes first), giving each its individually
// best remaining assignment. It is O(N^2 * options).
type Greedy struct{}

// Name returns "greedy".
func (Greedy) Name() string { return "greedy" }

// Allocate implements Heuristic.
func (h Greedy) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: ctx is checked once per
// assignment round.
func (Greedy) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	remaining := make([]int, len(p.Sys.Types))
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
	}
	al := make(sysmodel.Allocation, n)
	assigned := make([]bool, n)
	for done := 0; done < n; done++ {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("greedy", err)
		}
		// Pick the unassigned application whose best achievable
		// probability is lowest (most constrained first).
		worstI := -1
		worstProb := math.Inf(1)
		var worstAs sysmodel.Assignment
		unassigned := n - done
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			as, ok := p.bestSingleApp(i, remaining, unassigned-1)
			if !ok {
				return nil, fmt.Errorf("ra: greedy ran out of processors")
			}
			prob := p.appProb(i, as)
			if prob < worstProb {
				worstI, worstProb, worstAs = i, prob, as
			}
		}
		al[worstI] = worstAs
		assigned[worstI] = true
		remaining[worstAs.Type] -= worstAs.Procs
	}
	return al, nil
}

// MinMin adapts the classic Min-Min heuristic (Ibarra & Kim) to the
// stochastic objective: repeatedly assign the (application, assignment)
// pair with the smallest expected completion time among each
// application's individually best options.
type MinMin struct{}

// Name returns "minmin".
func (MinMin) Name() string { return "minmin" }

// Allocate implements Heuristic.
func (MinMin) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return minMaxMin(context.Background(), p, true)
}

// AllocateContext implements ContextHeuristic.
func (MinMin) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	return minMaxMin(ctx, p, true)
}

// MaxMin is the Max-Min variant: the application whose best expected
// completion time is largest is assigned first, protecting long
// applications from being starved of processors.
type MaxMin struct{}

// Name returns "maxmin".
func (MaxMin) Name() string { return "maxmin" }

// Allocate implements Heuristic.
func (MaxMin) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return minMaxMin(context.Background(), p, false)
}

// AllocateContext implements ContextHeuristic.
func (MaxMin) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	return minMaxMin(ctx, p, false)
}

func minMaxMin(ctx context.Context, p *Problem, min bool) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	remaining := make([]int, len(p.Sys.Types))
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
	}
	al := make(sysmodel.Allocation, n)
	assigned := make([]bool, n)
	for done := 0; done < n; done++ {
		if err := ctx.Err(); err != nil {
			return nil, searchErr(map[bool]string{true: "minmin", false: "maxmin"}[min], err)
		}
		pickI := -1
		pickExp := 0.0
		var pickAs sysmodel.Assignment
		unassigned := n - done
		totalRemaining := 0
		for _, r := range remaining {
			totalRemaining += r
		}
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			// The application's individually best option by expected
			// completion time within remaining capacity, reserving one
			// processor for every other unassigned application.
			bestExp := math.Inf(1)
			var bestAs sysmodel.Assignment
			found := false
			for j := range p.Sys.Types {
				for _, c := range feasibleCounts(remaining[j]) {
					if totalRemaining-c < unassigned-1 {
						continue
					}
					as := sysmodel.Assignment{Type: j, Procs: c}
					if e := p.appExpected(i, as); e < bestExp {
						bestExp, bestAs, found = e, as, true
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("ra: %s ran out of processors", map[bool]string{true: "minmin", false: "maxmin"}[min])
			}
			take := pickI == -1 || (min && bestExp < pickExp) || (!min && bestExp > pickExp)
			if take {
				pickI, pickExp, pickAs = i, bestExp, bestAs
			}
		}
		al[pickI] = pickAs
		assigned[pickI] = true
		remaining[pickAs.Type] -= pickAs.Procs
	}
	return al, nil
}

// TwoPhaseGreedy first gives every application a minimal footprint (one
// processor of its individually best type), then repeatedly doubles the
// allocation of the application whose upgrade most increases phi_1,
// until no upgrade fits or helps. It mirrors the iterative-improvement
// structure of Shestak et al.'s static stochastic allocators.
type TwoPhaseGreedy struct{}

// Name returns "twophase".
func (TwoPhaseGreedy) Name() string { return "twophase" }

// Allocate implements Heuristic.
func (h TwoPhaseGreedy) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: ctx is checked once per
// phase-1 placement and per phase-2 doubling round.
func (TwoPhaseGreedy) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Batch)
	remaining := make([]int, len(p.Sys.Types))
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
	}
	al := make(sysmodel.Allocation, n)
	// Phase 1: one processor each, on the type with the best
	// single-processor probability (ties broken by smaller expected
	// completion time, which matters while all probabilities are 0).
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("twophase", err)
		}
		bestJ, bestProb := -1, -1.0
		bestExp := math.Inf(1)
		for j := range p.Sys.Types {
			if remaining[j] < 1 {
				continue
			}
			as := sysmodel.Assignment{Type: j, Procs: 1}
			prob := p.appProb(i, as)
			exp := p.appExpected(i, as)
			if prob > bestProb+1e-12 || (math.Abs(prob-bestProb) <= 1e-12 && exp < bestExp) {
				bestJ, bestProb, bestExp = j, prob, exp
			}
		}
		if bestJ < 0 {
			return nil, fmt.Errorf("ra: twophase ran out of processors in phase 1")
		}
		al[i] = sysmodel.Assignment{Type: bestJ, Procs: 1}
		remaining[bestJ]--
	}
	// Phase 2: greedy doubling. The upgrade score is lexicographic:
	// higher phi_1, then higher sum of per-application probabilities
	// (which keeps progress measurable while phi_1 is still 0), then
	// lower expected makespan, then lower total expected time — the last
	// criterion keeps consuming spare capacity once phi_1 saturates,
	// which buys runtime margin against availability perturbation.
	type phase2Score struct {
		phi, sumProb, maxExp, sumExp float64
	}
	scoreNow := func() phase2Score {
		s := phase2Score{phi: 1}
		for i := range p.Batch {
			prob := p.appProb(i, al[i])
			exp := p.appExpected(i, al[i])
			s.phi *= prob
			s.sumProb += prob
			s.sumExp += exp
			if exp > s.maxExp {
				s.maxExp = exp
			}
		}
		return s
	}
	betterP2 := func(a, b phase2Score) bool {
		const tol = 1e-12
		if a.phi > b.phi+tol {
			return true
		}
		if a.phi < b.phi-tol {
			return false
		}
		if a.sumProb > b.sumProb+tol {
			return true
		}
		if a.sumProb < b.sumProb-tol {
			return false
		}
		if a.maxExp < b.maxExp-1e-9 {
			return true
		}
		if a.maxExp > b.maxExp+1e-9 {
			return false
		}
		return a.sumExp < b.sumExp-1e-9
	}
	cur := scoreNow()
	for {
		if err := ctx.Err(); err != nil {
			return nil, searchErr("twophase", err)
		}
		bestI := -1
		var bestAs sysmodel.Assignment
		bestScore := cur
		for i := 0; i < n; i++ {
			as := al[i]
			// Candidate moves: double in place, or switch to another
			// type at the largest feasible power-of-2 count there.
			var cands []sysmodel.Assignment
			if remaining[as.Type] >= as.Procs {
				cands = append(cands, sysmodel.Assignment{Type: as.Type, Procs: as.Procs * 2})
			}
			for j := range p.Sys.Types {
				if j == as.Type || remaining[j] < 1 {
					continue
				}
				c := 1
				for c*2 <= remaining[j] {
					c *= 2
				}
				cands = append(cands, sysmodel.Assignment{Type: j, Procs: c})
			}
			for _, cand := range cands {
				al[i] = cand
				s := scoreNow()
				al[i] = as
				if betterP2(s, bestScore) {
					bestI, bestAs, bestScore = i, cand, s
				}
			}
		}
		if bestI < 0 {
			break
		}
		remaining[al[bestI].Type] += al[bestI].Procs
		remaining[bestAs.Type] -= bestAs.Procs
		al[bestI] = bestAs
		cur = bestScore
	}
	return al, nil
}

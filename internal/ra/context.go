package ra

import (
	"context"
	"fmt"

	"cdsf/internal/sysmodel"
)

// This file defines the cancellation surface of the Stage-I search
// engine. Every heuristic in this package implements ContextHeuristic;
// SolveContext is the ctx-first entry point the CLIs and the Stage-II
// framework use. Cancellation is cooperative: the worker pools stop
// claiming tasks, the tight enumeration loops check the context every
// cancelCheckStride evaluations, and an interrupted search returns an
// error wrapping context.Canceled or context.DeadlineExceeded instead
// of a (possibly non-deterministic) partial winner. A context that is
// never cancelled costs a periodic ctx.Err() call and changes no
// result: seeded searches stay bit-identical to the ctx-free paths.

// cancelCheckStride is the number of leaf evaluations between context
// checks in the tight scan loops (exhaustive enumeration, naive
// equal-share recursion, minimal-robust enumeration). At roughly a
// microsecond per evaluation this bounds the per-partition drain to a
// few milliseconds.
const cancelCheckStride = 4096

// metaCheckStride is the number of iterations between context checks
// in the metaheuristic walks (annealing moves, tabu steps, genetic
// generations are checked every generation).
const metaCheckStride = 64

// ContextHeuristic is a Heuristic whose search cooperates with a
// context: AllocateContext returns promptly after ctx is cancelled,
// with an error wrapping ctx.Err(). All heuristics in this package
// implement it; external implementations may opt in.
type ContextHeuristic interface {
	Heuristic
	// AllocateContext is Allocate under a context. An un-cancelled
	// context never changes the result: for a fixed seed the returned
	// allocation is bit-identical to Allocate's.
	AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error)
}

// SolveContext runs heuristic h on p under ctx. Heuristics
// implementing ContextHeuristic are cancelled cooperatively
// mid-search; for any other Heuristic the context is only checked up
// front. A nil ctx counts as context.Background().
func SolveContext(ctx context.Context, h Heuristic, p *Problem) (sysmodel.Allocation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ra: %s: %w", h.Name(), err)
	}
	if ch, ok := h.(ContextHeuristic); ok {
		return ch.AllocateContext(ctx, p)
	}
	return h.Allocate(p)
}

// searchErr wraps a context error with the name of the interrupted
// search.
func searchErr(what string, err error) error {
	return fmt.Errorf("ra: %s: %w", what, err)
}

package ra

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"cdsf/internal/sysmodel"
)

// workerCounts are the pool sizes every determinism test sweeps: the
// sequential case, an odd count that does not divide typical job counts,
// and whatever the host has.
func workerCounts() []int {
	ws := []int{1, 3, 7}
	if n := runtime.NumCPU(); n > 1 {
		ws = append(ws, n)
	}
	return ws
}

// TestPrecomputeTableMatchesDirectCompute checks every cell of the eager
// evaluation table against a from-scratch computation, for every worker
// count.
func TestPrecomputeTableMatchesDirectCompute(t *testing.T) {
	for _, w := range workerCounts() {
		p := randomProblem(11, 3)
		if err := p.Precompute(w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		tab := p.table
		for i := range p.Batch {
			for j := range p.Sys.Types {
				for k := 0; 1<<k <= p.Sys.Types[j].Count; k++ {
					as := sysmodel.Assignment{Type: j, Procs: 1 << k}
					got := tab.cells[(i*tab.types+j)*tab.logs+k]
					want := p.computeCell(i, as)
					if got != want {
						t.Fatalf("workers=%d cell (%d,%d,%d): got %+v want %+v", w, i, j, k, got, want)
					}
				}
			}
		}
	}
}

// TestPrecomputeIdempotent checks that a second Precompute (with a
// different worker count) keeps the existing table.
func TestPrecomputeIdempotent(t *testing.T) {
	p := smallProblem()
	if err := p.Precompute(2); err != nil {
		t.Fatal(err)
	}
	tab := p.table
	if err := p.Precompute(5); err != nil {
		t.Fatal(err)
	}
	if p.table != tab {
		t.Fatal("second Precompute replaced the table")
	}
}

// TestExhaustiveDeterministicAcrossWorkers checks the hard guarantee the
// package documents: the parallel exhaustive search returns the same
// allocation with bitwise-identical phi_1 for every worker count.
func TestExhaustiveDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		base := randomProblem(seed, 3)
		ref, err := (&Exhaustive{Workers: 1}).Allocate(base)
		if err != nil {
			t.Fatal(err)
		}
		refPhi, err := base.Objective(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			p := randomProblem(seed, 3) // fresh problem: cold table under w workers
			al, err := (&Exhaustive{Workers: w}).Allocate(p)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if !al.Equal(ref) {
				t.Fatalf("seed %d workers=%d: allocation %v differs from sequential %v", seed, w, al, ref)
			}
			phi, err := p.Objective(al)
			if err != nil {
				t.Fatal(err)
			}
			if phi != refPhi {
				t.Fatalf("seed %d workers=%d: phi %v differs from sequential %v", seed, w, phi, refPhi)
			}
		}
	}
}

// TestMetaheuristicsDeterministicAcrossWorkers checks that restart-based
// heuristics with fixed seeds return identical allocations for every
// worker count (restart streams are split before the pool starts).
func TestMetaheuristicsDeterministicAcrossWorkers(t *testing.T) {
	mk := func(w int) []Heuristic {
		return []Heuristic{
			&Random{Tries: 16, Seed: 5, Workers: w},
			&SimulatedAnnealing{Iterations: 150, Restarts: 4, Seed: 5, Workers: w},
			&GeneticAlgorithm{Population: 8, Generations: 6, Restarts: 3, Seed: 5, Workers: w},
			&TabuSearch{Iterations: 40, Restarts: 3, Seed: 5, Workers: w},
		}
	}
	p := randomProblem(23, 3)
	refs := make([]sysmodel.Allocation, len(mk(1)))
	for i, h := range mk(1) {
		al, err := h.Allocate(p)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		refs[i] = al
	}
	for _, w := range workerCounts()[1:] {
		for i, h := range mk(w) {
			al, err := h.Allocate(p)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", h.Name(), w, err)
			}
			if !al.Equal(refs[i]) {
				t.Fatalf("%s workers=%d: allocation %v differs from sequential %v", h.Name(), w, al, refs[i])
			}
		}
	}
}

// TestPortfolioDeterministicAcrossWorkers checks the member merge is
// worker-count independent.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	p := randomProblem(31, 3)
	ref, err := Portfolio{Workers: 1}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		al, err := Portfolio{Workers: w}.Allocate(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !al.Equal(ref) {
			t.Fatalf("workers=%d: allocation %v differs from sequential %v", w, al, ref)
		}
	}
}

// TestConcurrentAllocateSharedProblem exercises the documented
// concurrency contract under the race detector: one precomputed Problem
// shared by many goroutines running different heuristics at once.
func TestConcurrentAllocateSharedProblem(t *testing.T) {
	p := randomProblem(47, 3)
	if err := p.Precompute(0); err != nil {
		t.Fatal(err)
	}
	hs := []Heuristic{
		&Exhaustive{Workers: 2},
		Greedy{},
		&Random{Tries: 8, Seed: 9, Workers: 2},
		&SimulatedAnnealing{Iterations: 100, Restarts: 2, Seed: 9, Workers: 2},
		&TabuSearch{Iterations: 30, Seed: 9, Workers: 2},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(hs)*3)
	for rep := 0; rep < 3; rep++ {
		for i, h := range hs {
			wg.Add(1)
			go func(slot int, h Heuristic) {
				defer wg.Done()
				al, err := h.Allocate(p)
				if err == nil {
					_, err = p.Objective(al)
				}
				errs[slot] = err
			}(rep*len(hs)+i, h)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvalCellFallsBackOffTable checks that assignments outside the
// table (non-power-of-2 counts never enumerated by the searches, but
// legal in user-supplied allocations) are evaluated directly and agree
// with the lazy path.
func TestEvalCellFallsBackOffTable(t *testing.T) {
	p := smallProblem()
	al := sysmodel.Allocation{{Type: 1, Procs: 3}, {Type: 1, Procs: 1}}
	lazy, err := p.Objective(al) // triggers lazy Precompute(1)
	if err != nil {
		t.Fatal(err)
	}
	q := smallProblem()
	if err := q.Precompute(4); err != nil {
		t.Fatal(err)
	}
	eager, err := q.Objective(al)
	if err != nil {
		t.Fatal(err)
	}
	if lazy != eager || math.IsNaN(lazy) {
		t.Fatalf("off-table objective differs: lazy %v eager %v", lazy, eager)
	}
}

package ra

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// Every registered heuristic must refuse a pre-cancelled context with an
// error wrapping context.Canceled and no partial allocation.
func TestAllHeuristicsRefuseCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := smallProblem()
	for _, name := range Names() {
		h, _ := Get(name)
		al, err := SolveContext(ctx, h, p)
		if err == nil {
			t.Errorf("%s: cancelled context accepted", name)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", name, err)
		}
		if al != nil {
			t.Errorf("%s: cancelled search returned a partial allocation %v", name, al)
		}
	}
}

// A cancelled precompute must abort with context.Canceled, and the
// problem must remain usable with a fresh context afterwards.
func TestPrecomputeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := smallProblem()
	if err := p.PrecomputeContext(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled precompute: err = %v", err)
	}
	if err := p.PrecomputeContext(context.Background(), 2); err != nil {
		t.Fatalf("fresh precompute after cancel failed: %v", err)
	}
}

// Cancellation mid-search (via a deadline that expires during the
// exhaustive scan) must surface context.DeadlineExceeded.
func TestExhaustiveDeadlineMidSearch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done() // the 1ns deadline has certainly expired
	p := randomProblem(7, 5)
	if _, err := (&Exhaustive{Workers: 4}).AllocateContext(ctx, p); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// The context plumbing must not perturb results: SolveContext with a
// background context is bit-identical to the legacy Allocate path for
// every registered heuristic on a seeded instance.
func TestSolveContextMatchesAllocate(t *testing.T) {
	for _, name := range Names() {
		// Two independent problems so precomputed tables don't alias.
		p1, p2 := randomProblem(3, 3), randomProblem(3, 3)
		h1, _ := Get(name)
		h2, _ := Get(name)
		a1, err1 := h1.Allocate(p1)
		a2, err2 := SolveContext(context.Background(), h2, p2)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: Allocate err %v vs SolveContext err %v", name, err1, err2)
			continue
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%s: Allocate %v != SolveContext %v", name, a1, a2)
		}
	}
}

package ra

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cdsf/internal/rng"
	"cdsf/internal/sysmodel"
)

// This file implements the randomized and metaheuristic allocators:
// Random (baseline), SimulatedAnnealing, GeneticAlgorithm, and
// TabuSearch. All optimize phi_1 over the same feasible space as the
// exhaustive search (power-of-2 counts, single type per application,
// capacity limits) and share a repair operator that shrinks
// oversubscribed allocations.
//
// Every randomized allocator supports independent restarts fanned out
// across a worker pool. Each restart draws from its own rng stream,
// split sequentially from the heuristic's seed before any worker
// starts, and the restart results are merged in restart order — so for
// a fixed seed the outcome is bit-identical for any worker count.

func init() {
	registerHeuristic("random", func() Heuristic { return &Random{Tries: 64, Seed: 1} })
	registerHeuristic("anneal", func() Heuristic { return &SimulatedAnnealing{} })
	registerHeuristic("genetic", func() Heuristic { return &GeneticAlgorithm{} })
	registerHeuristic("tabu", func() Heuristic { return &TabuSearch{} })
}

// restartStreams derives n independent rng streams from seed. The
// splits happen sequentially on the calling goroutine, so stream k is
// the same function of (seed, k) no matter how many workers later
// consume the streams.
func restartStreams(seed uint64, n int) []*rng.Source {
	parent := rng.New(seed)
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = parent.Split()
	}
	return out
}

// restartResult is one restart's outcome.
type restartResult struct {
	al  sysmodel.Allocation
	phi float64
	err error
}

// runRestarts executes run once per stream across a worker pool and
// merges the results in restart order: the first restart with a
// strictly higher phi_1 wins. It returns the first error only when
// every restart failed. label names the heuristic in the restarts'
// trace spans (lanes "stage1/<label>/r<k>").
//
// Cancellation: the pool stops claiming restarts once ctx is cancelled
// and in-flight restarts abort at their own checkpoints; a cancelled
// run always returns an error wrapping ctx.Err() — never a partial
// merge, which would depend on how far the workers got.
func runRestarts(ctx context.Context, p *Problem, label string, workers int, streams []*rng.Source, run func(ctx context.Context, r *rng.Source) (sysmodel.Allocation, float64, error)) (sysmodel.Allocation, error) {
	p.registry().Counter("ra.restarts").Add(int64(len(streams)))
	tr := p.tracer()
	results := make([]restartResult, len(streams))
	poolErr := runParallel(ctx, workers, len(streams), func(k int) {
		defer tr.Begin(fmt.Sprintf("stage1/%s/r%02d", label, k),
			fmt.Sprintf("%s restart %d", label, k), "stage1").End()
		al, phi, err := run(ctx, streams[k])
		results[k] = restartResult{al: al, phi: phi, err: err}
	})
	if poolErr != nil {
		return nil, searchErr(label, poolErr)
	}
	var best sysmodel.Allocation
	bestPhi := -1.0
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if r.phi > bestPhi {
			best, bestPhi = r.al, r.phi
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// randomAllocation draws a random feasible allocation by assigning
// applications in random order to random options, reserving one
// processor for every yet-unassigned application so the draw cannot
// strand itself. ok is false only when the instance itself is
// infeasible (more applications than processors).
func randomAllocation(p *Problem, r *rng.Source) (sysmodel.Allocation, bool) {
	n := len(p.Batch)
	remaining := make([]int, len(p.Sys.Types))
	total := 0
	for j, t := range p.Sys.Types {
		remaining[j] = t.Count
		total += t.Count
	}
	if total < n {
		return nil, false
	}
	al := make(sysmodel.Allocation, n)
	unassigned := n
	for _, i := range r.Perm(n) {
		type option struct{ j, c int }
		var opts []option
		for j := range p.Sys.Types {
			for _, c := range feasibleCounts(remaining[j]) {
				if total-c < unassigned-1 {
					continue
				}
				opts = append(opts, option{j, c})
			}
		}
		if len(opts) == 0 {
			return nil, false
		}
		o := opts[r.Intn(len(opts))]
		al[i] = sysmodel.Assignment{Type: o.j, Procs: o.c}
		remaining[o.j] -= o.c
		total -= o.c
		unassigned--
	}
	return al, true
}

// repair makes an allocation feasible by halving the processor counts
// of the largest consumers of each oversubscribed type (preserving the
// power-of-2 invariant) until capacities hold. It reports failure if an
// application would drop below one processor.
func repair(p *Problem, al sysmodel.Allocation) bool {
	for {
		used := al.Used(len(p.Sys.Types))
		over := -1
		for j, u := range used {
			if u > p.Sys.Types[j].Count {
				over = j
				break
			}
		}
		if over < 0 {
			return true
		}
		// Halve the biggest allocation on the oversubscribed type.
		big, bigProcs := -1, 0
		for i, as := range al {
			if as.Type == over && as.Procs > bigProcs {
				big, bigProcs = i, as.Procs
			}
		}
		if big < 0 || bigProcs <= 1 {
			return false
		}
		al[big].Procs /= 2
	}
}

// Random draws Tries random feasible allocations — each from its own
// restart stream, concurrently — and keeps the best: the standard
// sanity baseline for the metaheuristics.
type Random struct {
	// Tries is the number of random allocations evaluated; it must be
	// positive.
	Tries int
	// Seed drives the draws.
	Seed uint64
	// Workers bounds the worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

// Name returns "random".
func (h *Random) Name() string { return "random" }

// SetWorkers implements WorkerSettable.
func (h *Random) SetWorkers(workers int) { h.Workers = workers }

// SetSeed implements SeedSettable.
func (h *Random) SetSeed(seed uint64) { h.Seed = seed }

// Allocate implements Heuristic.
func (h *Random) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: each try is one cheap
// draw, so the restart pool's per-task check is the checkpoint.
func (h *Random) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if h.Tries <= 0 {
		return nil, fmt.Errorf("ra: random heuristic with %d tries", h.Tries)
	}
	if err := p.PrecomputeContext(ctx, h.Workers); err != nil {
		return nil, err
	}
	al, err := runRestarts(ctx, p, "random", h.Workers, restartStreams(h.Seed, h.Tries),
		func(_ context.Context, r *rng.Source) (sysmodel.Allocation, float64, error) {
			al, ok := randomAllocation(p, r)
			if !ok {
				return nil, 0, fmt.Errorf("ra: infeasible instance")
			}
			phi, err := p.Objective(al)
			if err != nil {
				return nil, 0, err
			}
			return al, phi, nil
		})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ra: random heuristic found no feasible allocation in %d tries", h.Tries)
	}
	return al, err
}

// neighbor perturbs one application's assignment: with equal probability
// it changes the processor type (keeping a feasible count) or doubles /
// halves the count. The result is repaired; ok is false when repair
// fails.
func neighbor(p *Problem, al sysmodel.Allocation, r *rng.Source) (sysmodel.Allocation, bool) {
	out := al.Clone()
	i := r.Intn(len(out))
	switch r.Intn(3) {
	case 0: // move to another type
		j := r.Intn(len(p.Sys.Types))
		out[i].Type = j
		if out[i].Procs > p.Sys.Types[j].Count {
			out[i].Procs = largestPow2LE(p.Sys.Types[j].Count)
		}
	case 1: // double
		out[i].Procs *= 2
		if out[i].Procs > p.Sys.Types[out[i].Type].Count {
			out[i].Procs = largestPow2LE(p.Sys.Types[out[i].Type].Count)
		}
	default: // halve
		if out[i].Procs > 1 {
			out[i].Procs /= 2
		}
	}
	if !repair(p, out) {
		return nil, false
	}
	return out, true
}

func largestPow2LE(n int) int {
	c := 1
	for c*2 <= n {
		c *= 2
	}
	return c
}

// SimulatedAnnealing optimizes phi_1 with a geometric cooling schedule
// over the neighbor move set. Zero-valued fields take sensible defaults.
type SimulatedAnnealing struct {
	// Iterations is the number of proposed moves per restart
	// (default 2000).
	Iterations int
	// InitialTemp is the starting temperature in phi_1 units
	// (default 0.2).
	InitialTemp float64
	// Cooling is the per-iteration temperature multiplier
	// (default 0.998).
	Cooling float64
	// Restarts is the number of independent annealing walks
	// (default 1); the best result wins.
	Restarts int
	// Seed drives the walks.
	Seed uint64
	// Workers bounds the restart worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

// Name returns "anneal".
func (h *SimulatedAnnealing) Name() string { return "anneal" }

// SetWorkers implements WorkerSettable.
func (h *SimulatedAnnealing) SetWorkers(workers int) { h.Workers = workers }

// SetSeed implements SeedSettable.
func (h *SimulatedAnnealing) SetSeed(seed uint64) { h.Seed = seed }

// Allocate implements Heuristic.
func (h *SimulatedAnnealing) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: each walk checks ctx
// every metaCheckStride proposed moves.
func (h *SimulatedAnnealing) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, h.Workers); err != nil {
		return nil, err
	}
	restarts := h.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	return runRestarts(ctx, p, "anneal", h.Workers, restartStreams(h.Seed+0x5a5a, restarts),
		func(ctx context.Context, r *rng.Source) (sysmodel.Allocation, float64, error) {
			return h.annealOnce(ctx, p, r)
		})
}

// annealOnce runs one annealing walk on its own rng stream.
func (h *SimulatedAnnealing) annealOnce(ctx context.Context, p *Problem, r *rng.Source) (sysmodel.Allocation, float64, error) {
	iters := h.Iterations
	if iters <= 0 {
		iters = 2000
	}
	temp := h.InitialTemp
	if temp <= 0 {
		temp = 0.2
	}
	cool := h.Cooling
	if cool <= 0 || cool >= 1 {
		cool = 0.998
	}
	cur, ok := randomAllocation(p, r)
	if !ok {
		return nil, 0, fmt.Errorf("ra: anneal could not build an initial allocation")
	}
	curPhi, err := p.Objective(cur)
	if err != nil {
		return nil, 0, err
	}
	best, bestPhi := cur.Clone(), curPhi
	for k := 0; k < iters; k++ {
		if k%metaCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		cand, ok := neighbor(p, cur, r)
		if !ok {
			continue
		}
		phi, err := p.Objective(cand)
		if err != nil {
			continue
		}
		if phi >= curPhi || r.Float64() < math.Exp((phi-curPhi)/temp) {
			cur, curPhi = cand, phi
			if phi > bestPhi {
				best, bestPhi = cand.Clone(), phi
			}
		}
		temp *= cool
	}
	return best, bestPhi, nil
}

// GeneticAlgorithm evolves a population of allocations with tournament
// selection, uniform per-application crossover, mutation via the
// neighbor move, and elitism. Zero-valued fields take defaults.
type GeneticAlgorithm struct {
	// Population is the population size (default 32).
	Population int
	// Generations is the number of generations (default 60).
	Generations int
	// MutationRate is the per-child mutation probability (default 0.3).
	MutationRate float64
	// Restarts is the number of independent evolutions (default 1); the
	// best result wins.
	Restarts int
	// Seed drives the evolutions.
	Seed uint64
	// Workers bounds the restart worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

// Name returns "genetic".
func (h *GeneticAlgorithm) Name() string { return "genetic" }

// SetWorkers implements WorkerSettable.
func (h *GeneticAlgorithm) SetWorkers(workers int) { h.Workers = workers }

// SetSeed implements SeedSettable.
func (h *GeneticAlgorithm) SetSeed(seed uint64) { h.Seed = seed }

// Allocate implements Heuristic.
func (h *GeneticAlgorithm) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: each evolution checks
// ctx once per generation.
func (h *GeneticAlgorithm) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, h.Workers); err != nil {
		return nil, err
	}
	restarts := h.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	return runRestarts(ctx, p, "genetic", h.Workers, restartStreams(h.Seed+0x6e6e, restarts),
		func(ctx context.Context, r *rng.Source) (sysmodel.Allocation, float64, error) {
			return h.evolveOnce(ctx, p, r)
		})
}

// evolveOnce runs one evolution on its own rng stream.
func (h *GeneticAlgorithm) evolveOnce(ctx context.Context, p *Problem, r *rng.Source) (sysmodel.Allocation, float64, error) {
	pop := h.Population
	if pop <= 0 {
		pop = 32
	}
	gens := h.Generations
	if gens <= 0 {
		gens = 60
	}
	mut := h.MutationRate
	if mut <= 0 {
		mut = 0.3
	}
	type indiv struct {
		al  sysmodel.Allocation
		phi float64
	}
	eval := func(al sysmodel.Allocation) (indiv, bool) {
		phi, err := p.Objective(al)
		if err != nil {
			return indiv{}, false
		}
		return indiv{al: al, phi: phi}, true
	}
	var cur []indiv
	for len(cur) < pop {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		al, ok := randomAllocation(p, r)
		if !ok {
			continue
		}
		if in, ok := eval(al); ok {
			cur = append(cur, in)
		}
	}
	tournament := func() indiv {
		a := cur[r.Intn(len(cur))]
		b := cur[r.Intn(len(cur))]
		if a.phi >= b.phi {
			return a
		}
		return b
	}
	for g := 0; g < gens; g++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		sort.Slice(cur, func(i, j int) bool { return cur[i].phi > cur[j].phi })
		next := []indiv{cur[0], cur[1%len(cur)]} // elitism
		for len(next) < pop {
			a, b := tournament(), tournament()
			child := a.al.Clone()
			for i := range child {
				if r.Intn(2) == 0 {
					child[i] = b.al[i]
				}
			}
			if !repair(p, child) {
				continue
			}
			if r.Float64() < mut {
				if m, ok := neighbor(p, child, r); ok {
					child = m
				}
			}
			if in, ok := eval(child); ok {
				next = append(next, in)
			}
		}
		cur = next
	}
	best := cur[0]
	for _, in := range cur[1:] {
		if in.phi > best.phi {
			best = in
		}
	}
	return best.al, best.phi, nil
}

// TabuSearch is a best-improvement local search over the neighbor move
// set with a fixed-length tabu list on visited allocations. Zero-valued
// fields take defaults.
type TabuSearch struct {
	// Iterations is the number of search steps per restart
	// (default 400).
	Iterations int
	// Tenure is the tabu list length (default 50).
	Tenure int
	// Candidates is the number of neighbors sampled per step
	// (default 20).
	Candidates int
	// Restarts is the number of independent searches (default 1); the
	// best result wins.
	Restarts int
	// Seed drives the sampling.
	Seed uint64
	// Workers bounds the restart worker pool; non-positive means
	// runtime.NumCPU(). The result never depends on it.
	Workers int
}

// Name returns "tabu".
func (h *TabuSearch) Name() string { return "tabu" }

// SetWorkers implements WorkerSettable.
func (h *TabuSearch) SetWorkers(workers int) { h.Workers = workers }

// SetSeed implements SeedSettable.
func (h *TabuSearch) SetSeed(seed uint64) { h.Seed = seed }

// Allocate implements Heuristic.
func (h *TabuSearch) Allocate(p *Problem) (sysmodel.Allocation, error) {
	return h.AllocateContext(context.Background(), p)
}

// AllocateContext implements ContextHeuristic: each search checks ctx
// every metaCheckStride steps.
func (h *TabuSearch) AllocateContext(ctx context.Context, p *Problem) (sysmodel.Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.PrecomputeContext(ctx, h.Workers); err != nil {
		return nil, err
	}
	restarts := h.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	return runRestarts(ctx, p, "tabu", h.Workers, restartStreams(h.Seed+0x7a7a, restarts),
		func(ctx context.Context, r *rng.Source) (sysmodel.Allocation, float64, error) {
			return h.searchOnce(ctx, p, r)
		})
}

// searchOnce runs one tabu search on its own rng stream.
func (h *TabuSearch) searchOnce(ctx context.Context, p *Problem, r *rng.Source) (sysmodel.Allocation, float64, error) {
	iters := h.Iterations
	if iters <= 0 {
		iters = 400
	}
	tenure := h.Tenure
	if tenure <= 0 {
		tenure = 50
	}
	cands := h.Candidates
	if cands <= 0 {
		cands = 20
	}
	cur, ok := randomAllocation(p, r)
	if !ok {
		return nil, 0, fmt.Errorf("ra: tabu could not build an initial allocation")
	}
	curPhi, err := p.Objective(cur)
	if err != nil {
		return nil, 0, err
	}
	best, bestPhi := cur.Clone(), curPhi
	tabu := map[string]bool{cur.String(): true}
	var order []string
	push := func(key string) {
		tabu[key] = true
		order = append(order, key)
		if len(order) > tenure {
			delete(tabu, order[0])
			order = order[1:]
		}
	}
	for k := 0; k < iters; k++ {
		if k%metaCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		var stepBest sysmodel.Allocation
		stepPhi := math.Inf(-1)
		for c := 0; c < cands; c++ {
			cand, ok := neighbor(p, cur, r)
			if !ok {
				continue
			}
			key := cand.String()
			phi, err := p.Objective(cand)
			if err != nil {
				continue
			}
			// Aspiration: a tabu move is allowed if it beats the global
			// best.
			if tabu[key] && phi <= bestPhi {
				continue
			}
			if phi > stepPhi {
				stepBest, stepPhi = cand, phi
			}
		}
		if stepBest == nil {
			continue
		}
		cur, curPhi = stepBest, stepPhi
		push(cur.String())
		if curPhi > bestPhi {
			best, bestPhi = cur.Clone(), curPhi
		}
	}
	return best, bestPhi, nil
}

// Package ra implements the Stage-I resource allocation (initial
// mapping) heuristics.
//
// Stage I assigns every application of a batch to a power-of-2 number of
// processors of a single type, maximizing the robustness objective
// phi_1 = Pr(Psi <= Delta): the joint probability, computed from the
// execution-time and availability PMFs, that all applications finish by
// the common deadline.
//
// The paper uses two policies at its small scale — a naive equal-share
// load balancer and an exhaustive search for the optimum — and calls for
// scalable robust heuristics as future work. This package provides both
// paper policies plus the scalable family its future-work section
// anticipates (greedy, min-min/max-min adaptations of Ibarra & Kim,
// two-phase greedy in the spirit of Shestak et al., and simulated
// annealing / genetic / tabu metaheuristics), all optimizing the same
// stochastic objective so they can be ablated against the exhaustive
// optimum.
//
// The package is a parallel search engine: Problem.Precompute builds an
// immutable evaluation table with a bounded worker pool, after which
// every heuristic's inner loop is a lock-free array read and the
// expensive searches (Exhaustive, Portfolio, the metaheuristic
// restarts) fan out across workers. All parallel searches reduce
// deterministically — for a fixed seed they return bit-identical
// allocations and phi_1 values for any worker count, including 1.
package ra

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cdsf/internal/cache"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// Problem is one Stage-I instance.
//
// Concurrency contract: a Problem is logically immutable once its
// evaluation table exists. Call Precompute (directly, or implicitly via
// any heuristic's Allocate or the first Objective evaluation) from a
// single goroutine; from then on Sys, Batch, Deadline, and the table
// must not be mutated, and the Problem may be shared freely — any
// number of goroutines may call Objective, Allocate (of any heuristic),
// and the other read paths concurrently. All heuristics in this package
// precompute before fanning out their own workers, so the only way to
// race is to hand an un-precomputed Problem to multiple goroutines
// without calling Precompute first.
type Problem struct {
	Sys      *sysmodel.System
	Batch    sysmodel.Batch
	Deadline float64

	// Edges are optional precedence constraints over the batch: edge
	// {From, To} means application From must finish before To starts.
	// With edges present the objective becomes the DAG phi_1 — per-
	// application completion PMFs composed along predecessor chains
	// (sysmodel.ComposeDAG / ComposeDAGGrid) and multiplied over the
	// sink applications — and Precompute retains each cell's full
	// completion-time distribution so compositions reuse the table.
	// An empty edge set leaves every code path bit-identical to the
	// independent-batch engine. Set it before Precompute.
	Edges []sysmodel.Edge

	// Backend selects the PMF representation used when evaluating
	// completion-time cells: the exact sparse pulses (the zero value)
	// or the dense fixed-step grid, which trades the quantization
	// error bounded in DESIGN.md for much faster kernels. The choice
	// only affects how each cell's (probability, expectation) pair is
	// computed; the searches themselves are identical. Set it before
	// Precompute, like every other field.
	Backend pmf.Backend

	// Metrics optionally receives search instrumentation (cell
	// evaluations, table hits/misses, precompute wall time, exhaustive
	// scans, metaheuristic restarts). Nil falls back to
	// metrics.Default(). Set it before Precompute — the hot-path
	// counters are cached when the table is built, following the same
	// single-goroutine construction contract as the table itself.
	Metrics *metrics.Registry

	// Tracer optionally receives wall-clock spans of the Stage-I
	// search: the precompute build, each exhaustive partition, each
	// portfolio member, and each metaheuristic restart, on lanes under
	// "stage1/". Nil falls back to tracing.Default(). Spans never touch
	// the search's rng streams, so allocations are identical with
	// tracing on or off.
	Tracer *tracing.Tracer

	// Cache optionally shares warm evaluation-table distributions
	// across Problems. On a warm hit, Precompute derives every cell's
	// (Pr(T <= Delta), E[T]) pair from the cached completion-time
	// distribution — one cached-CDF PrLE read per cell — instead of
	// rebuilding the completion PMFs; the distributions are
	// deadline-invariant (under the sparse backend), so Problems that
	// differ only in deadline, heuristic, or runtime availability cases
	// share one warm entry. Cell values are bit-identical with the
	// cache enabled, disabled, warm, or cold. Nil disables sharing.
	// Set it before Precompute, like every other field.
	Cache *cache.Cache

	// table is the eagerly built (application x type x log2(count))
	// evaluation table; see Precompute in table.go. The search
	// heuristics evaluate the same cell many times (the exhaustive
	// search revisits each application/type/count triple across
	// thousands of allocations), and a completion-PMF construction
	// costs O(pulses) — the dense table removes >90% of the Stage-I
	// search cost and makes the inner loops lock-free O(1) array reads.
	table *evalTable

	// instr caches the metric primitives used on the evaluation hot
	// path; the fields are nil (no-op) when metrics are disabled. It is
	// populated by Precompute alongside the table.
	instr instr

	// warmHits/warmMisses count the evaluation-table cells derived from
	// the warm cache vs computed from scratch. Written once by
	// Precompute before the table is published (same happens-before
	// edge as the table itself), read via CacheCounts.
	warmHits, warmMisses int64
}

// CacheCounts reports how many evaluation-table cells were derived
// from a warm cache entry and how many were computed from scratch
// during Precompute. Both are zero before Precompute or when no Cache
// is attached; a fully warm build has warmMisses == 0.
func (p *Problem) CacheCounts() (warmHits, warmMisses int64) {
	return p.warmHits, p.warmMisses
}

// instr holds the cached per-Problem metric primitives.
type instr struct {
	evals  *metrics.Counter // ra.evaluations: every evalCell call
	hits   *metrics.Counter // ra.table_hits: O(1) table reads
	misses *metrics.Counter // ra.table_misses: direct computeCell falls
}

// registry resolves the effective metrics registry for this Problem.
func (p *Problem) registry() *metrics.Registry {
	if p.Metrics != nil {
		return p.Metrics
	}
	return metrics.Default()
}

// tracer resolves the effective tracer for this Problem.
func (p *Problem) tracer() *tracing.Tracer {
	if p.Tracer != nil {
		return p.Tracer
	}
	return tracing.Default()
}

type memoVal struct {
	prob     float64
	expected float64
}

// evalCell returns (Pr(T_i <= Delta), E[T_i]) for application i under
// assignment as. Power-of-2 assignments within capacity — everything
// the searches generate — are O(1) reads of the evaluation table;
// anything else (e.g. a hand-written non-power-of-2 allocation passed
// to Objective) is computed directly.
func (p *Problem) evalCell(i int, as sysmodel.Assignment) memoVal {
	t := p.table
	if t == nil {
		// Lazily build the table on the calling goroutine for Problems
		// used without an explicit Precompute. An invalid instance
		// cannot build a table; fall through to the direct computation,
		// which panics or returns garbage exactly as eager evaluation
		// would.
		if err := p.Precompute(1); err != nil {
			return p.computeCell(i, as)
		}
		t = p.table
	}
	p.instr.evals.Inc()
	if k, ok := log2of(as.Procs); ok && k < t.logs && as.Type >= 0 && as.Type < t.types && i >= 0 && i < len(p.Batch) {
		p.instr.hits.Inc()
		return t.cells[(i*t.types+as.Type)*t.logs+k]
	}
	p.instr.misses.Inc()
	return p.computeCell(i, as)
}

// Validate checks the instance.
func (p *Problem) Validate() error {
	if p.Sys == nil {
		return fmt.Errorf("ra: nil system")
	}
	if err := p.Sys.Validate(); err != nil {
		return err
	}
	if err := p.Batch.Validate(len(p.Sys.Types)); err != nil {
		return err
	}
	if p.Deadline <= 0 {
		return fmt.Errorf("ra: non-positive deadline %v", p.Deadline)
	}
	if err := p.Backend.Validate(); err != nil {
		return fmt.Errorf("ra: %w", err)
	}
	if err := sysmodel.ValidateEdges(p.Edges, len(p.Batch)); err != nil {
		return fmt.Errorf("ra: %w", err)
	}
	return nil
}

// Objective returns phi_1 for an allocation; invalid allocations return
// an error. For an independent batch, evaluations are O(1) reads of the
// precomputed evaluation table; with precedence edges the completion
// distributions behind the cells are composed along the DAG first (see
// dag.go). Either way, Objective is safe for concurrent use once the
// Problem is precomputed.
func (p *Problem) Objective(al sysmodel.Allocation) (float64, error) {
	if err := al.Validate(p.Sys, p.Batch); err != nil {
		return 0, err
	}
	if len(p.Edges) > 0 {
		return p.dagPhi(al), nil
	}
	phi := 1.0
	for i := range p.Batch {
		phi *= p.evalCell(i, al[i]).prob
	}
	return phi, nil
}

// appProb returns Pr(T_i <= Delta) for a single application under one
// assignment; it is the incremental building block shared by the
// constructive heuristics.
func (p *Problem) appProb(i int, as sysmodel.Assignment) float64 {
	return p.evalCell(i, as).prob
}

// appExpected returns E[T_i] for a single application under one
// assignment.
func (p *Problem) appExpected(i int, as sysmodel.Assignment) float64 {
	return p.evalCell(i, as).expected
}

// Heuristic is a Stage-I resource allocation policy.
type Heuristic interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Allocate returns a feasible allocation for the problem, or an
	// error if none exists or the instance is invalid.
	Allocate(p *Problem) (sysmodel.Allocation, error)
}

var heuristics = map[string]func() Heuristic{}

func registerHeuristic(name string, mk func() Heuristic) {
	key := strings.ToLower(name)
	if _, dup := heuristics[key]; dup {
		panic("ra: duplicate heuristic " + name)
	}
	heuristics[key] = mk
}

// Get returns a fresh instance of the named heuristic
// (case-insensitive) with default parameters.
func Get(name string) (Heuristic, bool) {
	mk, ok := heuristics[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// ByName is the single lookup behind every surface that names a
// heuristic — CLI flags, service requests, report labels. It returns a
// fresh instance of the named heuristic (case-insensitive) with default
// parameters, or an error listing the registered names, so wire names
// and flag values can never drift from the registry.
func ByName(name string) (Heuristic, error) {
	h, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("ra: unknown heuristic %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return h, nil
}

// WorkerSettable is implemented by heuristics with a worker-pool knob:
// SetWorkers bounds the search's parallelism. Worker count never
// changes a heuristic's result, only its wall-clock time; non-positive
// values mean runtime.NumCPU(). Heuristics that search in parallel
// implement it on their pointer receiver, so registry-constructed
// instances (which are pointers) pick up the CLIs' -workers flag
// automatically — a new heuristic cannot silently miss the plumbing by
// being left out of a central type switch.
type WorkerSettable interface {
	SetWorkers(workers int)
}

// SetWorkers configures the worker-pool bound on heuristics
// implementing WorkerSettable (exhaustive, portfolio, random, minimal,
// and the metaheuristics), returning true if h supports the knob. It is
// how the CLIs thread their -workers flag through to
// registry-constructed heuristics.
func SetWorkers(h Heuristic, workers int) bool {
	ws, ok := h.(WorkerSettable)
	if ok {
		ws.SetWorkers(workers)
	}
	return ok
}

// SeedSettable is implemented by heuristics whose search is driven by
// a random seed (random, anneal, genetic, tabu). Like WorkerSettable it
// is implemented on the pointer receiver, so registry-constructed
// instances pick up a caller-supplied seed without a central type
// switch. Reseeding changes which allocation a stochastic search
// returns, but for a fixed seed the result stays bit-identical across
// runs and worker counts.
type SeedSettable interface {
	SetSeed(seed uint64)
}

// SetSeed reseeds heuristics implementing SeedSettable, returning true
// if h supports the knob. Deterministic heuristics (naive, greedy,
// exhaustive, ...) ignore seeds and return false.
func SetSeed(h Heuristic, seed uint64) bool {
	ss, ok := h.(SeedSettable)
	if ok {
		ss.SetSeed(seed)
	}
	return ok
}

// Names returns the registered heuristic names, sorted.
func Names() []string {
	out := make([]string, 0, len(heuristics))
	for k := range heuristics {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// feasibleCounts returns the power-of-2 processor counts available for
// type j given the remaining capacity.
func feasibleCounts(remaining int) []int {
	return sysmodel.PowerOfTwoCounts(remaining)
}

// bestSingleApp returns the assignment maximizing the application's own
// deadline probability within the remaining capacity (ties broken by
// smaller expected completion time, then by fewer processors), leaving
// at least `reserve` processors free for yet-unassigned applications.
// ok is false if no assignment satisfies the reservation.
func (p *Problem) bestSingleApp(i int, remaining []int, reserve int) (sysmodel.Assignment, bool) {
	total := 0
	for _, r := range remaining {
		total += r
	}
	best := sysmodel.Assignment{}
	bestProb := -1.0
	bestExp := math.Inf(1)
	found := false
	for j := range p.Sys.Types {
		for _, c := range feasibleCounts(remaining[j]) {
			if total-c < reserve {
				continue
			}
			as := sysmodel.Assignment{Type: j, Procs: c}
			prob := p.appProb(i, as)
			exp := p.appExpected(i, as)
			better := prob > bestProb+1e-12 ||
				(math.Abs(prob-bestProb) <= 1e-12 && exp < bestExp-1e-9) ||
				(math.Abs(prob-bestProb) <= 1e-12 && math.Abs(exp-bestExp) <= 1e-9 && c < best.Procs)
			if !found || better {
				best, bestProb, bestExp, found = as, prob, exp, true
			}
		}
	}
	return best, found
}

// Package ra implements the Stage-I resource allocation (initial
// mapping) heuristics.
//
// Stage I assigns every application of a batch to a power-of-2 number of
// processors of a single type, maximizing the robustness objective
// phi_1 = Pr(Psi <= Delta): the joint probability, computed from the
// execution-time and availability PMFs, that all applications finish by
// the common deadline.
//
// The paper uses two policies at its small scale — a naive equal-share
// load balancer and an exhaustive search for the optimum — and calls for
// scalable robust heuristics as future work. This package provides both
// paper policies plus the scalable family its future-work section
// anticipates (greedy, min-min/max-min adaptations of Ibarra & Kim,
// two-phase greedy in the spirit of Shestak et al., and simulated
// annealing / genetic / tabu metaheuristics), all optimizing the same
// stochastic objective so they can be ablated against the exhaustive
// optimum.
package ra

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cdsf/internal/sysmodel"
)

// Problem is one Stage-I instance.
type Problem struct {
	Sys      *sysmodel.System
	Batch    sysmodel.Batch
	Deadline float64

	// memo caches per-(application, assignment) evaluations. The search
	// heuristics evaluate the same cell many times (the exhaustive
	// search revisits each application/type/count triple across
	// thousands of allocations), and a completion-PMF construction
	// costs O(pulses) — memoization removes >90% of the Stage-I search
	// cost. Lazily initialized; not safe for concurrent Allocate calls
	// on the same Problem.
	memo map[memoKey]memoVal
}

type memoKey struct {
	app   int
	typ   int
	procs int
}

type memoVal struct {
	prob     float64
	expected float64
}

// evalCell returns (Pr(T_i <= Delta), E[T_i]) for application i under
// assignment as, memoized.
func (p *Problem) evalCell(i int, as sysmodel.Assignment) memoVal {
	key := memoKey{app: i, typ: as.Type, procs: as.Procs}
	if v, ok := p.memo[key]; ok {
		return v
	}
	c := p.Batch[i].CompletionPMF(as.Type, as.Procs, p.Sys.Types[as.Type].Avail)
	v := memoVal{prob: c.PrLE(p.Deadline), expected: c.Mean()}
	if p.memo == nil {
		p.memo = make(map[memoKey]memoVal)
	}
	p.memo[key] = v
	return v
}

// Validate checks the instance.
func (p *Problem) Validate() error {
	if p.Sys == nil {
		return fmt.Errorf("ra: nil system")
	}
	if err := p.Sys.Validate(); err != nil {
		return err
	}
	if err := p.Batch.Validate(len(p.Sys.Types)); err != nil {
		return err
	}
	if p.Deadline <= 0 {
		return fmt.Errorf("ra: non-positive deadline %v", p.Deadline)
	}
	return nil
}

// Objective returns phi_1 for an allocation; invalid allocations return
// an error. Evaluations are memoized per (application, assignment) on
// the Problem.
func (p *Problem) Objective(al sysmodel.Allocation) (float64, error) {
	if err := al.Validate(p.Sys, p.Batch); err != nil {
		return 0, err
	}
	phi := 1.0
	for i := range p.Batch {
		phi *= p.evalCell(i, al[i]).prob
	}
	return phi, nil
}

// appProb returns Pr(T_i <= Delta) for a single application under one
// assignment; it is the incremental building block shared by the
// constructive heuristics.
func (p *Problem) appProb(i int, as sysmodel.Assignment) float64 {
	return p.evalCell(i, as).prob
}

// appExpected returns E[T_i] for a single application under one
// assignment.
func (p *Problem) appExpected(i int, as sysmodel.Assignment) float64 {
	return p.evalCell(i, as).expected
}

// Heuristic is a Stage-I resource allocation policy.
type Heuristic interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Allocate returns a feasible allocation for the problem, or an
	// error if none exists or the instance is invalid.
	Allocate(p *Problem) (sysmodel.Allocation, error)
}

var heuristics = map[string]func() Heuristic{}

func registerHeuristic(name string, mk func() Heuristic) {
	key := strings.ToLower(name)
	if _, dup := heuristics[key]; dup {
		panic("ra: duplicate heuristic " + name)
	}
	heuristics[key] = mk
}

// Get returns a fresh instance of the named heuristic
// (case-insensitive) with default parameters.
func Get(name string) (Heuristic, bool) {
	mk, ok := heuristics[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// Names returns the registered heuristic names, sorted.
func Names() []string {
	out := make([]string, 0, len(heuristics))
	for k := range heuristics {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// feasibleCounts returns the power-of-2 processor counts available for
// type j given the remaining capacity.
func feasibleCounts(remaining int) []int {
	return sysmodel.PowerOfTwoCounts(remaining)
}

// bestSingleApp returns the assignment maximizing the application's own
// deadline probability within the remaining capacity (ties broken by
// smaller expected completion time, then by fewer processors), leaving
// at least `reserve` processors free for yet-unassigned applications.
// ok is false if no assignment satisfies the reservation.
func (p *Problem) bestSingleApp(i int, remaining []int, reserve int) (sysmodel.Assignment, bool) {
	total := 0
	for _, r := range remaining {
		total += r
	}
	best := sysmodel.Assignment{}
	bestProb := -1.0
	bestExp := math.Inf(1)
	found := false
	for j := range p.Sys.Types {
		for _, c := range feasibleCounts(remaining[j]) {
			if total-c < reserve {
				continue
			}
			as := sysmodel.Assignment{Type: j, Procs: c}
			prob := p.appProb(i, as)
			exp := p.appExpected(i, as)
			better := prob > bestProb+1e-12 ||
				(math.Abs(prob-bestProb) <= 1e-12 && exp < bestExp-1e-9) ||
				(math.Abs(prob-bestProb) <= 1e-12 && math.Abs(exp-bestExp) <= 1e-9 && c < best.Procs)
			if !found || better {
				best, bestProb, bestExp, found = as, prob, exp, true
			}
		}
	}
	return best, found
}

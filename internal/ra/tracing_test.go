package ra

import (
	"reflect"
	"strings"
	"testing"

	"cdsf/internal/tracing"
)

// Stage-I search engines emit wall-clock spans under "stage1" lanes —
// the precompute, each exhaustive partition, each metaheuristic
// restart, each portfolio member — without perturbing the allocation.
func TestStageISpans(t *testing.T) {
	for _, name := range []string{"exhaustive", "random", "anneal", "genetic", "tabu", "portfolio"} {
		t.Run(name, func(t *testing.T) {
			h, ok := Get(name)
			if !ok {
				t.Fatalf("heuristic %q missing", name)
			}
			plainAl, err := h.Allocate(smallProblem())
			if err != nil {
				t.Fatal(err)
			}

			p := smallProblem()
			p.Tracer = tracing.New()
			al, err := h.Allocate(p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(al, plainAl) {
				t.Errorf("tracing changed the allocation: %v vs %v", al, plainAl)
			}

			spans := p.Tracer.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}
			var sawEngine bool
			for _, s := range spans {
				if s.Clock != tracing.Wall {
					t.Fatalf("stage-I span on sim clock: %+v", s)
				}
				if s.Cat != "stage1" || !strings.HasPrefix(s.Lane, "stage1") {
					t.Fatalf("span outside stage1: %+v", s)
				}
				if strings.HasPrefix(s.Lane, "stage1/") {
					sawEngine = true
				}
			}
			if !sawEngine {
				t.Errorf("%s emitted no engine lanes (only %d top-level spans)", name, len(spans))
			}
		})
	}
}

func TestPrecomputeSpan(t *testing.T) {
	p := smallProblem()
	p.Tracer = tracing.New()
	if err := p.Precompute(2); err != nil {
		t.Fatal(err)
	}
	spans := p.Tracer.Spans()
	if len(spans) != 1 || spans[0].Lane != "stage1" || spans[0].Name != "precompute" {
		t.Errorf("precompute spans = %+v", spans)
	}
}

package config

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// instanceFiles returns every example instance shipped with the
// repository.
func instanceFiles(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "instances", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example instances found")
	}
	return paths
}

// Instance -> canonical JSON -> Instance must be lossless, and the
// canonical form must be a fixed point of Marshal — the property the
// scheduling service relies on to echo instances back in job results.
func TestInstanceRoundTrip(t *testing.T) {
	for _, path := range instanceFiles(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			inst, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}

			canonical, err := Marshal(inst)
			if err != nil {
				t.Fatal(err)
			}
			if len(canonical) == 0 || canonical[len(canonical)-1] != '\n' {
				t.Error("canonical form lacks trailing newline")
			}

			inst2, err := Parse(bytes.NewReader(canonical))
			if err != nil {
				t.Fatalf("canonical form does not parse: %v", err)
			}
			if !reflect.DeepEqual(inst, inst2) {
				t.Errorf("round trip changed the instance:\nbefore: %+v\nafter:  %+v", inst, inst2)
			}

			canonical2, err := Marshal(inst2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonical, canonical2) {
				t.Errorf("Marshal is not a fixed point:\nfirst:\n%s\nsecond:\n%s", canonical, canonical2)
			}

			// Both sides must build identical model objects.
			sys1, batch1, d1, err := Build(inst)
			if err != nil {
				t.Fatal(err)
			}
			sys2, batch2, d2, err := Build(inst2)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Errorf("deadline changed: %v vs %v", d1, d2)
			}
			if !reflect.DeepEqual(sys1, sys2) {
				t.Error("system model changed across the round trip")
			}
			if !reflect.DeepEqual(batch1, batch2) {
				t.Error("batch model changed across the round trip")
			}
		})
	}
}

// Write must emit exactly the canonical bytes.
func TestWriteMatchesMarshal(t *testing.T) {
	inst := &Instance{
		Name:     "w",
		Deadline: 10,
		Types: []ProcTypeSpec{{Count: 2, Availability: []PulseSpec{
			{Value: 1, Probability: 1}}}},
		Applications: []ApplicationSpec{{
			SerialIters: 1, ParallelIters: 2,
			ExecTimes: []ExecTimeSpec{{Mean: 5}},
		}},
	}
	want, err := Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, inst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Write output differs from Marshal:\n%s\nvs\n%s", buf.Bytes(), want)
	}
}

// Package config defines the on-disk JSON representation of a CDSF
// problem instance — the heterogeneous system, the application batch,
// and the deadline — so the command-line tools can operate on
// user-supplied problems rather than only the embedded paper example.
//
// Execution times may be given either as explicit PMFs or as normal
// distributions (mean + optional sigma, defaulting to the paper's
// sigma = mean/10) that are discretized on load. Availabilities are
// explicit PMFs with values in percent or fractions (values > 1 are
// interpreted as percent, matching the paper's tables).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"cdsf/internal/pmf"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// Instance is the root document.
type Instance struct {
	// Name labels the instance in reports.
	Name string `json:"name,omitempty"`
	// Deadline is the common deadline (time units); required.
	Deadline float64 `json:"deadline"`
	// Pulses is the discretization granularity for normal execution
	// times (default 250).
	Pulses int `json:"pulses,omitempty"`
	// Types lists the processor types.
	Types []ProcTypeSpec `json:"types"`
	// Applications lists the batch.
	Applications []ApplicationSpec `json:"applications"`
	// Edges optionally lists precedence constraints between
	// applications, by batch index (the v1.1 "dag" schema): each edge
	// means applications[from] must finish before applications[to]
	// starts. Omitted or empty is the paper's independent batch — the
	// field is omitted from canonical JSON, so pre-existing instances
	// marshal byte-identically.
	Edges []EdgeSpec `json:"edges,omitempty"`
	// Cases optionally lists runtime availability cases (the paper's
	// Table I cases); each provides one availability PMF per type, in
	// type order. Omitted cases default to the reference availability
	// plus uniform degradations chosen by the tool.
	Cases []CaseSpec `json:"cases,omitempty"`
}

// CaseSpec is one runtime availability case.
type CaseSpec struct {
	Name string `json:"name,omitempty"`
	// Availability[j] is the availability PMF of processor type j.
	Availability [][]PulseSpec `json:"availability"`
}

// EdgeSpec is one precedence edge: the application at batch index From
// must finish before the application at index To may start.
type EdgeSpec struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// NamedAvailability is a decoded runtime availability case.
type NamedAvailability struct {
	Name  string
	Avail []pmf.PMF
}

// ProcTypeSpec describes one processor type.
type ProcTypeSpec struct {
	Name  string `json:"name,omitempty"`
	Count int    `json:"count"`
	// Availability is the availability PMF; values may be percent
	// (0-100] or fractions (0-1].
	Availability []PulseSpec `json:"availability"`
}

// PulseSpec is one (value, probability) pulse; probability may be
// percent or a fraction (the whole PMF is normalized on load).
type PulseSpec struct {
	Value       float64 `json:"value"`
	Probability float64 `json:"probability"`
}

// ApplicationSpec describes one application of the batch.
type ApplicationSpec struct {
	Name          string `json:"name,omitempty"`
	SerialIters   int    `json:"serialIterations"`
	ParallelIters int    `json:"parallelIterations"`
	// ExecTimes has one entry per processor type, in type order.
	ExecTimes []ExecTimeSpec `json:"execTimes"`
}

// ExecTimeSpec is the single-processor execution time on one type:
// either a normal distribution (Mean, optional Sigma) or an explicit
// PMF (Pulses), exactly one of which must be present.
type ExecTimeSpec struct {
	Mean   float64     `json:"mean,omitempty"`
	Sigma  float64     `json:"sigma,omitempty"`
	Pulses []PulseSpec `json:"pulses,omitempty"`
}

// Load reads and builds an instance from a JSON file.
func Load(path string) (*sysmodel.System, sysmodel.Batch, float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// LoadInstance reads and decodes an instance document from a JSON file
// without building the model objects, so callers can also pick up the
// optional fields (edges, cases) via BuildEdges / BuildCases.
func LoadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Read parses an instance from r and builds the model objects,
// validating everything.
func Read(r io.Reader) (*sysmodel.System, sysmodel.Batch, float64, error) {
	inst, err := Parse(r)
	if err != nil {
		return nil, nil, 0, err
	}
	return Build(inst)
}

// Parse decodes an Instance document from r without building the model
// objects. Unknown fields are rejected, so typos in hand-written
// instances (and service requests) fail loudly instead of being
// silently dropped.
func Parse(r io.Reader) (*Instance, error) {
	var inst Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&inst); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &inst, nil
}

// Marshal renders an Instance as canonical JSON: two-space indentation,
// keys in struct-declaration order (stable across runs and Go
// versions), empty optional fields omitted, and a trailing newline.
// Marshal(Parse(Marshal(inst))) is byte-identical to Marshal(inst), so
// the scheduling service can echo the canonical instance back in job
// results and clients can diff instances textually.
//
// Non-finite floats are rejected up front with the offending field
// path (encoding/json would only say "unsupported value"); the
// canonical bytes key the content-addressed solve cache, so a NaN or
// ±Inf must fail loudly before it can reach the hasher.
func Marshal(inst *Instance) ([]byte, error) {
	if err := validateFinite(inst); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(inst, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return append(data, '\n'), nil
}

// validateFinite walks every float in the document and reports the
// first NaN/±Inf by its JSON field path, e.g.
// "config: applications[2].execTimes[0].mean: non-finite value NaN".
func validateFinite(inst *Instance) error {
	finite := func(v float64, path string, args ...any) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("config: %s: non-finite value %v", fmt.Sprintf(path, args...), v)
		}
		return nil
	}
	pulses := func(specs []PulseSpec, path string, args ...any) error {
		p := fmt.Sprintf(path, args...)
		for k, s := range specs {
			if err := finite(s.Value, "%s[%d].value", p, k); err != nil {
				return err
			}
			if err := finite(s.Probability, "%s[%d].probability", p, k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := finite(inst.Deadline, "deadline"); err != nil {
		return err
	}
	for j, ts := range inst.Types {
		if err := pulses(ts.Availability, "types[%d].availability", j); err != nil {
			return err
		}
	}
	for i, as := range inst.Applications {
		for j, es := range as.ExecTimes {
			if err := finite(es.Mean, "applications[%d].execTimes[%d].mean", i, j); err != nil {
				return err
			}
			if err := finite(es.Sigma, "applications[%d].execTimes[%d].sigma", i, j); err != nil {
				return err
			}
			if err := pulses(es.Pulses, "applications[%d].execTimes[%d].pulses", i, j); err != nil {
				return err
			}
		}
	}
	for c, cs := range inst.Cases {
		for j, specs := range cs.Availability {
			if err := pulses(specs, "cases[%d].availability[%d]", c, j); err != nil {
				return err
			}
		}
	}
	return nil
}

// Write writes the canonical JSON rendering of inst to w.
func Write(w io.Writer, inst *Instance) error {
	data, err := Marshal(inst)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// Build converts a parsed Instance into validated model objects.
func Build(inst *Instance) (*sysmodel.System, sysmodel.Batch, float64, error) {
	if inst.Deadline <= 0 {
		return nil, nil, 0, fmt.Errorf("config: deadline %v not positive", inst.Deadline)
	}
	pulses := inst.Pulses
	if pulses <= 0 {
		pulses = 250
	}
	if len(inst.Types) == 0 {
		return nil, nil, 0, fmt.Errorf("config: no processor types")
	}
	if len(inst.Applications) == 0 {
		return nil, nil, 0, fmt.Errorf("config: no applications")
	}

	sys := &sysmodel.System{Types: make([]sysmodel.ProcType, len(inst.Types))}
	for j, ts := range inst.Types {
		name := ts.Name
		if name == "" {
			name = fmt.Sprintf("Type %d", j+1)
		}
		avail, err := buildAvailPMF(ts.Availability)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("config: type %q: %w", name, err)
		}
		sys.Types[j] = sysmodel.ProcType{Name: name, Count: ts.Count, Avail: avail}
	}

	batch := make(sysmodel.Batch, len(inst.Applications))
	for i, as := range inst.Applications {
		name := as.Name
		if name == "" {
			name = fmt.Sprintf("App %d", i+1)
		}
		if len(as.ExecTimes) != len(inst.Types) {
			return nil, nil, 0, fmt.Errorf("config: application %q has %d execTimes for %d types",
				name, len(as.ExecTimes), len(inst.Types))
		}
		exec := make([]pmf.PMF, len(as.ExecTimes))
		for j, es := range as.ExecTimes {
			p, err := buildExecPMF(es, pulses)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("config: application %q type %d: %w", name, j, err)
			}
			exec[j] = p
		}
		batch[i] = sysmodel.Application{
			Name:          name,
			SerialIters:   as.SerialIters,
			ParallelIters: as.ParallelIters,
			ExecTime:      exec,
		}
	}

	if err := sys.Validate(); err != nil {
		return nil, nil, 0, fmt.Errorf("config: %w", err)
	}
	if err := batch.Validate(len(sys.Types)); err != nil {
		return nil, nil, 0, fmt.Errorf("config: %w", err)
	}
	return sys, batch, inst.Deadline, nil
}

// buildAvailPMF converts pulse specs into a fractional availability PMF.
// Values above 1 are treated as percentages.
func buildAvailPMF(specs []PulseSpec) (pmf.PMF, error) {
	if len(specs) == 0 {
		return pmf.PMF{}, fmt.Errorf("no availability pulses")
	}
	ps := make([]pmf.Pulse, len(specs))
	for i, s := range specs {
		v := s.Value
		if v > 1 {
			v /= 100
		}
		ps[i] = pmf.Pulse{Value: v, Prob: s.Probability}
	}
	return pmf.New(ps)
}

// buildExecPMF converts one execution-time spec.
func buildExecPMF(es ExecTimeSpec, pulses int) (pmf.PMF, error) {
	hasNormal := es.Mean != 0 || es.Sigma != 0
	hasPulses := len(es.Pulses) > 0
	switch {
	case hasNormal && hasPulses:
		return pmf.PMF{}, fmt.Errorf("both mean and pulses given")
	case hasPulses:
		ps := make([]pmf.Pulse, len(es.Pulses))
		for i, s := range es.Pulses {
			ps[i] = pmf.Pulse{Value: s.Value, Prob: s.Probability}
		}
		return pmf.New(ps)
	case hasNormal:
		if es.Mean <= 0 {
			return pmf.PMF{}, fmt.Errorf("mean %v not positive", es.Mean)
		}
		sigma := es.Sigma
		if sigma <= 0 {
			sigma = es.Mean / 10
		}
		return pmf.Discretize(stats.NewNormal(es.Mean, sigma), pulses), nil
	default:
		return pmf.PMF{}, fmt.Errorf("no execution time given")
	}
}

// BuildEdges validates and converts the instance's precedence edges.
// Validation failures carry canonical field paths (e.g.
// "config: edges[3].from: unknown application 9 (batch has 4)") via
// sysmodel.EdgeError, which API layers can unwrap for structured
// error documents.
func BuildEdges(inst *Instance) ([]sysmodel.Edge, error) {
	if len(inst.Edges) == 0 {
		return nil, nil
	}
	edges := make([]sysmodel.Edge, len(inst.Edges))
	for i, e := range inst.Edges {
		edges[i] = sysmodel.Edge{From: e.From, To: e.To}
	}
	if err := sysmodel.ValidateEdges(edges, len(inst.Applications)); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return edges, nil
}

// BuildCases decodes the instance's runtime availability cases,
// validating arity against the type count.
func BuildCases(inst *Instance) ([]NamedAvailability, error) {
	out := make([]NamedAvailability, 0, len(inst.Cases))
	for ci, cs := range inst.Cases {
		name := cs.Name
		if name == "" {
			name = fmt.Sprintf("Case %d", ci+1)
		}
		if len(cs.Availability) != len(inst.Types) {
			return nil, fmt.Errorf("config: case %q has %d availability PMFs for %d types",
				name, len(cs.Availability), len(inst.Types))
		}
		avail := make([]pmf.PMF, len(cs.Availability))
		for j, specs := range cs.Availability {
			p, err := buildAvailPMF(specs)
			if err != nil {
				return nil, fmt.Errorf("config: case %q type %d: %w", name, j, err)
			}
			avail[j] = p
		}
		out = append(out, NamedAvailability{Name: name, Avail: avail})
	}
	return out, nil
}

// LoadFull reads an instance file and returns the model objects plus
// any declared runtime availability cases.
func LoadFull(path string) (*sysmodel.System, sysmodel.Batch, float64, []NamedAvailability, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	inst, err := Parse(f)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	sys, batch, deadline, err := Build(inst)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	cases, err := BuildCases(inst)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return sys, batch, deadline, cases, nil
}

// Save writes an Instance to path in the canonical JSON form (see
// Marshal).
func Save(path string, inst *Instance) error {
	data, err := Marshal(inst)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// FromModel converts model objects back into a serializable Instance
// (execution times become explicit PMFs).
func FromModel(name string, sys *sysmodel.System, batch sysmodel.Batch, deadline float64) *Instance {
	inst := &Instance{Name: name, Deadline: deadline}
	for _, t := range sys.Types {
		ts := ProcTypeSpec{Name: t.Name, Count: t.Count}
		for _, pl := range t.Avail.Pulses() {
			ts.Availability = append(ts.Availability, PulseSpec{Value: pl.Value, Probability: pl.Prob})
		}
		inst.Types = append(inst.Types, ts)
	}
	for _, a := range batch {
		as := ApplicationSpec{
			Name:          a.Name,
			SerialIters:   a.SerialIters,
			ParallelIters: a.ParallelIters,
		}
		for _, p := range a.ExecTime {
			var es ExecTimeSpec
			for _, pl := range p.Pulses() {
				es.Pulses = append(es.Pulses, PulseSpec{Value: pl.Value, Probability: pl.Prob})
			}
			as.ExecTimes = append(as.ExecTimes, es)
		}
		inst.Applications = append(inst.Applications, as)
	}
	return inst
}

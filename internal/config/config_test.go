package config_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdsf/internal/config"
	"cdsf/internal/experiments"
	"cdsf/internal/robustness"
)

const paperJSON = `{
  "name": "paper",
  "deadline": 3250,
  "types": [
    {"name": "Type 1", "count": 4,
     "availability": [{"value": 75, "probability": 50}, {"value": 100, "probability": 50}]},
    {"name": "Type 2", "count": 8,
     "availability": [{"value": 25, "probability": 25}, {"value": 50, "probability": 25}, {"value": 100, "probability": 50}]}
  ],
  "applications": [
    {"name": "App 1", "serialIterations": 439, "parallelIterations": 1024,
     "execTimes": [{"mean": 1800}, {"mean": 4000}]},
    {"name": "App 2", "serialIterations": 512, "parallelIterations": 2048,
     "execTimes": [{"mean": 2800}, {"mean": 6000}]},
    {"name": "App 3", "serialIterations": 216, "parallelIterations": 4104,
     "execTimes": [{"mean": 12000}, {"mean": 8000}]}
  ]
}`

func TestReadPaperInstanceMatchesEmbedded(t *testing.T) {
	sys, batch, deadline, err := config.Read(strings.NewReader(paperJSON))
	if err != nil {
		t.Fatal(err)
	}
	if deadline != 3250 {
		t.Errorf("deadline = %v", deadline)
	}
	if sys.TotalProcessors() != 12 || len(sys.Types) != 2 {
		t.Error("system mismatch")
	}
	if math.Abs(sys.WeightedAvailability()-0.75) > 1e-12 {
		t.Errorf("weighted availability = %v", sys.WeightedAvailability())
	}
	// The loaded instance reproduces the paper's phi1.
	phi, err := robustness.StageIProbability(sys, batch, experiments.PaperRobustAllocation(), deadline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-0.745) > 0.01 {
		t.Errorf("phi1 from JSON instance = %v, want ~0.745", phi)
	}
}

func TestReadRejectsBadInstances(t *testing.T) {
	bads := []string{
		`{`,
		`{"deadline": 0, "types": [], "applications": []}`,
		`{"deadline": 100, "types": [], "applications": [{"serialIterations":1,"parallelIterations":1,"execTimes":[]}]}`,
		`{"deadline": 100, "types": [{"count":1,"availability":[{"value":1,"probability":1}]}], "applications": []}`,
		// Wrong execTimes arity.
		`{"deadline": 100, "types": [{"count":1,"availability":[{"value":1,"probability":1}]}],
		  "applications": [{"serialIterations":1,"parallelIterations":1,"execTimes":[]}]}`,
		// Both mean and pulses.
		`{"deadline": 100, "types": [{"count":1,"availability":[{"value":1,"probability":1}]}],
		  "applications": [{"serialIterations":1,"parallelIterations":1,
		   "execTimes":[{"mean": 5, "pulses":[{"value":5,"probability":1}]}]}]}`,
		// Neither mean nor pulses.
		`{"deadline": 100, "types": [{"count":1,"availability":[{"value":1,"probability":1}]}],
		  "applications": [{"serialIterations":1,"parallelIterations":1,"execTimes":[{}]}]}`,
		// Unknown field.
		`{"deadline": 100, "bogus": 1, "types": [], "applications": []}`,
		// Availability above 100%.
		`{"deadline": 100, "types": [{"count":1,"availability":[{"value":150,"probability":1}]}],
		  "applications": [{"serialIterations":1,"parallelIterations":1,"execTimes":[{"mean":5}]}]}`,
	}
	for i, s := range bads {
		if _, _, _, err := config.Read(strings.NewReader(s)); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestExplicitPulses(t *testing.T) {
	src := `{
	  "deadline": 100,
	  "types": [{"count": 2, "availability": [{"value": 0.5, "probability": 1}]}],
	  "applications": [{"serialIterations": 1, "parallelIterations": 9,
	    "execTimes": [{"pulses": [{"value": 40, "probability": 0.5}, {"value": 60, "probability": 0.5}]}]}]
	}`
	_, batch, _, err := config.Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := batch[0].ExecTime[0].Mean(); got != 50 {
		t.Errorf("explicit PMF mean = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	sys := experiments.ReferenceSystem()
	batch := experiments.PaperBatch(40)
	inst := config.FromModel("roundtrip", sys, batch, experiments.Deadline)

	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	if err := config.Save(path, inst); err != nil {
		t.Fatal(err)
	}
	sys2, batch2, deadline, err := config.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if deadline != experiments.Deadline {
		t.Errorf("deadline = %v", deadline)
	}
	if math.Abs(sys2.WeightedAvailability()-sys.WeightedAvailability()) > 1e-9 {
		t.Error("weighted availability changed in round trip")
	}
	for i := range batch {
		for j := range batch[i].ExecTime {
			a, b := batch[i].ExecTime[j].Mean(), batch2[i].ExecTime[j].Mean()
			if math.Abs(a-b) > 1e-6*a {
				t.Errorf("app %d type %d mean changed: %v -> %v", i, j, a, b)
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, _, err := config.Load(filepath.Join(os.TempDir(), "definitely-not-here.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildCases(t *testing.T) {
	src := paperJSON[:len(paperJSON)-2] + `,
  "cases": [
    {"name": "Case 2",
     "availability": [
       [{"value": 50, "probability": 90}, {"value": 75, "probability": 10}],
       [{"value": 33, "probability": 45}, {"value": 66, "probability": 45}, {"value": 100, "probability": 10}]
     ]}
  ]
}`
	var inst config.Instance
	if err := jsonUnmarshal(src, &inst); err != nil {
		t.Fatal(err)
	}
	cases, err := config.BuildCases(&inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 || cases[0].Name != "Case 2" {
		t.Fatalf("cases = %+v", cases)
	}
	if got := cases[0].Avail[0].Mean(); math.Abs(got-0.525) > 1e-9 {
		t.Errorf("case avail mean = %v", got)
	}
	// Wrong arity fails.
	inst.Cases[0].Availability = inst.Cases[0].Availability[:1]
	if _, err := config.BuildCases(&inst); err == nil {
		t.Error("mismatched case arity accepted")
	}
}

func TestLoadFull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	src := paperJSON[:len(paperJSON)-2] + `,
  "cases": [
    {"availability": [
       [{"value": 1, "probability": 1}],
       [{"value": 0.5, "probability": 1}]
     ]}
  ]
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, batch, deadline, cases, err := config.LoadFull(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil || len(batch) != 3 || deadline != 3250 {
		t.Fatal("model objects wrong")
	}
	if len(cases) != 1 || cases[0].Name != "Case 1" {
		t.Fatalf("cases = %+v", cases)
	}
}

// TestMarshalRejectsNonFinite pins the cache-hasher guard: Marshal
// fails up front on NaN/±Inf, naming the offending field by its JSON
// path instead of encoding/json's generic "unsupported value".
func TestMarshalRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	base := func() *config.Instance {
		var inst config.Instance
		if err := jsonUnmarshal(paperJSON, &inst); err != nil {
			t.Fatal(err)
		}
		inst.Cases = []config.CaseSpec{{Name: "c", Availability: [][]PulseSpecAlias{
			{{Value: 1, Probability: 1}},
			{{Value: 0.5, Probability: 1}},
		}}}
		return &inst
	}

	cases := []struct {
		name   string
		mutate func(*config.Instance)
		path   string
	}{
		{"deadline", func(i *config.Instance) { i.Deadline = nan }, "deadline: non-finite value NaN"},
		{"avail value", func(i *config.Instance) { i.Types[1].Availability[2].Value = inf },
			"types[1].availability[2].value: non-finite value +Inf"},
		{"avail prob", func(i *config.Instance) { i.Types[0].Availability[0].Probability = nan },
			"types[0].availability[0].probability: non-finite value NaN"},
		{"exec mean", func(i *config.Instance) { i.Applications[2].ExecTimes[0].Mean = nan },
			"applications[2].execTimes[0].mean: non-finite value NaN"},
		{"exec sigma", func(i *config.Instance) { i.Applications[0].ExecTimes[1].Sigma = math.Inf(-1) },
			"applications[0].execTimes[1].sigma: non-finite value -Inf"},
		{"exec pulse", func(i *config.Instance) {
			i.Applications[1].ExecTimes[0].Pulses = []PulseSpecAlias{{Value: nan, Probability: 1}}
		}, "applications[1].execTimes[0].pulses[0].value: non-finite value NaN"},
		{"case pulse", func(i *config.Instance) { i.Cases[0].Availability[1][0].Probability = inf },
			"cases[0].availability[1][0].probability: non-finite value +Inf"},
	}
	for _, tc := range cases {
		inst := base()
		tc.mutate(inst)
		_, err := config.Marshal(inst)
		if err == nil {
			t.Errorf("%s: non-finite value marshaled", tc.name)
			continue
		}
		if want := "config: " + tc.path; err.Error() != want {
			t.Errorf("%s: error = %q, want %q", tc.name, err, want)
		}
	}

	// The untouched document still marshals, and canonically.
	doc, err := config.Marshal(base())
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := config.Marshal(base())
	if err != nil || string(doc) != string(doc2) {
		t.Error("canonical marshal is not byte-stable")
	}
}

// PulseSpecAlias keeps the table above readable.
type PulseSpecAlias = config.PulseSpec

// jsonUnmarshal mirrors Read's strict decoding for test inputs.
func jsonUnmarshal(src string, inst *config.Instance) error {
	dec := json.NewDecoder(strings.NewReader(src))
	dec.DisallowUnknownFields()
	return dec.Decode(inst)
}

package api

import (
	"encoding/json"
	"testing"

	"cdsf/internal/core"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

func TestJobStateTerminal(t *testing.T) {
	cases := map[JobState]bool{
		JobQueued:    false,
		JobRunning:   false,
		JobDone:      true,
		JobFailed:    true,
		JobCancelled: true,
	}
	for s, want := range cases {
		if got := s.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, got, want)
		}
	}
}

func TestAllocationRoundTrip(t *testing.T) {
	al := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 8}}
	wire := FromAllocation(al)
	back := ToAllocation(wire)
	if !al.Equal(back) {
		t.Errorf("allocation round trip changed %v into %v", al, back)
	}
	// Wire form must survive JSON too.
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var wire2 []Assignment
	if err := json.Unmarshal(data, &wire2); err != nil {
		t.Fatal(err)
	}
	if !al.Equal(ToAllocation(wire2)) {
		t.Errorf("JSON round trip changed %v into %v", wire, wire2)
	}
}

func TestFromStageICopies(t *testing.T) {
	r := &robustness.StageIResult{
		Alloc:         sysmodel.Allocation{{Type: 1, Procs: 4}},
		PerApp:        []float64{0.9},
		Phi1:          0.9,
		ExpectedTimes: []float64{123.4},
	}
	w := FromStageI(r)
	if w.Phi1 != r.Phi1 || len(w.Allocation) != 1 || w.Allocation[0] != (Assignment{Type: 1, Procs: 4}) {
		t.Errorf("FromStageI mismatch: %+v", w)
	}
	// Mutating the wire copy must not reach the model result.
	w.PerApp[0] = 0
	w.ExpectedTimes[0] = 0
	if r.PerApp[0] != 0.9 || r.ExpectedTimes[0] != 123.4 {
		t.Error("FromStageI aliased the model slices")
	}
}

func TestFromScenarioResult(t *testing.T) {
	res := &core.ScenarioResult{
		Scenario: "test scenario",
		StageI: &robustness.StageIResult{
			Alloc:         sysmodel.Allocation{{Type: 0, Procs: 2}},
			PerApp:        []float64{0.8},
			Phi1:          0.8,
			ExpectedTimes: []float64{50},
		},
		Cases: []core.CaseResult{
			{
				Case:     core.Case{Name: "reference"},
				Decrease: 0,
				PerApp: [][]core.TechOutcome{{
					{Technique: "AF", MeanTime: 40, StdDev: 2, PrMeet: 1, Meets: true},
				}},
				Best:    []string{"AF"},
				AllMeet: true,
			},
			{
				Case:     core.Case{Name: "degraded"},
				Decrease: 0.3,
				PerApp: [][]core.TechOutcome{{
					{Technique: "AF", MeanTime: 90, StdDev: 5, PrMeet: 0, Meets: false},
				}},
				Best:    []string{""},
				AllMeet: false,
			},
		},
	}
	w := FromScenarioResult(res)
	if w.Scenario != "test scenario" {
		t.Errorf("scenario label %q", w.Scenario)
	}
	if w.Rho1 != 0.8 {
		t.Errorf("rho1 = %v, want 0.8", w.Rho1)
	}
	// Only the reference case (decrease 0) meets the deadline, so rho2
	// is 0: no positive decrease is tolerated.
	if w.Rho2 != 0 {
		t.Errorf("rho2 = %v, want 0", w.Rho2)
	}
	if len(w.Cases) != 2 || w.Cases[0].Case != "reference" || w.Cases[1].Case != "degraded" {
		t.Errorf("cases mismatch: %+v", w.Cases)
	}
	if !w.Cases[0].AllMeet || w.Cases[1].AllMeet {
		t.Error("AllMeet flags lost in conversion")
	}
	if got := w.Cases[0].PerApp[0][0]; got != (TechOutcome{Technique: "AF", MeanTime: 40, StdDev: 2, PrMeet: 1, Meets: true}) {
		t.Errorf("outcome mismatch: %+v", got)
	}

	// The wire document must survive a JSON round trip losslessly
	// (shortest-float encoding is exact for float64).
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 ScenarioResult
	if err := json.Unmarshal(data, &w2); err != nil {
		t.Fatal(err)
	}
	if w2.Rho1 != w.Rho1 || w2.StageI.Phi1 != w.StageI.Phi1 {
		t.Error("JSON round trip changed floats")
	}
}

// Package api defines the versioned JSON wire types of the cdsfd
// scheduling service. Everything a client sends or receives over HTTP
// lives here — request payloads, result documents, and the common
// asynchronous Job envelope — and nothing here carries behavior, so
// the wire contract can evolve (v1, v2, ...) independently of the
// engine packages.
//
// The v1 surface mirrors the three library entry points the service
// exposes as asynchronous jobs:
//
//   - SolveRequest  -> ra.SolveContext        (Stage-I mapping)
//   - SimulateRequest -> sim.RunManyContext   (Stage-II Monte Carlo,
//     via core's per-case driver)
//   - ScenarioRequest -> core.RunScenarioContext (the full framework)
//
// Problem instances ride on config.Instance, the same document the
// CLIs load from disk, and results echo the canonical rendering
// (config.Marshal) so a job's inputs are always reconstructible from
// its outputs.
package api

import (
	"encoding/json"
	"time"

	"cdsf/internal/config"
	"cdsf/internal/core"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

// Version is the wire version every route in this package is mounted
// under ("/v1/...").
const Version = "v1"

// MinorVersion is the schema revision within the v1 route prefix,
// reported as api_version by GET /v1/healthz and GET /v1/jobs. 1.1
// added precedence edges on the three request documents and the
// structured Error document; every 1.0 request remains valid and
// produces a byte-identical result.
const MinorVersion = "1.1"

// JobState is the lifecycle state of an asynchronous job. States only
// move forward: queued -> running -> {done, failed, cancelled}, with
// the shortcut queued -> cancelled for jobs cancelled before a worker
// picked them up.
type JobState string

const (
	// JobQueued: accepted and waiting for a free executor.
	JobQueued JobState = "queued"
	// JobRunning: an executor is driving the engine under the job's
	// context.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result holds the document.
	JobDone JobState = "done"
	// JobFailed: the engine returned a non-cancellation error; Error
	// holds the message.
	JobFailed JobState = "failed"
	// JobCancelled: cancelled by DELETE, server drain, or deadline;
	// Error holds the cancellation cause.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final (done, failed, or
// cancelled).
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobKind names the engine entry point a job drives.
type JobKind string

const (
	KindSolve    JobKind = "solve"
	KindSimulate JobKind = "simulate"
	KindScenario JobKind = "scenario"
)

// Counts is one progress dimension's done/planned pair.
type Counts struct {
	Done    int64 `json:"done"`
	Planned int64 `json:"planned"`
}

// Progress reports how far a running job has advanced. Solve jobs
// finish in one indivisible search and report no progress; simulate
// and scenario jobs report their Stage-II fan-out.
type Progress struct {
	Scenarios    Counts `json:"scenarios"`
	Cases        Counts `json:"cases"`
	Replications Counts `json:"replications"`
}

// CacheInfo is the envelope's cache block, present when the server
// runs with a solve cache. Key is the job's content address (the
// SHA-256 over the canonical instance plus every knob the result
// depends on); ResultHit marks a job answered from the result tier
// without touching the queue. WarmHits/WarmMisses count the Stage-I
// evaluation-table cells derived from warm cached distributions vs
// computed from scratch (solve and scenario jobs; both zero when the
// job never built a table).
type CacheInfo struct {
	Key        string `json:"key"`
	ResultHit  bool   `json:"result_hit"`
	WarmHits   int64  `json:"warm_hits,omitempty"`
	WarmMisses int64  `json:"warm_misses,omitempty"`
}

// Job is the envelope every job endpoint returns. Result is the
// kind-specific document (SolveResult, SimulateResult, ScenarioResult)
// once State is done; Error is set for failed and cancelled jobs.
// Cache is absent when the server runs without a solve cache, so
// envelopes are unchanged for cacheless deployments.
type Job struct {
	ID       string          `json:"id"`
	Kind     JobKind         `json:"kind"`
	State    JobState        `json:"state"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Progress *Progress       `json:"progress,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Cache    *CacheInfo      `json:"cache,omitempty"`
	// Node is the worker peer the coordinator leased the job to;
	// empty for jobs executed in-process.
	Node string `json:"node,omitempty"`
}

// JobList is the GET /v1/jobs response, in submission order. The list
// is paginated with ?limit=N&after=<id>: Total counts every job
// matching the filter across all pages, and Next (set only when a
// limit truncated the page) is the ?after= cursor for the next one.
type JobList struct {
	// APIVersion reports the wire schema revision (MinorVersion).
	APIVersion string `json:"api_version"`
	Jobs       []Job  `json:"jobs"`
	Total      int    `json:"total"`
	Next       string `json:"next,omitempty"`
}

// WorkerRegistration is the body of POST /v1/workers: a worker peer
// announcing itself (and, periodically, re-announcing itself as a
// heartbeat). Addr is the base URL the coordinator dispatches jobs
// to.
type WorkerRegistration struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// WorkerStatus is one registered worker peer as the coordinator sees
// it: GET /v1/workers and the healthz workers block.
type WorkerStatus struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Alive is false once the worker has missed enough heartbeats to
	// be considered dead; its leases are reassigned.
	Alive bool `json:"alive"`
	// LastHeartbeatSeconds is the silence since the worker's latest
	// registration.
	LastHeartbeatSeconds float64 `json:"last_heartbeat_seconds"`
	// Leased is the number of jobs the worker currently holds;
	// Dispatched and Completed are lifetime counts.
	Leased     int   `json:"leased"`
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
}

// WorkerList is the GET /v1/workers response (and the registration
// acknowledgement, so a worker learns the cluster size from its own
// heartbeat).
type WorkerList struct {
	Workers []WorkerStatus `json:"workers"`
}

// Error codes: the machine-readable classification of every non-2xx
// response. Clients branch on the code; the message is for humans.
const (
	// ErrBadRequest: the request document failed validation (malformed
	// JSON, unknown names, invalid instance, bad DAG edges). Field
	// carries the offending JSON path when one is known.
	ErrBadRequest = "bad_request"
	// ErrNotFound: the named job or worker does not exist.
	ErrNotFound = "not_found"
	// ErrQueueFull: admission rejected the job; retry after the
	// Retry-After header's estimate.
	ErrQueueFull = "queue_full"
	// ErrDraining: the server is shutting down and admits nothing.
	ErrDraining = "draining"
	// ErrInternal: the server failed to admit or journal the job.
	ErrInternal = "internal"
)

// Error is the body of every non-2xx response (v1.1): one structured
// document for all 4xx/5xx outcomes instead of ad-hoc text bodies.
// Field, when set, is the JSON path of the request field at fault in
// the config.Marshal style — "edges[3].from",
// "applications[2].execTimes[0].mean" — so clients can point at the
// exact offending input.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// Health is the GET /v1/healthz response: a structured liveness
// document instead of a bare OK, so orchestrators and load balancers
// can key on saturation and drain state without scraping /metrics.
type Health struct {
	// Status is "ok" while admitting and "draining" once shutdown has
	// begun (Draining carries the same fact as a bool).
	Status  string `json:"status"`
	Version string `json:"version"`
	// APIVersion reports the wire schema revision (MinorVersion);
	// Version stays the route prefix.
	APIVersion string `json:"api_version"`
	Draining   bool   `json:"draining"`
	// QueueDepth is the number of jobs waiting for an executor right
	// now, out of QueueCapacity; Inflight is the number currently
	// holding one of the Executors.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Inflight      int `json:"inflight"`
	Executors     int `json:"executors"`
	// Jobs are the process-lifetime job counters.
	Jobs HealthJobs `json:"jobs"`
	// Cache carries the solve-cache hit counters; absent when the
	// server runs without a cache.
	Cache *HealthCache `json:"cache,omitempty"`
	// Store describes the job-store backend: memory or WAL, journal
	// size, and what the last startup replay recovered.
	Store *HealthStore `json:"store,omitempty"`
	// Workers lists the registered worker peers with liveness; absent
	// when none ever registered.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// HealthStore is the healthz view of the job store (mirrors
// store.Stats; api cannot import internal/store, which imports api).
type HealthStore struct {
	Backend         string `json:"backend"`
	Jobs            int    `json:"jobs"`
	Records         int64  `json:"records"`
	WALBytes        int64  `json:"wal_bytes,omitempty"`
	Fsyncs          int64  `json:"fsyncs,omitempty"`
	ReplayedRecords int64  `json:"replayed_records,omitempty"`
	ReplayedJobs    int64  `json:"replayed_jobs,omitempty"`
	RecoveredJobs   int64  `json:"recovered_jobs,omitempty"`
	TruncatedBytes  int64  `json:"truncated_bytes,omitempty"`
}

// HealthJobs are the lifetime job counts by outcome (submitted counts
// admissions, including cache-replayed ones; rejected counts 429s).
type HealthJobs struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
}

// HealthCache are the solve-cache hit counters: the result tier
// (whole documents replayed at admission) and the warm table tier
// (Stage-I evaluation tables reused across jobs).
type HealthCache struct {
	ResultHits   int64 `json:"result_hits"`
	ResultMisses int64 `json:"result_misses"`
	TableHits    int64 `json:"table_hits"`
	TableMisses  int64 `json:"table_misses"`
}

// SolveRequest submits a Stage-I resource allocation search
// (POST /v1/solve).
type SolveRequest struct {
	// Instance is the problem document; nil means the embedded paper
	// example.
	Instance *config.Instance `json:"instance,omitempty"`
	// Edges are precedence constraints over the batch (v1.1): edge
	// {from, to} means application from must finish before to starts.
	// Non-empty edges override the instance's own; the effective set is
	// echoed in the result's canonical instance, so the job's cache
	// identity includes the topology. Empty leaves the request exactly
	// as in v1.0.
	Edges []config.EdgeSpec `json:"edges,omitempty"`
	// Heuristic names the Stage-I policy (ra.Names lists them); empty
	// means "exhaustive".
	Heuristic string `json:"heuristic,omitempty"`
	// Deadline overrides the instance deadline when positive.
	Deadline float64 `json:"deadline,omitempty"`
	// Seed reseeds stochastic heuristics (random, anneal, genetic,
	// tabu); deterministic heuristics ignore it. Zero keeps the
	// heuristic's default seed.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the search's worker pool; 0 means the server
	// default. Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// PMFBackend selects the Stage-I distribution representation:
	// "sparse" (the default: exact pulses, bit-identical to earlier
	// releases) or "grid" (dense fixed-step lattice, faster within a
	// documented quantization-error bound). Empty means the server's
	// default backend.
	PMFBackend string `json:"pmf_backend,omitempty"`
}

// Assignment is the wire form of one application's processor group.
type Assignment struct {
	// Type indexes the instance's processor types.
	Type int `json:"type"`
	// Procs is the number of processors of that type.
	Procs int `json:"procs"`
}

// SolveResult is the result document of a solve job.
type SolveResult struct {
	// Heuristic is the report label of the policy that produced the
	// allocation (the registry name).
	Heuristic string `json:"heuristic"`
	// Allocation maps each application (by batch index) to its group.
	Allocation []Assignment `json:"allocation"`
	// Phi1 is the Stage-I robustness: the joint probability that every
	// application meets the deadline under the reference availability.
	Phi1 float64 `json:"phi1"`
	// PerApp[i] is Pr(T_i <= deadline) for application i.
	PerApp []float64 `json:"perApp"`
	// ExpectedTimes[i] is E[T_i] under the reference availability.
	ExpectedTimes []float64 `json:"expectedTimes"`
	// Instance echoes the canonical rendering (config.Marshal) of the
	// submitted instance, when one was submitted.
	Instance json.RawMessage `json:"instance,omitempty"`
}

// SimulateRequest submits a Stage-II Monte-Carlo evaluation of a fixed
// allocation under one availability case (POST /v1/simulate).
type SimulateRequest struct {
	// Instance is the problem document; nil means the embedded paper
	// example.
	Instance *config.Instance `json:"instance,omitempty"`
	// Edges are precedence constraints over the batch (v1.1; see
	// SolveRequest.Edges): the simulation then releases each
	// application only when all its predecessors have finished, per
	// repetition.
	Edges []config.EdgeSpec `json:"edges,omitempty"`
	// Allocation fixes each application's processor group; required.
	Allocation []Assignment `json:"allocation"`
	// Techniques names the DLS technique set (dls.Names lists them);
	// empty means the paper's robust set {FAC, WF, AWF-B, AF}.
	Techniques []string `json:"techniques,omitempty"`
	// Case names one of the instance's declared availability cases;
	// empty or "reference" means the reference availability.
	Case string `json:"case,omitempty"`
	// Reps is the number of repetitions per (application, technique)
	// cell; 0 means the paper default (60).
	Reps int `json:"reps,omitempty"`
	// Seed drives all Stage-II randomness; seeded requests are
	// bit-identical to the equivalent direct library call.
	Seed uint64 `json:"seed,omitempty"`
	// Overhead overrides the per-chunk scheduling overhead when
	// non-nil (default 1 time unit).
	Overhead *float64 `json:"overhead,omitempty"`
	// IterCV overrides the iteration-time coefficient of variation
	// when non-nil (default 0.3).
	IterCV *float64 `json:"iterCV,omitempty"`
	// TimeSteps runs each application as a multi-sweep time-stepping
	// loop (0 or 1: single sweep).
	TimeSteps int `json:"timeSteps,omitempty"`
	// PMFBackend selects the distribution representation of any
	// Stage-I evaluation embedded in the job ("sparse" or "grid";
	// empty means the server default). The Monte-Carlo replications
	// themselves are backend-independent.
	PMFBackend string `json:"pmf_backend,omitempty"`
}

// TechOutcome is one (application, technique) cell of a Stage-II
// result.
type TechOutcome struct {
	Technique string  `json:"technique"`
	MeanTime  float64 `json:"meanTime"`
	StdDev    float64 `json:"stdDev"`
	PrMeet    float64 `json:"prMeet"`
	Meets     bool    `json:"meets"`
}

// CaseResult is the Stage-II outcome of one availability case.
type CaseResult struct {
	// Case is the availability case label.
	Case string `json:"case"`
	// Decrease is the case's weighted-availability decrease
	// 1 - E[A_case]/E[A_hat].
	Decrease float64 `json:"decrease"`
	// PerApp[i] lists each technique's outcome for application i.
	PerApp [][]TechOutcome `json:"perApp"`
	// Best[i] is the fastest deadline-meeting technique for
	// application i, or "" if none met the deadline.
	Best []string `json:"best"`
	// AllMeet reports whether every application had a deadline-meeting
	// technique.
	AllMeet bool `json:"allMeet"`
}

// SimulateResult is the result document of a simulate job.
type SimulateResult struct {
	CaseResult
	// Instance echoes the canonical rendering of the submitted
	// instance, when one was submitted.
	Instance json.RawMessage `json:"instance,omitempty"`
}

// ScenarioRequest submits a full dual-stage framework run
// (POST /v1/scenario): Stage I plus Stage-II simulations over every
// availability case.
type ScenarioRequest struct {
	// Instance is the problem document; nil means the embedded paper
	// example with the paper's four availability cases. An instance
	// without declared cases is evaluated under the reference
	// availability plus 80% and 60% degradations (core.FallbackCases).
	Instance *config.Instance `json:"instance,omitempty"`
	// Edges are precedence constraints over the batch (v1.1; see
	// SolveRequest.Edges): Stage I optimizes the DAG phi_1 and every
	// Stage-II case releases applications along the edges.
	Edges []config.EdgeSpec `json:"edges,omitempty"`
	// Scenario selects one of the paper's four scenarios (1-4) when IM
	// and RAS are empty; 0 means 4 (robust-robust).
	Scenario int `json:"scenario,omitempty"`
	// IM names a custom Stage-I heuristic (overrides Scenario).
	IM string `json:"im,omitempty"`
	// RAS names a custom Stage-II technique set (overrides Scenario).
	RAS []string `json:"ras,omitempty"`
	// Reps is the number of Stage-II repetitions per cell; 0 means the
	// paper default (60).
	Reps int `json:"reps,omitempty"`
	// Seed drives all Stage-II randomness.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the Stage-I worker pool; 0 means the server
	// default. Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// PMFBackend selects the Stage-I distribution representation
	// ("sparse" or "grid"; empty means the server default).
	PMFBackend string `json:"pmf_backend,omitempty"`
}

// StageIResult is the Stage-I portion of a scenario result.
type StageIResult struct {
	Allocation    []Assignment `json:"allocation"`
	Phi1          float64      `json:"phi1"`
	PerApp        []float64    `json:"perApp"`
	ExpectedTimes []float64    `json:"expectedTimes"`
}

// ScenarioResult is the result document of a scenario job.
type ScenarioResult struct {
	// Scenario is the scenario's report label.
	Scenario string `json:"scenario"`
	// StageI carries the initial mapping and its robustness.
	StageI StageIResult `json:"stageI"`
	// Cases holds one CaseResult per evaluated availability case.
	Cases []CaseResult `json:"cases"`
	// Rho1 and Rho2 form the paper's system robustness tuple.
	Rho1 float64 `json:"rho1"`
	Rho2 float64 `json:"rho2"`
	// Instance echoes the canonical rendering of the submitted
	// instance, when one was submitted.
	Instance json.RawMessage `json:"instance,omitempty"`
}

// FromAllocation converts a model allocation to its wire form.
func FromAllocation(al sysmodel.Allocation) []Assignment {
	out := make([]Assignment, len(al))
	for i, as := range al {
		out[i] = Assignment{Type: as.Type, Procs: as.Procs}
	}
	return out
}

// ToAllocation converts a wire allocation back to the model form.
func ToAllocation(as []Assignment) sysmodel.Allocation {
	out := make(sysmodel.Allocation, len(as))
	for i, a := range as {
		out[i] = sysmodel.Assignment{Type: a.Type, Procs: a.Procs}
	}
	return out
}

// FromStageI converts a Stage-I evaluation to its wire form.
func FromStageI(r *robustness.StageIResult) StageIResult {
	return StageIResult{
		Allocation:    FromAllocation(r.Alloc),
		Phi1:          r.Phi1,
		PerApp:        append([]float64(nil), r.PerApp...),
		ExpectedTimes: append([]float64(nil), r.ExpectedTimes...),
	}
}

// FromTechOutcome converts one core cell outcome to its wire form.
func FromTechOutcome(o core.TechOutcome) TechOutcome {
	return TechOutcome{
		Technique: o.Technique,
		MeanTime:  o.MeanTime,
		StdDev:    o.StdDev,
		PrMeet:    o.PrMeet,
		Meets:     o.Meets,
	}
}

// FromCaseResult converts one core case result to its wire form.
func FromCaseResult(cr *core.CaseResult) CaseResult {
	out := CaseResult{
		Case:     cr.Case.Name,
		Decrease: cr.Decrease,
		PerApp:   make([][]TechOutcome, len(cr.PerApp)),
		Best:     append([]string(nil), cr.Best...),
		AllMeet:  cr.AllMeet,
	}
	for i, outs := range cr.PerApp {
		row := make([]TechOutcome, len(outs))
		for j, o := range outs {
			row[j] = FromTechOutcome(o)
		}
		out.PerApp[i] = row
	}
	return out
}

// FromScenarioResult converts a full scenario evaluation to its wire
// form, including the derived system robustness tuple.
func FromScenarioResult(res *core.ScenarioResult) ScenarioResult {
	out := ScenarioResult{
		Scenario: res.Scenario,
		StageI:   FromStageI(res.StageI),
		Cases:    make([]CaseResult, len(res.Cases)),
	}
	for i := range res.Cases {
		out.Cases[i] = FromCaseResult(&res.Cases[i])
	}
	tuple := core.SystemRobustness(res)
	out.Rho1, out.Rho2 = tuple.Rho1, tuple.Rho2
	return out
}

package tracing

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cdsf/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.runs").Add(7)
	prog := NewProgress()
	prog.PlanCases(3)
	prog.CaseDone()
	tr := New()
	tr.Add(Span{Clock: Sim, Lane: "fac/w00", Name: "chunk[4]", Cat: "busy", Start: 0, Dur: 2})

	srv, err := StartDebug("127.0.0.1:0", reg, prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["sim.runs"] != 7 {
		t.Errorf("sim.runs = %d", snap.Counters["sim.runs"])
	}

	code, body = get(t, base+"/metrics?format=prom")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE sim_runs counter\nsim_runs 7") {
		t.Errorf("/metrics?format=prom: %d\n%s", code, body)
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: %d", code)
	}
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if ps.Cases != (Counts{Done: 1, Planned: 3}) {
		t.Errorf("progress cases = %+v", ps.Cases)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &file); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if len(file.TraceEvents) == 0 {
		t.Error("/trace has no events")
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/: %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
}

func TestDebugServerNilCollaborators(t *testing.T) {
	srv, err := StartDebug("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/metrics?format=prom", "/progress", "/trace"} {
		if code, body := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s with nil collaborators: %d\n%s", path, code, body)
		}
	}
	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebug("999.0.0.1:http", nil, nil, nil); err == nil {
		t.Error("bad address accepted")
	}
}

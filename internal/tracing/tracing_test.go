package tracing

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"cdsf/internal/metrics"
)

func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	tr.Add(Span{Name: "x"})
	tr.AddWorkerLanes("s", []Chunk{{Worker: 0, Start: 0, Size: 1, Elapsed: 1}}, 0.5)
	r := tr.Begin("lane", "name", "cat")
	r.End()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var file struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
	if file.TraceEvents == nil {
		t.Error("nil trace missing traceEvents array")
	}
	if g := tr.Gantt("t", Sim, ""); g == nil || g.Lanes != 0 {
		t.Errorf("nil Gantt = %+v", g)
	}
}

func TestAddAndSpans(t *testing.T) {
	tr := New()
	tr.Add(Span{Clock: Sim, Lane: "a", Name: "one", Start: 0, Dur: 1})
	tr.Add(Span{Clock: Sim, Lane: "b", Name: "two", Start: 1, Dur: 2})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Spans()
	if got[0].Name != "one" || got[1].Name != "two" {
		t.Errorf("spans out of order: %+v", got)
	}
	// The copy must be independent of the recorder.
	got[0].Name = "mutated"
	if tr.Spans()[0].Name != "one" {
		t.Error("Spans returned aliased storage")
	}
}

func TestBeginEndRecordsWallSpan(t *testing.T) {
	tr := New()
	r := tr.Begin("lane", "work", "stage1")
	r.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	s := spans[0]
	if s.Clock != Wall || s.Lane != "lane" || s.Name != "work" || s.Cat != "stage1" {
		t.Errorf("span = %+v", s)
	}
	if s.Start < 0 || s.Dur < 0 {
		t.Errorf("negative times: %+v", s)
	}
}

// Satellite: spans beyond the buffer cap are dropped and counted in the
// metrics registry, not silently discarded.
func TestCapDropsIntoMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewSized(2, reg)
	for i := 0; i < 5; i++ {
		tr.Add(Span{Name: "s"})
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	if v := reg.Counter("tracing.dropped").Value(); v != 3 {
		t.Errorf("tracing.dropped counter = %d, want 3", v)
	}
}

func TestCapDropFallsBackToDefaultRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	metrics.SetDefault(reg)
	defer metrics.SetDefault(nil)
	tr := NewSized(1, nil)
	tr.Add(Span{})
	tr.Add(Span{})
	if v := reg.Counter("tracing.dropped").Value(); v != 1 {
		t.Errorf("tracing.dropped = %d, want 1", v)
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Begin("lane", "n", "c").End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d, want 800", tr.Len())
	}
}

func TestAddWorkerLanes(t *testing.T) {
	tr := New()
	// Worker 0: two chunks with a gap; worker 1: one chunk.
	chunks := []Chunk{
		{Worker: 0, Start: 0, Size: 4, Elapsed: 2},   // [0, 0.5+2=2.5]
		{Worker: 1, Start: 0, Size: 8, Elapsed: 5},   // [0, 5.5]
		{Worker: 0, Start: 4, Size: 2, Elapsed: 1.5}, // idle [2.5,4], then [4, 6]
	}
	tr.AddWorkerLanes("app", chunks, 0.5)
	byLane := map[string]map[string]float64{}
	for _, s := range tr.Spans() {
		if s.Clock != Sim {
			t.Fatalf("worker-lane span on wall clock: %+v", s)
		}
		if byLane[s.Lane] == nil {
			byLane[s.Lane] = map[string]float64{}
		}
		byLane[s.Lane][s.Cat] += s.Dur
	}
	w0 := byLane["app/w00"]
	if math.Abs(w0["busy"]-3.5) > 1e-12 || math.Abs(w0["overhead"]-1) > 1e-12 || math.Abs(w0["idle"]-1.5) > 1e-12 {
		t.Errorf("w00 sums = %v", w0)
	}
	w1 := byLane["app/w01"]
	if math.Abs(w1["busy"]-5) > 1e-12 || math.Abs(w1["overhead"]-0.5) > 1e-12 || w1["idle"] != 0 {
		t.Errorf("w01 sums = %v", w1)
	}
	// busy + overhead + idle spans the lane end to end.
	if total := w0["busy"] + w0["overhead"] + w0["idle"]; math.Abs(total-6) > 1e-12 {
		t.Errorf("w00 total = %v, want 6", total)
	}
}

func TestAddWorkerLanesNoOverhead(t *testing.T) {
	tr := New()
	tr.AddWorkerLanes("", []Chunk{{Worker: 3, Start: 1, Size: 2, Elapsed: 4}}, 0)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1 (no overhead span)", len(spans))
	}
	if spans[0].Lane != "run/w03" {
		t.Errorf("empty scope lane = %q", spans[0].Lane)
	}
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	tr := New()
	tr.AddWorkerLanes("fac", []Chunk{
		{Worker: 0, Start: 0, Size: 4, Elapsed: 2},
		{Worker: 1, Start: 0.5, Size: 4, Elapsed: 3},
	}, 1)
	tr.Add(Span{Clock: Sim, Lane: "fac/serial", Name: "serial phase", Cat: "serial", Start: 0, Dur: 0.5})

	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same tracer differ")
	}

	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &file); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	names := map[string]bool{}
	var xEvents, mEvents int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.PID != 2 {
				t.Errorf("sim span on pid %d: %+v", e.PID, e)
			}
			if e.TID == 0 {
				t.Errorf("X event without thread: %+v", e)
			}
		case "M":
			mEvents++
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 2 chunks x (overhead + busy) + 1 serial span.
	if xEvents != 5 {
		t.Errorf("%d X events, want 5", xEvents)
	}
	for _, want := range []string{"simulated time", "fac/w00", "fac/w01", "fac/serial"} {
		if !names[want] {
			t.Errorf("metadata name %q missing (have %v)", want, names)
		}
	}
}

func TestWriteChromeWallClockConversion(t *testing.T) {
	tr := New()
	tr.Add(Span{Clock: Wall, Lane: "stage1", Name: "precompute", Start: 0.5, Dur: 0.25})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			PID int     `json:"pid"`
			TS  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.PID != 1 {
			t.Errorf("wall span on pid %d", e.PID)
		}
		if e.TS != 0.5e6 || e.Dur != 0.25e6 {
			t.Errorf("wall us = (%v, %v), want (5e5, 2.5e5)", e.TS, e.Dur)
		}
	}
}

func TestGanttBridge(t *testing.T) {
	tr := New()
	tr.AddWorkerLanes("fac", []Chunk{
		{Worker: 0, Start: 0, Size: 4, Elapsed: 3},
		{Worker: 1, Start: 0, Size: 4, Elapsed: 4},
		{Worker: 0, Start: 5, Size: 2, Elapsed: 1}, // leaves an idle gap on w00
	}, 1)
	tr.Begin("stage1", "precompute", "stage1").End()

	g := tr.Gantt("title", Sim, "fac/")
	if g.Lanes != 2 {
		t.Fatalf("lanes = %d, want 2", g.Lanes)
	}
	if g.LaneLabels[0] != "fac/w00" || g.LaneLabels[1] != "fac/w01" {
		t.Errorf("labels = %v", g.LaneLabels)
	}
	out := g.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "#") {
		t.Errorf("expected overhead and busy glyphs in:\n%s", out)
	}
	// The wall-clock stage1 span must not leak into the sim chart.
	if strings.Contains(out, "stage1") {
		t.Errorf("wall lane leaked into sim Gantt:\n%s", out)
	}
}

func TestDefaultTracer(t *testing.T) {
	if Default() != nil {
		t.Fatal("default tracer not nil at start")
	}
	tr := New()
	SetDefault(tr)
	defer SetDefault(nil)
	if Default() != tr {
		t.Error("SetDefault did not install")
	}
}

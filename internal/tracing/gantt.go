package tracing

import (
	"sort"
	"strings"

	"cdsf/internal/report"
)

// ganttGlyphs maps span categories to Gantt glyphs; unknown categories
// render as '#'.
var ganttGlyphs = map[string]byte{
	"busy":     '#',
	"overhead": 'o',
	"idle":     '.',
}

// Gantt renders the tracer's spans on one clock as an ASCII chart —
// the terminal-side view of the same timeline WriteChrome exports.
// Lanes are selected by prefix ("" selects all), sorted by name, and
// re-based so the earliest selected span starts at 0. Idle spans are
// skipped (the chart's background already reads as idle); overhead
// spans draw as 'o', busy spans as '#'. A nil tracer yields an empty
// chart.
func (t *Tracer) Gantt(title string, clock Clock, lanePrefix string) *report.Gantt {
	var sel []Span
	lanes := map[string]int{}
	minStart := 0.0
	for _, s := range t.Spans() {
		if s.Clock != clock || !strings.HasPrefix(s.Lane, lanePrefix) {
			continue
		}
		if s.Cat == "idle" {
			continue
		}
		if len(sel) == 0 || s.Start < minStart {
			minStart = s.Start
		}
		lanes[s.Lane] = 0
		sel = append(sel, s)
	}
	names := make([]string, 0, len(lanes))
	for l := range lanes {
		names = append(names, l)
	}
	sort.Strings(names)
	for i, l := range names {
		lanes[l] = i
	}
	g := report.NewGantt(title, len(names))
	g.LaneLabels = names
	for _, s := range sel {
		glyph, ok := ganttGlyphs[s.Cat]
		if !ok {
			glyph = '#'
		}
		g.Add(lanes[s.Lane], s.Start-minStart, s.Start-minStart+s.Dur, glyph)
	}
	return g
}

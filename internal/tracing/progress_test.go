package tracing

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilProgressNoOp(t *testing.T) {
	var p *Progress
	p.PlanScenarios(3)
	p.ScenarioDone()
	p.PlanCases(5)
	p.CaseDone()
	p.PlanReps(7)
	p.RepDone()
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestProgressCounts(t *testing.T) {
	p := NewProgress()
	p.PlanScenarios(2)
	p.PlanCases(6)
	p.PlanReps(30)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.RepDone() }()
	}
	wg.Wait()
	p.ScenarioDone()
	p.CaseDone()
	p.CaseDone()
	s := p.Snapshot()
	if s.Scenarios != (Counts{Done: 1, Planned: 2}) ||
		s.Cases != (Counts{Done: 2, Planned: 6}) ||
		s.Replications != (Counts{Done: 30, Planned: 30}) {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestProgressJSON(t *testing.T) {
	p := NewProgress()
	p.PlanCases(4)
	p.CaseDone()
	var buf bytes.Buffer
	if err := p.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("progress JSON invalid: %v\n%s", err, buf.Bytes())
	}
	if got["cases"]["done"] != 1 || got["cases"]["planned"] != 4 {
		t.Errorf("cases = %v", got["cases"])
	}
}

func TestDefaultProgress(t *testing.T) {
	if DefaultProgress() != nil {
		t.Fatal("default progress not nil at start")
	}
	p := NewProgress()
	SetProgress(p)
	defer SetProgress(nil)
	DefaultProgress().CaseDone()
	if p.Snapshot().Cases.Done != 1 {
		t.Error("default progress did not route to installed board")
	}
}

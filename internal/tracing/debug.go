package tracing

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"cdsf/internal/metrics"
)

// DebugServer is the live inspection endpoint behind the CLIs'
// -debug-addr flag: a plain net/http server exposing
//
//	/debug/pprof/*        the standard Go profiler endpoints
//	/metrics              JSON snapshot of the metrics registry
//	/metrics?format=prom  Prometheus text exposition format
//	/progress             scenarios/cases/replications done vs. planned
//	/trace                Chrome trace JSON of the tracer so far
//
// so a long Monte-Carlo batch can be profiled and watched while it is
// still executing.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Mount registers the debug endpoints (/debug/pprof/*, /metrics,
// /progress, /trace) on an existing mux, so a service that already
// owns an HTTP surface — the cdsfd job API — exposes the same
// observability endpoints as the CLIs' -debug-addr server. reg and tr
// may be nil (the endpoints serve empty snapshots); prog supplies the
// progress snapshot and may be nil for an always-empty board. A
// *Progress method value (prog.Snapshot) is the usual argument; a
// custom func can aggregate several boards.
func Mount(mux *http.ServeMux, reg *metrics.Registry, prog func() ProgressSnapshot, tr *Tracer) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		var snap ProgressSnapshot
		if prog != nil {
			snap = prog()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChrome(w)
	})
}

// StartDebug listens on addr (e.g. ":6060"; ":0" picks a free port)
// and serves the debug endpoints in a background goroutine. reg, prog,
// and tr may each be nil: the endpoints then serve empty snapshots.
// Close shuts the server down.
func StartDebug(addr string, reg *metrics.Registry, prog *Progress, tr *Tracer) (*DebugServer, error) {
	mux := http.NewServeMux()
	Mount(mux, reg, prog.Snapshot, tr)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the server's listen address (with the resolved port).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, dropping in-flight
// requests. It is a no-op on a nil receiver, so CLIs can defer it
// unconditionally.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: it closes the listener and
// waits for in-flight handlers (a /debug/pprof/profile capture, a
// /trace export) until ctx expires, then force-closes whatever
// remains. Like Close it is a no-op on a nil receiver.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

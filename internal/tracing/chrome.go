package tracing

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// This file exports recorded spans in the Chrome Trace Event Format
// (the JSON object form with a "traceEvents" array), loadable in
// chrome://tracing and Perfetto. The two clocks become two process
// tracks: pid 1 is the wall clock, pid 2 is simulated time. Wall spans
// convert seconds to the format's microseconds; simulated spans map
// one simulated time unit to one microsecond, so a makespan of 3250
// units reads as 3.25 ms on the viewer's axis (the DESIGN.md two-clock
// convention).

// chromePID returns the process id of a clock's track.
func chromePID(c Clock) int {
	if c == Sim {
		return 2
	}
	return 1
}

// chromeTS converts a span time value to trace microseconds.
func chromeTS(c Clock, v float64) float64 {
	if c == Sim {
		return v // one simulated time unit = 1 us
	}
	return v * 1e6 // wall seconds = 1e6 us
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the exported JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChrome writes the recorded spans as Chrome Trace Event Format
// JSON. Lanes become threads whose ids are assigned in sorted lane
// order per clock, and events are emitted sorted by (clock, lane,
// start, name), so a deterministic span set (e.g. a pure simulated-time
// trace of a seeded run) serializes identically on every export. A nil
// tracer writes an empty but valid trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()

	// Assign thread ids in sorted lane order within each clock.
	laneSet := map[Clock]map[string]int{}
	for _, s := range spans {
		if laneSet[s.Clock] == nil {
			laneSet[s.Clock] = map[string]int{}
		}
		laneSet[s.Clock][s.Lane] = 0
	}
	clocks := make([]Clock, 0, len(laneSet))
	for c := range laneSet {
		clocks = append(clocks, c)
	}
	sort.Slice(clocks, func(i, j int) bool { return clocks[i] < clocks[j] })

	file := chromeFile{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clocks": "pid 1: wall clock (us = real us); pid 2: simulated time (1 unit = 1 us)",
		},
	}
	for _, c := range clocks {
		pid := chromePID(c)
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": c.String()},
		})
		lanes := make([]string, 0, len(laneSet[c]))
		for lane := range laneSet[c] {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		for i, lane := range lanes {
			laneSet[c][lane] = i + 1
			file.TraceEvents = append(file.TraceEvents,
				chromeEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: i + 1,
					Args: map[string]any{"name": lane},
				},
				chromeEvent{
					Name: "thread_sort_index", Ph: "M", PID: pid, TID: i + 1,
					Args: map[string]any{"sort_index": i + 1},
				})
		}
	}

	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		// Containment order: at equal start the longer (outer) span
		// comes first so viewers nest the shorter one inside it.
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.Name < b.Name
	})
	for _, s := range spans {
		dur := chromeTS(s.Clock, s.Dur)
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			PID: chromePID(s.Clock), TID: laneSet[s.Clock][s.Lane],
			TS: chromeTS(s.Clock, s.Start), Dur: &dur,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// WriteTo emits the tracer to a destination as the CLIs' -trace flag
// understands it:
//
//	""        no-op
//	"-"       Chrome trace JSON to stdout
//	"<path>"  Chrome trace JSON file
//
// A nil tracer with a non-empty destination emits an empty trace.
func WriteTo(t *Tracer, dest string) error {
	switch dest {
	case "":
		return nil
	case "-":
		return t.WriteChrome(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	err = t.WriteChrome(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

package tracing

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// Progress tracks how far a long run has advanced: scenarios, cases,
// and Stage-II replications completed versus planned. Producers (core,
// experiments, sim) bump the counters atomically; the -debug-addr
// server's /progress endpoint snapshots them, so a long Monte-Carlo
// batch can be inspected while it is still executing. A nil *Progress
// is a no-op on every method — the disabled path instrumented code
// rides on, exactly like a nil metrics.Registry.
type Progress struct {
	scenariosPlanned, scenariosDone atomic.Int64
	casesPlanned, casesDone         atomic.Int64
	repsPlanned, repsDone           atomic.Int64
}

// NewProgress returns an empty progress board.
func NewProgress() *Progress { return &Progress{} }

// PlanScenarios adds n planned scenarios. No-op on a nil receiver.
func (p *Progress) PlanScenarios(n int) {
	if p != nil {
		p.scenariosPlanned.Add(int64(n))
	}
}

// ScenarioDone marks one scenario complete. No-op on a nil receiver.
func (p *Progress) ScenarioDone() {
	if p != nil {
		p.scenariosDone.Add(1)
	}
}

// PlanCases adds n planned availability cases (or scale-study cells).
// No-op on a nil receiver.
func (p *Progress) PlanCases(n int) {
	if p != nil {
		p.casesPlanned.Add(int64(n))
	}
}

// CaseDone marks one case complete. No-op on a nil receiver.
func (p *Progress) CaseDone() {
	if p != nil {
		p.casesDone.Add(1)
	}
}

// PlanReps adds n planned Stage-II replications. No-op on a nil
// receiver.
func (p *Progress) PlanReps(n int) {
	if p != nil {
		p.repsPlanned.Add(int64(n))
	}
}

// RepDone marks one replication complete. No-op on a nil receiver.
func (p *Progress) RepDone() {
	if p != nil {
		p.repsDone.Add(1)
	}
}

// Counts is one dimension's done/planned pair.
type Counts struct {
	Done    int64 `json:"done"`
	Planned int64 `json:"planned"`
}

// ProgressSnapshot is a point-in-time copy of a Progress.
type ProgressSnapshot struct {
	Scenarios    Counts `json:"scenarios"`
	Cases        Counts `json:"cases"`
	Replications Counts `json:"replications"`
}

// Snapshot copies the current counters; a nil receiver yields zeros.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Scenarios:    Counts{Done: p.scenariosDone.Load(), Planned: p.scenariosPlanned.Load()},
		Cases:        Counts{Done: p.casesDone.Load(), Planned: p.casesPlanned.Load()},
		Replications: Counts{Done: p.repsDone.Load(), Planned: p.repsPlanned.Load()},
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s ProgressSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// defaultProgress is the process-wide fallback board; see SetProgress.
var defaultProgress atomic.Pointer[Progress]

// SetProgress installs p as the process-wide default progress board,
// the fallback instrumented packages report to when none was wired
// through their configs. The CLIs call it once at startup when
// -debug-addr is given; passing nil disables the fallback.
func SetProgress(p *Progress) { defaultProgress.Store(p) }

// DefaultProgress returns the board installed by SetProgress, or nil.
func DefaultProgress() *Progress { return defaultProgress.Load() }

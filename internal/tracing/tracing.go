// Package tracing is the span-level observability layer of the CDSF
// reproduction: a zero-dependency, goroutine-safe recorder of timed
// spans that exports causal timelines of a run — where package metrics
// answers "how much", tracing answers "when and in what order".
//
// Spans live on one of two clocks:
//
//   - Wall: real wall-clock time, for the Stage-I search engine
//     (Precompute, exhaustive partitions, portfolio members,
//     metaheuristic restarts) and the Stage-II orchestration in core
//     (scenario -> case -> application nesting).
//   - Sim: simulated time, for the Stage-II discrete-event runs —
//     per-worker lanes of busy/overhead/idle intervals built from the
//     simulator's chunk log.
//
// The two clocks export as separate process tracks of one Chrome Trace
// Event Format file (chrome://tracing, Perfetto); see WriteChrome. The
// same spans can also render as an ASCII report.Gantt for terminals.
//
// Like package metrics, the disabled path is free of surprises: a nil
// *Tracer is a no-op on every method, recording derives only from
// finished results and real time — never from the simulation's rng
// streams — and seeded outputs are bit-identical with tracing on or
// off. When the span buffer reaches its cap, further spans are counted
// in the metrics registry as "tracing.dropped" rather than silently
// discarded.
//
// Only the standard library (plus the sibling internal packages
// metrics and report) is used.
package tracing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cdsf/internal/metrics"
)

// Clock selects the time base of a span.
type Clock uint8

const (
	// Wall spans carry real time: Start is seconds since the tracer's
	// epoch (its creation time), Dur is seconds.
	Wall Clock = iota
	// Sim spans carry simulated time: Start and Dur are simulated time
	// units as produced by the Stage-II simulator.
	Sim
)

// String names the clock's process track in exports.
func (c Clock) String() string {
	if c == Sim {
		return "simulated time"
	}
	return "wall clock"
}

// Span is one timed interval on a named lane.
type Span struct {
	// Clock is the span's time base.
	Clock Clock
	// Lane names the span's row (the Chrome trace "thread"); hierarchy
	// is conventionally encoded with '/' separators, e.g.
	// "scenario/case/app/w03".
	Lane string
	// Name labels the interval.
	Name string
	// Cat is the span's category (e.g. "busy", "overhead", "idle",
	// "stage1"); Chrome trace viewers can filter by it.
	Cat string
	// Start and Dur delimit the interval in the clock's units (Wall:
	// seconds since the tracer epoch; Sim: simulated time units).
	Start, Dur float64
}

// DefaultCap is the default span-buffer capacity of New.
const DefaultCap = 1 << 20

// Tracer records spans. All methods are safe for concurrent use; a nil
// *Tracer is a no-op on every path.
type Tracer struct {
	epoch time.Time
	cap   int
	reg   *metrics.Registry

	mu      sync.Mutex
	spans   []Span
	dropped atomic.Int64
}

// New returns a tracer with the default span capacity whose dropped
// counter reports to metrics.Default() at drop time.
func New() *Tracer { return NewSized(DefaultCap, nil) }

// NewSized returns a tracer holding at most cap spans (cap <= 0 means
// DefaultCap). Spans recorded beyond the cap are dropped and counted in
// reg (nil falls back to metrics.Default() at drop time) under
// "tracing.dropped".
func NewSized(cap int, reg *metrics.Registry) *Tracer {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Tracer{epoch: time.Now(), cap: cap, reg: reg}
}

// registry resolves the tracer's effective metrics registry.
func (t *Tracer) registry() *metrics.Registry {
	if t.reg != nil {
		return t.reg
	}
	return metrics.Default()
}

// Add records one span. Past the buffer cap the span is dropped and the
// "tracing.dropped" counter of the tracer's metrics registry is
// incremented. It is a no-op on a nil receiver.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.mu.Unlock()
		t.dropped.Add(1)
		t.registry().Counter("tracing.dropped").Inc()
		return
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 for a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans dropped at the buffer cap (0 for
// a nil receiver).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the recorded spans in insertion order (nil
// for a nil receiver).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Region is an open wall-clock span returned by Begin; call End to
// record it. The zero Region (from a nil tracer) is a no-op.
type Region struct {
	t     *Tracer
	lane  string
	name  string
	cat   string
	start time.Time
}

// Begin opens a wall-clock span on the given lane; the returned
// Region's End records it. Nested Begin/End pairs on one lane render as
// nested slices in Chrome trace viewers. A nil tracer returns a no-op
// Region.
func (t *Tracer) Begin(lane, name, cat string) Region {
	if t == nil {
		return Region{}
	}
	return Region{t: t, lane: lane, name: name, cat: cat, start: time.Now()}
}

// End closes the region and records its span. It is a no-op on the zero
// Region.
func (r Region) End() {
	if r.t == nil {
		return
	}
	r.t.Add(Span{
		Clock: Wall,
		Lane:  r.lane,
		Name:  r.name,
		Cat:   r.cat,
		Start: r.start.Sub(r.t.epoch).Seconds(),
		Dur:   time.Since(r.start).Seconds(),
	})
}

// Chunk is one executed chunk on a simulated-time worker lane: the
// neutral form of the simulator's chunk records (sim.ChunkRecord), kept
// dependency-free so both sim and trace can feed it.
type Chunk struct {
	// Worker indexes the lane.
	Worker int
	// Start is the dispatch time, before the scheduling overhead.
	Start float64
	// Size is the number of iterations in the chunk.
	Size int
	// Elapsed is the execution time after the overhead.
	Elapsed float64
}

// AddWorkerLanes emits the simulated-time timeline of one run's chunk
// log under the given scope: per chunk an "overhead" span and a "busy"
// span, plus "idle" spans filling any gap between one chunk's end and
// the worker's next dispatch. Lanes are named scope + "/w<worker>", so
// a hierarchical scope ("scenario/case/app") yields the scenario ->
// case -> app -> chunk span hierarchy. Per lane, busy + overhead + idle
// sums to the worker's span from first dispatch to last completion —
// the same accounting trace.Analyze reports. It is a no-op on a nil
// receiver.
func (t *Tracer) AddWorkerLanes(scope string, chunks []Chunk, overhead float64) {
	if t == nil || len(chunks) == 0 {
		return
	}
	// Group chunk indices per worker preserving dispatch order (the
	// simulator logs chunks in event order, which is start-ordered per
	// worker).
	perWorker := map[int][]int{}
	order := []int{}
	for i, c := range chunks {
		if _, seen := perWorker[c.Worker]; !seen {
			order = append(order, c.Worker)
		}
		perWorker[c.Worker] = append(perWorker[c.Worker], i)
	}
	for _, w := range order {
		lane := laneName(scope, w)
		prevEnd := -1.0
		for _, i := range perWorker[w] {
			c := chunks[i]
			if prevEnd >= 0 && c.Start > prevEnd {
				t.Add(Span{Clock: Sim, Lane: lane, Name: "idle", Cat: "idle",
					Start: prevEnd, Dur: c.Start - prevEnd})
			}
			if overhead > 0 {
				t.Add(Span{Clock: Sim, Lane: lane, Name: "dispatch", Cat: "overhead",
					Start: c.Start, Dur: overhead})
			}
			t.Add(Span{Clock: Sim, Lane: lane, Name: chunkName(c.Size), Cat: "busy",
				Start: c.Start + overhead, Dur: c.Elapsed})
			prevEnd = c.Start + overhead + c.Elapsed
		}
	}
}

// laneName formats a worker lane under a scope. Workers are
// zero-padded to two digits so lexicographic lane order matches
// numeric worker order for the group sizes the paper uses.
func laneName(scope string, worker int) string {
	if scope == "" {
		scope = "run"
	}
	return fmt.Sprintf("%s/w%02d", scope, worker)
}

// chunkName labels a busy span with its chunk size.
func chunkName(size int) string { return fmt.Sprintf("chunk[%d]", size) }

// defaultTracer is the process-wide fallback tracer; see SetDefault.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs tr as the process-wide default tracer, the
// fallback instrumented packages use when no tracer was wired through
// their configs (sim.Config.Tracer, ra.Problem.Tracer, ...). The CLIs
// call it once at startup when -trace is given; passing nil disables
// the fallback. Libraries and tests should prefer explicit wiring.
func SetDefault(tr *Tracer) { defaultTracer.Store(tr) }

// Default returns the tracer installed by SetDefault, or nil. The load
// is a single atomic read.
func Default() *Tracer { return defaultTracer.Load() }
